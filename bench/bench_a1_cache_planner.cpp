// A1 (ablation) — Offline cache planning: expected cache-hit rate vs TCAM
// budget, dependent-set vs cover-set splicing, on policies with deep and
// shallow dependency structure. Cover-set's advantage is exactly the long
// dependency chains the classbench-style policies carry; on disjoint
// campus-style policies the strategies converge.
#include "common.hpp"

#include "core/cache_planner.hpp"
#include "flowspace/dependency.hpp"

using namespace difane;
using namespace difane::bench;

int main() {
  print_header("A1: expected hit rate vs cache budget (offline planner)",
               "cache-splicing ablation (extension; cf. wildcard caching design)",
               "cover-set >= dependent-set at tight budgets on chain-heavy "
               "policies; equal on disjoint policies");

  // Zipf popularity across rules (not flow-space-proportional weights): the
  // planner question is "which popular rules are worth their splice cost",
  // which degenerates if one giant default rule owns all the weight.
  auto zipf_policy = [](bool campus, std::uint64_t seed) {
    RuleGenParams params;
    params.num_rules = 2000;
    params.seed = seed;
    params.weight_mode = WeightMode::kZipfByIndex;
    params.zipf_s = 1.0;
    if (campus) {
      params.chain_count = 0;
      params.p_src_prefix = 1.0;
      params.p_dst_prefix = 1.0;
      params.p_long_prefix = 1.0;
      params.p_dst_port = 0.1;
    } else {
      params.chain_count = 40;
      params.chain_depth = 6;
      params.p_dst_port = 0.45;
    }
    return generate_policy(params);
  };
  struct Spec {
    const char* name;
    RuleTable policy;
  };
  std::vector<Spec> specs;
  specs.push_back({"classbench (deep chains)", zipf_policy(false, 71)});
  specs.push_back({"campus (disjoint pairs)", zipf_policy(true, 71)});

  for (const auto& spec : specs) {
    const auto graph = build_dependency_graph(spec.policy);
    std::printf("policy: %s, %zu rules, max chain depth %zu\n", spec.name,
                spec.policy.size(), graph.max_chain_depth());
    TextTable table({"budget", "dependent-set hit%", "cover-set hit%",
                     "dep rules chosen", "cover rules chosen"});
    for (const std::size_t budget : {20u, 50u, 100u, 200u, 400u, 800u}) {
      const auto dep =
          plan_cache(spec.policy, graph, CacheStrategy::kDependentSet, budget);
      const auto cover =
          plan_cache(spec.policy, graph, CacheStrategy::kCoverSet, budget);
      table.add_row({TextTable::integer(static_cast<long long>(budget)),
                     TextTable::num(dep.expected_hit_rate() * 100.0, 1),
                     TextTable::num(cover.expected_hit_rate() * 100.0, 1),
                     TextTable::integer(static_cast<long long>(dep.chosen.size())),
                     TextTable::integer(static_cast<long long>(cover.chosen.size()))});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
