// A1 (ablation) — Offline cache planning: expected cache-hit rate vs TCAM
// budget, dependent-set vs cover-set splicing, on policies with deep and
// shallow dependency structure. Cover-set's advantage is exactly the long
// dependency chains the classbench-style policies carry; on disjoint
// campus-style policies the strategies converge.
#include "common.hpp"

#include "core/cache_planner.hpp"
#include "flowspace/dependency.hpp"

using namespace difane;
using namespace difane::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "A1", /*default_seed=*/71);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("A1: expected hit rate vs cache budget (offline planner)",
                   "cache-splicing ablation (extension; cf. wildcard caching design)",
                   "cover-set >= dependent-set at tight budgets on chain-heavy "
                   "policies; equal on disjoint policies");
    }

    // Zipf popularity across rules (not flow-space-proportional weights): the
    // planner question is "which popular rules are worth their splice cost",
    // which degenerates if one giant default rule owns all the weight.
    const std::size_t policy_size = args.pick<std::size_t>(2000, 800);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    auto zipf_policy = [&](bool campus, std::uint64_t seed) {
      RuleGenParams params;
      params.num_rules = policy_size;
      params.seed = seed;
      params.weight_mode = WeightMode::kZipfByIndex;
      params.zipf_s = 1.0;
      if (campus) {
        params.chain_count = 0;
        params.p_src_prefix = 1.0;
        params.p_dst_prefix = 1.0;
        params.p_long_prefix = 1.0;
        params.p_dst_port = 0.1;
      } else {
        params.chain_count = 40;
        params.chain_depth = 6;
        params.p_dst_port = 0.45;
      }
      return generate_policy(params);
    };
    struct Spec {
      const char* name;
      const char* slug;
      RuleTable policy;
    };
    std::vector<Spec> specs;
    specs.push_back({"classbench (deep chains)", "classbench", zipf_policy(false, rep.seed)});
    specs.push_back({"campus (disjoint pairs)", "campus", zipf_policy(true, rep.seed)});

    const std::vector<std::size_t> budgets =
        args.quick ? std::vector<std::size_t>{50u, 200u, 800u}
                   : std::vector<std::size_t>{20u, 50u, 100u, 200u, 400u, 800u};
    for (const auto& spec : specs) {
      const auto graph = build_dependency_graph(spec.policy);
      if (rep.verbose) {
        std::printf("policy: %s, %zu rules, max chain depth %zu\n", spec.name,
                    spec.policy.size(), graph.max_chain_depth());
      }
      rep.set(std::string("max_chain_depth_") + spec.slug,
              static_cast<double>(graph.max_chain_depth()));
      TextTable table({"budget", "dependent-set hit%", "cover-set hit%",
                       "dep rules chosen", "cover rules chosen"});
      for (const std::size_t budget : budgets) {
        const auto dep =
            plan_cache(spec.policy, graph, CacheStrategy::kDependentSet, budget);
        const auto cover =
            plan_cache(spec.policy, graph, CacheStrategy::kCoverSet, budget);
        const std::string suffix =
            tag("_budget", static_cast<double>(budget)) + "_" + spec.slug;
        rep.set("dep_hit_pct" + suffix, dep.expected_hit_rate() * 100.0);
        rep.set("cover_hit_pct" + suffix, cover.expected_hit_rate() * 100.0);
        table.add_row({TextTable::integer(static_cast<long long>(budget)),
                       TextTable::num(dep.expected_hit_rate() * 100.0, 1),
                       TextTable::num(cover.expected_hit_rate() * 100.0, 1),
                       TextTable::integer(static_cast<long long>(dep.chosen.size())),
                       TextTable::integer(static_cast<long long>(cover.chosen.size()))});
      }
      if (rep.verbose) std::printf("%s\n", table.render().c_str());
    }
  });
}
