// A2 (ablation) — Hot-partition replication. All setup load lands in one
// partition's region of flow space; replication lets ingresses spread their
// redirects across several authority switches holding the same partition,
// lifting the hot partition's setup ceiling.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "A2", /*default_seed=*/211);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("A2: hot-partition setup throughput vs replication factor",
                   "authority replication discussion (load distribution)",
                   "completions scale with replicas until the offered load or the "
                   "replica count is exhausted");
    }

    const std::size_t policy_size = args.pick<std::size_t>(800, 400);
    const auto policy = classbench_like(policy_size, rep.seed);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    const double duration = args.pick(0.03, 0.012);
    const double offered = 2.4e6;  // 3x one authority switch
    rep.set("offered_flows_per_s", offered);

    TextTable table({"replicas", "offered (flows/s)", "completed (flows/s)",
                     "queue rejects"});
    for (const std::uint32_t replicas : {1u, 2u, 3u, 4u}) {
      ScenarioParams params;
      params.mode = Mode::kDifane;
      params.edge_switches = 4;
      params.core_switches = 4;
      params.authority_count = 4;
      params.authority_replicas = replicas;
      params.edge_cache_capacity = 1u << 20;
      params.partitioner.capacity = 400;
      params.cache_strategy = CacheStrategy::kMicroflow;
      apply_exec_args(params, args);
      Scenario scenario(policy, params);

      // Generate the hot load inside one concrete partition region.
      const Ternary hot = scenario.plan()->partitions()[0].region;
      Rng rng(rep.seed + 1);
      std::vector<FlowSpec> flows;
      double t = 0.0;
      std::uint64_t id = 0;
      while (t < duration) {
        t += rng.exponential(offered);
        FlowSpec f;
        f.id = id++;
        f.header = hot.sample_point(rng);
        f.start = t;
        f.packets = 1;
        f.ingress_index = static_cast<std::uint32_t>(id % 4);
        flows.push_back(std::move(f));
      }
      const auto& stats = scenario.run(flows);
      rep.set(tag("completed_flows_per_s_r", replicas), stats.setup_completions.rate());
      rep.set(tag("queue_rejects_r", replicas), static_cast<double>(stats.queue_rejects));
      table.add_row({TextTable::integer(replicas), TextTable::num(offered, 0),
                     TextTable::num(stats.setup_completions.rate(), 0),
                     TextTable::integer(static_cast<long long>(stats.queue_rejects))});
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());
  });
}
