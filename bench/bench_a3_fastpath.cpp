// A3 (fast path) — microbenchmark of the two per-packet hot loops the
// simulator is built on: switch flow-table lookups (exact-hit, fallthrough
// and expiry-churn mixes) and event-engine schedule/dispatch. Wall metrics
// track ns/op; the allocation counters are deterministic and gate the
// zero-heap-allocation claim for steady-state operation (a counting global
// operator new observes every heap allocation in the measured loops).
#include "common.hpp"

#include <array>
#include <cstdlib>
#include <new>

#include "netsim/engine.hpp"
#include "switchsim/flow_table.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every heap allocation in this binary bumps g_allocs.
// Single-threaded (bench binaries are), so a plain counter suffices.

namespace {
std::uint64_t g_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  ++g_allocs;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace difane;
using namespace difane::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Self-rescheduling engine handler with a packet-sized payload: each firing
// reschedules a copy of itself until its chain is used up, so the pending
// count (and therefore the engine's slab high-water mark) stays constant.
struct Hop {
  Engine* eng;
  std::uint64_t* fired;
  std::uint64_t remaining;
  std::array<std::uint64_t, 10> payload;

  void operator()() {
    *fired += 1 + (payload[0] & 0);  // keep the payload observable
    if (--remaining > 0) eng->after(1e-6, Hop(*this));
  }
};
static_assert(Engine::Handler::fits_inline<Hop>,
              "A3's representative event capture must use the inline path");

// Burst-dispatch variant of Hop: one firing performs up to `burst` payload
// ops before rescheduling, modelling the coalesced burst events of the
// burst-mode data plane — the event-dispatch cost (heap pop, slot recycle,
// callable move) amortizes over the whole burst.
struct BurstHop {
  Engine* eng;
  std::uint64_t* fired;
  std::uint64_t remaining;
  std::uint64_t burst;
  std::array<std::uint64_t, 10> payload;

  void operator()() {
    const std::uint64_t n = remaining < burst ? remaining : burst;
    for (std::uint64_t k = 0; k < n; ++k) *fired += 1 + (payload[0] & 0);
    remaining -= n;
    if (remaining > 0) eng->after(1e-6, BurstHop(*this));
  }
};
static_assert(Engine::Handler::fits_inline<BurstHop>,
              "burst event capture must use the inline path");

Rule microflow_rule(RuleId id, const BitVec& header) {
  Rule rule;
  rule.id = id;
  rule.priority = 1000;
  rule.match = Ternary(header, BitVec::ones());
  rule.action = Action::forward(1);
  return rule;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "A3", /*default_seed=*/307);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("A3: fast-path microbenchmark",
                   "flow-table lookup + event-engine dispatch hot loops",
                   "steady-state lookups and dispatch perform zero heap "
                   "allocations; ns/op stays flat as tables grow");
    }

    const std::size_t policy_size = args.pick<std::size_t>(400, 200);
    const std::size_t cache_entries = args.pick<std::size_t>(50000, 10000);
    const std::size_t lookups = args.pick<std::size_t>(2000000, 400000);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    rep.report.params["cache_entries"] = obs::Json(cache_entries);

    const auto policy = classbench_like(policy_size, 7);
    Rng rng(rep.seed);

    TextTable table({"loop", "ops", "ns/op", "allocs"});

    // -- Flow-table hit mix: every lookup hits a full-mask cache entry, the
    // exact-match fast path. No timeouts, so the expiry watermark never
    // trips.
    {
      FlowTable ft(/*cache_capacity=*/cache_entries + 16);
      for (const auto& rule : policy.rules()) {
        ft.install(rule, Band::kAuthority, 0.0);
      }
      std::vector<BitVec> headers;
      headers.reserve(cache_entries);
      for (std::size_t i = 0; i < cache_entries; ++i) {
        const auto& match = policy.at(rng.uniform(0, policy.size() - 1)).match;
        headers.push_back(match.sample_point(rng));
        ft.install(microflow_rule(static_cast<RuleId>(1000000 + i), headers.back()),
                   Band::kCache, 0.0);
      }
      std::uint64_t checksum = 0;
      const std::uint64_t a0 = g_allocs;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < lookups; ++i) {
        const FlowEntry* e = ft.lookup(headers[i % headers.size()], 1.0);
        if (e != nullptr) checksum += e->rule.id;
      }
      const double wall = seconds_since(t0);
      const std::uint64_t allocs = g_allocs - a0;
      rep.set("lookup_hit_steady_allocs", static_cast<double>(allocs));
      rep.set("lookup_hit_checksum", static_cast<double>(checksum % 1000000007ULL));
      rep.set("lookup_hit_ops", static_cast<double>(lookups));
      rep.set("lookup_hit_wall_ns_per_op", 1e9 * wall / static_cast<double>(lookups));
      table.add_row({"cache hit", TextTable::integer(static_cast<long long>(lookups)),
                     TextTable::num(1e9 * wall / static_cast<double>(lookups), 1),
                     TextTable::integer(static_cast<long long>(allocs))});

      // -- Fallthrough mix against the same table: random headers miss the
      // exact hash and resolve in the authority band (or miss entirely).
      std::vector<BitVec> strangers;
      strangers.reserve(4096);
      for (std::size_t i = 0; i < 4096; ++i) {
        strangers.push_back(Ternary::wildcard().sample_point(rng));
      }
      std::uint64_t fallthrough_checksum = 0;
      const std::uint64_t b0 = g_allocs;
      const auto t1 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < lookups; ++i) {
        const FlowEntry* e = ft.lookup(strangers[i % strangers.size()], 1.0);
        if (e != nullptr) fallthrough_checksum += e->rule.id;
      }
      const double wall_miss = seconds_since(t1);
      const std::uint64_t allocs_miss = g_allocs - b0;
      rep.set("lookup_fallthrough_steady_allocs", static_cast<double>(allocs_miss));
      rep.set("lookup_fallthrough_checksum",
              static_cast<double>(fallthrough_checksum % 1000000007ULL));
      rep.set("lookup_fallthrough_wall_ns_per_op",
              1e9 * wall_miss / static_cast<double>(lookups));
      rep.set("lookup_misses", static_cast<double>(ft.stats().misses));
      table.add_row({"cache fallthrough",
                     TextTable::integer(static_cast<long long>(lookups)),
                     TextTable::num(1e9 * wall_miss / static_cast<double>(lookups), 1),
                     TextTable::integer(static_cast<long long>(allocs_miss))});

      // -- Burst lookups over the same table and header sequence: chunks of
      // 32 through lookup_batch (hash every key + prefetch its slab entry,
      // then resolve), prefetch on and off. Byte-identical semantics to the
      // scalar hit mix, so the checksum must equal lookup_hit_checksum —
      // exported as a deterministic pass/fail metric the baseline gates on.
      for (const bool prefetch : {true, false}) {
        const BitVec* keys[32];
        const FlowEntry* out[32];
        double nows[32];
        std::uint64_t burst_checksum = 0;
        for (std::size_t k = 0; k < 32; ++k) nows[k] = 1.0;
        const std::uint64_t c0 = g_allocs;
        const auto t2 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < lookups; i += 32) {
          for (std::size_t k = 0; k < 32; ++k) {
            keys[k] = &headers[(i + k) % headers.size()];
          }
          ft.lookup_batch(keys, nows, nullptr, 32, out, prefetch);
          for (std::size_t k = 0; k < 32; ++k) {
            if (out[k] != nullptr) burst_checksum += out[k]->rule.id;
          }
        }
        const double wall_burst = seconds_since(t2);
        const std::uint64_t allocs_burst = g_allocs - c0;
        const std::string key =
            prefetch ? "lookup_hit_burst32" : "lookup_hit_burst32_noprefetch";
        rep.set(key + "_steady_allocs", static_cast<double>(allocs_burst));
        rep.set(key + "_matches_scalar",
                burst_checksum % 1000000007ULL == checksum % 1000000007ULL
                    ? 1.0
                    : 0.0);
        rep.set(key + "_wall_ns_per_op",
                1e9 * wall_burst / static_cast<double>(lookups));
        table.add_row({prefetch ? "cache hit, burst=32"
                                : "cache hit, burst=32 no-prefetch",
                       TextTable::integer(static_cast<long long>(lookups)),
                       TextTable::num(
                           1e9 * wall_burst / static_cast<double>(lookups), 1),
                       TextTable::integer(static_cast<long long>(allocs_burst))});
      }
    }

    // -- Prefetch-depth sweep (ScenarioParams::prefetch_depth): a table
    // whose hot keys carry duplicate exact-match entries, so each key's
    // chain is kChainLen long and the resolve pass touches more than the
    // head. Depth 1 (the default) prefetches only the head; deeper settings
    // pull the rest of the chain. Results must equal the scalar walk at
    // every depth — the hint can only move wall time, and on single-core
    // hosts the differences are small; the row exists so multi-core hosts
    // can tune the knob against their own cache hierarchy.
    {
      const std::size_t kChainLen = 3;
      const std::size_t chain_headers = args.pick<std::size_t>(20000, 5000);
      const std::size_t chain_lookups = args.pick<std::size_t>(1000000, 200000);
      rep.report.params["chain_len"] = obs::Json(kChainLen);
      rep.report.params["chain_headers"] = obs::Json(chain_headers);
      FlowTable ft(/*cache_capacity=*/kChainLen * chain_headers + 16);
      std::vector<BitVec> headers;
      headers.reserve(chain_headers);
      for (std::size_t i = 0; i < chain_headers; ++i) {
        headers.push_back(Ternary::wildcard().sample_point(rng));
        for (std::size_t dup = 0; dup < kChainLen; ++dup) {
          ft.install(microflow_rule(
                         static_cast<RuleId>(3000000 + dup * chain_headers + i),
                         headers.back()),
                     Band::kCache, 0.0);
        }
      }
      std::uint64_t scalar_checksum = 0;
      for (std::size_t i = 0; i < chain_lookups; ++i) {
        const FlowEntry* e = ft.lookup(headers[i % headers.size()], 1.0);
        if (e != nullptr) scalar_checksum += e->rule.id;
      }
      for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
        ft.set_prefetch_depth(depth);
        const BitVec* keys[32];
        const FlowEntry* out[32];
        double nows[32];
        for (std::size_t k = 0; k < 32; ++k) nows[k] = 1.0;
        std::uint64_t checksum = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < chain_lookups; i += 32) {
          for (std::size_t k = 0; k < 32; ++k) {
            keys[k] = &headers[(i + k) % headers.size()];
          }
          ft.lookup_batch(keys, nows, nullptr, 32, out, true);
          for (std::size_t k = 0; k < 32; ++k) {
            if (out[k] != nullptr) checksum += out[k]->rule.id;
          }
        }
        const double wall = seconds_since(t0);
        const std::string key = tag("lookup_chain_depth", depth);
        rep.set(key + "_matches_scalar",
                checksum % 1000000007ULL == scalar_checksum % 1000000007ULL
                    ? 1.0
                    : 0.0);
        rep.set(key + "_wall_ns_per_op",
                1e9 * wall / static_cast<double>(chain_lookups));
        table.add_row({"chain=3, prefetch depth=" + std::to_string(depth),
                       TextTable::integer(static_cast<long long>(chain_lookups)),
                       TextTable::num(
                           1e9 * wall / static_cast<double>(chain_lookups), 1),
                       "-"});
      }
      ft.set_prefetch_depth(1);
    }

    // -- Expiry churn: entries with idle timeouts stream-expire as installs
    // and lookups advance the clock, so the watermark trips repeatedly and
    // every sweep finds work. This is the lazy-expiry worst case.
    {
      const std::size_t churn = args.pick<std::size_t>(20000, 5000);
      const double dt = 1e-3;
      const double idle = 1000 * dt;  // ~1000 live entries in steady state
      FlowTable ft(/*cache_capacity=*/churn + 16);
      std::vector<BitVec> headers;
      headers.reserve(churn);
      for (std::size_t i = 0; i < churn; ++i) {
        headers.push_back(Ternary::wildcard().sample_point(rng));
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < churn; ++i) {
        const double now = static_cast<double>(i) * dt;
        ft.install(microflow_rule(static_cast<RuleId>(2000000 + i), headers[i]),
                   Band::kCache, now, idle);
        // Refresh a recent entry (a hit) and probe an old one (a miss after
        // expiry), so sweeps interleave with both lookup outcomes.
        ft.lookup(headers[i / 2], now);
      }
      const double wall = seconds_since(t0);
      rep.set("expiry_churn_ops", static_cast<double>(2 * churn));
      rep.set("expiry_churn_expirations", static_cast<double>(ft.stats().expirations));
      rep.set("expiry_churn_wall_ns_per_op",
              1e9 * wall / static_cast<double>(2 * churn));
      table.add_row({"expiry churn",
                     TextTable::integer(static_cast<long long>(2 * churn)),
                     TextTable::num(1e9 * wall / static_cast<double>(2 * churn), 1),
                     "-"});
    }

    // -- Engine schedule/dispatch: self-rescheduling packet-sized handlers.
    // A warmup drain brings the handler slab and heap to their high-water
    // marks; the measured run must then be allocation-free.
    {
      const std::uint64_t chains = 64;
      const std::uint64_t hops = args.pick<std::uint64_t>(20000, 2000);
      Engine engine;
      std::uint64_t fired = 0;
      for (std::uint64_t c = 0; c < chains; ++c) {
        engine.at(static_cast<double>(c) * 1e-9,
                  Hop{&engine, &fired, /*remaining=*/8, {{c}}});
      }
      engine.run();  // warmup: slab/heap reach steady size
      const std::uint64_t warm_fired = fired;

      const std::uint64_t a0 = g_allocs;
      for (std::uint64_t c = 0; c < chains; ++c) {
        engine.after(static_cast<double>(c) * 1e-9,
                     Hop{&engine, &fired, hops, {{c}}});
      }
      const auto t0 = std::chrono::steady_clock::now();
      engine.run();
      const double wall = seconds_since(t0);
      const std::uint64_t allocs = g_allocs - a0;
      const std::uint64_t events = fired - warm_fired;
      rep.set("engine_steady_allocs", static_cast<double>(allocs));
      rep.set("engine_events", static_cast<double>(events));
      rep.set("engine_wall_ns_per_event", 1e9 * wall / static_cast<double>(events));
      table.add_row({"engine dispatch",
                     TextTable::integer(static_cast<long long>(events)),
                     TextTable::num(1e9 * wall / static_cast<double>(events), 1),
                     TextTable::integer(static_cast<long long>(allocs))});

      // -- Burst dispatch: the same payload-op volume delivered 32 ops per
      // event firing. ns/op here is the per-packet event-dispatch cost after
      // burst amortization — compare against engine_wall_ns_per_event.
      const std::uint64_t d0 = g_allocs;
      for (std::uint64_t c = 0; c < chains; ++c) {
        engine.after(static_cast<double>(c) * 1e-9,
                     BurstHop{&engine, &fired, hops, /*burst=*/32, {{c}}});
      }
      const auto t1 = std::chrono::steady_clock::now();
      engine.run();
      const double wall_burst = seconds_since(t1);
      const std::uint64_t allocs_burst = g_allocs - d0;
      const std::uint64_t burst_ops = fired - warm_fired - events;
      rep.set("engine_burst32_steady_allocs", static_cast<double>(allocs_burst));
      rep.set("engine_burst32_ops", static_cast<double>(burst_ops));
      rep.set("engine_burst32_wall_ns_per_op",
              1e9 * wall_burst / static_cast<double>(burst_ops));
      table.add_row({"engine dispatch, burst=32",
                     TextTable::integer(static_cast<long long>(burst_ops)),
                     TextTable::num(
                         1e9 * wall_burst / static_cast<double>(burst_ops), 1),
                     TextTable::integer(static_cast<long long>(allocs_burst))});
    }

    if (rep.verbose) std::printf("%s\n", table.render().c_str());
  });
}
