// E10 — Substrate validation microbenchmark: packet classification
// throughput of the linear TCAM-semantics reference vs the HiCuts-style
// decision tree, across rule-table sizes. Justifies the switch model's
// lookup-cost assumptions. Timing loops are manual chrono loops (wall
// metrics, `_wall_` keys); tree-structure metrics are deterministic.
#include <chrono>

#include "common.hpp"

#include "classifier/dtree.hpp"
#include "classifier/linear.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

std::vector<BitVec> make_packets(const RuleTable& policy, std::size_t n,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVec> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0 || policy.empty()) {
      packets.push_back(Ternary::wildcard().sample_point(rng));
    } else {
      packets.push_back(
          policy.at(rng.uniform(0, policy.size() - 1)).match.sample_point(rng));
    }
  }
  return packets;
}

// Runs classify over the packet ring until ~min_iters lookups, returns
// nanoseconds per lookup. A volatile sink keeps the calls live.
template <typename Classifier>
double time_classify_ns(const Classifier& classifier,
                        const std::vector<BitVec>& packets, std::size_t min_iters) {
  volatile const void* sink = nullptr;
  std::size_t i = 0, iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (iters < min_iters) {
    sink = classifier.classify(packets[i++ & (packets.size() - 1)]);
    ++iters;
  }
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E10", /*default_seed=*/3);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E10: classifier microbenchmark (linear vs decision tree)",
                   "substrate validation: switch-model lookup-cost assumptions",
                   "dtree lookup ~O(depth); linear ~O(rules); build cost "
                   "amortized over lookups");
    }

    const std::size_t lookups = args.pick<std::size_t>(200000, 20000);
    const std::vector<std::size_t> sizes =
        args.quick ? std::vector<std::size_t>{100u, 1000u}
                   : std::vector<std::size_t>{100u, 1000u, 10000u};
    TextTable table({"rules", "linear (ns/lookup)", "dtree (ns/lookup)",
                     "speedup", "dtree nodes", "depth", "duplication",
                     "build (ms)"});
    for (const std::size_t size : sizes) {
      const auto policy = classbench_like(size, rep.seed);
      const auto packets = make_packets(policy, 1024, 7);

      LinearClassifier linear(policy);
      DTreeParams params;
      params.leaf_size = 64;  // coarse leaves: wildcard ACLs replicate badly below

      const auto b0 = std::chrono::steady_clock::now();
      DTreeClassifier tree(policy, params);
      const auto b1 = std::chrono::steady_clock::now();
      const double build_ms =
          std::chrono::duration<double, std::milli>(b1 - b0).count();

      const double linear_ns = time_classify_ns(linear, packets, lookups);
      const double dtree_ns = time_classify_ns(tree, packets, lookups);

      const std::string suffix = tag("_n", static_cast<double>(size));
      // Structure metrics are deterministic (same seed => same tree).
      rep.set("dtree_nodes" + suffix, static_cast<double>(tree.node_count()));
      rep.set("dtree_leaves" + suffix, static_cast<double>(tree.leaf_count()));
      rep.set("dtree_depth" + suffix, static_cast<double>(tree.depth()));
      rep.set("dtree_duplication" + suffix, tree.duplication_factor());
      // Host-timing metrics carry the _wall_ marker (exempt from determinism
      // checks in bench_compare/tests).
      rep.set("linear_wall_ns_per_lookup" + suffix, linear_ns);
      rep.set("dtree_wall_ns_per_lookup" + suffix, dtree_ns);
      rep.set("dtree_build_wall_ms" + suffix, build_ms);

      table.add_row({TextTable::integer(static_cast<long long>(size)),
                     TextTable::num(linear_ns, 1), TextTable::num(dtree_ns, 1),
                     TextTable::num(dtree_ns > 0 ? linear_ns / dtree_ns : 0.0, 1),
                     TextTable::integer(static_cast<long long>(tree.node_count())),
                     TextTable::integer(static_cast<long long>(tree.depth())),
                     TextTable::num(tree.duplication_factor(), 2),
                     TextTable::num(build_ms, 2)});
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());
  });
}
