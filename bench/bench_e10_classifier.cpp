// E10 — Substrate validation microbenchmark (google-benchmark): packet
// classification throughput of the linear TCAM-semantics reference vs the
// HiCuts-style decision tree, across rule-table sizes. Justifies the switch
// model's lookup-cost assumptions.
#include <benchmark/benchmark.h>

#include <map>

#include "classifier/dtree.hpp"
#include "classifier/linear.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

std::vector<BitVec> make_packets(const RuleTable& policy, std::size_t n,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVec> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0 || policy.empty()) {
      packets.push_back(Ternary::wildcard().sample_point(rng));
    } else {
      packets.push_back(
          policy.at(rng.uniform(0, policy.size() - 1)).match.sample_point(rng));
    }
  }
  return packets;
}

// Fixtures are cached across benchmark invocations: google-benchmark calls
// each function several times to calibrate, and rebuilding a 10K-rule tree
// on every call would dominate the run.
const RuleTable& cached_policy(std::size_t size) {
  static std::map<std::size_t, RuleTable> cache;
  auto it = cache.find(size);
  if (it == cache.end()) {
    it = cache.emplace(size, classbench_like(size, 3)).first;
  }
  return it->second;
}

const DTreeClassifier& cached_tree(std::size_t size) {
  static std::map<std::size_t, DTreeClassifier> cache;
  auto it = cache.find(size);
  if (it == cache.end()) {
    DTreeParams params;
    params.leaf_size = 64;  // coarse leaves: wildcard ACLs replicate badly below
    it = cache.emplace(size, DTreeClassifier(cached_policy(size), params)).first;
  }
  return it->second;
}

void BM_LinearClassify(benchmark::State& state) {
  const auto& policy = cached_policy(static_cast<std::size_t>(state.range(0)));
  LinearClassifier classifier(policy);
  const auto packets = make_packets(policy, 1024, 7);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(packets[i++ & 1023]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DTreeClassify(benchmark::State& state) {
  const auto& policy = cached_policy(static_cast<std::size_t>(state.range(0)));
  const auto& classifier = cached_tree(static_cast<std::size_t>(state.range(0)));
  const auto packets = make_packets(policy, 1024, 7);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(packets[i++ & 1023]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DTreeBuild(benchmark::State& state) {
  const auto& policy = cached_policy(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    DTreeParams params;
    params.leaf_size = 64;
    DTreeClassifier classifier(policy, params);
    benchmark::DoNotOptimize(&classifier);
  }
}

BENCHMARK(BM_LinearClassify)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_DTreeClassify)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_DTreeBuild)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace difane

BENCHMARK_MAIN();
