// E11 — scale-out stress tier. Not a paper figure: this tier exists to prove
// the engine holds production-scale state — ≥10M installed rules and ≥1M
// concurrent flows in flight — on the sharded executor with work stealing,
// worker pinning, burst-mode lookups, and deep prefetch all enabled at once,
// and to track what that costs (RSS high-water, wall time) across the
// trajectory.
//
// Metric conventions:
//   * Deterministic (gated byte-identical by bench_compare): rule counts,
//     flow counts, peak concurrency, delivery counters — all derived from
//     the simulation, reproducible from the seed on any host.
//   * Host measurements (exempt, "_wall_"/"_rss_" keys): build/run wall
//     time, RSS high-water, and the stolen-shard count. Steals are
//     timing-dependent by design — stealing only changes which thread runs
//     a shard, never the result — so the count rides under the wall-metric
//     exemption.
//
// The full tier is deliberately heavy (minutes, ~10 GiB); --quick shrinks
// every axis into CI territory while keeping the same metric keys so the
// BASELINE gate covers the protocol end to end.
#include <sys/resource.h>

#include <algorithm>

#include "common.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

double rss_high_water_mib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

double wall_s(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Peak number of flows simultaneously in flight: sweep over each flow's
// [first packet, last packet] span. Deterministic — computed from the
// generated schedule, not from execution.
std::uint64_t peak_concurrency(const std::vector<FlowSpec>& flows) {
  std::vector<std::pair<double, int>> events;
  events.reserve(flows.size() * 2);
  for (const auto& f : flows) {
    const double end =
        f.start + static_cast<double>(f.packets > 0 ? f.packets - 1 : 0) *
                      f.packet_gap;
    events.emplace_back(f.start, +1);
    events.emplace_back(end, -1);
  }
  // Ends sort before starts at the same instant ((t,-1) < (t,+1)), so a
  // flow whose last packet coincides with another's first does not count as
  // overlapping — the conservative reading.
  std::sort(events.begin(), events.end());
  // Signed: a single-packet flow's end coincides with its start and sweeps
  // first, dipping the running count below zero transiently.
  std::int64_t live = 0, peak = 0;
  for (const auto& [t, delta] : events) {
    (void)t;
    live += delta;
    peak = std::max(peak, live);
  }
  return static_cast<std::uint64_t>(std::max<std::int64_t>(peak, 0));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E11", /*default_seed=*/29);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header(
          "E11: scale-out stress tier (10M rules / 1M concurrent flows)",
          "none — production-scale capacity proof for the sharded engine",
          "construction near-linear in rules; run survives 1M in-flight flows");
    }

    const std::size_t rules_target = args.pick<std::size_t>(10'000'000, 50'000);
    const std::size_t concurrent_target = args.pick<std::size_t>(1'000'000, 10'000);

    auto t0 = std::chrono::steady_clock::now();
    const auto policy = campus_like(rules_target, rep.seed);
    const double policy_wall = wall_s(t0);

    ScenarioParams params;
    params.mode = Mode::kDifane;
    params.edge_switches = 8;
    params.core_switches = 8;
    params.authority_count = 8;
    params.edge_cache_capacity = 1u << 21;
    params.partitioner.capacity = args.pick<std::size_t>(32768, 2048);
    params.cache_strategy = CacheStrategy::kMicroflow;
    // The scale-out execution stack under test, all knobs on. threads is
    // pinned (not --threads) so the tier's deterministic metrics are
    // self-consistent across hosts and across the harness's thread sweeps.
    params.threads = 4;
    params.steal = true;
    params.pin_workers = true;
    params.prefetch_depth = 4;
    params.burst = args.burst > 0 ? static_cast<std::size_t>(args.burst) : 32;
    rep.report.params["rules_target"] = obs::Json(rules_target);
    rep.report.params["concurrent_target"] = obs::Json(concurrent_target);
    rep.report.params["threads"] = obs::Json(params.threads);
    rep.report.params["burst"] = obs::Json(params.burst);
    rep.report.params["partition_capacity"] = obs::Json(params.partitioner.capacity);

    t0 = std::chrono::steady_clock::now();
    Scenario scenario(policy, params);
    const double build_wall = wall_s(t0);

    // Count what actually landed in hardware: the policy once per serving
    // replica in the authority band, plus the per-switch partition band.
    std::uint64_t authority_entries = 0, partition_entries = 0;
    Network& net = scenario.net();
    for (SwitchId id = 0; id < net.switch_count(); ++id) {
      authority_entries += net.sw(id).table().size(Band::kAuthority);
      partition_entries += net.sw(id).table().size(Band::kPartition);
    }

    // Arrival schedule sized so the in-flight plateau clears the target:
    // two-packet flows spanning 0.88 s, arrivals over 1 s at ~1.16x the
    // target rate => peak concurrency ~= 0.88 * rate > target.
    TrafficParams tp;
    tp.seed = rep.seed;
    tp.flow_pool = concurrent_target;
    tp.zipf_s = 1.05;
    tp.duration = 1.0;
    tp.arrival_rate = static_cast<double>(concurrent_target) * 1.3;
    // Flow length is bounded-Pareto(1, max_packets) scaled by mean/3; this
    // pair lands every draw in [2, 4] packets, so each flow spans at least
    // one packet_gap and stays in flight past the arrival window's end.
    tp.mean_packets = 6.0;
    tp.max_packets = 2.0;
    tp.packet_gap = 0.88;
    tp.ingress_count = 8;
    t0 = std::chrono::steady_clock::now();
    TrafficGenerator gen(policy, tp);
    const auto flows = gen.generate();
    const double traffic_wall = wall_s(t0);
    const std::uint64_t peak = peak_concurrency(flows);

    t0 = std::chrono::steady_clock::now();
    const auto& stats = scenario.run(flows);
    const double run_wall = wall_s(t0);

    const bool targets_met = policy.size() >= rules_target &&
                             authority_entries >= rules_target &&
                             peak >= concurrent_target;
    rep.set("scale_policy_rules", static_cast<double>(policy.size()));
    rep.set("scale_authority_entries", static_cast<double>(authority_entries));
    rep.set("scale_partition_entries", static_cast<double>(partition_entries));
    rep.set("scale_flows", static_cast<double>(flows.size()));
    rep.set("scale_peak_concurrent_flows", static_cast<double>(peak));
    rep.set("scale_packets_injected", static_cast<double>(stats.tracer.injected()));
    rep.set("scale_packets_delivered", static_cast<double>(stats.tracer.delivered()));
    rep.set("scale_cache_hits", static_cast<double>(stats.ingress_cache_hits));
    rep.set("scale_targets_met", targets_met ? 1.0 : 0.0);
    rep.set("scale_policy_wall_s", policy_wall);
    rep.set("scale_build_wall_s", build_wall);
    rep.set("scale_traffic_wall_s", traffic_wall);
    rep.set("scale_run_wall_s", run_wall);
    rep.set("scale_rss_high_water_mib", rss_high_water_mib());
    rep.set("scale_wall_shards_stolen", static_cast<double>(scenario.shards_stolen()));

    if (rep.verbose) {
      TextTable table({"axis", "value"});
      table.add_row({"policy rules", TextTable::integer(policy.size())});
      table.add_row({"authority entries", TextTable::integer(authority_entries)});
      table.add_row({"partition entries", TextTable::integer(partition_entries)});
      table.add_row({"flow arrivals", TextTable::integer(flows.size())});
      table.add_row({"peak concurrent flows", TextTable::integer(peak)});
      table.add_row({"packets delivered", TextTable::integer(stats.tracer.delivered())});
      table.add_row({"build wall (s)", TextTable::num(build_wall, 1)});
      table.add_row({"run wall (s)", TextTable::num(run_wall, 1)});
      table.add_row({"RSS high-water (MiB)", TextTable::num(rss_high_water_mib(), 0)});
      table.add_row({"shards stolen", TextTable::integer(scenario.shards_stolen())});
      std::printf("%s\n", table.render().c_str());
      std::printf("targets (%zu rules, %zu concurrent): %s\n", rules_target,
                  concurrent_target, targets_met ? "MET" : "MISSED");
    }
  });
}
