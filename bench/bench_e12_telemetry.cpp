// E12 — Monitoring fidelity: flow measurement from cache rules. The
// telemetry data plane samples packets at terminal match points (NetFlow
// p-sampling), periodically exports per-flow deltas over the control
// channel, and the collector's estimate (sampled / p) is judged against the
// TrafficGenerator's exact per-flow ground truth. Four sections:
//
//  * Fidelity grid — sampling rates {0.1, 0.5, 1.0} x heavy-tail modes
//    {zipf, flash crowd}: every flow's estimate must land inside the
//    binomial sampling envelope max(6 sigma, 3/p); at p = 1 the estimate is
//    exact. Overhead columns (batches/records/transmissions) price the
//    export stream the fidelity was bought with.
//  * Eviction flush under faults — a thrashing cache plus an authority
//    crash+restart on a lossy (reliable-channel) control wire. With
//    flush-on-evict ON, an evicted elephant's counts are exported rather
//    than dropped, so the top-flow error stays near zero; OFF shows the
//    counts that die with the evicted entry.
//  * Liveness piggyback — quiet-authority scenario on a 60%-loss wire:
//    export batches carry heartbeat sequence numbers, so measurement ON
//    suppresses the spurious failovers the bare heartbeat stream misfires.
//  * Replay — the export stream is a pure function of (seed, params): the
//    same cell run twice dumps byte-identical JSON.
#include <algorithm>
#include <cmath>

#include "common.hpp"

#include "obs/flow_export.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

struct ModeRow {
  const char* name;
  double alpha;
  TrafficMode mode;
};

constexpr ModeRow kModes[] = {
    {"zipf", 1.1, TrafficMode::kPoissonZipf},
    {"flash", 1.0, TrafficMode::kFlashCrowd},
};
constexpr double kRates[] = {0.1, 0.5, 1.0};

struct FidelityCell {
  double outside_bound = 0.0;   // flows whose estimate left the envelope
  double mean_rel_err_pct = 0.0;  // flows with >= 20 true packets
  double est_total_pct = 0.0;   // estimated total volume / true total
  double sampled_packets = 0.0;
  double export_records = 0.0;
  double export_batches = 0.0;
  double export_transmissions = 0.0;
  double queue_rejects = 0.0;
};

struct FaultCell {
  double elephant_err_pct = 0.0;  // top-10 flows, |est - true| / true volume
  double evict_records = 0.0;
  double final_records = 0.0;
  double dropped_packets = 0.0;
  double failovers = 0.0;
};

// Error statistics for one finished measured run: walks the exact per-flow
// ground truth and compares against the collector's estimates.
struct ErrStats {
  double outside_bound = 0.0;
  double mean_rel_err_pct = 0.0;
  double est_total_pct = 0.0;
};

ErrStats error_stats(const std::vector<FlowTruth>& truth,
                     const obs::FlowCollector& collector, double p) {
  ErrStats out;
  double rel_sum = 0.0, rel_n = 0.0, est_total = 0.0, true_total = 0.0;
  for (const auto& t : truth) {
    const auto* totals = collector.find(t.header);
    const double est = totals == nullptr ? 0.0 : totals->estimated_packets;
    const double n = static_cast<double>(t.packets);
    const double bound =
        std::max(6.0 * std::sqrt(n * (1.0 - p) / p), 3.0 / p);
    if (std::abs(est - n) > bound) out.outside_bound += 1.0;
    if (t.packets >= 20) {
      rel_sum += std::abs(est - n) / n;
      rel_n += 1.0;
    }
    est_total += est;
    true_total += n;
  }
  out.mean_rel_err_pct = rel_n > 0 ? 100.0 * rel_sum / rel_n : 0.0;
  out.est_total_pct = true_total > 0 ? 100.0 * est_total / true_total : 0.0;
  return out;
}

// Aggregate error over the ten largest flows — the elephants whose counts
// the eviction flush exists to preserve.
double elephant_error_pct(std::vector<FlowTruth> truth,
                          const obs::FlowCollector& collector) {
  std::sort(truth.begin(), truth.end(),
            [](const FlowTruth& a, const FlowTruth& b) {
              return a.packets > b.packets;
            });
  if (truth.size() > 10) truth.resize(10);
  double err = 0.0, total = 0.0;
  for (const auto& t : truth) {
    const auto* totals = collector.find(t.header);
    const double est = totals == nullptr ? 0.0 : totals->estimated_packets;
    err += std::abs(est - static_cast<double>(t.packets));
    total += static_cast<double>(t.packets);
  }
  return total > 0 ? 100.0 * err / total : 0.0;
}

ScenarioParams measured_params(double sample_prob, double horizon,
                               std::uint64_t seed,
                               std::size_t cache = 1u << 20) {
  auto params = difane_params(2, CacheStrategy::kCoverSet, cache);
  params.measurement.enabled = true;
  params.measurement.sample_prob = sample_prob;
  params.measurement.export_interval = 0.02;
  params.measurement.export_horizon = horizon;
  params.measurement.seed = seed;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E12", /*default_seed=*/71);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header(
          "E12: monitoring fidelity — sampled flow export vs ground truth",
          "monitoring discussion (flow measurement from TCAM cache rules)",
          "per-flow error inside the binomial envelope, exact at p=1; "
          "eviction flush preserves evicted elephants; export piggyback "
          "suppresses quiet-authority false failovers");
    }

    const std::size_t policy_size = args.pick<std::size_t>(800, 300);
    const auto policy = classbench_like(policy_size, 67);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    const double duration = args.pick(1.0, 0.4);
    const std::size_t pool = args.pick<std::size_t>(2000, 800);
    const double rate = 4000.0;

    // ---------------------------------------------------------------------
    // Fidelity grid: sampling rate x heavy-tail mode. Every cell is a full
    // measured scenario against the same policy; cells are independent, so
    // they parallelize under --threads with byte-identical metrics.
    constexpr std::size_t kNumModes = std::size(kModes);
    constexpr std::size_t kNumRates = std::size(kRates);
    std::vector<FidelityCell> cells(kNumModes * kNumRates);
    run_cells(args.threads, cells.size(), [&](std::size_t cell) {
      const ModeRow& mode = kModes[cell / kNumRates];
      const double p = kRates[cell % kNumRates];
      auto params = measured_params(p, duration, rep.seed);
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      TrafficGenerator gen(policy,
                           heavy_tail_params(rep.seed, mode.alpha, rate,
                                             duration, pool, mode.mode));
      const auto flows = gen.generate();
      const auto& stats = scenario.run(flows);
      const auto err =
          error_stats(flow_ground_truth(flows), scenario.collector(), p);
      FidelityCell& out = cells[cell];
      out.outside_bound = err.outside_bound;
      out.mean_rel_err_pct = err.mean_rel_err_pct;
      out.est_total_pct = err.est_total_pct;
      out.sampled_packets = static_cast<double>(stats.telemetry_sampled_packets);
      out.export_records = static_cast<double>(stats.export_records);
      out.export_batches = static_cast<double>(stats.export_batches);
      out.export_transmissions =
          static_cast<double>(stats.export_transmissions);
      out.queue_rejects = static_cast<double>(stats.queue_rejects);
    });

    TextTable grid({"mode", "p", "outside bound", "mean err % (n>=20)",
                    "est/true %", "records", "batches", "transmissions"});
    for (std::size_t cell = 0; cell < cells.size(); ++cell) {
      const ModeRow& mode = kModes[cell / kNumRates];
      const double p = kRates[cell % kNumRates];
      const FidelityCell& c = cells[cell];
      const std::string suffix =
          std::string("_") + mode.name + tag("_p", p * 100.0);
      rep.set("flows_outside_bound" + suffix, c.outside_bound);
      rep.set("telemetry_mean_rel_err_pct" + suffix, c.mean_rel_err_pct);
      rep.set("telemetry_est_total_pct" + suffix, c.est_total_pct);
      rep.set("telemetry_sampled_packets" + suffix, c.sampled_packets);
      rep.set("export_records" + suffix, c.export_records);
      rep.set("export_batches" + suffix, c.export_batches);
      rep.set("export_transmissions" + suffix, c.export_transmissions);
      rep.set("queue_rejects" + suffix, c.queue_rejects);
      grid.add_row({mode.name, TextTable::num(p, 1),
                    TextTable::integer(static_cast<long long>(c.outside_bound)),
                    TextTable::num(c.mean_rel_err_pct, 2),
                    TextTable::num(c.est_total_pct, 2),
                    TextTable::integer(static_cast<long long>(c.export_records)),
                    TextTable::integer(static_cast<long long>(c.export_batches)),
                    TextTable::integer(
                        static_cast<long long>(c.export_transmissions))});
    }
    if (rep.verbose) std::printf("%s\n", grid.render().c_str());

    // ---------------------------------------------------------------------
    // Eviction flush under a fault plan: a 48-entry cache thrashes under the
    // heavy tail while authority 0 crashes mid-run (TCAM cleared, pending
    // counters lost) and restarts, all over a 10%-loss wire ridden by
    // reliable channels. p = 1, so any error is counts that died instead of
    // being exported — flush ON closes evicted records (kEvict), flush OFF
    // drop-counts them.
    FaultCell fault_cells[2];
    run_cells(args.threads, 2, [&](std::size_t i) {
      const bool flush = i == 0;
      auto params = measured_params(1.0, duration, rep.seed, /*cache=*/48);
      params.measurement.flush_on_evict = flush;
      params.reliable_ctrl = true;
      params.faults.seed = rep.seed;
      params.faults.msg_loss = 0.1;
      params.timings.heartbeat_interval = 0.02;
      params.timings.heartbeat_miss = 3;
      params.timings.heartbeat_horizon = duration + 1.0;
      AuthorityCrash crash;
      crash.authority_index = 0;
      crash.at = 0.5 * duration;
      crash.restart_at = 0.75 * duration;
      params.faults.crashes.push_back(crash);
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      TrafficGenerator gen(policy,
                           heavy_tail_params(rep.seed, 1.1, rate, duration,
                                             pool, TrafficMode::kPoissonZipf));
      const auto flows = gen.generate();
      const auto& stats = scenario.run(flows);
      FaultCell& out = fault_cells[i];
      out.elephant_err_pct =
          elephant_error_pct(flow_ground_truth(flows), scenario.collector());
      out.evict_records = static_cast<double>(stats.export_evict_records);
      out.final_records = static_cast<double>(stats.export_final_records);
      out.dropped_packets = static_cast<double>(stats.telemetry_dropped_packets);
      out.failovers = static_cast<double>(stats.failovers_detected);
    });

    TextTable fault({"flush-on-evict", "elephant err %", "evict records",
                     "dropped packets", "failovers"});
    for (std::size_t i = 0; i < 2; ++i) {
      const FaultCell& c = fault_cells[i];
      const std::string suffix = i == 0 ? "_flush_on" : "_flush_off";
      rep.set("elephant_err_pct" + suffix, c.elephant_err_pct);
      rep.set("export_evict_records" + suffix, c.evict_records);
      rep.set("export_final_records" + suffix, c.final_records);
      rep.set("telemetry_dropped_packets" + suffix, c.dropped_packets);
      rep.set("failovers_detected" + suffix, c.failovers);
      fault.add_row({i == 0 ? "on" : "off",
                     TextTable::num(c.elephant_err_pct, 3),
                     TextTable::integer(static_cast<long long>(c.evict_records)),
                     TextTable::integer(
                         static_cast<long long>(c.dropped_packets)),
                     TextTable::integer(static_cast<long long>(c.failovers))});
    }
    if (rep.verbose) std::printf("%s\n", fault.render().c_str());

    // ---------------------------------------------------------------------
    // Liveness piggyback: after the traffic stops, the only evidence an
    // authority is alive crosses a 60%-loss wire. Bare heartbeats misfire;
    // with measurement on, periodic (keepalive) export batches carry
    // heartbeat sequence numbers through the reliable channel and the
    // monitor keeps the quiet authorities alive.
    double spurious[2] = {0.0, 0.0};
    double piggyback_fresh = 0.0, keepalives = 0.0;
    run_cells(args.threads, 2, [&](std::size_t i) {
      const bool measured = i == 1;
      auto params = measured_params(1.0, duration + 1.0, rep.seed);
      params.measurement.enabled = measured;
      params.measurement.export_interval = 0.05;
      params.reliable_ctrl = true;
      params.faults.seed = rep.seed;
      params.faults.msg_loss = 0.6;
      params.timings.heartbeat_interval = 0.05;
      params.timings.heartbeat_miss = 3;
      params.timings.heartbeat_horizon = duration + 1.0;
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      const auto flows = zipf_traffic(policy, 2000.0, 0.5 * duration, 300,
                                      0.9, rep.seed);
      const auto& stats = scenario.run(flows);
      spurious[i] = static_cast<double>(stats.spurious_failovers);
      if (measured) {
        piggyback_fresh = static_cast<double>(stats.export_piggyback_fresh);
        keepalives = static_cast<double>(stats.export_keepalives);
      }
    });
    rep.set("spurious_failovers_meas_off", spurious[0]);
    rep.set("spurious_failovers_meas_on", spurious[1]);
    rep.set("export_piggyback_fresh", piggyback_fresh);
    rep.set("export_keepalives", keepalives);
    if (rep.verbose) {
      TextTable quiet({"measurement", "spurious failovers", "piggyback fresh",
                       "keepalives"});
      quiet.add_row({"off", TextTable::integer(
                                static_cast<long long>(spurious[0])),
                     "-", "-"});
      quiet.add_row({"on",
                     TextTable::integer(static_cast<long long>(spurious[1])),
                     TextTable::integer(static_cast<long long>(piggyback_fresh)),
                     TextTable::integer(static_cast<long long>(keepalives))});
      std::printf("%s\n", quiet.render().c_str());
    }

    // ---------------------------------------------------------------------
    // Replay: the export stream is a pure function of (seed, params). Run
    // the p = 0.5 zipf cell twice; the collector stream must dump to the
    // same bytes (the JsonCollectorSink sees the identical batch sequence).
    const auto stream_once = [&](obs::CollectorSink* sink) {
      auto params = measured_params(0.5, duration, rep.seed);
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      if (sink != nullptr) scenario.set_collector_sink(sink);
      TrafficGenerator gen(policy,
                           heavy_tail_params(rep.seed, 1.1, rate, duration,
                                             pool, TrafficMode::kPoissonZipf));
      scenario.run(gen.generate());
      return scenario.collector().stream_dump();
    };
    obs::JsonCollectorSink json_sink;
    const std::string first = stream_once(&json_sink);
    const std::string second = stream_once(nullptr);
    rep.set("replay_identical", first == second ? 1.0 : 0.0);
    rep.set("replay_stream_bytes", static_cast<double>(first.size()));
    if (rep.verbose) {
      std::printf("replay: %s (%zu-byte export stream, %zu sink batches)\n\n",
                  first == second ? "byte-identical" : "DIVERGED",
                  first.size(), json_sink.json().as_array().size());
    }
  });
}
