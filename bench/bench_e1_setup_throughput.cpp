// E1 — Flow-setup throughput: DIFANE (one authority switch) vs a NOX-style
// reactive controller, across offered flow-arrival rates. Reproduces the
// paper's headline throughput figure: NOX saturates at controller capacity
// (~50K flows/s); DIFANE's data-plane miss path sustains ~800K flows/s per
// authority switch.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

double run_mode(const RuleTable& policy, Mode mode, double rate, double duration) {
  const auto flows = setup_storm(policy, rate, duration, /*seed=*/41);
  ScenarioParams params = mode == Mode::kDifane
                              ? difane_params(1, CacheStrategy::kMicroflow)
                              : nox_params();
  Scenario scenario(policy, params);
  const auto& stats = scenario.run(flows);
  // Rate over the actual completion span (not the arrival window): a
  // saturated system keeps draining its queue after arrivals stop, and that
  // drain must not inflate the measured throughput.
  return stats.setup_completions.rate();
}

}  // namespace

int main() {
  print_header(
      "E1: flow-setup throughput vs offered rate",
      "DIFANE vs NOX throughput figure (SIGCOMM'10 evaluation)",
      "NOX flat-lines ~50K/s; DIFANE (k=1) tracks offered load to ~800K/s");

  const auto policy = classbench_like(1000, 7);
  TextTable table({"offered (flows/s)", "DIFANE (flows/s)", "NOX (flows/s)",
                   "DIFANE/NOX"});
  const double rates[] = {1e4, 2e4, 5e4, 1e5, 2e5, 4e5, 8e5, 1.2e6, 1.6e6};
  for (const double rate : rates) {
    // Shorter windows at higher rates keep event counts comparable.
    const double duration = std::min(0.5, 40000.0 / rate);
    const double difane_rate = run_mode(policy, Mode::kDifane, rate, duration);
    const double nox_rate = run_mode(policy, Mode::kNox, rate, duration);
    table.add_row({TextTable::num(rate, 0), TextTable::num(difane_rate, 0),
                   TextTable::num(nox_rate, 0),
                   TextTable::num(nox_rate > 0 ? difane_rate / nox_rate : 0.0, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
