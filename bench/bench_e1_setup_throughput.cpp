// E1 — Flow-setup throughput: DIFANE (one authority switch) vs a NOX-style
// reactive controller, across offered flow-arrival rates. Reproduces the
// paper's headline throughput figure: NOX saturates at controller capacity
// (~50K flows/s); DIFANE's data-plane miss path sustains ~800K flows/s per
// authority switch.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

struct ModeResult {
  double rate = 0.0;    // deterministic setup-completion rate
  double wall_s = 0.0;  // host wall time of the run() call
};

ModeResult run_mode(const RuleTable& policy, Mode mode, double rate,
                    double duration, std::uint64_t seed, std::size_t burst) {
  const auto flows = setup_storm(policy, rate, duration, seed);
  ScenarioParams params = mode == Mode::kDifane
                              ? difane_params(1, CacheStrategy::kMicroflow)
                              : nox_params();
  params.burst = burst;
  Scenario scenario(policy, params);
  const auto t0 = std::chrono::steady_clock::now();
  const auto& stats = scenario.run(flows);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Rate over the actual completion span (not the arrival window): a
  // saturated system keeps draining its queue after arrivals stop, and that
  // drain must not inflate the measured throughput.
  return {stats.setup_completions.rate(), wall_s};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E1", /*default_seed=*/41);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header(
          "E1: flow-setup throughput vs offered rate",
          "DIFANE vs NOX throughput figure (SIGCOMM'10 evaluation)",
          "NOX flat-lines ~50K/s; DIFANE (k=1) tracks offered load to ~800K/s");
    }

    const std::size_t policy_size = args.pick<std::size_t>(1000, 300);
    const auto policy = classbench_like(policy_size, 7);
    rep.report.params["policy_rules"] = obs::Json(policy_size);

    TextTable table({"offered (flows/s)", "DIFANE (flows/s)", "NOX (flows/s)",
                     "DIFANE/NOX"});
    const std::vector<double> rates =
        args.quick ? std::vector<double>{1e4, 1e5, 8e5, 1.6e6}
                   : std::vector<double>{1e4, 2e4, 5e4, 1e5, 2e5, 4e5,
                                         8e5, 1.2e6, 1.6e6};
    // Each (rate, mode) pair is an independent simulation cell; run them on
    // the worker pool and emit metrics/rows in serial order afterwards so the
    // report is identical at any --threads value.
    std::vector<double> difane_rates(rates.size()), nox_rates(rates.size());
    run_cells(args.threads, rates.size() * 2, [&](std::size_t cell) {
      const std::size_t i = cell / 2;
      const double rate = rates[i];
      // Shorter windows at higher rates keep event counts comparable.
      const double duration =
          std::min(args.pick(0.5, 0.2), args.pick(40000.0, 10000.0) / rate);
      if (cell % 2 == 0) {
        difane_rates[i] =
            run_mode(policy, Mode::kDifane, rate, duration, rep.seed,
                     static_cast<std::size_t>(args.burst))
                .rate;
      } else {
        nox_rates[i] = run_mode(policy, Mode::kNox, rate, duration, rep.seed,
                                static_cast<std::size_t>(args.burst))
                           .rate;
      }
    });
    double difane_peak = 0.0, nox_peak = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const double rate = rates[i];
      const double difane_rate = difane_rates[i];
      const double nox_rate = nox_rates[i];
      difane_peak = std::max(difane_peak, difane_rate);
      nox_peak = std::max(nox_peak, nox_rate);
      rep.set(tag("difane_flows_per_s_at", rate), difane_rate);
      rep.set(tag("nox_flows_per_s_at", rate), nox_rate);
      table.add_row({TextTable::num(rate, 0), TextTable::num(difane_rate, 0),
                     TextTable::num(nox_rate, 0),
                     TextTable::num(nox_rate > 0 ? difane_rate / nox_rate : 0.0, 1)});
    }
    rep.set("difane_peak_flows_per_s", difane_peak);
    rep.set("nox_peak_flows_per_s", nox_peak);
    rep.set("peak_speedup", nox_peak > 0 ? difane_peak / nox_peak : 0.0);
    if (rep.verbose) std::printf("%s\n", table.render().c_str());

    // Burst-mode differential row: the highest offered rate re-run scalar vs
    // burst=32. The completion rate is deterministic and burst-invariant
    // (burst32_flows_per_s must equal the scalar value — the equivalence
    // contract); the wall metrics show the dispatch/locality amortization.
    {
      const double rate = rates.back();
      const double duration =
          std::min(args.pick(0.5, 0.2), args.pick(40000.0, 10000.0) / rate);
      const auto scalar =
          run_mode(policy, Mode::kDifane, rate, duration, rep.seed, 0);
      const auto burst32 =
          run_mode(policy, Mode::kDifane, rate, duration, rep.seed, 32);
      rep.set("burst32_flows_per_s", burst32.rate);
      rep.set("burst32_matches_scalar",
              burst32.rate == scalar.rate ? 1.0 : 0.0);
      rep.set("burst_scalar_wall_s", scalar.wall_s);
      rep.set("burst32_wall_s", burst32.wall_s);
      if (rep.verbose) {
        std::printf("burst differential @ %.0f flows/s: scalar %.0f flows/s "
                    "(%.3fs wall), burst=32 %.0f flows/s (%.3fs wall)%s\n",
                    rate, scalar.rate, scalar.wall_s, burst32.rate,
                    burst32.wall_s,
                    burst32.rate == scalar.rate ? "" : "  MISMATCH");
      }
    }
  });
}
