// E2 — Throughput scaling with the number of authority switches. The paper
// shows DIFANE's flow-setup capacity growing near-linearly as authority
// switches are added (the partitions spread the miss load), while a central
// controller cannot scale this way.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main() {
  print_header(
      "E2: peak setup throughput vs number of authority switches",
      "DIFANE multi-authority scaling figure",
      "DIFANE peak grows ~linearly in k; NOX constant at controller capacity");

  const auto policy = classbench_like(2000, 11);
  // Offered load comfortably above k * 800K/s for every k tested.
  const double offered = 4.0e6;
  const double duration = 0.02;
  const auto flows = setup_storm(policy, offered, duration, 13, /*ingress=*/8);

  TextTable table({"authority switches", "DIFANE peak (flows/s)", "per-switch",
                   "scaling vs k=1", "NOX (flows/s)"});
  double base = 0.0;
  // NOX reference once (independent of k).
  Scenario nox(policy, nox_params());
  const double nox_rate = nox.run(flows).setup_completions.rate();

  for (const std::uint32_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    auto params = difane_params(k, CacheStrategy::kMicroflow);
    params.edge_switches = 8;
    Scenario scenario(policy, params);
    const auto& stats = scenario.run(flows);
    const double rate = stats.setup_completions.rate();
    if (k == 1) base = rate;
    table.add_row({TextTable::integer(k), TextTable::num(rate, 0),
                   TextTable::num(rate / k, 0),
                   TextTable::num(base > 0 ? rate / base : 0.0, 2),
                   TextTable::num(nox_rate, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
