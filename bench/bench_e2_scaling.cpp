// E2 — Throughput scaling with the number of authority switches. The paper
// shows DIFANE's flow-setup capacity growing near-linearly as authority
// switches are added (the partitions spread the miss load), while a central
// controller cannot scale this way.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E2", /*default_seed=*/13);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header(
          "E2: peak setup throughput vs number of authority switches",
          "DIFANE multi-authority scaling figure",
          "DIFANE peak grows ~linearly in k; NOX constant at controller capacity");
    }

    const std::size_t policy_size = args.pick<std::size_t>(2000, 500);
    const auto policy = classbench_like(policy_size, 11);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    // Offered load comfortably above k * 800K/s for every k tested.
    const double offered = 4.0e6;
    const double duration = args.pick(0.02, 0.008);
    const auto flows = setup_storm(policy, offered, duration, rep.seed, /*ingress=*/8);

    TextTable table({"authority switches", "DIFANE peak (flows/s)", "per-switch",
                     "scaling vs k=1", "NOX (flows/s)"});
    const std::vector<std::uint32_t> ks =
        args.quick ? std::vector<std::uint32_t>{1u, 2u, 4u}
                   : std::vector<std::uint32_t>{1u, 2u, 3u, 4u, 6u, 8u};
    // Independent cells: the NOX reference (cell 0, independent of k) plus
    // one DIFANE run per k. Scaling ratios need the k=1 result, so they are
    // computed after the parallel sweep, walking results in serial order.
    std::vector<double> k_rates(ks.size());
    double nox_rate = 0.0;
    run_cells(args.threads, ks.size() + 1, [&](std::size_t cell) {
      if (cell == 0) {
        auto params = nox_params();
        apply_exec_args(params, args);
        Scenario nox(policy, params);
        nox_rate = nox.run(flows).setup_completions.rate();
        return;
      }
      const std::uint32_t k = ks[cell - 1];
      auto params = difane_params(k, CacheStrategy::kMicroflow);
      params.edge_switches = 8;
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      k_rates[cell - 1] = scenario.run(flows).setup_completions.rate();
    });
    rep.set("nox_flows_per_s", nox_rate);
    double base = 0.0;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const std::uint32_t k = ks[i];
      const double rate = k_rates[i];
      if (k == 1) base = rate;
      rep.set(tag("difane_flows_per_s_k", k), rate);
      rep.set(tag("scaling_vs_k1_k", k), base > 0 ? rate / base : 0.0);
      table.add_row({TextTable::integer(k), TextTable::num(rate, 0),
                     TextTable::num(rate / k, 0),
                     TextTable::num(base > 0 ? rate / base : 0.0, 2),
                     TextTable::num(nox_rate, 0)});
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());

    // Burst-mode differential row: the largest k re-run scalar vs burst=32.
    // The completion rate must be identical (the burst equivalence
    // contract); the `_wall_` pair shows the per-packet amortization.
    {
      auto params = difane_params(ks.back(), CacheStrategy::kMicroflow);
      params.edge_switches = 8;
      params.burst = 0;
      const auto t0 = std::chrono::steady_clock::now();
      Scenario scalar(policy, params);
      const double scalar_rate = scalar.run(flows).setup_completions.rate();
      const double scalar_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      params.burst = 32;
      const auto t1 = std::chrono::steady_clock::now();
      Scenario burst(policy, params);
      const double burst_rate = burst.run(flows).setup_completions.rate();
      const double burst_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
              .count();
      rep.set("burst32_flows_per_s", burst_rate);
      rep.set("burst32_matches_scalar",
              burst_rate == scalar_rate ? 1.0 : 0.0);
      rep.set("burst_scalar_wall_s", scalar_wall);
      rep.set("burst32_wall_s", burst_wall);
      if (rep.verbose) {
        std::printf("burst differential (k=%u): scalar %.0f flows/s (%.3fs), "
                    "burst=32 %.0f flows/s (%.3fs)%s\n",
                    ks.back(), scalar_rate, scalar_wall, burst_rate, burst_wall,
                    burst_rate == scalar_rate ? "" : "  MISMATCH");
      }
    }

    // Sharded-engine demonstration row: the largest k re-run with the
    // in-scenario parallel engine (ScenarioParams::threads = --threads).
    // Wall-clock only — the simulated counters legitimately differ from the
    // serial engine's (window-boundary clamping), so only `_wall_` metrics
    // (exempt from the determinism gate) are exported from this row.
    if (args.threads > 1) {
      auto params = difane_params(ks.back(), CacheStrategy::kMicroflow);
      params.edge_switches = 8;
      const auto t0 = std::chrono::steady_clock::now();
      Scenario serial(policy, params);
      serial.run(flows);
      const double serial_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      params.threads = static_cast<std::size_t>(args.threads);
      const auto t1 = std::chrono::steady_clock::now();
      Scenario sharded(policy, params);
      sharded.run(flows);
      const double sharded_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
              .count();
      rep.set("engine_wall_serial_s", serial_wall);
      rep.set("engine_wall_sharded_s", sharded_wall);
      rep.set("engine_wall_speedup",
              sharded_wall > 0 ? serial_wall / sharded_wall : 0.0);
      if (rep.verbose) {
        std::printf(
            "sharded engine (k=%u, threads=%d): serial %.3fs, sharded %.3fs, "
            "speedup %.2fx\n",
            ks.back(), args.threads, serial_wall, sharded_wall,
            sharded_wall > 0 ? serial_wall / sharded_wall : 0.0);
      }
    }
  });
}
