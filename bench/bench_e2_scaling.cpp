// E2 — Throughput scaling with the number of authority switches. The paper
// shows DIFANE's flow-setup capacity growing near-linearly as authority
// switches are added (the partitions spread the miss load), while a central
// controller cannot scale this way.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E2", /*default_seed=*/13);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header(
          "E2: peak setup throughput vs number of authority switches",
          "DIFANE multi-authority scaling figure",
          "DIFANE peak grows ~linearly in k; NOX constant at controller capacity");
    }

    const std::size_t policy_size = args.pick<std::size_t>(2000, 500);
    const auto policy = classbench_like(policy_size, 11);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    // Offered load comfortably above k * 800K/s for every k tested.
    const double offered = 4.0e6;
    const double duration = args.pick(0.02, 0.008);
    const auto flows = setup_storm(policy, offered, duration, rep.seed, /*ingress=*/8);

    TextTable table({"authority switches", "DIFANE peak (flows/s)", "per-switch",
                     "scaling vs k=1", "NOX (flows/s)"});
    double base = 0.0;
    // NOX reference once (independent of k).
    Scenario nox(policy, nox_params());
    const double nox_rate = nox.run(flows).setup_completions.rate();
    rep.set("nox_flows_per_s", nox_rate);

    const std::vector<std::uint32_t> ks =
        args.quick ? std::vector<std::uint32_t>{1u, 2u, 4u}
                   : std::vector<std::uint32_t>{1u, 2u, 3u, 4u, 6u, 8u};
    for (const std::uint32_t k : ks) {
      auto params = difane_params(k, CacheStrategy::kMicroflow);
      params.edge_switches = 8;
      Scenario scenario(policy, params);
      const auto& stats = scenario.run(flows);
      const double rate = stats.setup_completions.rate();
      if (k == 1) base = rate;
      rep.set(tag("difane_flows_per_s_k", k), rate);
      rep.set(tag("scaling_vs_k1_k", k), base > 0 ? rate / base : 0.0);
      table.add_row({TextTable::integer(k), TextTable::num(rate, 0),
                     TextTable::num(rate / k, 0),
                     TextTable::num(base > 0 ? rate / base : 0.0, 2),
                     TextTable::num(nox_rate, 0)});
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());
  });
}
