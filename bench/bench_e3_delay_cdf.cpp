// E3 — First-packet delay CDF: DIFANE vs NOX. The paper reports ~0.4 ms
// first-packet RTT through DIFANE's data-plane redirection vs ~10 ms through
// the NOX controller. Emits the CDF series for both systems plus a
// percentile summary, and the delay of later (cached) packets for reference.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

const ScenarioStats& run_and_keep(Scenario& scenario, const RuleTable& policy,
                                  std::uint64_t seed, double duration) {
  // Light load (far from saturation) so delays reflect path, not queueing;
  // several packets per flow so later-packet delays exist.
  TrafficParams tp;
  tp.seed = seed;
  tp.flow_pool = 1u << 20;
  tp.zipf_s = 0.0;
  tp.arrival_rate = 2000.0;
  tp.duration = duration;
  tp.mean_packets = 3.0;
  tp.packet_gap = 0.05;  // later packets arrive after installs land
  tp.ingress_count = 4;
  TrafficGenerator gen(policy, tp);
  return scenario.run(gen.generate());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E3", /*default_seed=*/19);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E3: first-packet delay distribution",
                   "DIFANE vs NOX delay CDF figure",
                   "DIFANE median ~0.4ms (data-plane detour); NOX median ~10ms "
                   "(controller RTT + service)");
    }

    const std::size_t policy_size = args.pick<std::size_t>(1000, 300);
    const double duration = args.pick(1.0, 0.3);
    const auto policy = classbench_like(policy_size, 17);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    auto dparams = difane_params(2, CacheStrategy::kDependentSet);
    apply_exec_args(dparams, args);
    auto nparams = nox_params();
    apply_exec_args(nparams, args);
    Scenario difane(policy, dparams);
    Scenario nox(policy, nparams);
    const auto& ds = run_and_keep(difane, policy, rep.seed, duration);
    const auto& ns = run_and_keep(nox, policy, rep.seed, duration);

    TextTable pct({"percentile", "DIFANE first (ms)", "NOX first (ms)",
                   "DIFANE later (ms)", "NOX later (ms)"});
    for (const double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
      pct.add_row({TextTable::num(p * 100, 0),
                   TextTable::num(ds.tracer.first_packet_delay().percentile(p) * 1e3, 3),
                   TextTable::num(ns.tracer.first_packet_delay().percentile(p) * 1e3, 3),
                   TextTable::num(ds.tracer.later_packet_delay().percentile(p) * 1e3, 3),
                   TextTable::num(ns.tracer.later_packet_delay().percentile(p) * 1e3, 3)});
    }
    if (rep.verbose) std::printf("%s\n", pct.render().c_str());

    // Headline metrics ride the flat snapshot (the consolidated stats API).
    const auto difane_snap = ds.snapshot("E3");
    const auto nox_snap = ns.snapshot("E3");
    for (const auto& [name, value] : difane_snap.metrics) {
      rep.set("difane_" + name, value);
    }
    for (const auto& [name, value] : nox_snap.metrics) {
      rep.set("nox_" + name, value);
    }
    const double d50 = ds.tracer.first_packet_delay().percentile(0.5);
    const double n50 = ns.tracer.first_packet_delay().percentile(0.5);
    rep.set("delay_separation_x", d50 > 0 ? n50 / d50 : 0.0);

    if (rep.verbose) {
      std::printf("CDF series (first-packet delay, ms -> cumulative fraction)\n");
      TextTable cdf({"system", "delay (ms)", "F(x)"});
      for (const auto& [value, frac] : ds.tracer.first_packet_delay().cdf_points(10)) {
        cdf.add_row({"DIFANE", TextTable::num(value * 1e3, 3), TextTable::num(frac, 2)});
      }
      for (const auto& [value, frac] : ns.tracer.first_packet_delay().cdf_points(10)) {
        cdf.add_row({"NOX", TextTable::num(value * 1e3, 3), TextTable::num(frac, 2)});
      }
      std::printf("%s\n", cdf.render().c_str());
      std::printf("summary: DIFANE median %.3f ms vs NOX median %.3f ms (%.0fx)\n",
                  d50 * 1e3, n50 * 1e3, d50 > 0 ? n50 / d50 : 0.0);
    }
  });
}
