// E4 — TCAM entries per authority switch as the number of authority
// switches grows. The paper's partitioning evaluation: rules per switch
// should fall ~1/k, with a modest duplication overhead from rules that span
// cuts.
#include "common.hpp"

#include "partition/partitioner.hpp"

using namespace difane;
using namespace difane::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E4", /*default_seed=*/23);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E4: TCAM entries per authority switch vs #switches",
                   "DIFANE partitioning figure (rules per authority switch)",
                   "log-log slope ~-1 with small duplication overhead (<2x total)");
    }

    const std::vector<std::size_t> policy_sizes =
        args.quick ? std::vector<std::size_t>{1000u}
                   : std::vector<std::size_t>{1000u, 10000u, 50000u};
    for (const std::size_t policy_size : policy_sizes) {
      const auto policy = classbench_like(policy_size, rep.seed);
      if (rep.verbose) {
        std::printf("policy: %zu rules (classbench-like)\n", policy.size());
      }
      TextTable table({"k", "partitions", "max rules/switch", "avg rules/switch",
                       "total rules", "duplication", "ideal (n/k)"});
      for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        // Below ~100 rules per partition, wildcard-heavy ACLs duplicate faster
        // than they divide; skip regimes no deployment would choose.
        if (k > 1 && policy.size() / k < 100) break;
        PartitionerParams params;
        // Capacity tracks the per-switch budget the paper assumes: the policy
        // divided over k switches with headroom.
        params.capacity = std::max<std::size_t>(16, policy.size() / k);
        const auto plan = Partitioner(params).build(policy, k);
        const auto loads = plan.rules_per_authority();
        std::size_t max_load = 0, total = 0;
        for (const auto load : loads) {
          max_load = std::max(max_load, load);
          total += load;
        }
        const std::string suffix = tag("k", k) + tag("_n", static_cast<double>(policy_size));
        rep.set("max_rules_per_switch_" + suffix, static_cast<double>(max_load));
        rep.set("total_rules_" + suffix, static_cast<double>(total));
        rep.set("duplication_" + suffix, plan.duplication_factor());
        table.add_row({TextTable::integer(k),
                       TextTable::integer(static_cast<long long>(plan.partitions().size())),
                       TextTable::integer(static_cast<long long>(max_load)),
                       TextTable::num(static_cast<double>(total) / k, 1),
                       TextTable::integer(static_cast<long long>(total)),
                       TextTable::num(plan.duplication_factor(), 2),
                       TextTable::num(static_cast<double>(policy.size()) / k, 1)});
      }
      if (rep.verbose) std::printf("%s\n", table.render().c_str());
    }
  });
}
