// E5 — Partitioning-quality ablation. DESIGN.md calls out the cut-strategy
// choice: the paper's cost-driven cut (minimize duplication + imbalance) vs
// a fixed-dimension cut vs a random separating bit, across policies with
// different overlap structure. Also sweeps the per-partition capacity.
#include "common.hpp"

#include "flowspace/minimize.hpp"
#include "partition/partitioner.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

const char* strategy_name(CutStrategy strategy) {
  switch (strategy) {
    case CutStrategy::kBestBit: return "best-bit";
    case CutStrategy::kIpBitsOnly: return "ip-bits-only";
    case CutStrategy::kRandomBit: return "random-bit";
  }
  return "?";
}

}  // namespace

int main() {
  print_header("E5: rule duplication vs cut strategy and policy structure",
               "partitioning-algorithm design discussion (cost function ablation)",
               "best-bit <= ip-only <= random duplication; overlap-heavy "
               "policies duplicate more");

  struct PolicySpec {
    const char* name;
    RuleTable policy;
  };
  std::vector<PolicySpec> policies;
  policies.push_back({"classbench (deep chains)", classbench_like(4000, 29)});
  policies.push_back({"campus (disjoint pairs)", campus_like(4000, 29)});

  for (const auto& spec : policies) {
    std::printf("policy: %s, %zu rules\n", spec.name, spec.policy.size());
    TextTable table({"strategy", "capacity", "partitions", "total rules",
                     "duplication", "max/avg balance"});
    for (const auto strategy :
         {CutStrategy::kBestBit, CutStrategy::kIpBitsOnly, CutStrategy::kRandomBit}) {
      for (const std::size_t capacity : {1000u, 250u}) {
        PartitionerParams params;
        params.capacity = capacity;
        params.strategy = strategy;
        params.seed = 3;
        const auto plan = Partitioner(params).build(spec.policy, 8);
        const auto loads = plan.rules_per_authority();
        std::size_t max_load = 0, total = 0;
        for (const auto load : loads) {
          max_load = std::max(max_load, load);
          total += load;
        }
        const double avg = static_cast<double>(total) / static_cast<double>(loads.size());
        table.add_row(
            {strategy_name(strategy), TextTable::integer(static_cast<long long>(capacity)),
             TextTable::integer(static_cast<long long>(plan.partitions().size())),
             TextTable::integer(static_cast<long long>(total)),
             TextTable::num(plan.duplication_factor(), 2),
             TextTable::num(avg > 0 ? static_cast<double>(max_load) / avg : 0.0, 2)});
      }
    }
    std::printf("%s\n", table.render().c_str());

    // Compression baseline: TCAM-Razor-style minimization before
    // partitioning. Compression shrinks the table (at the cost of per-rule
    // counters — which is why DIFANE splices instead), and composes with
    // partitioning.
    MinimizeStats mstats;
    const auto minimized = minimize(spec.policy, &mstats);
    PartitionerParams params;
    params.capacity = 250;
    const auto plan = Partitioner(params).build(minimized, 8);
    std::printf("minimization pre-pass: %zu -> %zu rules (%zu shadowed removed, "
                "%zu merges); partitioned total %zu (duplication %.2fx)\n\n",
                mstats.before, mstats.after, mstats.shadowed_removed, mstats.merges,
                plan.total_rules(), plan.duplication_factor());
  }
  return 0;
}
