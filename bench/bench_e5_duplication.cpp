// E5 — Partitioning-quality ablation. DESIGN.md calls out the cut-strategy
// choice: the paper's cost-driven cut (minimize duplication + imbalance) vs
// a fixed-dimension cut vs a random separating bit, across policies with
// different overlap structure. Also sweeps the per-partition capacity.
#include "common.hpp"

#include "flowspace/minimize.hpp"
#include "partition/partitioner.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

const char* strategy_name(CutStrategy strategy) {
  switch (strategy) {
    case CutStrategy::kBestBit: return "best-bit";
    case CutStrategy::kIpBitsOnly: return "ip-bits-only";
    case CutStrategy::kRandomBit: return "random-bit";
  }
  return "?";
}

const char* strategy_slug(CutStrategy strategy) {
  switch (strategy) {
    case CutStrategy::kBestBit: return "best_bit";
    case CutStrategy::kIpBitsOnly: return "ip_only";
    case CutStrategy::kRandomBit: return "random_bit";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E5", /*default_seed=*/29);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E5: rule duplication vs cut strategy and policy structure",
                   "partitioning-algorithm design discussion (cost function ablation)",
                   "best-bit <= ip-only <= random duplication; overlap-heavy "
                   "policies duplicate more");
    }

    const std::size_t policy_size = args.pick<std::size_t>(4000, 1000);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    struct PolicySpec {
      const char* name;
      const char* slug;
      RuleTable policy;
    };
    std::vector<PolicySpec> policies;
    policies.push_back({"classbench (deep chains)", "classbench",
                        classbench_like(policy_size, rep.seed)});
    policies.push_back({"campus (disjoint pairs)", "campus",
                        campus_like(policy_size, rep.seed)});

    for (const auto& spec : policies) {
      if (rep.verbose) {
        std::printf("policy: %s, %zu rules\n", spec.name, spec.policy.size());
      }
      TextTable table({"strategy", "capacity", "partitions", "total rules",
                       "duplication", "max/avg balance"});
      for (const auto strategy :
           {CutStrategy::kBestBit, CutStrategy::kIpBitsOnly, CutStrategy::kRandomBit}) {
        for (const std::size_t capacity : {1000u, 250u}) {
          PartitionerParams params;
          params.capacity = capacity;
          params.strategy = strategy;
          params.seed = 3;
          const auto plan = Partitioner(params).build(spec.policy, 8);
          const auto loads = plan.rules_per_authority();
          std::size_t max_load = 0, total = 0;
          for (const auto load : loads) {
            max_load = std::max(max_load, load);
            total += load;
          }
          const double avg = static_cast<double>(total) / static_cast<double>(loads.size());
          const std::string suffix = std::string("_") + strategy_slug(strategy) +
                                     tag("_cap", static_cast<double>(capacity)) +
                                     "_" + spec.slug;
          rep.set("duplication" + suffix, plan.duplication_factor());
          rep.set("balance" + suffix,
                  avg > 0 ? static_cast<double>(max_load) / avg : 0.0);
          table.add_row(
              {strategy_name(strategy), TextTable::integer(static_cast<long long>(capacity)),
               TextTable::integer(static_cast<long long>(plan.partitions().size())),
               TextTable::integer(static_cast<long long>(total)),
               TextTable::num(plan.duplication_factor(), 2),
               TextTable::num(avg > 0 ? static_cast<double>(max_load) / avg : 0.0, 2)});
        }
      }
      if (rep.verbose) std::printf("%s\n", table.render().c_str());

      // Compression baseline: TCAM-Razor-style minimization before
      // partitioning. Compression shrinks the table (at the cost of per-rule
      // counters — which is why DIFANE splices instead), and composes with
      // partitioning.
      MinimizeStats mstats;
      const auto minimized = minimize(spec.policy, &mstats);
      PartitionerParams params;
      params.capacity = 250;
      const auto plan = Partitioner(params).build(minimized, 8);
      rep.set(std::string("minimized_rules_") + spec.slug,
              static_cast<double>(mstats.after));
      rep.set(std::string("minimized_duplication_") + spec.slug,
              plan.duplication_factor());
      if (rep.verbose) {
        std::printf("minimization pre-pass: %zu -> %zu rules (%zu shadowed removed, "
                    "%zu merges); partitioned total %zu (duplication %.2fx)\n\n",
                    mstats.before, mstats.after, mstats.shadowed_removed, mstats.merges,
                    plan.total_rules(), plan.duplication_factor());
      }
    }
  });
}
