// E6 — Cache effectiveness: ingress cache-hit fraction vs cache size, for
// DIFANE's wildcard caching (dependent-set and cover-set splicing) against
// the Ethane/NOX-era microflow (exact-match) cache, under Zipf traffic.
// This is the premise experiment: wildcard rules let a small TCAM absorb
// most traffic; microflow entries cannot share across flows.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

const char* strategy_slug(CacheStrategy strategy) {
  switch (strategy) {
    case CacheStrategy::kMicroflow: return "microflow";
    case CacheStrategy::kDependentSet: return "dependent_set";
    case CacheStrategy::kCoverSet: return "cover_set";
    case CacheStrategy::kNone: return "none";
  }
  return "unknown";
}

// One heavy-tail workload row, measured with the elephant policy OFF and ON.
struct HeavyRow {
  const char* slug;
  double alpha;
  TrafficMode mode;
};

// What a heavy-tail cell measures: cache effectiveness (hit rate), the TCAM
// footprint left behind (live entries + total install writes), and the
// policy's own accounting.
struct HeavyCell {
  double hit_pct = 0.0;
  double tcam_final = 0.0;
  double installs = 0.0;
  double bypassed = 0.0;
  double promotions = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E6", /*default_seed=*/37);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E6: ingress cache-hit rate vs cache size",
                   "wildcard-caching motivation (and the CacheFlow-style splice "
                   "comparison)",
                   "wildcard strategies reach high hit rates with small caches; "
                   "microflow needs far more entries");
    }

    // Many distinct microflows per policy rule (100K-flow pool over a 1K-rule
    // policy): a cached wildcard rule aggregates every flow it covers, while a
    // microflow entry serves only exact repeats. This flow-to-rule ratio is
    // what makes wildcard caching the winning design in the paper.
    const std::size_t policy_size = args.pick<std::size_t>(1000, 400);
    const auto policy = classbench_like(policy_size, 31);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    const double duration = args.pick(1.5, 0.4);
    const std::size_t pool = args.pick<std::size_t>(100000, 30000);

    TextTable table({"cache entries", "microflow hit%", "dependent-set hit%",
                     "cover-set hit%"});
    const std::vector<std::size_t> caches =
        args.quick ? std::vector<std::size_t>{50u, 200u, 800u}
                   : std::vector<std::size_t>{25u, 50u, 100u, 200u, 400u, 800u, 1600u};
    const CacheStrategy strategies[] = {CacheStrategy::kMicroflow,
                                        CacheStrategy::kDependentSet,
                                        CacheStrategy::kCoverSet};
    constexpr std::size_t kStrategies = 3;
    // Each (cache size, strategy) pair is an independent cell; run them on
    // the worker pool and emit metrics/rows serially afterwards.
    std::vector<double> hit_pct(caches.size() * kStrategies);
    run_cells(args.threads, hit_pct.size(), [&](std::size_t cell) {
      const std::size_t cache = caches[cell / kStrategies];
      const CacheStrategy strategy = strategies[cell % kStrategies];
      auto params = difane_params(2, strategy, cache);
      // An authority that knows the ingress budget can afford bigger splice
      // groups on bigger caches.
      params.max_splice_cost = std::max<std::size_t>(8, cache / 4);
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      const auto flows =
          zipf_traffic(policy, /*rate=*/20000.0, duration, pool, /*skew=*/0.9,
                       rep.seed, /*mean_packets=*/1.0);
      hit_pct[cell] = scenario.run(flows).cache_hit_fraction() * 100.0;
    });
    for (std::size_t c = 0; c < caches.size(); ++c) {
      const std::size_t cache = caches[c];
      std::vector<std::string> row{TextTable::integer(static_cast<long long>(cache))};
      for (std::size_t s = 0; s < kStrategies; ++s) {
        const double pct = hit_pct[c * kStrategies + s];
        rep.set(std::string("hit_pct_") + strategy_slug(strategies[s]) +
                    tag("_cap", static_cast<double>(cache)),
                pct);
        row.push_back(TextTable::num(pct, 1));
      }
      table.add_row(std::move(row));
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());

    // ---------------------------------------------------------------------
    // Heavy-tail rows: elephant-aware install policy OFF vs ON, per workload
    // mode. Flows are sparse (40ms packet gap) and heavy-tailed; the 35ms
    // base idle timeout cannot bridge the gap, so the plain cache pays a
    // miss per packet on long flows AND churns a TCAM slot for every one of
    // them. ON bypasses mice, puts unproven flows on a 5ms probation leash,
    // and pins detected elephants just past the gap. The acceptance gate for
    // this table: at Zipf α=1.2, ON beats OFF on hit rate AND leaves fewer
    // live TCAM entries behind.
    const std::vector<HeavyRow> rows =
        args.quick
            ? std::vector<HeavyRow>{{"zipf_1_2", 1.2, TrafficMode::kPoissonZipf},
                                    {"storm", 1.0, TrafficMode::kMiceStorm}}
            : std::vector<HeavyRow>{{"zipf_0_8", 0.8, TrafficMode::kPoissonZipf},
                                    {"zipf_1_2", 1.2, TrafficMode::kPoissonZipf},
                                    {"zipf_1_6", 1.6, TrafficMode::kPoissonZipf},
                                    {"flash", 1.0, TrafficMode::kFlashCrowd},
                                    {"storm", 1.0, TrafficMode::kMiceStorm},
                                    {"diurnal", 1.0, TrafficMode::kDiurnal}};
    const double ht_duration = args.pick(1.2, 1.0);
    const std::size_t ht_pool = 10000;
    const double ht_rate = 20000.0;
    std::vector<HeavyCell> cells(rows.size() * 2);
    run_cells(args.threads, cells.size(), [&](std::size_t cell) {
      const HeavyRow& hr = rows[cell / 2];
      const bool on = (cell % 2) == 1;
      auto params = difane_params(2, CacheStrategy::kMicroflow, /*cache=*/512);
      params.timings.cache_idle_timeout = 0.035;
      params.elephants = elephant_policy(on);
      // Sample TCAM occupancy at the end of the arrival window, not after the
      // drain tail: the longest Pareto flows keep the engine running seconds
      // past the last arrival, by which time every short-idle entry would
      // have expired and the footprint comparison would be meaningless.
      params.occupancy_sample_at = ht_duration;
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      TrafficGenerator gen(policy, heavy_tail_params(rep.seed, hr.alpha, ht_rate,
                                                     ht_duration, ht_pool, hr.mode));
      const auto& stats = scenario.run(gen.generate());
      HeavyCell& out = cells[cell];
      out.hit_pct = stats.cache_hit_fraction() * 100.0;
      out.tcam_final = static_cast<double>(stats.cache_entries_final);
      out.installs = static_cast<double>(stats.cache_rules_installed);
      out.bypassed = static_cast<double>(stats.mice_bypassed);
      out.promotions = static_cast<double>(stats.elephant_promotions);
    });
    TextTable ht_table({"workload", "policy", "hit%", "tcam live", "installs",
                        "bypassed", "promotions"});
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const HeavyRow& hr = rows[c / 2];
      const bool on = (c % 2) == 1;
      const HeavyCell& cell = cells[c];
      const std::string suffix =
          std::string("_elephant_") + (on ? "on" : "off") + "_" + hr.slug;
      rep.set("hit_pct" + suffix, cell.hit_pct);
      rep.set("tcam_final" + suffix, cell.tcam_final);
      rep.set("tcam_installs" + suffix, cell.installs);
      rep.set("bypass_mice" + suffix, cell.bypassed);
      rep.set("promotions" + suffix, cell.promotions);
      ht_table.add_row({hr.slug, on ? "elephant" : "plain",
                        TextTable::num(cell.hit_pct, 1),
                        TextTable::num(cell.tcam_final, 0),
                        TextTable::num(cell.installs, 0),
                        TextTable::num(cell.bypassed, 0),
                        TextTable::num(cell.promotions, 0)});
    }
    if (rep.verbose) {
      std::printf("heavy-tail workloads (cache 512, base idle 35ms, 40ms "
                  "packet gap):\n%s\n",
                  ht_table.render().c_str());
    }
  });
}
