// E6 — Cache effectiveness: ingress cache-hit fraction vs cache size, for
// DIFANE's wildcard caching (dependent-set and cover-set splicing) against
// the Ethane/NOX-era microflow (exact-match) cache, under Zipf traffic.
// This is the premise experiment: wildcard rules let a small TCAM absorb
// most traffic; microflow entries cannot share across flows.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main() {
  print_header("E6: ingress cache-hit rate vs cache size",
               "wildcard-caching motivation (and the CacheFlow-style splice "
               "comparison)",
               "wildcard strategies reach high hit rates with small caches; "
               "microflow needs far more entries");

  // Many distinct microflows per policy rule (100K-flow pool over a 1K-rule
  // policy): a cached wildcard rule aggregates every flow it covers, while a
  // microflow entry serves only exact repeats. This flow-to-rule ratio is
  // what makes wildcard caching the winning design in the paper.
  const auto policy = classbench_like(1000, 31);
  TextTable table({"cache entries", "microflow hit%", "dependent-set hit%",
                   "cover-set hit%"});
  for (const std::size_t cache : {25u, 50u, 100u, 200u, 400u, 800u, 1600u}) {
    std::vector<std::string> row{TextTable::integer(static_cast<long long>(cache))};
    for (const auto strategy : {CacheStrategy::kMicroflow, CacheStrategy::kDependentSet,
                                CacheStrategy::kCoverSet}) {
      auto params = difane_params(2, strategy, cache);
      // An authority that knows the ingress budget can afford bigger splice
      // groups on bigger caches.
      params.max_splice_cost = std::max<std::size_t>(8, cache / 4);
      Scenario scenario(policy, params);
      const auto flows =
          zipf_traffic(policy, /*rate=*/20000.0, /*duration=*/1.5,
                       /*pool=*/100000, /*skew=*/0.9, /*seed=*/37,
                       /*mean_packets=*/1.0);
      const auto& stats = scenario.run(flows);
      row.push_back(TextTable::num(stats.cache_hit_fraction() * 100.0, 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
