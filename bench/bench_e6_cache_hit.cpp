// E6 — Cache effectiveness: ingress cache-hit fraction vs cache size, for
// DIFANE's wildcard caching (dependent-set and cover-set splicing) against
// the Ethane/NOX-era microflow (exact-match) cache, under Zipf traffic.
// This is the premise experiment: wildcard rules let a small TCAM absorb
// most traffic; microflow entries cannot share across flows.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

const char* strategy_slug(CacheStrategy strategy) {
  switch (strategy) {
    case CacheStrategy::kMicroflow: return "microflow";
    case CacheStrategy::kDependentSet: return "dependent_set";
    case CacheStrategy::kCoverSet: return "cover_set";
    case CacheStrategy::kNone: return "none";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E6", /*default_seed=*/37);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E6: ingress cache-hit rate vs cache size",
                   "wildcard-caching motivation (and the CacheFlow-style splice "
                   "comparison)",
                   "wildcard strategies reach high hit rates with small caches; "
                   "microflow needs far more entries");
    }

    // Many distinct microflows per policy rule (100K-flow pool over a 1K-rule
    // policy): a cached wildcard rule aggregates every flow it covers, while a
    // microflow entry serves only exact repeats. This flow-to-rule ratio is
    // what makes wildcard caching the winning design in the paper.
    const std::size_t policy_size = args.pick<std::size_t>(1000, 400);
    const auto policy = classbench_like(policy_size, 31);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    const double duration = args.pick(1.5, 0.4);
    const std::size_t pool = args.pick<std::size_t>(100000, 30000);

    TextTable table({"cache entries", "microflow hit%", "dependent-set hit%",
                     "cover-set hit%"});
    const std::vector<std::size_t> caches =
        args.quick ? std::vector<std::size_t>{50u, 200u, 800u}
                   : std::vector<std::size_t>{25u, 50u, 100u, 200u, 400u, 800u, 1600u};
    const CacheStrategy strategies[] = {CacheStrategy::kMicroflow,
                                        CacheStrategy::kDependentSet,
                                        CacheStrategy::kCoverSet};
    constexpr std::size_t kStrategies = 3;
    // Each (cache size, strategy) pair is an independent cell; run them on
    // the worker pool and emit metrics/rows serially afterwards.
    std::vector<double> hit_pct(caches.size() * kStrategies);
    run_cells(args.threads, hit_pct.size(), [&](std::size_t cell) {
      const std::size_t cache = caches[cell / kStrategies];
      const CacheStrategy strategy = strategies[cell % kStrategies];
      auto params = difane_params(2, strategy, cache);
      // An authority that knows the ingress budget can afford bigger splice
      // groups on bigger caches.
      params.max_splice_cost = std::max<std::size_t>(8, cache / 4);
      Scenario scenario(policy, params);
      const auto flows =
          zipf_traffic(policy, /*rate=*/20000.0, duration, pool, /*skew=*/0.9,
                       rep.seed, /*mean_packets=*/1.0);
      hit_pct[cell] = scenario.run(flows).cache_hit_fraction() * 100.0;
    });
    for (std::size_t c = 0; c < caches.size(); ++c) {
      const std::size_t cache = caches[c];
      std::vector<std::string> row{TextTable::integer(static_cast<long long>(cache))};
      for (std::size_t s = 0; s < kStrategies; ++s) {
        const double pct = hit_pct[c * kStrategies + s];
        rep.set(std::string("hit_pct_") + strategy_slug(strategies[s]) +
                    tag("_cap", static_cast<double>(cache)),
                pct);
        row.push_back(TextTable::num(pct, 1));
      }
      table.add_row(std::move(row));
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());
  });
}
