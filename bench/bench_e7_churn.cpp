// E7 — Policy churn: cost of rule insert/delete with incremental partition
// maintenance vs a full repartition. DIFANE's controller must absorb policy
// updates without touching unrelated authority switches; the metric is how
// many partitions (and rule copies) each update disturbs, and wall-clock
// time per operation.
#include <chrono>

#include "common.hpp"

#include "partition/incremental.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

Rule random_rule(Rng& rng, RuleId id) {
  Rule r;
  r.id = id;
  r.priority = static_cast<Priority>(rng.uniform(1, 5000));
  const auto dst = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
  match_prefix(r.match, Field::kIpDst, dst, 8 + rng.uniform(0, 24));
  if (rng.bernoulli(0.6)) {
    const auto src = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
    match_prefix(r.match, Field::kIpSrc, src, 8 + rng.uniform(0, 24));
  }
  if (rng.bernoulli(0.4)) {
    match_exact(r.match, Field::kIpProto, rng.bernoulli(0.5) ? 6 : 17);
  }
  r.action = rng.bernoulli(0.5) ? Action::drop() : Action::forward(1);
  return r;
}

}  // namespace

int main() {
  print_header("E7: policy-churn cost, incremental vs full repartition",
               "network-dynamics discussion (policy changes)",
               "incremental updates touch a small constant number of "
               "partitions; full rebuild touches all of them");

  for (const std::size_t policy_size : {1000u, 5000u}) {
    const auto policy = classbench_like(policy_size, 41);
    PartitionerParams params;
    params.capacity = std::max<std::size_t>(64, policy_size / 16);
    IncrementalPartitioner inc(policy, params, 4);
    const auto partitions_total = inc.partition_count();

    Rng rng(43);
    OnlineStats touched_insert, touched_remove;
    std::vector<RuleId> inserted;
    const int ops = 400;

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < ops; ++i) {
      const Rule r = random_rule(rng, 900000 + static_cast<RuleId>(i));
      touched_insert.add(static_cast<double>(inc.insert(r).size()));
      inserted.push_back(r.id);
    }
    for (const auto id : inserted) {
      touched_remove.add(static_cast<double>(inc.remove(id).size()));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us_per_op =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / (2.0 * ops);

    // Full repartition reference cost (time + everything touched).
    const auto t2 = std::chrono::steady_clock::now();
    const auto full = Partitioner(params).build(policy, 4);
    const auto t3 = std::chrono::steady_clock::now();
    const double full_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();

    std::printf("policy: %zu rules, %zu partitions\n", policy.size(), partitions_total);
    TextTable table({"operation", "avg partitions touched", "max", "of total",
                     "time/op"});
    table.add_row({"incremental insert", TextTable::num(touched_insert.mean(), 2),
                   TextTable::num(touched_insert.max(), 0),
                   TextTable::integer(static_cast<long long>(partitions_total)),
                   TextTable::num(us_per_op, 1) + " us"});
    table.add_row({"incremental remove", TextTable::num(touched_remove.mean(), 2),
                   TextTable::num(touched_remove.max(), 0),
                   TextTable::integer(static_cast<long long>(partitions_total)),
                   TextTable::num(us_per_op, 1) + " us"});
    table.add_row({"full repartition", TextTable::num(static_cast<double>(full.partitions().size()), 0),
                   TextTable::num(static_cast<double>(full.partitions().size()), 0),
                   TextTable::integer(static_cast<long long>(full.partitions().size())),
                   TextTable::num(full_ms * 1000.0, 1) + " us"});
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
