// E7 — Policy churn: cost of rule insert/delete with incremental partition
// maintenance vs a full repartition. DIFANE's controller must absorb policy
// updates without touching unrelated authority switches; the metric is how
// many partitions (and rule copies) each update disturbs, and wall-clock
// time per operation.
#include <chrono>

#include "common.hpp"

#include "partition/incremental.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

Rule random_rule(Rng& rng, RuleId id) {
  Rule r;
  r.id = id;
  r.priority = static_cast<Priority>(rng.uniform(1, 5000));
  const auto dst = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
  match_prefix(r.match, Field::kIpDst, dst, 8 + rng.uniform(0, 24));
  if (rng.bernoulli(0.6)) {
    const auto src = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
    match_prefix(r.match, Field::kIpSrc, src, 8 + rng.uniform(0, 24));
  }
  if (rng.bernoulli(0.4)) {
    match_exact(r.match, Field::kIpProto, rng.bernoulli(0.5) ? 6 : 17);
  }
  r.action = rng.bernoulli(0.5) ? Action::drop() : Action::forward(1);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E7", /*default_seed=*/43);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E7: policy-churn cost, incremental vs full repartition",
                   "network-dynamics discussion (policy changes)",
                   "incremental updates touch a small constant number of "
                   "partitions; full rebuild touches all of them");
    }

    const int ops = args.pick(400, 150);
    rep.report.params["ops"] = obs::Json(ops);
    const std::vector<std::size_t> policy_sizes =
        args.quick ? std::vector<std::size_t>{1000u}
                   : std::vector<std::size_t>{1000u, 5000u};
    for (const std::size_t policy_size : policy_sizes) {
      const auto policy = classbench_like(policy_size, 41);
      PartitionerParams params;
      params.capacity = std::max<std::size_t>(64, policy_size / 16);
      IncrementalPartitioner inc(policy, params, 4);
      const auto partitions_total = inc.partition_count();

      Rng rng(rep.seed);
      OnlineStats touched_insert, touched_remove;
      std::vector<RuleId> inserted;

      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < ops; ++i) {
        const Rule r = random_rule(rng, 900000 + static_cast<RuleId>(i));
        touched_insert.add(static_cast<double>(inc.insert(r).size()));
        inserted.push_back(r.id);
      }
      for (const auto id : inserted) {
        touched_remove.add(static_cast<double>(inc.remove(id).size()));
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double us_per_op =
          std::chrono::duration<double, std::micro>(t1 - t0).count() / (2.0 * ops);

      // Full repartition reference cost (time + everything touched).
      const auto t2 = std::chrono::steady_clock::now();
      const auto full = Partitioner(params).build(policy, 4);
      const auto t3 = std::chrono::steady_clock::now();
      const double full_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();

      const std::string suffix = tag("_n", static_cast<double>(policy_size));
      rep.set("partitions_total" + suffix, static_cast<double>(partitions_total));
      rep.set("insert_touched_mean" + suffix, touched_insert.mean());
      rep.set("insert_touched_max" + suffix, touched_insert.max());
      rep.set("remove_touched_mean" + suffix, touched_remove.mean());
      rep.set("remove_touched_max" + suffix, touched_remove.max());
      // Host-timing metrics carry the _wall_ marker: exempt from determinism
      // comparisons in bench_compare and the tests.
      rep.set("incremental_wall_us_per_op" + suffix, us_per_op);
      rep.set("full_repartition_wall_ms" + suffix, full_ms);

      if (rep.verbose) {
        std::printf("policy: %zu rules, %zu partitions\n", policy.size(),
                    partitions_total);
        TextTable table({"operation", "avg partitions touched", "max", "of total",
                         "time/op"});
        table.add_row({"incremental insert", TextTable::num(touched_insert.mean(), 2),
                       TextTable::num(touched_insert.max(), 0),
                       TextTable::integer(static_cast<long long>(partitions_total)),
                       TextTable::num(us_per_op, 1) + " us"});
        table.add_row({"incremental remove", TextTable::num(touched_remove.mean(), 2),
                       TextTable::num(touched_remove.max(), 0),
                       TextTable::integer(static_cast<long long>(partitions_total)),
                       TextTable::num(us_per_op, 1) + " us"});
        table.add_row({"full repartition",
                       TextTable::num(static_cast<double>(full.partitions().size()), 0),
                       TextTable::num(static_cast<double>(full.partitions().size()), 0),
                       TextTable::integer(static_cast<long long>(full.partitions().size())),
                       TextTable::num(full_ms * 1000.0, 1) + " us"});
        std::printf("%s\n", table.render().c_str());
      }
    }
  });
}
