// E7 — Policy churn: cost of rule insert/delete with incremental partition
// maintenance vs a full repartition. DIFANE's controller must absorb policy
// updates without touching unrelated authority switches; the metric is how
// many partitions (and rule copies) each update disturbs, and wall-clock
// time per operation.
#include <chrono>

#include "common.hpp"

#include "partition/incremental.hpp"

using namespace difane;
using namespace difane::bench;

namespace {

Rule random_rule(Rng& rng, RuleId id) {
  Rule r;
  r.id = id;
  r.priority = static_cast<Priority>(rng.uniform(1, 5000));
  const auto dst = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
  match_prefix(r.match, Field::kIpDst, dst, 8 + rng.uniform(0, 24));
  if (rng.bernoulli(0.6)) {
    const auto src = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
    match_prefix(r.match, Field::kIpSrc, src, 8 + rng.uniform(0, 24));
  }
  if (rng.bernoulli(0.4)) {
    match_exact(r.match, Field::kIpProto, rng.bernoulli(0.5) ? 6 : 17);
  }
  r.action = rng.bernoulli(0.5) ? Action::drop() : Action::forward(1);
  return r;
}

// One heavy-tail cache-churn row, measured with the elephant policy OFF and
// ON. E7's angle (vs E6's hit-rate table) is the churn itself: how many TCAM
// install writes the workload costs and how many of them are dead weight the
// mice bypass could have skipped.
struct ChurnRow {
  const char* slug;
  double alpha;
  TrafficMode mode;
};

struct ChurnCell {
  double hit_pct = 0.0;
  double tcam_final = 0.0;
  double installs = 0.0;
  double churned = 0.0;  // install writes whose entry was gone at sample time
  double bypassed = 0.0;
  double promotions = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E7", /*default_seed=*/43);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E7: policy-churn cost, incremental vs full repartition",
                   "network-dynamics discussion (policy changes)",
                   "incremental updates touch a small constant number of "
                   "partitions; full rebuild touches all of them");
    }

    const int ops = args.pick(400, 150);
    rep.report.params["ops"] = obs::Json(ops);
    const std::vector<std::size_t> policy_sizes =
        args.quick ? std::vector<std::size_t>{1000u}
                   : std::vector<std::size_t>{1000u, 5000u};
    for (const std::size_t policy_size : policy_sizes) {
      const auto policy = classbench_like(policy_size, 41);
      PartitionerParams params;
      params.capacity = std::max<std::size_t>(64, policy_size / 16);
      IncrementalPartitioner inc(policy, params, 4);
      const auto partitions_total = inc.partition_count();

      Rng rng(rep.seed);
      OnlineStats touched_insert, touched_remove;
      std::vector<RuleId> inserted;

      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < ops; ++i) {
        const Rule r = random_rule(rng, 900000 + static_cast<RuleId>(i));
        touched_insert.add(static_cast<double>(inc.insert(r).size()));
        inserted.push_back(r.id);
      }
      for (const auto id : inserted) {
        touched_remove.add(static_cast<double>(inc.remove(id).size()));
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double us_per_op =
          std::chrono::duration<double, std::micro>(t1 - t0).count() / (2.0 * ops);

      // Full repartition reference cost (time + everything touched).
      const auto t2 = std::chrono::steady_clock::now();
      const auto full = Partitioner(params).build(policy, 4);
      const auto t3 = std::chrono::steady_clock::now();
      const double full_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();

      const std::string suffix = tag("_n", static_cast<double>(policy_size));
      rep.set("partitions_total" + suffix, static_cast<double>(partitions_total));
      rep.set("insert_touched_mean" + suffix, touched_insert.mean());
      rep.set("insert_touched_max" + suffix, touched_insert.max());
      rep.set("remove_touched_mean" + suffix, touched_remove.mean());
      rep.set("remove_touched_max" + suffix, touched_remove.max());
      // Host-timing metrics carry the _wall_ marker: exempt from determinism
      // comparisons in bench_compare and the tests.
      rep.set("incremental_wall_us_per_op" + suffix, us_per_op);
      rep.set("full_repartition_wall_ms" + suffix, full_ms);

      if (rep.verbose) {
        std::printf("policy: %zu rules, %zu partitions\n", policy.size(),
                    partitions_total);
        TextTable table({"operation", "avg partitions touched", "max", "of total",
                         "time/op"});
        table.add_row({"incremental insert", TextTable::num(touched_insert.mean(), 2),
                       TextTable::num(touched_insert.max(), 0),
                       TextTable::integer(static_cast<long long>(partitions_total)),
                       TextTable::num(us_per_op, 1) + " us"});
        table.add_row({"incremental remove", TextTable::num(touched_remove.mean(), 2),
                       TextTable::num(touched_remove.max(), 0),
                       TextTable::integer(static_cast<long long>(partitions_total)),
                       TextTable::num(us_per_op, 1) + " us"});
        table.add_row({"full repartition",
                       TextTable::num(static_cast<double>(full.partitions().size()), 0),
                       TextTable::num(static_cast<double>(full.partitions().size()), 0),
                       TextTable::integer(static_cast<long long>(full.partitions().size())),
                       TextTable::num(full_ms * 1000.0, 1) + " us"});
        std::printf("%s\n", table.render().c_str());
      }
    }

    // -----------------------------------------------------------------------
    // Heavy-tail cache churn: the flow-level analogue of the policy churn
    // above. Diurnal rotation and mice storms keep replacing the working set,
    // so the cache pays install writes continuously; the elephant policy's
    // mice bypass deletes the single-packet share of that churn outright and
    // the probation leash returns unproven slots quickly. Metrics: hit rate,
    // live TCAM entries at the end of the arrival window, total install
    // writes, and churned = installs that were already gone again by sample
    // time (the TCAM write amplification of the workload).
    const std::vector<ChurnRow> churn_rows =
        args.quick
            ? std::vector<ChurnRow>{{"diurnal", 1.0, TrafficMode::kDiurnal}}
            : std::vector<ChurnRow>{{"zipf_1_2", 1.2, TrafficMode::kPoissonZipf},
                                    {"storm", 1.0, TrafficMode::kMiceStorm},
                                    {"diurnal", 1.0, TrafficMode::kDiurnal}};
    const double ht_duration = args.pick(1.2, 1.0);
    const std::size_t ht_pool = 10000;
    const double ht_rate = 20000.0;
    const auto churn_policy = classbench_like(600, 31);
    std::vector<ChurnCell> cells(churn_rows.size() * 2);
    run_cells(args.threads, cells.size(), [&](std::size_t cell) {
      const ChurnRow& cr = churn_rows[cell / 2];
      const bool on = (cell % 2) == 1;
      auto params = difane_params(2, CacheStrategy::kMicroflow, /*cache=*/512);
      params.timings.cache_idle_timeout = 0.035;
      params.elephants = elephant_policy(on);
      params.occupancy_sample_at = ht_duration;
      apply_exec_args(params, args);
      Scenario scenario(churn_policy, params);
      TrafficGenerator gen(churn_policy,
                           heavy_tail_params(rep.seed, cr.alpha, ht_rate,
                                             ht_duration, ht_pool, cr.mode));
      const auto& stats = scenario.run(gen.generate());
      ChurnCell& out = cells[cell];
      out.hit_pct = stats.cache_hit_fraction() * 100.0;
      out.tcam_final = static_cast<double>(stats.cache_entries_final);
      out.installs = static_cast<double>(stats.cache_rules_installed);
      out.churned = out.installs > out.tcam_final ? out.installs - out.tcam_final
                                                  : 0.0;
      out.bypassed = static_cast<double>(stats.mice_bypassed);
      out.promotions = static_cast<double>(stats.elephant_promotions);
    });
    TextTable churn_table({"workload", "policy", "hit%", "tcam live",
                           "installs", "churned", "bypassed", "promotions"});
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const ChurnRow& cr = churn_rows[c / 2];
      const bool on = (c % 2) == 1;
      const ChurnCell& cell = cells[c];
      const std::string suffix =
          std::string("_elephant_") + (on ? "on" : "off") + "_" + cr.slug;
      rep.set("hit_pct" + suffix, cell.hit_pct);
      rep.set("tcam_final" + suffix, cell.tcam_final);
      rep.set("tcam_installs" + suffix, cell.installs);
      rep.set("tcam_churned" + suffix, cell.churned);
      rep.set("bypass_mice" + suffix, cell.bypassed);
      rep.set("promotions" + suffix, cell.promotions);
      churn_table.add_row({cr.slug, on ? "elephant" : "plain",
                           TextTable::num(cell.hit_pct, 1),
                           TextTable::num(cell.tcam_final, 0),
                           TextTable::num(cell.installs, 0),
                           TextTable::num(cell.churned, 0),
                           TextTable::num(cell.bypassed, 0),
                           TextTable::num(cell.promotions, 0)});
    }
    if (rep.verbose) {
      std::printf("heavy-tail cache churn (cache 512, base idle 35ms):\n%s\n",
                  churn_table.render().c_str());
    }

    // -----------------------------------------------------------------------
    // Live partition migration: the authority-level analogue of the rule
    // churn above. A make-before-break re-home keeps both copies of a
    // partition installed across the flip+drain window, so the costs are
    // (a) the rules moved to the destination, (b) the peak TCAM
    // double-occupancy while both copies are live, and (c) redirect stretch —
    // redirects per delivered packet — against an identical migration-off
    // run. Service must not degrade: deliveries match the off run's regime.
    struct MigrationCell {
      double started = 0.0;
      double completed = 0.0;
      double aborted = 0.0;
      double rules_moved = 0.0;
      double double_peak = 0.0;
      double inflight = 0.0;
      double redirect_stretch = 0.0;  // redirects per delivered packet
      double hit_pct = 0.0;
      double delivered = 0.0;
    };
    const double mig_duration = args.pick(0.5, 0.3);
    const auto mig_traffic = heavy_tail_params(rep.seed, 1.0, 12000.0,
                                               mig_duration, 4000,
                                               TrafficMode::kPoissonZipf);
    std::vector<MigrationCell> mig_cells(2);
    run_cells(args.threads, mig_cells.size(), [&](std::size_t cell) {
      const bool on = cell == 1;
      auto params = difane_params(3, CacheStrategy::kMicroflow, /*cache=*/512);
      params.timings.cache_idle_timeout = 0.035;
      params.reliable_ctrl = true;  // both cells: isolate the migration cost
      params.migration.enabled = on;
      params.migration.wave_size = 2;
      params.migration.drain_timeout = 0.01;
      apply_exec_args(params, args);
      Scenario scenario(churn_policy, params);
      if (on) {
        // Re-home a spread of partitions to the authority that is neither
        // their primary nor (under the 3-authority ring) their backup, so
        // every move installs real rules rather than flipping to a
        // pre-stocked replica. The plan shape is seed-deterministic, so the
        // same requests are issued on every run.
        const auto& parts = scenario.plan()->partitions();
        const std::size_t moves = std::min<std::size_t>(parts.size(), 6);
        for (std::size_t i = 0; i < moves; ++i) {
          const std::size_t index = (i * parts.size()) / moves;
          const auto dest = static_cast<AuthorityIndex>(
              (parts[index].primary + 2) % 3);
          scenario.request_rehome(index, dest,
                                  0.05 + 0.03 * static_cast<double>(i));
        }
      }
      TrafficGenerator gen(churn_policy, mig_traffic);
      const auto& stats = scenario.run(gen.generate());
      MigrationCell& out = mig_cells[cell];
      out.started = static_cast<double>(stats.migrations_started);
      out.completed = static_cast<double>(stats.migrations_completed);
      out.aborted = static_cast<double>(stats.migrations_aborted);
      out.rules_moved = static_cast<double>(stats.migration_rules_moved);
      out.double_peak = static_cast<double>(stats.migration_double_peak);
      out.inflight = static_cast<double>(stats.migration_inflight_redirects);
      const double delivered = static_cast<double>(stats.tracer.delivered());
      out.delivered = delivered;
      out.redirect_stretch =
          delivered > 0.0 ? static_cast<double>(stats.redirects) / delivered
                          : 0.0;
      out.hit_pct = stats.cache_hit_fraction() * 100.0;
    });
    TextTable mig_table({"migration", "moves done", "rules moved",
                         "double peak", "inflight redir", "redir/pkt", "hit%",
                         "delivered"});
    for (std::size_t c = 0; c < mig_cells.size(); ++c) {
      const bool on = c == 1;
      const MigrationCell& cell = mig_cells[c];
      const std::string suffix = on ? "_migration_on" : "_migration_off";
      rep.set("migrations_started" + suffix, cell.started);
      rep.set("migrations_completed" + suffix, cell.completed);
      rep.set("migrations_aborted" + suffix, cell.aborted);
      rep.set("migration_rules_moved" + suffix, cell.rules_moved);
      rep.set("migration_double_peak" + suffix, cell.double_peak);
      rep.set("migration_inflight_redirects" + suffix, cell.inflight);
      rep.set("redirect_stretch" + suffix, cell.redirect_stretch);
      rep.set("hit_pct" + suffix, cell.hit_pct);
      rep.set("delivered" + suffix, cell.delivered);
      mig_table.add_row({on ? "on" : "off",
                         TextTable::num(cell.completed, 0) + "/" +
                             TextTable::num(cell.started, 0),
                         TextTable::num(cell.rules_moved, 0),
                         TextTable::num(cell.double_peak, 0),
                         TextTable::num(cell.inflight, 0),
                         TextTable::num(cell.redirect_stretch, 3),
                         TextTable::num(cell.hit_pct, 1),
                         TextTable::num(cell.delivered, 0)});
    }
    if (rep.verbose) {
      std::printf(
          "live partition migration (3 authorities, make-before-break, "
          "drain 10ms):\n%s\n",
          mig_table.render().c_str());
    }
  });
}
