// E8 — Redirection cost: path stretch of first packets and the fraction of
// traffic taking the authority-switch detour, as a function of ingress cache
// size. DIFANE trades a bounded data-plane detour (vs a control-plane punt)
// for keeping packets moving; this quantifies the detour.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E8", /*default_seed=*/53);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E8: path stretch and redirected-traffic fraction vs cache size",
                   "redirection-overhead discussion (stretch of the detour path)",
                   "stretch bounded by the two-tier detour (<2x); redirected "
                   "fraction falls as the cache grows");
    }

    const std::size_t policy_size = args.pick<std::size_t>(3000, 1000);
    const auto policy = classbench_like(policy_size, 47);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    const double duration = args.pick(2.0, 0.6);

    TextTable table({"cache entries", "redirected %", "stretch p50", "stretch p99",
                     "first-pkt delay p50 (ms)", "installs"});
    const std::vector<std::size_t> caches =
        args.quick ? std::vector<std::size_t>{0u, 200u, 1000u}
                   : std::vector<std::size_t>{0u, 50u, 200u, 1000u, 5000u};
    for (const std::size_t cache : caches) {
      // cache == 0 means pure redirection: no installs at all, every packet
      // detours. CacheStrategy::kNone declares that intent explicitly —
      // validate() rejects a zero-capacity cache under an installing strategy.
      auto params = difane_params(
          2, cache == 0 ? CacheStrategy::kNone : CacheStrategy::kCoverSet,
          std::max<std::size_t>(cache, 1));
      if (cache == 0) params.edge_cache_capacity = 0;
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      const auto flows = zipf_traffic(policy, 3000.0, duration, 4000, 1.0, rep.seed);
      const auto& stats = scenario.run(flows);
      const double redirected =
          100.0 * static_cast<double>(stats.tracer.redirected()) /
          static_cast<double>(stats.tracer.delivered() ? stats.tracer.delivered() : 1);
      const std::string suffix = tag("_cap", static_cast<double>(cache));
      rep.set("redirected_pct" + suffix, redirected);
      if (stats.stretch.count()) {
        rep.set("stretch_p50" + suffix, stats.stretch.percentile(0.5));
        rep.set("stretch_p99" + suffix, stats.stretch.percentile(0.99));
      }
      rep.set("installs" + suffix, static_cast<double>(stats.cache_installs));
      table.add_row(
          {TextTable::integer(static_cast<long long>(cache)),
           TextTable::num(redirected, 1),
           stats.stretch.count() ? TextTable::num(stats.stretch.percentile(0.5), 2) : "-",
           stats.stretch.count() ? TextTable::num(stats.stretch.percentile(0.99), 2) : "-",
           stats.tracer.first_packet_delay().count()
               ? TextTable::num(stats.tracer.first_packet_delay().percentile(0.5) * 1e3, 3)
               : "-",
           TextTable::integer(static_cast<long long>(stats.cache_installs))});
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());

    // Topology sensitivity: in a folded-Clos an authority switch sits on most
    // shortest paths, so the detour is nearly free. On a chain the detour is
    // real: packets walk to the nearest authority node and back.
    if (rep.verbose) {
      std::printf("line topology (16-switch chain, 2 authority nodes)\n");
    }
    TextTable line({"cache entries", "redirected %", "stretch p50", "stretch p99",
                    "first-pkt delay p50 (ms)"});
    const std::vector<std::size_t> line_caches =
        args.quick ? std::vector<std::size_t>{0u, 200u}
                   : std::vector<std::size_t>{0u, 200u, 2000u};
    for (const std::size_t cache : line_caches) {
      ScenarioParams params;
      params.mode = Mode::kDifane;
      params.topology = TopologyKind::kLine;
      params.edge_switches = 16;
      params.core_switches = 2;
      params.authority_count = 2;
      params.edge_cache_capacity = cache;
      params.partitioner.capacity = 1000;
      params.cache_strategy =
          cache == 0 ? CacheStrategy::kNone : CacheStrategy::kCoverSet;
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      TrafficParams tp;
      tp.seed = rep.seed;
      tp.flow_pool = 4000;
      tp.zipf_s = 1.0;
      tp.arrival_rate = 2000.0;
      tp.duration = duration;
      tp.mean_packets = 5.0;
      tp.ingress_count = 16;
      TrafficGenerator gen(policy, tp);
      const auto& stats = scenario.run(gen.generate());
      const double redirected =
          100.0 * static_cast<double>(stats.tracer.redirected()) /
          static_cast<double>(stats.tracer.delivered() ? stats.tracer.delivered() : 1);
      const std::string suffix = tag("_cap", static_cast<double>(cache));
      rep.set("line_redirected_pct" + suffix, redirected);
      if (stats.stretch.count()) {
        rep.set("line_stretch_p50" + suffix, stats.stretch.percentile(0.5));
        rep.set("line_stretch_p99" + suffix, stats.stretch.percentile(0.99));
      }
      line.add_row(
          {TextTable::integer(static_cast<long long>(cache)),
           TextTable::num(redirected, 1),
           stats.stretch.count() ? TextTable::num(stats.stretch.percentile(0.5), 2) : "-",
           stats.stretch.count() ? TextTable::num(stats.stretch.percentile(0.99), 2) : "-",
           stats.tracer.first_packet_delay().count()
               ? TextTable::num(stats.tracer.first_packet_delay().percentile(0.5) * 1e3, 3)
               : "-"});
    }
    if (rep.verbose) std::printf("%s\n", line.render().c_str());
  });
}
