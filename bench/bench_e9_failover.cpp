// E9 — Authority-switch failure recovery. DIFANE pre-positions backup
// authority rules and re-points partition rules when a primary dies; the
// loss window is bounded by failure-detection time. Sweeps the detection
// delay and reports packets lost and post-recovery completion rate.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E9", /*default_seed=*/61);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E9: authority failure — loss window vs detection delay",
                   "failure-recovery discussion (backup authority switches)",
                   "losses proportional to the detection window; completions "
                   "recover fully after re-pointing");
    }

    const std::size_t policy_size = args.pick<std::size_t>(1500, 600);
    const auto policy = classbench_like(policy_size, 59);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    const double duration = args.pick(2.0, 1.0);
    const double fail_at = duration / 2.0;

    TextTable table({"detect delay (ms)", "lost packets", "lost %", "completed %",
                     "redirects"});
    const std::vector<double> detects =
        args.quick ? std::vector<double>{0.05, 0.5}
                   : std::vector<double>{0.01, 0.05, 0.2, 0.5};
    for (const double detect : detects) {
      // Microflow keeps redirects flowing all run (every new flow detours), so
      // the authority switch is exercised through the failure.
      auto params = difane_params(2, CacheStrategy::kMicroflow);
      params.timings.failover_detect = detect;
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      const auto flows = setup_storm(policy, 5000.0, duration, rep.seed);
      const SwitchId victim = scenario.difane()->authority_switches()[0];
      scenario.schedule_authority_failure(fail_at, victim);
      const auto& stats = scenario.run(flows);
      const auto lost = stats.tracer.dropped(DropReason::kSwitchFailed) +
                        stats.tracer.dropped(DropReason::kUnreachable);
      const std::string suffix = tag("_detect_ms", detect * 1e3);
      rep.set("lost_packets" + suffix, static_cast<double>(lost));
      rep.set("lost_pct" + suffix,
              100.0 * static_cast<double>(lost) /
                  static_cast<double>(stats.tracer.injected()));
      rep.set("completed_pct" + suffix,
              100.0 * static_cast<double>(stats.setup_completions.total()) /
                  static_cast<double>(flows.size()));
      rep.set("redirects" + suffix, static_cast<double>(stats.redirects));
      table.add_row(
          {TextTable::num(detect * 1e3, 0),
           TextTable::integer(static_cast<long long>(lost)),
           TextTable::num(100.0 * static_cast<double>(lost) /
                              static_cast<double>(stats.tracer.injected()),
                          2),
           TextTable::num(100.0 * static_cast<double>(stats.setup_completions.total()) /
                              static_cast<double>(flows.size()),
                          2),
           TextTable::integer(static_cast<long long>(stats.redirects))});
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());

    // Fault-plan modes: the same failover measured the honest way — a lossy
    // control wire ridden by reliable channels, heartbeat detection instead
    // of the fixed delay, a TCAM-clearing crash, and optionally a restart or
    // a second failure. Each row ends with an installed-state verifier
    // sweep; violations must be zero for the run to count as recovered.
    TextTable chaos({"plan", "lost %", "completed %", "retransmits",
                     "failovers", "recoveries", "violations"});
    struct PlanMode {
      const char* name;
      bool restart;
      bool second_failure;
    };
    static constexpr PlanMode kModes[] = {{"lossy", false, false},
                                          {"restart", true, false},
                                          {"double", true, true}};
    for (const auto& mode : kModes) {
      auto params = difane_params(2, CacheStrategy::kMicroflow);
      params.reliable_ctrl = true;
      params.faults.seed = rep.seed;
      params.faults.msg_loss = 0.15;  // past the 10% acceptance bar
      params.faults.msg_dup = 0.05;
      params.timings.heartbeat_interval = 0.02;
      params.timings.heartbeat_miss = 3;
      params.timings.heartbeat_horizon = duration + 1.0;
      AuthorityCrash crash;
      crash.authority_index = 0;
      crash.at = fail_at;
      crash.restart_at = mode.restart ? fail_at + 0.15 * duration : -1.0;
      params.faults.crashes.push_back(crash);
      if (mode.second_failure) {
        // The second authority dies after the first has already restarted:
        // the worst case the backup scheme is meant to survive.
        AuthorityCrash second;
        second.authority_index = 1;
        second.at = fail_at + 0.3 * duration;
        params.faults.crashes.push_back(second);
      }
      apply_exec_args(params, args);
      Scenario scenario(policy, params);
      const auto flows = setup_storm(policy, 5000.0, duration, rep.seed);
      const auto& stats = scenario.run(flows);
      const auto verify = scenario.verify_installed(200, rep.seed);

      const auto lost = stats.tracer.dropped(DropReason::kSwitchFailed) +
                        stats.tracer.dropped(DropReason::kUnreachable);
      const double lost_pct = 100.0 * static_cast<double>(lost) /
                              static_cast<double>(stats.tracer.injected());
      const double completed_pct =
          100.0 * static_cast<double>(stats.setup_completions.total()) /
          static_cast<double>(flows.size());
      const std::string suffix = std::string("_plan_") + mode.name;
      rep.set("lost_pct" + suffix, lost_pct);
      rep.set("completed_pct" + suffix, completed_pct);
      rep.set("ctrl_retransmits" + suffix,
              static_cast<double>(stats.ctrl_retransmits));
      rep.set("msgs_lost" + suffix, static_cast<double>(stats.msgs_lost));
      rep.set("failovers_detected" + suffix,
              static_cast<double>(stats.failovers_detected));
      rep.set("recoveries_detected" + suffix,
              static_cast<double>(stats.recoveries_detected));
      rep.set("verifier_violations" + suffix,
              static_cast<double>(verify.violations.size()));
      chaos.add_row(
          {mode.name, TextTable::num(lost_pct, 2),
           TextTable::num(completed_pct, 2),
           TextTable::integer(static_cast<long long>(stats.ctrl_retransmits)),
           TextTable::integer(static_cast<long long>(stats.failovers_detected)),
           TextTable::integer(static_cast<long long>(stats.recoveries_detected)),
           TextTable::integer(static_cast<long long>(verify.violations.size()))});
    }
    if (rep.verbose) std::printf("%s\n", chaos.render().c_str());
  });
}
