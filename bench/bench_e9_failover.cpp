// E9 — Authority-switch failure recovery. DIFANE pre-positions backup
// authority rules and re-points partition rules when a primary dies; the
// loss window is bounded by failure-detection time. Sweeps the detection
// delay and reports packets lost and post-recovery completion rate.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv, "E9", /*default_seed=*/61);
  return run_bench(args, [&](BenchRep& rep) {
    if (rep.verbose) {
      print_header("E9: authority failure — loss window vs detection delay",
                   "failure-recovery discussion (backup authority switches)",
                   "losses proportional to the detection window; completions "
                   "recover fully after re-pointing");
    }

    const std::size_t policy_size = args.pick<std::size_t>(1500, 600);
    const auto policy = classbench_like(policy_size, 59);
    rep.report.params["policy_rules"] = obs::Json(policy_size);
    const double duration = args.pick(2.0, 1.0);
    const double fail_at = duration / 2.0;

    TextTable table({"detect delay (ms)", "lost packets", "lost %", "completed %",
                     "redirects"});
    const std::vector<double> detects =
        args.quick ? std::vector<double>{0.05, 0.5}
                   : std::vector<double>{0.01, 0.05, 0.2, 0.5};
    for (const double detect : detects) {
      // Microflow keeps redirects flowing all run (every new flow detours), so
      // the authority switch is exercised through the failure.
      auto params = difane_params(2, CacheStrategy::kMicroflow);
      params.timings.failover_detect = detect;
      Scenario scenario(policy, params);
      const auto flows = setup_storm(policy, 5000.0, duration, rep.seed);
      const SwitchId victim = scenario.difane()->authority_switches()[0];
      scenario.schedule_authority_failure(fail_at, victim);
      const auto& stats = scenario.run(flows);
      const auto lost = stats.tracer.dropped(DropReason::kSwitchFailed) +
                        stats.tracer.dropped(DropReason::kUnreachable);
      const std::string suffix = tag("_detect_ms", detect * 1e3);
      rep.set("lost_packets" + suffix, static_cast<double>(lost));
      rep.set("lost_pct" + suffix,
              100.0 * static_cast<double>(lost) /
                  static_cast<double>(stats.tracer.injected()));
      rep.set("completed_pct" + suffix,
              100.0 * static_cast<double>(stats.setup_completions.total()) /
                  static_cast<double>(flows.size()));
      rep.set("redirects" + suffix, static_cast<double>(stats.redirects));
      table.add_row(
          {TextTable::num(detect * 1e3, 0),
           TextTable::integer(static_cast<long long>(lost)),
           TextTable::num(100.0 * static_cast<double>(lost) /
                              static_cast<double>(stats.tracer.injected()),
                          2),
           TextTable::num(100.0 * static_cast<double>(stats.setup_completions.total()) /
                              static_cast<double>(flows.size()),
                          2),
           TextTable::integer(static_cast<long long>(stats.redirects))});
    }
    if (rep.verbose) std::printf("%s\n", table.render().c_str());
  });
}
