// E9 — Authority-switch failure recovery. DIFANE pre-positions backup
// authority rules and re-points partition rules when a primary dies; the
// loss window is bounded by failure-detection time. Sweeps the detection
// delay and reports packets lost and post-recovery completion rate.
#include "common.hpp"

using namespace difane;
using namespace difane::bench;

int main() {
  print_header("E9: authority failure — loss window vs detection delay",
               "failure-recovery discussion (backup authority switches)",
               "losses proportional to the detection window; completions "
               "recover fully after re-pointing");

  const auto policy = classbench_like(1500, 59);
  TextTable table({"detect delay (ms)", "lost packets", "lost %", "completed %",
                   "redirects"});
  for (const double detect : {0.01, 0.05, 0.2, 0.5}) {
    // Microflow keeps redirects flowing all run (every new flow detours), so
    // the authority switch is exercised through the failure.
    auto params = difane_params(2, CacheStrategy::kMicroflow);
    params.timings.failover_detect = detect;
    Scenario scenario(policy, params);
    const auto flows = setup_storm(policy, 5000.0, 2.0, 61);
    const SwitchId victim = scenario.difane()->authority_switches()[0];
    scenario.schedule_authority_failure(1.0, victim);
    const auto& stats = scenario.run(flows);
    const auto lost = stats.tracer.dropped(DropReason::kSwitchFailed) +
                      stats.tracer.dropped(DropReason::kUnreachable);
    table.add_row(
        {TextTable::num(detect * 1e3, 0),
         TextTable::integer(static_cast<long long>(lost)),
         TextTable::num(100.0 * static_cast<double>(lost) /
                            static_cast<double>(stats.tracer.injected()),
                        2),
         TextTable::num(100.0 * static_cast<double>(stats.setup_completions.total()) /
                            static_cast<double>(flows.size()),
                        2),
         TextTable::integer(static_cast<long long>(stats.redirects))});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
