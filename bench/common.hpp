// Shared harness for the experiment binaries. Each bench binary regenerates
// one table/figure of the DIFANE evaluation (see DESIGN.md's experiment
// index and EXPERIMENTS.md for paper-vs-measured) and — via the unified
// bench::Args CLI — emits a schema-stable BENCH_<id>.json report that
// tools/bench_all merges into a perf trajectory and tools/bench_compare
// gates on.
//
// Every bench accepts the same flags:
//   --json <path>   write the merged MetricsReport as JSON
//   --reps N        repeat the measurement N times (seeds base, base+1, ...)
//   --seed S        override the bench's default base seed
//   --quick         reduced problem sizes for CI smoke runs
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"
#include "workload/rulegen.hpp"
#include "workload/trafficgen.hpp"

namespace difane::bench {

// ---------------------------------------------------------------------------
// Unified CLI

struct Args {
  std::string bench_id;
  std::string json_path;     // empty => no JSON export
  int reps = 1;
  std::uint64_t seed = 0;    // base seed (bench default unless --seed)
  bool quick = false;
  // Worker threads for cell-level parallelism (run_cells below): independent
  // sweep cells execute concurrently, results are emitted in the original
  // serial order, so every deterministic metric is identical at any thread
  // count — check.sh gates on exactly that.
  int threads = 1;
  // Burst-mode data plane for every Scenario the bench builds (0 = scalar
  // path). Deterministic metrics are burst-invariant by contract;
  // check.sh --burst gates bench_all at 0 vs 32 on exactly that.
  int burst = 0;

  // Sweep helper: full-size value normally, reduced value under --quick.
  template <typename T>
  T pick(T full, T quick_value) const {
    return quick ? quick_value : full;
  }
};

[[noreturn]] inline void usage(const char* bench_id, int exit_code) {
  std::fprintf(exit_code == 0 ? stdout : stderr,
               "usage: %s [--json <path>] [--reps N] [--seed S] [--quick] "
               "[--threads N] [--burst N]\n"
               "  --json <path>  write BENCH_%s-style JSON report to <path>\n"
               "  --reps N       repetitions (metrics averaged; seeds base..base+N-1)\n"
               "  --seed S       override the base seed\n"
               "  --quick        reduced problem sizes (CI smoke mode)\n"
               "  --threads N    run independent sweep cells on N worker threads\n"
               "                 (deterministic metrics are thread-count invariant)\n"
               "  --burst N      burst-mode data plane, N packets per burst\n"
               "                 (0 = scalar; deterministic metrics are\n"
               "                 burst-invariant)\n",
               bench_id, bench_id);
  std::exit(exit_code);
}

inline Args parse_args(int argc, char** argv, const char* bench_id,
                       std::uint64_t default_seed) {
  Args args;
  args.bench_id = bench_id;
  args.seed = default_seed;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", bench_id, arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      args.json_path = next();
    } else if (arg == "--reps") {
      args.reps = std::atoi(next());
      if (args.reps < 1) {
        std::fprintf(stderr, "%s: --reps must be >= 1\n", bench_id);
        std::exit(2);
      }
    } else if (arg == "--seed") {
      args.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--threads") {
      args.threads = std::atoi(next());
      if (args.threads < 1) {
        std::fprintf(stderr, "%s: --threads must be >= 1\n", bench_id);
        std::exit(2);
      }
    } else if (arg == "--burst") {
      args.burst = std::atoi(next());
      if (args.burst < 0) {
        std::fprintf(stderr, "%s: --burst must be >= 0\n", bench_id);
        std::exit(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(bench_id, 0);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", bench_id, arg.c_str());
      usage(bench_id, 2);
    }
  }
  return args;
}

// One repetition's view: the seed to use, and whether to print the human
// tables (first rep only — later reps exist to average metrics, not to
// repeat console output).
struct BenchRep {
  std::uint64_t seed;
  int index;
  bool verbose;
  obs::MetricsReport& report;

  void set(const std::string& name, double value) { report.set(name, value); }
};

// Run `body` args.reps times, average the collected metrics, export JSON if
// requested. Returns the process exit code.
template <typename Fn>
int run_bench(const Args& args, Fn&& body) {
  std::printf("[%s] seed=%llu reps=%d%s\n", args.bench_id.c_str(),
              static_cast<unsigned long long>(args.seed), args.reps,
              args.quick ? " quick" : "");
  try {
    std::vector<obs::MetricsReport> reps;
    for (int r = 0; r < args.reps; ++r) {
      obs::MetricsReport report(args.bench_id);
      BenchRep rep{args.seed + static_cast<std::uint64_t>(r), r, r == 0, report};
      const auto t0 = std::chrono::steady_clock::now();
      body(rep);
      report.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      reps.push_back(std::move(report));
    }
    obs::MetricsReport merged = obs::merge_reps(reps);
    merged.params["base_seed"] = obs::Json(static_cast<double>(args.seed));
    merged.params["reps"] = obs::Json(args.reps);
    merged.params["quick"] = obs::Json(args.quick);
    if (!args.json_path.empty()) {
      merged.write_json_file(args.json_path);
      std::printf("[%s] wrote %s (%zu metrics)\n", args.bench_id.c_str(),
                  args.json_path.c_str(), merged.metrics.size());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[%s] failed: %s\n", args.bench_id.c_str(), e.what());
    return 1;
  }
}

// Run `count` independent sweep cells, cell `i` via body(i), on up to
// `threads` worker threads (an atomic work index hands out cells). Each cell
// must be self-contained — its own Scenario, workload, and result slot,
// indexed by `i` — and must not print or touch shared report state; callers
// emit tables and metrics afterwards, walking the results in serial order,
// which keeps every deterministic metric byte-identical at any thread
// count. threads <= 1 degrades to a plain serial loop on this thread.
inline void run_cells(int threads, std::size_t count,
                      const std::function<void(std::size_t)>& body) {
  const std::size_t workers =
      std::min<std::size_t>(threads < 1 ? 1 : static_cast<std::size_t>(threads),
                            count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

// Stable metric-key suffix for a sweep point: "_at_100000" etc. Integral
// values render without a fractional part (obs::format_number).
inline std::string tag(const std::string& prefix, double value) {
  std::string t = obs::format_number(value);
  for (auto& c : t) {
    if (c == '.' || c == '-' || c == '+') c = '_';
  }
  return prefix + "_" + t;
}

// ---------------------------------------------------------------------------
// Scenario/workload builders shared by the experiment harnesses.

// A pure flow-setup storm: single-packet flows, (almost) all distinct, so
// every arrival exercises the miss path. This is the workload behind the
// paper's throughput comparison.
inline std::vector<FlowSpec> setup_storm(const RuleTable& policy, double rate,
                                         double duration, std::uint64_t seed,
                                         std::uint32_t ingress_count = 4) {
  TrafficParams tp;
  tp.seed = seed;
  tp.flow_pool = 1u << 21;
  tp.zipf_s = 0.0;
  tp.arrival_rate = rate;
  tp.duration = duration;
  tp.mean_packets = 1.0;
  tp.max_packets = 1.0;
  tp.ingress_count = ingress_count;
  TrafficGenerator gen(policy, tp);
  return gen.generate();
}

// Zipf-popular repeated traffic: the cache-effectiveness workload.
inline std::vector<FlowSpec> zipf_traffic(const RuleTable& policy, double rate,
                                          double duration, std::size_t pool,
                                          double skew, std::uint64_t seed,
                                          double mean_packets = 5.0,
                                          std::uint32_t ingress_count = 4) {
  TrafficParams tp;
  tp.seed = seed;
  tp.flow_pool = pool;
  tp.zipf_s = skew;
  tp.arrival_rate = rate;
  tp.duration = duration;
  tp.mean_packets = mean_packets;
  tp.ingress_count = ingress_count;
  TrafficGenerator gen(policy, tp);
  return gen.generate();
}

// Heavy-tail workload for the elephant-aware rows (E6/E7): Zipf-α base
// traffic, optionally shaped into a flash crowd, a port-scan mice storm, or
// diurnal churn. Window positions scale with the duration so quick and full
// runs exercise the same phases.
//
// Flows are long-lived and sparse: 40ms between packets, bounded-Pareto
// sizes up to 200 packets. This is the regime the elephant policy targets —
// an idle timeout below the packet gap drops the entry between packets of
// the SAME flow, so a plain cache pays a miss per packet on every flow the
// timeout cannot bridge, while detected elephants ride a pin that does.
inline TrafficParams heavy_tail_params(std::uint64_t seed, double alpha,
                                       double rate, double duration,
                                       std::size_t pool, TrafficMode mode) {
  TrafficParams tp;
  tp.seed = seed;
  tp.flow_pool = pool;
  tp.zipf_s = alpha;
  tp.arrival_rate = rate;
  tp.duration = duration;
  tp.mean_packets = 4.0;
  tp.max_packets = 200.0;
  tp.packet_gap = 0.04;
  tp.ingress_count = 2;
  tp.mode = mode;
  switch (mode) {
    case TrafficMode::kPoissonZipf:
      break;
    case TrafficMode::kFlashCrowd:
      tp.flash_at = 0.4 * duration;
      tp.flash_duration = 0.2 * duration;
      tp.flash_rate_mult = 8.0;
      tp.flash_targets = 6;
      tp.flash_target_prob = 0.9;
      break;
    case TrafficMode::kMiceStorm:
      tp.storm_at = 0.4 * duration;
      tp.storm_duration = 0.3 * duration;
      tp.storm_rate = 1.5 * rate;
      break;
    case TrafficMode::kDiurnal:
      tp.diurnal_period = duration / 3.0;
      tp.diurnal_amplitude = 0.8;
      tp.diurnal_rotate = pool / 8;
      break;
  }
  return tp;
}

// The elephant-policy configuration the heavy-tail rows measure (ON) against
// the plain short-timeout cache (OFF). Shared so E6 and E7 gate the same
// policy point.
inline ElephantParams elephant_policy(bool on) {
  ElephantParams e;
  e.enabled = on;
  // The tracker must out-size the warm header working set or mid-band flows
  // get evicted between visits and never accumulate a guaranteed count.
  e.tracker_capacity = 2048;
  e.threshold = 8;
  // Differentiated leashes against the 35ms base the OFF rows run with: a
  // proven elephant's pin (45ms) bridges the workload's 40ms packet gap, so
  // a long flow stops paying a miss per packet; unproven flows get a 5ms
  // leash that covers nothing but an immediate burst.
  e.idle_timeout = 0.045;
  e.probation_idle_timeout = 0.005;
  e.proactive = true;
  e.mice_bypass = on;
  e.mice_min_packets = 2;
  return e;
}

// Shared execution knobs every Scenario-building bench applies right after
// assembling its params: currently just the burst-mode data plane. Kept in
// one helper so a future knob reaches all benches in one place.
inline void apply_exec_args(ScenarioParams& params, const Args& args) {
  params.burst = static_cast<std::size_t>(args.burst);
}

inline ScenarioParams difane_params(std::uint32_t authorities,
                                    CacheStrategy strategy,
                                    std::size_t cache_capacity = 1u << 20) {
  ScenarioParams params;
  params.mode = Mode::kDifane;
  params.edge_switches = 4;
  params.core_switches = std::max<std::size_t>(2, authorities);
  params.authority_count = authorities;
  params.edge_cache_capacity = cache_capacity;
  params.partitioner.capacity = 1000;
  params.cache_strategy = strategy;
  return params;
}

inline ScenarioParams nox_params(std::size_t cache_capacity = 1u << 20) {
  ScenarioParams params;
  params.mode = Mode::kNox;
  params.edge_switches = 4;
  params.core_switches = 2;
  params.edge_cache_capacity = cache_capacity;
  return params;
}

inline void print_header(const char* experiment, const char* paper_analogue,
                         const char* expectation) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper analogue : %s\n", paper_analogue);
  std::printf("expected shape : %s\n", expectation);
  std::printf("==========================================================\n");
}

}  // namespace difane::bench
