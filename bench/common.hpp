// Shared scenario builders for the experiment harnesses. Each bench binary
// regenerates one table/figure of the DIFANE evaluation (see DESIGN.md's
// experiment index and EXPERIMENTS.md for paper-vs-measured).
#pragma once

#include <cstdio>
#include <string>

#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/rulegen.hpp"
#include "workload/trafficgen.hpp"

namespace difane::bench {

// A pure flow-setup storm: single-packet flows, (almost) all distinct, so
// every arrival exercises the miss path. This is the workload behind the
// paper's throughput comparison.
inline std::vector<FlowSpec> setup_storm(const RuleTable& policy, double rate,
                                         double duration, std::uint64_t seed,
                                         std::uint32_t ingress_count = 4) {
  TrafficParams tp;
  tp.seed = seed;
  tp.flow_pool = 1u << 21;
  tp.zipf_s = 0.0;
  tp.arrival_rate = rate;
  tp.duration = duration;
  tp.mean_packets = 1.0;
  tp.max_packets = 1.0;
  tp.ingress_count = ingress_count;
  TrafficGenerator gen(policy, tp);
  return gen.generate();
}

// Zipf-popular repeated traffic: the cache-effectiveness workload.
inline std::vector<FlowSpec> zipf_traffic(const RuleTable& policy, double rate,
                                          double duration, std::size_t pool,
                                          double skew, std::uint64_t seed,
                                          double mean_packets = 5.0,
                                          std::uint32_t ingress_count = 4) {
  TrafficParams tp;
  tp.seed = seed;
  tp.flow_pool = pool;
  tp.zipf_s = skew;
  tp.arrival_rate = rate;
  tp.duration = duration;
  tp.mean_packets = mean_packets;
  tp.ingress_count = ingress_count;
  TrafficGenerator gen(policy, tp);
  return gen.generate();
}

inline ScenarioParams difane_params(std::uint32_t authorities,
                                    CacheStrategy strategy,
                                    std::size_t cache_capacity = 1u << 20) {
  ScenarioParams params;
  params.mode = Mode::kDifane;
  params.edge_switches = 4;
  params.core_switches = std::max<std::size_t>(2, authorities);
  params.authority_count = authorities;
  params.edge_cache_capacity = cache_capacity;
  params.partitioner.capacity = 1000;
  params.cache_strategy = strategy;
  return params;
}

inline ScenarioParams nox_params(std::size_t cache_capacity = 1u << 20) {
  ScenarioParams params;
  params.mode = Mode::kNox;
  params.edge_switches = 4;
  params.core_switches = 2;
  params.edge_cache_capacity = cache_capacity;
  return params;
}

inline void print_header(const char* experiment, const char* paper_analogue,
                         const char* expectation) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper analogue : %s\n", paper_analogue);
  std::printf("expected shape : %s\n", expectation);
  std::printf("==========================================================\n");
}

}  // namespace difane::bench
