file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_cache_planner.dir/bench_a1_cache_planner.cpp.o"
  "CMakeFiles/bench_a1_cache_planner.dir/bench_a1_cache_planner.cpp.o.d"
  "bench_a1_cache_planner"
  "bench_a1_cache_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_cache_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
