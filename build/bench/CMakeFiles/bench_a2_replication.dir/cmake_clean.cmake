file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_replication.dir/bench_a2_replication.cpp.o"
  "CMakeFiles/bench_a2_replication.dir/bench_a2_replication.cpp.o.d"
  "bench_a2_replication"
  "bench_a2_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
