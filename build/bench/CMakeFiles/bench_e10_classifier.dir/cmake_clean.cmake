file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_classifier.dir/bench_e10_classifier.cpp.o"
  "CMakeFiles/bench_e10_classifier.dir/bench_e10_classifier.cpp.o.d"
  "bench_e10_classifier"
  "bench_e10_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
