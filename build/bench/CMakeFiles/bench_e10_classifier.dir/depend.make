# Empty dependencies file for bench_e10_classifier.
# This may be replaced when dependencies are built.
