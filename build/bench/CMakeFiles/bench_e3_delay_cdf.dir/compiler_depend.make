# Empty compiler generated dependencies file for bench_e3_delay_cdf.
# This may be replaced when dependencies are built.
