file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_partition_tcam.dir/bench_e4_partition_tcam.cpp.o"
  "CMakeFiles/bench_e4_partition_tcam.dir/bench_e4_partition_tcam.cpp.o.d"
  "bench_e4_partition_tcam"
  "bench_e4_partition_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_partition_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
