# Empty dependencies file for bench_e4_partition_tcam.
# This may be replaced when dependencies are built.
