file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_duplication.dir/bench_e5_duplication.cpp.o"
  "CMakeFiles/bench_e5_duplication.dir/bench_e5_duplication.cpp.o.d"
  "bench_e5_duplication"
  "bench_e5_duplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
