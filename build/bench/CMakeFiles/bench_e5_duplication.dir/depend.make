# Empty dependencies file for bench_e5_duplication.
# This may be replaced when dependencies are built.
