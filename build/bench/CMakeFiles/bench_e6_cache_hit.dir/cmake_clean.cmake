file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_cache_hit.dir/bench_e6_cache_hit.cpp.o"
  "CMakeFiles/bench_e6_cache_hit.dir/bench_e6_cache_hit.cpp.o.d"
  "bench_e6_cache_hit"
  "bench_e6_cache_hit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_cache_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
