# Empty dependencies file for bench_e6_cache_hit.
# This may be replaced when dependencies are built.
