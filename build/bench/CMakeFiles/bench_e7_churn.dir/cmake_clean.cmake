file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_churn.dir/bench_e7_churn.cpp.o"
  "CMakeFiles/bench_e7_churn.dir/bench_e7_churn.cpp.o.d"
  "bench_e7_churn"
  "bench_e7_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
