file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_stretch.dir/bench_e8_stretch.cpp.o"
  "CMakeFiles/bench_e8_stretch.dir/bench_e8_stretch.cpp.o.d"
  "bench_e8_stretch"
  "bench_e8_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
