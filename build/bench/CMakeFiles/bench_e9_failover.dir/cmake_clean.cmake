file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_failover.dir/bench_e9_failover.cpp.o"
  "CMakeFiles/bench_e9_failover.dir/bench_e9_failover.cpp.o.d"
  "bench_e9_failover"
  "bench_e9_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
