# Empty dependencies file for bench_e9_failover.
# This may be replaced when dependencies are built.
