file(REMOVE_RECURSE
  "CMakeFiles/enterprise_acl.dir/enterprise_acl.cpp.o"
  "CMakeFiles/enterprise_acl.dir/enterprise_acl.cpp.o.d"
  "enterprise_acl"
  "enterprise_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
