# Empty compiler generated dependencies file for enterprise_acl.
# This may be replaced when dependencies are built.
