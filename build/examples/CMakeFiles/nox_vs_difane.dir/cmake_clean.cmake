file(REMOVE_RECURSE
  "CMakeFiles/nox_vs_difane.dir/nox_vs_difane.cpp.o"
  "CMakeFiles/nox_vs_difane.dir/nox_vs_difane.cpp.o.d"
  "nox_vs_difane"
  "nox_vs_difane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nox_vs_difane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
