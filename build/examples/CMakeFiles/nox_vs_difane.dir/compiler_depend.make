# Empty compiler generated dependencies file for nox_vs_difane.
# This may be replaced when dependencies are built.
