# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for nox_vs_difane.
