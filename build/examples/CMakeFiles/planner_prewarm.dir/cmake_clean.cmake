file(REMOVE_RECURSE
  "CMakeFiles/planner_prewarm.dir/planner_prewarm.cpp.o"
  "CMakeFiles/planner_prewarm.dir/planner_prewarm.cpp.o.d"
  "planner_prewarm"
  "planner_prewarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_prewarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
