# Empty compiler generated dependencies file for planner_prewarm.
# This may be replaced when dependencies are built.
