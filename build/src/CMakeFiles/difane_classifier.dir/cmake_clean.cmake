file(REMOVE_RECURSE
  "CMakeFiles/difane_classifier.dir/classifier/dtree.cpp.o"
  "CMakeFiles/difane_classifier.dir/classifier/dtree.cpp.o.d"
  "CMakeFiles/difane_classifier.dir/classifier/linear.cpp.o"
  "CMakeFiles/difane_classifier.dir/classifier/linear.cpp.o.d"
  "libdifane_classifier.a"
  "libdifane_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
