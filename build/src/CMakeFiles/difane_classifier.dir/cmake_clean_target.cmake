file(REMOVE_RECURSE
  "libdifane_classifier.a"
)
