# Empty compiler generated dependencies file for difane_classifier.
# This may be replaced when dependencies are built.
