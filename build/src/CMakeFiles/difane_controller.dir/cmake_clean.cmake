file(REMOVE_RECURSE
  "CMakeFiles/difane_controller.dir/controller/nox.cpp.o"
  "CMakeFiles/difane_controller.dir/controller/nox.cpp.o.d"
  "libdifane_controller.a"
  "libdifane_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
