file(REMOVE_RECURSE
  "libdifane_controller.a"
)
