# Empty dependencies file for difane_controller.
# This may be replaced when dependencies are built.
