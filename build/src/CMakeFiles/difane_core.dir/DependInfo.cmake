
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/authority.cpp" "src/CMakeFiles/difane_core.dir/core/authority.cpp.o" "gcc" "src/CMakeFiles/difane_core.dir/core/authority.cpp.o.d"
  "/root/repo/src/core/cache.cpp" "src/CMakeFiles/difane_core.dir/core/cache.cpp.o" "gcc" "src/CMakeFiles/difane_core.dir/core/cache.cpp.o.d"
  "/root/repo/src/core/cache_planner.cpp" "src/CMakeFiles/difane_core.dir/core/cache_planner.cpp.o" "gcc" "src/CMakeFiles/difane_core.dir/core/cache_planner.cpp.o.d"
  "/root/repo/src/core/difane_controller.cpp" "src/CMakeFiles/difane_core.dir/core/difane_controller.cpp.o" "gcc" "src/CMakeFiles/difane_core.dir/core/difane_controller.cpp.o.d"
  "/root/repo/src/core/symbolic_verifier.cpp" "src/CMakeFiles/difane_core.dir/core/symbolic_verifier.cpp.o" "gcc" "src/CMakeFiles/difane_core.dir/core/symbolic_verifier.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/difane_core.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/difane_core.dir/core/system.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "src/CMakeFiles/difane_core.dir/core/verifier.cpp.o" "gcc" "src/CMakeFiles/difane_core.dir/core/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/difane_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_ctrlchan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_classifier.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_flowspace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
