file(REMOVE_RECURSE
  "CMakeFiles/difane_core.dir/core/authority.cpp.o"
  "CMakeFiles/difane_core.dir/core/authority.cpp.o.d"
  "CMakeFiles/difane_core.dir/core/cache.cpp.o"
  "CMakeFiles/difane_core.dir/core/cache.cpp.o.d"
  "CMakeFiles/difane_core.dir/core/cache_planner.cpp.o"
  "CMakeFiles/difane_core.dir/core/cache_planner.cpp.o.d"
  "CMakeFiles/difane_core.dir/core/difane_controller.cpp.o"
  "CMakeFiles/difane_core.dir/core/difane_controller.cpp.o.d"
  "CMakeFiles/difane_core.dir/core/symbolic_verifier.cpp.o"
  "CMakeFiles/difane_core.dir/core/symbolic_verifier.cpp.o.d"
  "CMakeFiles/difane_core.dir/core/system.cpp.o"
  "CMakeFiles/difane_core.dir/core/system.cpp.o.d"
  "CMakeFiles/difane_core.dir/core/verifier.cpp.o"
  "CMakeFiles/difane_core.dir/core/verifier.cpp.o.d"
  "libdifane_core.a"
  "libdifane_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
