file(REMOVE_RECURSE
  "libdifane_core.a"
)
