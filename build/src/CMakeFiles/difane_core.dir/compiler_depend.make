# Empty compiler generated dependencies file for difane_core.
# This may be replaced when dependencies are built.
