file(REMOVE_RECURSE
  "CMakeFiles/difane_ctrlchan.dir/ctrlchan/switch_agent.cpp.o"
  "CMakeFiles/difane_ctrlchan.dir/ctrlchan/switch_agent.cpp.o.d"
  "libdifane_ctrlchan.a"
  "libdifane_ctrlchan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_ctrlchan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
