file(REMOVE_RECURSE
  "libdifane_ctrlchan.a"
)
