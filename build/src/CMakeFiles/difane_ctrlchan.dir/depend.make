# Empty dependencies file for difane_ctrlchan.
# This may be replaced when dependencies are built.
