
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowspace/algebra.cpp" "src/CMakeFiles/difane_flowspace.dir/flowspace/algebra.cpp.o" "gcc" "src/CMakeFiles/difane_flowspace.dir/flowspace/algebra.cpp.o.d"
  "/root/repo/src/flowspace/dependency.cpp" "src/CMakeFiles/difane_flowspace.dir/flowspace/dependency.cpp.o" "gcc" "src/CMakeFiles/difane_flowspace.dir/flowspace/dependency.cpp.o.d"
  "/root/repo/src/flowspace/header.cpp" "src/CMakeFiles/difane_flowspace.dir/flowspace/header.cpp.o" "gcc" "src/CMakeFiles/difane_flowspace.dir/flowspace/header.cpp.o.d"
  "/root/repo/src/flowspace/minimize.cpp" "src/CMakeFiles/difane_flowspace.dir/flowspace/minimize.cpp.o" "gcc" "src/CMakeFiles/difane_flowspace.dir/flowspace/minimize.cpp.o.d"
  "/root/repo/src/flowspace/rule.cpp" "src/CMakeFiles/difane_flowspace.dir/flowspace/rule.cpp.o" "gcc" "src/CMakeFiles/difane_flowspace.dir/flowspace/rule.cpp.o.d"
  "/root/repo/src/flowspace/rule_table.cpp" "src/CMakeFiles/difane_flowspace.dir/flowspace/rule_table.cpp.o" "gcc" "src/CMakeFiles/difane_flowspace.dir/flowspace/rule_table.cpp.o.d"
  "/root/repo/src/flowspace/ternary.cpp" "src/CMakeFiles/difane_flowspace.dir/flowspace/ternary.cpp.o" "gcc" "src/CMakeFiles/difane_flowspace.dir/flowspace/ternary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/difane_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
