file(REMOVE_RECURSE
  "CMakeFiles/difane_flowspace.dir/flowspace/algebra.cpp.o"
  "CMakeFiles/difane_flowspace.dir/flowspace/algebra.cpp.o.d"
  "CMakeFiles/difane_flowspace.dir/flowspace/dependency.cpp.o"
  "CMakeFiles/difane_flowspace.dir/flowspace/dependency.cpp.o.d"
  "CMakeFiles/difane_flowspace.dir/flowspace/header.cpp.o"
  "CMakeFiles/difane_flowspace.dir/flowspace/header.cpp.o.d"
  "CMakeFiles/difane_flowspace.dir/flowspace/minimize.cpp.o"
  "CMakeFiles/difane_flowspace.dir/flowspace/minimize.cpp.o.d"
  "CMakeFiles/difane_flowspace.dir/flowspace/rule.cpp.o"
  "CMakeFiles/difane_flowspace.dir/flowspace/rule.cpp.o.d"
  "CMakeFiles/difane_flowspace.dir/flowspace/rule_table.cpp.o"
  "CMakeFiles/difane_flowspace.dir/flowspace/rule_table.cpp.o.d"
  "CMakeFiles/difane_flowspace.dir/flowspace/ternary.cpp.o"
  "CMakeFiles/difane_flowspace.dir/flowspace/ternary.cpp.o.d"
  "libdifane_flowspace.a"
  "libdifane_flowspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_flowspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
