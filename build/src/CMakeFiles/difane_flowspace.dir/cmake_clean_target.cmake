file(REMOVE_RECURSE
  "libdifane_flowspace.a"
)
