# Empty compiler generated dependencies file for difane_flowspace.
# This may be replaced when dependencies are built.
