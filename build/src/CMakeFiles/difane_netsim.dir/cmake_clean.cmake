file(REMOVE_RECURSE
  "CMakeFiles/difane_netsim.dir/netsim/engine.cpp.o"
  "CMakeFiles/difane_netsim.dir/netsim/engine.cpp.o.d"
  "CMakeFiles/difane_netsim.dir/netsim/link.cpp.o"
  "CMakeFiles/difane_netsim.dir/netsim/link.cpp.o.d"
  "CMakeFiles/difane_netsim.dir/netsim/topology.cpp.o"
  "CMakeFiles/difane_netsim.dir/netsim/topology.cpp.o.d"
  "CMakeFiles/difane_netsim.dir/netsim/tracer.cpp.o"
  "CMakeFiles/difane_netsim.dir/netsim/tracer.cpp.o.d"
  "libdifane_netsim.a"
  "libdifane_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
