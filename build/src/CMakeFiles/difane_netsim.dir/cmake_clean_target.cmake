file(REMOVE_RECURSE
  "libdifane_netsim.a"
)
