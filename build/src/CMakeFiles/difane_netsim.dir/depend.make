# Empty dependencies file for difane_netsim.
# This may be replaced when dependencies are built.
