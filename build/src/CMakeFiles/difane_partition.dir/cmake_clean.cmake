file(REMOVE_RECURSE
  "CMakeFiles/difane_partition.dir/partition/incremental.cpp.o"
  "CMakeFiles/difane_partition.dir/partition/incremental.cpp.o.d"
  "CMakeFiles/difane_partition.dir/partition/partitioner.cpp.o"
  "CMakeFiles/difane_partition.dir/partition/partitioner.cpp.o.d"
  "CMakeFiles/difane_partition.dir/partition/plan.cpp.o"
  "CMakeFiles/difane_partition.dir/partition/plan.cpp.o.d"
  "libdifane_partition.a"
  "libdifane_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
