file(REMOVE_RECURSE
  "libdifane_partition.a"
)
