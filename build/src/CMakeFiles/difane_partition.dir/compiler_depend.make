# Empty compiler generated dependencies file for difane_partition.
# This may be replaced when dependencies are built.
