file(REMOVE_RECURSE
  "CMakeFiles/difane_switchsim.dir/switchsim/flow_table.cpp.o"
  "CMakeFiles/difane_switchsim.dir/switchsim/flow_table.cpp.o.d"
  "CMakeFiles/difane_switchsim.dir/switchsim/sw.cpp.o"
  "CMakeFiles/difane_switchsim.dir/switchsim/sw.cpp.o.d"
  "libdifane_switchsim.a"
  "libdifane_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
