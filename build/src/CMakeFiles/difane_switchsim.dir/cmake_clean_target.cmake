file(REMOVE_RECURSE
  "libdifane_switchsim.a"
)
