# Empty compiler generated dependencies file for difane_switchsim.
# This may be replaced when dependencies are built.
