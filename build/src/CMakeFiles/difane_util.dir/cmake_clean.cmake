file(REMOVE_RECURSE
  "CMakeFiles/difane_util.dir/util/log.cpp.o"
  "CMakeFiles/difane_util.dir/util/log.cpp.o.d"
  "CMakeFiles/difane_util.dir/util/stats.cpp.o"
  "CMakeFiles/difane_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/difane_util.dir/util/table.cpp.o"
  "CMakeFiles/difane_util.dir/util/table.cpp.o.d"
  "libdifane_util.a"
  "libdifane_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
