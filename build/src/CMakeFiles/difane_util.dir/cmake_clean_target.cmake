file(REMOVE_RECURSE
  "libdifane_util.a"
)
