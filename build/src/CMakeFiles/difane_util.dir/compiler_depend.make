# Empty compiler generated dependencies file for difane_util.
# This may be replaced when dependencies are built.
