
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/rulegen.cpp" "src/CMakeFiles/difane_workload.dir/workload/rulegen.cpp.o" "gcc" "src/CMakeFiles/difane_workload.dir/workload/rulegen.cpp.o.d"
  "/root/repo/src/workload/serialize.cpp" "src/CMakeFiles/difane_workload.dir/workload/serialize.cpp.o" "gcc" "src/CMakeFiles/difane_workload.dir/workload/serialize.cpp.o.d"
  "/root/repo/src/workload/trafficgen.cpp" "src/CMakeFiles/difane_workload.dir/workload/trafficgen.cpp.o" "gcc" "src/CMakeFiles/difane_workload.dir/workload/trafficgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/difane_flowspace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
