file(REMOVE_RECURSE
  "CMakeFiles/difane_workload.dir/workload/rulegen.cpp.o"
  "CMakeFiles/difane_workload.dir/workload/rulegen.cpp.o.d"
  "CMakeFiles/difane_workload.dir/workload/serialize.cpp.o"
  "CMakeFiles/difane_workload.dir/workload/serialize.cpp.o.d"
  "CMakeFiles/difane_workload.dir/workload/trafficgen.cpp.o"
  "CMakeFiles/difane_workload.dir/workload/trafficgen.cpp.o.d"
  "libdifane_workload.a"
  "libdifane_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
