file(REMOVE_RECURSE
  "libdifane_workload.a"
)
