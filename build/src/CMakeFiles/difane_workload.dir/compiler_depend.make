# Empty compiler generated dependencies file for difane_workload.
# This may be replaced when dependencies are built.
