
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_planner.cpp" "tests/CMakeFiles/test_cache_planner.dir/test_cache_planner.cpp.o" "gcc" "tests/CMakeFiles/test_cache_planner.dir/test_cache_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/difane_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_classifier.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_ctrlchan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_flowspace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/difane_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
