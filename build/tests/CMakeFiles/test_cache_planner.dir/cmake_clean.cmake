file(REMOVE_RECURSE
  "CMakeFiles/test_cache_planner.dir/test_cache_planner.cpp.o"
  "CMakeFiles/test_cache_planner.dir/test_cache_planner.cpp.o.d"
  "test_cache_planner"
  "test_cache_planner.pdb"
  "test_cache_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
