# Empty compiler generated dependencies file for test_cache_planner.
# This may be replaced when dependencies are built.
