file(REMOVE_RECURSE
  "CMakeFiles/test_ctrlchan.dir/test_ctrlchan.cpp.o"
  "CMakeFiles/test_ctrlchan.dir/test_ctrlchan.cpp.o.d"
  "test_ctrlchan"
  "test_ctrlchan.pdb"
  "test_ctrlchan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctrlchan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
