# Empty compiler generated dependencies file for test_ctrlchan.
# This may be replaced when dependencies are built.
