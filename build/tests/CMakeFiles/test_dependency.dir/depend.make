# Empty dependencies file for test_dependency.
# This may be replaced when dependencies are built.
