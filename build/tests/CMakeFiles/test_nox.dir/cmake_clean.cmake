file(REMOVE_RECURSE
  "CMakeFiles/test_nox.dir/test_nox.cpp.o"
  "CMakeFiles/test_nox.dir/test_nox.cpp.o.d"
  "test_nox"
  "test_nox.pdb"
  "test_nox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
