# Empty compiler generated dependencies file for test_nox.
# This may be replaced when dependencies are built.
