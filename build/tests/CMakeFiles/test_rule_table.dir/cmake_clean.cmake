file(REMOVE_RECURSE
  "CMakeFiles/test_rule_table.dir/test_rule_table.cpp.o"
  "CMakeFiles/test_rule_table.dir/test_rule_table.cpp.o.d"
  "test_rule_table"
  "test_rule_table.pdb"
  "test_rule_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rule_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
