# Empty dependencies file for test_rule_table.
# This may be replaced when dependencies are built.
