file(REMOVE_RECURSE
  "CMakeFiles/test_service_queue.dir/test_service_queue.cpp.o"
  "CMakeFiles/test_service_queue.dir/test_service_queue.cpp.o.d"
  "test_service_queue"
  "test_service_queue.pdb"
  "test_service_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
