# Empty compiler generated dependencies file for test_service_queue.
# This may be replaced when dependencies are built.
