file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic_verifier.dir/test_symbolic_verifier.cpp.o"
  "CMakeFiles/test_symbolic_verifier.dir/test_symbolic_verifier.cpp.o.d"
  "test_symbolic_verifier"
  "test_symbolic_verifier.pdb"
  "test_symbolic_verifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
