# Empty dependencies file for test_symbolic_verifier.
# This may be replaced when dependencies are built.
