file(REMOVE_RECURSE
  "CMakeFiles/test_system_difane.dir/test_system_difane.cpp.o"
  "CMakeFiles/test_system_difane.dir/test_system_difane.cpp.o.d"
  "test_system_difane"
  "test_system_difane.pdb"
  "test_system_difane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_difane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
