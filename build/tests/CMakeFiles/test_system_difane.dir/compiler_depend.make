# Empty compiler generated dependencies file for test_system_difane.
# This may be replaced when dependencies are built.
