file(REMOVE_RECURSE
  "CMakeFiles/test_topology_line.dir/test_topology_line.cpp.o"
  "CMakeFiles/test_topology_line.dir/test_topology_line.cpp.o.d"
  "test_topology_line"
  "test_topology_line.pdb"
  "test_topology_line[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
