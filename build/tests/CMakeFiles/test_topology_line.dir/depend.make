# Empty dependencies file for test_topology_line.
# This may be replaced when dependencies are built.
