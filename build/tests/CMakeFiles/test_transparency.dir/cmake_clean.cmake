file(REMOVE_RECURSE
  "CMakeFiles/test_transparency.dir/test_transparency.cpp.o"
  "CMakeFiles/test_transparency.dir/test_transparency.cpp.o.d"
  "test_transparency"
  "test_transparency.pdb"
  "test_transparency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
