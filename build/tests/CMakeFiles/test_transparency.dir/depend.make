# Empty dependencies file for test_transparency.
# This may be replaced when dependencies are built.
