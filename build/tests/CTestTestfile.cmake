# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_bitvec[1]_include.cmake")
include("/root/repo/build/tests/test_ternary[1]_include.cmake")
include("/root/repo/build/tests/test_header[1]_include.cmake")
include("/root/repo/build/tests/test_rule_table[1]_include.cmake")
include("/root/repo/build/tests/test_algebra[1]_include.cmake")
include("/root/repo/build/tests/test_dependency[1]_include.cmake")
include("/root/repo/build/tests/test_classifier[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_flow_table[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_service_queue[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_nox[1]_include.cmake")
include("/root/repo/build/tests/test_system_difane[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ctrlchan[1]_include.cmake")
include("/root/repo/build/tests/test_transparency[1]_include.cmake")
include("/root/repo/build/tests/test_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_verifier[1]_include.cmake")
include("/root/repo/build/tests/test_cache_planner[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_topology_line[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic_verifier[1]_include.cmake")
