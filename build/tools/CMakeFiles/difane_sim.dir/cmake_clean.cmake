file(REMOVE_RECURSE
  "CMakeFiles/difane_sim.dir/difane_sim.cpp.o"
  "CMakeFiles/difane_sim.dir/difane_sim.cpp.o.d"
  "difane_sim"
  "difane_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difane_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
