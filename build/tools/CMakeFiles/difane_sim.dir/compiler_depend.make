# Empty compiler generated dependencies file for difane_sim.
# This may be replaced when dependencies are built.
