// Enterprise scenario: a campus-scale ACL (thousands of rules) served by
// DIFANE on a two-tier network under realistic Zipf traffic. Prints the
// partitioning summary, cache behaviour over time, and the delay/stretch
// profile an operator would care about.
#include <cstdio>

#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/rulegen.hpp"
#include "workload/trafficgen.hpp"

using namespace difane;

int main(int argc, char** argv) {
  const std::size_t rules = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5000;
  const double duration = argc > 2 ? std::atof(argv[2]) : 3.0;

  std::printf("Enterprise ACL scenario: %zu rules, %.1fs of traffic\n\n", rules,
              duration);
  const auto policy = classbench_like(rules, 2026);

  ScenarioParams params;
  params.mode = Mode::kDifane;
  params.edge_switches = 8;
  params.core_switches = 4;
  params.authority_count = 4;
  params.edge_cache_capacity = 2000;  // a realistic TCAM budget
  params.partitioner.capacity = 2000;
  params.cache_strategy = CacheStrategy::kCoverSet;
  Scenario scenario(policy, params);

  const auto& plan = *scenario.plan();
  std::printf("partitioning: %zu partitions, duplication %.2fx\n",
              plan.partitions().size(), plan.duplication_factor());
  const auto loads = plan.rules_per_authority();
  for (std::size_t a = 0; a < loads.size(); ++a) {
    std::printf("  authority switch %zu: %zu TCAM entries\n", a, loads[a]);
  }

  TrafficParams tp;
  tp.seed = 99;
  tp.flow_pool = 50000;
  tp.zipf_s = 1.0;
  tp.arrival_rate = 5000.0;
  tp.duration = duration;
  tp.mean_packets = 8.0;
  tp.ingress_count = 8;
  TrafficGenerator gen(policy, tp);
  const auto flows = gen.generate();
  std::printf("\ntraffic: %zu flows, Zipf(s=%.1f) over %zu distinct headers\n",
              flows.size(), tp.zipf_s, tp.flow_pool);

  const auto& stats = scenario.run(flows);

  std::printf("\nresults\n-------\n");
  std::printf("packets: %s\n", stats.tracer.summary().c_str());
  std::printf("ingress cache hit fraction: %.1f%%\n",
              stats.cache_hit_fraction() * 100.0);
  std::printf("cache installs: %llu (%llu rules; %.1f rules/install)\n",
              static_cast<unsigned long long>(stats.cache_installs),
              static_cast<unsigned long long>(stats.cache_rules_installed),
              stats.cache_installs
                  ? static_cast<double>(stats.cache_rules_installed) /
                        static_cast<double>(stats.cache_installs)
                  : 0.0);
  TextTable delays({"metric", "p50", "p90", "p99"});
  const auto& first = stats.tracer.first_packet_delay();
  const auto& later = stats.tracer.later_packet_delay();
  if (!first.empty()) {
    delays.add_row({"first-packet delay (ms)",
                    TextTable::num(first.percentile(0.5) * 1e3, 3),
                    TextTable::num(first.percentile(0.9) * 1e3, 3),
                    TextTable::num(first.percentile(0.99) * 1e3, 3)});
  }
  if (!later.empty()) {
    delays.add_row({"later-packet delay (ms)",
                    TextTable::num(later.percentile(0.5) * 1e3, 3),
                    TextTable::num(later.percentile(0.9) * 1e3, 3),
                    TextTable::num(later.percentile(0.99) * 1e3, 3)});
  }
  if (!stats.stretch.empty()) {
    delays.add_row({"path stretch (x)", TextTable::num(stats.stretch.percentile(0.5), 2),
                    TextTable::num(stats.stretch.percentile(0.9), 2),
                    TextTable::num(stats.stretch.percentile(0.99), 2)});
  }
  std::printf("\n%s", delays.render().c_str());

  std::printf("\nper-switch state at end of run:\n");
  for (SwitchId id = 0; id < scenario.net().switch_count(); ++id) {
    std::printf("  %s\n", scenario.net().sw(id).describe().c_str());
  }
  return 0;
}
