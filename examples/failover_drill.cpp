// Failover drill: kill an authority switch mid-run and watch DIFANE
// re-point its partitions to the pre-positioned backups. Prints a timeline
// of the loss window and the recovery.
#include <cstdio>

#include "core/system.hpp"
#include "workload/rulegen.hpp"
#include "workload/trafficgen.hpp"

using namespace difane;

int main() {
  std::printf("DIFANE failover drill\n=====================\n\n");
  const auto policy = classbench_like(1000, 404);

  ScenarioParams params;
  params.mode = Mode::kDifane;
  params.edge_switches = 4;
  params.core_switches = 3;
  params.authority_count = 3;
  params.edge_cache_capacity = 1u << 16;
  params.partitioner.capacity = 200;
  // Microflow caching keeps redirects flowing, so the drill exercises the
  // authority switches throughout.
  params.cache_strategy = CacheStrategy::kMicroflow;
  params.timings.failover_detect = 0.1;
  Scenario scenario(policy, params);

  const auto authorities = scenario.difane()->authority_switches();
  std::printf("authority switches:");
  for (const auto sw : authorities) std::printf(" %u", sw);
  std::printf("\npartitions: %zu\n", scenario.plan()->partitions().size());
  std::size_t victim_partitions = 0;
  for (const auto& p : scenario.plan()->partitions()) {
    if (scenario.difane()->authority_switch(p.primary) == authorities[0]) {
      ++victim_partitions;
    }
  }
  std::printf("victim: switch %u (primary for %zu partitions)\n", authorities[0],
              victim_partitions);
  std::printf("timeline: traffic 0..4s; failure at t=2.0s; detection after %.0f ms\n\n",
              params.timings.failover_detect * 1e3);

  TrafficParams tp;
  tp.seed = 505;
  tp.flow_pool = 1u << 20;
  tp.zipf_s = 0.0;
  tp.arrival_rate = 3000.0;
  tp.duration = 4.0;
  tp.mean_packets = 1.0;
  tp.max_packets = 1.0;
  tp.ingress_count = 4;
  TrafficGenerator gen(policy, tp);
  const auto flows = gen.generate();

  scenario.schedule_authority_failure(2.0, authorities[0]);
  const auto& stats = scenario.run(flows);

  const auto lost = stats.tracer.dropped(DropReason::kSwitchFailed) +
                    stats.tracer.dropped(DropReason::kUnreachable);
  std::printf("injected flows:        %zu\n", flows.size());
  std::printf("completed setups:      %llu (%.2f%%)\n",
              static_cast<unsigned long long>(stats.setup_completions.total()),
              100.0 * static_cast<double>(stats.setup_completions.total()) /
                  static_cast<double>(flows.size()));
  std::printf("lost in failover:      %llu packets (%.2f%% of traffic)\n",
              static_cast<unsigned long long>(lost),
              100.0 * static_cast<double>(lost) /
                  static_cast<double>(stats.tracer.injected()));
  std::printf("expected loss window:  ~%.0f ms of the victim's share (1/%zu of "
              "flow space)\n",
              params.timings.failover_detect * 1e3, authorities.size());
  std::printf("\nfinal state:\n");
  for (SwitchId id = 0; id < scenario.net().switch_count(); ++id) {
    std::printf("  %s\n", scenario.net().sw(id).describe().c_str());
  }
  std::printf("\nAfter detection, partition rules at every ingress were "
              "re-pointed to the backup authority switches, which already "
              "held replicated authority rules — no controller round trip on "
              "the packet path at any time.\n");
  return 0;
}
