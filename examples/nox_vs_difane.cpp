// Side-by-side comparison: the same policy and the same traffic served by a
// NOX-style reactive controller and by DIFANE. Prints the comparison table
// that summarizes the paper's core claims.
#include <cstdio>

#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/rulegen.hpp"
#include "workload/trafficgen.hpp"

using namespace difane;

namespace {

struct RunResult {
  ScenarioStats stats;
};

ScenarioStats run(Mode mode, const RuleTable& policy,
                  const std::vector<FlowSpec>& flows) {
  ScenarioParams params;
  params.mode = mode;
  params.edge_switches = 4;
  params.core_switches = 2;
  params.authority_count = 2;
  params.edge_cache_capacity = 1u << 16;
  params.partitioner.capacity = 500;
  params.cache_strategy = CacheStrategy::kDependentSet;
  Scenario scenario(policy, params);
  return scenario.run(flows);
}

std::string ms(const SampleSet& s, double p) {
  return s.empty() ? "-" : TextTable::num(s.percentile(p) * 1e3, 3);
}

}  // namespace

int main() {
  std::printf("NOX vs DIFANE, same policy, same traffic\n");
  std::printf("========================================\n\n");

  const auto policy = classbench_like(2000, 777);
  TrafficParams tp;
  tp.seed = 778;
  tp.flow_pool = 20000;
  tp.zipf_s = 0.9;
  tp.arrival_rate = 30000.0;  // approaching NOX's controller capacity
  tp.duration = 1.0;
  tp.mean_packets = 3.0;
  tp.packet_gap = 0.02;
  tp.ingress_count = 4;
  TrafficGenerator gen1(policy, tp), gen2(policy, tp);
  const auto flows_nox = gen1.generate();
  const auto flows_difane = gen2.generate();
  std::printf("policy: %zu rules; traffic: %zu flows at %.0f flows/s\n\n",
              policy.size(), flows_nox.size(), tp.arrival_rate);

  const auto nox = run(Mode::kNox, policy, flows_nox);
  const auto difane = run(Mode::kDifane, policy, flows_difane);

  auto row = [](const char* metric, const std::string& n, const std::string& d) {
    return std::vector<std::string>{metric, n, d};
  };
  TextTable table({"metric", "NOX", "DIFANE"});
  table.add_row(row("setup completions",
                    TextTable::integer(static_cast<long long>(nox.setup_completions.total())),
                    TextTable::integer(static_cast<long long>(difane.setup_completions.total()))));
  table.add_row(row("overload drops",
                    TextTable::integer(static_cast<long long>(nox.queue_rejects)),
                    TextTable::integer(static_cast<long long>(difane.queue_rejects))));
  table.add_row(row("first-packet delay p50 (ms)",
                    ms(nox.tracer.first_packet_delay(), 0.5),
                    ms(difane.tracer.first_packet_delay(), 0.5)));
  table.add_row(row("first-packet delay p99 (ms)",
                    ms(nox.tracer.first_packet_delay(), 0.99),
                    ms(difane.tracer.first_packet_delay(), 0.99)));
  table.add_row(row("later-packet delay p50 (ms)",
                    ms(nox.tracer.later_packet_delay(), 0.5),
                    ms(difane.tracer.later_packet_delay(), 0.5)));
  table.add_row(row("ingress cache hit %",
                    TextTable::num(nox.cache_hit_fraction() * 100.0, 1),
                    TextTable::num(difane.cache_hit_fraction() * 100.0, 1)));
  table.add_row(row("packets delivered",
                    TextTable::integer(static_cast<long long>(nox.tracer.delivered())),
                    TextTable::integer(static_cast<long long>(difane.tracer.delivered()))));
  std::printf("%s\n", table.render().c_str());

  std::printf("Packets through the control plane: NOX punts every miss to the "
              "controller;\nDIFANE keeps misses in the data plane via "
              "authority switches (redirects: %llu).\n",
              static_cast<unsigned long long>(difane.redirects));
  return 0;
}
