// Pre-warmed caches: instead of waiting for misses, the controller runs the
// offline cache planner against expected traffic weights and pushes the
// chosen (spliced) rules into every ingress cache before traffic starts.
// Compares cold-start vs pre-warmed first-second behaviour.
#include <cstdio>

#include "core/cache_planner.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/rulegen.hpp"

using namespace difane;

namespace {

ScenarioParams base_params() {
  ScenarioParams params;
  params.mode = Mode::kDifane;
  params.edge_switches = 4;
  params.core_switches = 2;
  params.authority_count = 1;  // one authority: planner shadows point there
  params.edge_cache_capacity = 1000;
  params.partitioner.capacity = 5000;  // single partition; plan on the policy
  params.cache_strategy = CacheStrategy::kCoverSet;
  return params;
}

ScenarioStats run(const RuleTable& policy, bool prewarm, std::size_t budget) {
  Scenario scenario(policy, base_params());
  if (prewarm) {
    const auto graph = build_dependency_graph(policy);
    const auto plan = plan_cache(policy, graph, CacheStrategy::kCoverSet, budget);
    const SwitchId authority = scenario.difane()->authority_switches()[0];
    const auto rules =
        materialize_plan(policy, graph, plan, CacheStrategy::kCoverSet, authority,
                         /*synth base=*/0x70000000u);
    std::printf("  planner chose %zu rules (%zu entries, expected hit %.1f%%)\n",
                plan.chosen.size(), rules.size(), plan.expected_hit_rate() * 100.0);
    // Push the planned rules into every ingress cache. Protectors first;
    // infinite timeouts (pinned entries — the plan is the budget).
    for (std::uint32_t e = 0; e < 4; ++e) {
      auto ordered = rules;
      std::sort(ordered.begin(), ordered.end(), rule_before);
      std::vector<RuleId> installed;
      for (const auto& rule : ordered) {
        std::vector<RuleId> guards;
        if (rule.action.type != ActionType::kEncap) guards = installed;
        scenario.net()
            .sw(scenario.ingress_switch(e))
            .table()
            .install(rule, Band::kCache, 0.0, /*idle=*/0.0, /*hard=*/0.0, guards);
        installed.push_back(rule.id);
      }
    }
  }
  TrafficParams tp;
  tp.seed = 321;
  tp.flow_pool = 30000;
  tp.zipf_s = 0.9;
  tp.arrival_rate = 8000.0;
  tp.duration = 1.0;
  tp.mean_packets = 2.0;
  tp.ingress_count = 4;
  TrafficGenerator gen(policy, tp);
  return scenario.run(gen.generate());
}

}  // namespace

int main() {
  std::printf("Offline cache planning: cold start vs pre-warmed ingress caches\n");
  std::printf("================================================================\n\n");
  // Zipf-weighted rules so the planner has meaningful popularity data.
  RuleGenParams rp;
  rp.num_rules = 1500;
  rp.seed = 2027;
  rp.weight_mode = WeightMode::kZipfByIndex;
  rp.chain_count = 30;
  rp.chain_depth = 5;
  const auto policy = generate_policy(rp);
  std::printf("policy: %zu rules, Zipf-weighted popularity\n\n", policy.size());

  std::printf("cold start:\n");
  const auto cold = run(policy, false, 0);
  std::printf("pre-warmed (budget 500 entries):\n");
  const auto warm = run(policy, true, 500);

  TextTable table({"metric", "cold", "pre-warmed"});
  table.add_row({"ingress cache hit %", TextTable::num(cold.cache_hit_fraction() * 100, 1),
                 TextTable::num(warm.cache_hit_fraction() * 100, 1)});
  table.add_row({"redirects", TextTable::integer(static_cast<long long>(cold.redirects)),
                 TextTable::integer(static_cast<long long>(warm.redirects))});
  table.add_row({"cache installs (reactive)",
                 TextTable::integer(static_cast<long long>(cold.cache_installs)),
                 TextTable::integer(static_cast<long long>(warm.cache_installs))});
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nPre-warming lifts the steady hit rate: the planner's spliced rules\n"
      "absorb popular traffic from the very first packet. The trade-off is\n"
      "visible too — pinned cover-set shadows keep bouncing contested\n"
      "overlap regions to the authority switch (counted as redirects), the\n"
      "price of preserving exact semantics without caching whole chains.\n");
  return 0;
}
