// Quickstart: the DIFANE pipeline end to end on a policy small enough to
// read. Builds a 7-rule policy, partitions it across two authority
// switches, shows the partition plan and the rules installed in each
// switch, then pushes a few packets through and narrates what happens.
#include <cstdio>

#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/rulegen.hpp"

using namespace difane;

namespace {

RuleTable build_policy() {
  // An enterprise-flavored mini ACL:
  //   block a quarantined /24, allow web+ssh to the server block,
  //   drop all other TCP to the servers, default-forward everything else.
  RuleTable policy;
  RuleId id = 0;

  auto add = [&](Priority priority, Ternary match, Action action) {
    Rule r;
    r.id = id++;
    r.priority = priority;
    r.match = match;
    r.action = action;
    r.weight = 0.1;
    policy.add(r);
  };

  Ternary quarantine;
  match_prefix(quarantine, Field::kIpSrc, make_ipv4(10, 66, 6, 0), 24);
  add(500, quarantine, Action::drop());

  Ternary web;
  match_prefix(web, Field::kIpDst, make_ipv4(10, 1, 0, 0), 16);
  match_exact(web, Field::kIpProto, 6);
  match_exact(web, Field::kTpDst, 80);
  add(400, web, Action::forward(1));

  Ternary ssh = web;
  // (rebuild rather than mutate: ssh needs port 22)
  ssh = Ternary();
  match_prefix(ssh, Field::kIpDst, make_ipv4(10, 1, 0, 0), 16);
  match_exact(ssh, Field::kIpProto, 6);
  match_exact(ssh, Field::kTpDst, 22);
  add(400, ssh, Action::forward(1));

  Ternary tcp_servers;
  match_prefix(tcp_servers, Field::kIpDst, make_ipv4(10, 1, 0, 0), 16);
  match_exact(tcp_servers, Field::kIpProto, 6);
  add(300, tcp_servers, Action::drop());

  Ternary udp_monitor;
  match_exact(udp_monitor, Field::kIpProto, 17);
  match_exact(udp_monitor, Field::kTpDst, 514);  // syslog
  add(200, udp_monitor, Action::forward(2));

  Ternary dns;
  match_exact(dns, Field::kIpProto, 17);
  match_exact(dns, Field::kTpDst, 53);
  add(200, dns, Action::forward(0));

  add(0, Ternary::wildcard(), Action::forward(0));
  return policy;
}

BitVec packet(std::uint32_t src, std::uint32_t dst, std::uint8_t proto,
              std::uint16_t dport) {
  return PacketBuilder().ip_src(src).ip_dst(dst).ip_proto(proto).tp_dst(dport).build();
}

}  // namespace

int main() {
  std::printf("DIFANE quickstart\n=================\n\n");
  const RuleTable policy = build_policy();

  std::printf("policy (%zu rules):\n", policy.size());
  for (const auto& rule : policy.rules()) {
    std::printf("  %s\n", rule.to_string().c_str());
  }

  // Two edge switches, two core switches; both cores act as authorities.
  ScenarioParams params;
  params.mode = Mode::kDifane;
  params.edge_switches = 2;
  params.core_switches = 2;
  params.authority_count = 2;
  params.edge_cache_capacity = 100;
  params.partitioner.capacity = 4;  // force a real partition
  params.cache_strategy = CacheStrategy::kCoverSet;
  Scenario scenario(policy, params);

  std::printf("\npartition plan (%zu partitions over %u authority switches):\n",
              scenario.plan()->partitions().size(), scenario.plan()->authority_count());
  for (const auto& p : scenario.plan()->partitions()) {
    std::printf("  partition %u -> authority %u (backup %u): %zu rules, region %s\n",
                p.id, p.primary, p.backup, p.rules.size(),
                pattern_to_string(p.region).c_str());
  }

  std::printf("\nswitch tables after proactive install:\n");
  for (SwitchId id = 0; id < scenario.net().switch_count(); ++id) {
    std::printf("  %s\n", scenario.net().sw(id).describe().c_str());
  }

  // Drive a handful of flows: same flow twice (cache hit on the second),
  // a quarantined source, and a DNS lookup.
  std::vector<FlowSpec> flows;
  auto flow = [&](std::uint64_t id, BitVec header, double start) {
    FlowSpec f;
    f.id = id;
    f.header = header;
    f.start = start;
    f.packets = 2;           // second packet shows the cached fast path
    f.packet_gap = 0.01;
    f.ingress_index = 0;
    flows.push_back(f);
  };
  flow(1, packet(make_ipv4(192, 168, 1, 5), make_ipv4(10, 1, 3, 4), 6, 80), 0.001);
  flow(2, packet(make_ipv4(10, 66, 6, 66), make_ipv4(10, 1, 3, 4), 6, 80), 0.050);
  flow(3, packet(make_ipv4(192, 168, 1, 9), make_ipv4(8, 8, 8, 8), 17, 53), 0.100);

  const auto& stats = scenario.run(flows);

  std::printf("\nrun summary:\n  %s\n", stats.tracer.summary().c_str());
  std::printf("  redirects (first packets via authority): %llu\n",
              static_cast<unsigned long long>(stats.redirects));
  std::printf("  ingress cache hits (later packets):      %llu\n",
              static_cast<unsigned long long>(stats.ingress_cache_hits));
  std::printf("  cache installs pushed to ingress:        %llu (%llu rules)\n",
              static_cast<unsigned long long>(stats.cache_installs),
              static_cast<unsigned long long>(stats.cache_rules_installed));
  if (stats.tracer.first_packet_delay().count() > 0) {
    std::printf("  first-packet delay (median): %.3f ms\n",
                stats.tracer.first_packet_delay().percentile(0.5) * 1e3);
  }
  if (stats.tracer.later_packet_delay().count() > 0) {
    std::printf("  later-packet delay (median): %.3f ms\n",
                stats.tracer.later_packet_delay().percentile(0.5) * 1e3);
  }
  std::printf("\nedge switch 0 cache after the run:\n");
  const auto& cache =
      scenario.net().sw(scenario.ingress_switch(0)).table().entries(Band::kCache);
  for (const auto& entry : cache) {
    std::printf("  %s\n", entry.rule.to_string().c_str());
  }
  return 0;
}
