#include "classifier/dtree.hpp"

#include <algorithm>
#include <limits>

#include "flowspace/header.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace difane {

namespace {
// Only bits inside the 12-tuple can ever separate rules.
std::size_t usable_bits() { return header_bits_used(); }

// Build-time/classification instrumentation, aggregated process-wide.
obs::Timer* build_timer() {
  static obs::Timer* t = obs::MetricsRegistry::global().timer("dtree_build");
  return t;
}
obs::Counter* classify_counter() {
  static obs::Counter* c =
      obs::MetricsRegistry::global().counter("dtree_classify_calls");
  return c;
}
}  // namespace

int choose_cut_bit(const std::vector<const Rule*>& rules, double dup_penalty,
                   std::size_t* n0_out, std::size_t* n1_out) {
  const std::size_t n = rules.size();
  int best_bit = -1;
  double best_score = std::numeric_limits<double>::infinity();
  std::size_t best_n0 = 0, best_n1 = 0;
  for (std::size_t bit = 0; bit < usable_bits(); ++bit) {
    std::size_t n0 = 0, n1 = 0;
    for (const Rule* r : rules) {
      if (!r->match.care().get(bit)) {
        ++n0;
        ++n1;  // wildcard: duplicated into both halves
      } else if (r->match.value().get(bit)) {
        ++n1;
      } else {
        ++n0;
      }
    }
    if (n0 == n || n1 == n) continue;  // no separation
    const double score = static_cast<double>(std::max(n0, n1)) +
                         dup_penalty * static_cast<double>(n0 + n1 - n);
    if (score < best_score) {
      best_score = score;
      best_bit = static_cast<int>(bit);
      best_n0 = n0;
      best_n1 = n1;
    }
  }
  if (n0_out) *n0_out = best_n0;
  if (n1_out) *n1_out = best_n1;
  return best_bit;
}

DTreeClassifier::DTreeClassifier(const RuleTable& table, DTreeParams params)
    : params_(params), rules_(table.rules()) {
  obs::ScopedTimer timed(build_timer());
  // table.rules() is already priority-sorted; indices preserve that order.
  std::vector<std::uint32_t> all(rules_.size());
  for (std::uint32_t i = 0; i < rules_.size(); ++i) all[i] = i;
  root_ = build(all, 0);
}

std::uint32_t DTreeClassifier::make_leaf(const std::vector<std::uint32_t>& rules) {
  Node node;
  node.cut_bit = -1;
  node.leaf_begin = static_cast<std::uint32_t>(leaf_refs_.size());
  leaf_refs_.insert(leaf_refs_.end(), rules.begin(), rules.end());
  node.leaf_end = static_cast<std::uint32_t>(leaf_refs_.size());
  nodes_.push_back(node);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::uint32_t DTreeClassifier::build(std::vector<std::uint32_t>& rules,
                                     std::size_t depth) {
  depth_ = std::max(depth_, depth);
  if (rules.size() <= params_.leaf_size || depth >= params_.max_depth) {
    return make_leaf(rules);
  }
  std::vector<const Rule*> ptrs;
  ptrs.reserve(rules.size());
  for (const auto i : rules) ptrs.push_back(&rules_[i]);
  const int bit = choose_cut_bit(ptrs, params_.dup_penalty);
  if (bit < 0) return make_leaf(rules);  // indistinguishable rules

  std::vector<std::uint32_t> left, right;
  for (const auto i : rules) {
    const auto& m = rules_[i].match;
    if (!m.care().get(static_cast<std::size_t>(bit))) {
      left.push_back(i);
      right.push_back(i);
    } else if (m.value().get(static_cast<std::size_t>(bit))) {
      right.push_back(i);
    } else {
      left.push_back(i);
    }
  }
  // Guard against degenerate cuts (choose_cut_bit filters these, but keep the
  // invariant local).
  if (left.size() == rules.size() && right.size() == rules.size()) {
    return make_leaf(rules);
  }
  rules.clear();
  rules.shrink_to_fit();  // release before recursing: trees can be deep

  const std::uint32_t self = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[self].cut_bit = bit;
  const std::uint32_t l = build(left, depth + 1);
  const std::uint32_t r = build(right, depth + 1);
  nodes_[self].left = l;
  nodes_[self].right = r;
  return self;
}

const Rule* DTreeClassifier::classify(const BitVec& packet) const {
  classify_counter()->inc();
  if (nodes_.empty()) return nullptr;
  std::uint32_t at = root_;
  while (nodes_[at].cut_bit >= 0) {
    const auto bit = static_cast<std::size_t>(nodes_[at].cut_bit);
    at = packet.get(bit) ? nodes_[at].right : nodes_[at].left;
  }
  const Node& leaf = nodes_[at];
  for (std::uint32_t i = leaf.leaf_begin; i < leaf.leaf_end; ++i) {
    const Rule& rule = rules_[leaf_refs_[i]];
    if (rule.match.matches(packet)) return &rule;
  }
  return nullptr;
}

std::size_t DTreeClassifier::leaf_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.cut_bit < 0) ++n;
  }
  return n;
}

double DTreeClassifier::avg_leaf_rules() const {
  const std::size_t leaves = leaf_count();
  return leaves ? static_cast<double>(leaf_refs_.size()) / static_cast<double>(leaves)
                : 0.0;
}

double DTreeClassifier::duplication_factor() const {
  return rules_.empty() ? 1.0
                        : static_cast<double>(leaf_refs_.size()) /
                              static_cast<double>(rules_.size());
}

}  // namespace difane
