// Decision-tree packet classifier (HiCuts-style, binary cuts on header
// bits). Rules with a wildcard in the cut bit are duplicated into both
// subtrees, so every leaf holds exactly the rules that can match packets
// reaching it. The same cut machinery, with capacity-bounded leaves, is what
// DIFANE's flow-space partitioner builds on.
#pragma once

#include <cstdint>
#include <vector>

#include "flowspace/rule_table.hpp"

namespace difane {

struct DTreeParams {
  std::size_t leaf_size = 8;     // stop splitting at or below this many rules
  std::size_t max_depth = 64;    // hard recursion bound
  // Relative weight of duplication vs. balance when scoring a cut bit:
  // score = max(n0, n1) + dup_penalty * (n0 + n1 - n).
  double dup_penalty = 1.0;
};

// Chooses the cut bit minimizing the score above over all bits that actually
// separate the given rules. Returns -1 if no bit separates them. Exposed for
// reuse by the partitioner.
// n0/n1 out-params receive the subset sizes for the chosen bit.
int choose_cut_bit(const std::vector<const Rule*>& rules, double dup_penalty,
                   std::size_t* n0_out = nullptr, std::size_t* n1_out = nullptr);

class DTreeClassifier {
 public:
  // Copies the table's rules; the classifier owns its data.
  explicit DTreeClassifier(const RuleTable& table, DTreeParams params = {});

  // Highest-priority matching rule or nullptr. Walks the tree, then scans the
  // leaf in priority order. The returned pointer is into this classifier's
  // own storage and stays valid for its lifetime.
  const Rule* classify(const BitVec& packet) const;

  // Structure stats (for the substrate-validation bench E10).
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  std::size_t depth() const { return depth_; }
  double avg_leaf_rules() const;
  // Total rule references across leaves / original rule count: the
  // duplication the cut strategy pays.
  double duplication_factor() const;

 private:
  struct Node {
    std::int32_t cut_bit = -1;                   // -1 => leaf
    std::uint32_t left = 0, right = 0;           // children, internal only
    std::uint32_t leaf_begin = 0, leaf_end = 0;  // [begin,end) into leaf_refs_
  };

  std::uint32_t build(std::vector<std::uint32_t>& rules, std::size_t depth);
  std::uint32_t make_leaf(const std::vector<std::uint32_t>& rules);

  DTreeParams params_;
  std::vector<Rule> rules_;                // priority-ordered copies
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> leaf_refs_;   // leaves' rule indices, priority-ordered
  std::uint32_t root_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace difane
