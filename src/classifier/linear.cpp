#include "classifier/linear.hpp"

// LinearClassifier is header-only; this translation unit pins the library.
namespace difane {}
