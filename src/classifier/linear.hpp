// Linear-scan classifier: the semantic reference model of a TCAM. A real
// TCAM answers in one cycle; in simulation the *semantics* are a priority
// scan. Lookup cost accounting lets the event simulator model software
// switches whose per-packet cost grows with table size.
#pragma once

#include <cstdint>

#include "flowspace/rule_table.hpp"

namespace difane {

class LinearClassifier {
 public:
  LinearClassifier() = default;
  explicit LinearClassifier(RuleTable table) : table_(std::move(table)) {}

  const Rule* classify(const BitVec& packet) const {
    ++lookups_;
    const Rule* r = table_.match(packet);
    rules_scanned_ += r ? 1 : table_.size();
    return r;
  }

  const RuleTable& table() const { return table_; }
  RuleTable& table() { return table_; }

  std::uint64_t lookups() const { return lookups_; }
  double avg_rules_scanned() const {
    return lookups_ ? static_cast<double>(rules_scanned_) / static_cast<double>(lookups_)
                    : 0.0;
  }

 private:
  RuleTable table_;
  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t rules_scanned_ = 0;
};

}  // namespace difane
