#include "controller/nox.hpp"

#include "flowspace/header.hpp"

namespace difane {

namespace {
Ternary exact_pattern(const BitVec& packet) {
  Ternary t;
  std::size_t at = 0;
  const std::size_t used = header_bits_used();
  while (at < used) {
    const std::size_t chunk = std::min<std::size_t>(64, used - at);
    t.set_exact(at, chunk, packet.get_bits(at, chunk));
    at += chunk;
  }
  return t;
}
}  // namespace

std::optional<NoxControlPlane::Decision> NoxControlPlane::handle_punt(
    SimTime arrival, const BitVec& packet) {
  ++punts_;
  const auto completion = queue_.admit(arrival);
  if (!completion.has_value()) return std::nullopt;

  Decision decision;
  decision.ready_time = *completion;
  decision.winner = policy_.match(packet);
  if (decision.winner != nullptr) {
    Rule rule;
    rule.id = next_microflow_id_++;
    rule.priority = std::numeric_limits<Priority>::max();
    rule.match = exact_pattern(packet);
    rule.action = decision.winner->action;
    rule.origin = decision.winner->id;
    decision.cache_rule = std::move(rule);
  }
  return decision;
}

}  // namespace difane
