// NOX-style reactive control plane — the baseline DIFANE is measured
// against. Every flow's first packet is punted to a central controller,
// which matches it against the policy, installs an exact-match (microflow)
// rule at the ingress switch, and packet-outs the original packet. The
// controller has a finite service rate and queue: that box is the
// flow-setup bottleneck the paper's throughput figure exposes.
#pragma once

#include <cstdint>
#include <optional>

#include "flowspace/rule_table.hpp"
#include "netsim/service_queue.hpp"
#include "switchsim/flow_table.hpp"

namespace difane {

struct NoxParams {
  double service_time = 2e-5;   // ~50K flow setups/s, NOX-era throughput
  double max_backlog = 0.02;    // drop punts once queueing exceeds 20 ms
  double one_way_latency = 5e-3;  // switch <-> controller, each direction
  RuleId microflow_id_base = 0x80000000u;
};

class NoxControlPlane {
 public:
  // `policy` must outlive the control plane.
  NoxControlPlane(const RuleTable& policy, NoxParams params)
      : policy_(policy), params_(params),
        queue_(params.service_time, params.max_backlog),
        next_microflow_id_(params.microflow_id_base) {}

  struct Decision {
    SimTime ready_time = 0.0;       // when the controller finished processing
    const Rule* winner = nullptr;   // policy winner, nullptr if none matched
    std::optional<Rule> cache_rule; // microflow rule for the ingress switch
  };

  // A punt arriving at the controller at `arrival`. Returns nullopt when the
  // controller queue rejects it (overload). The caller adds the propagation
  // latency on both directions.
  std::optional<Decision> handle_punt(SimTime arrival, const BitVec& packet);

  const NoxParams& params() const { return params_; }
  const ServiceQueue& queue() const { return queue_; }
  std::uint64_t punts() const { return punts_; }

 private:
  const RuleTable& policy_;
  NoxParams params_;
  ServiceQueue queue_;
  RuleId next_microflow_id_;
  std::uint64_t punts_ = 0;
};

}  // namespace difane
