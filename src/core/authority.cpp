#include "core/authority.hpp"

#include "util/contract.hpp"

namespace difane {

void AuthorityNode::bind(const Partition& partition, RuleId synth_id_base) {
  bindings_.push_back(Binding{
      &partition,
      CacheRuleGenerator(partition, switch_id_, strategy_, synth_id_base,
                         max_splice_cost_)});
}

void AuthorityNode::unbind(PartitionId partition) {
  // Binding is not assignable (the generator pins a partition reference), so
  // rebuild instead of erase(); bindings per node are few. Unbinding an
  // unknown partition is a no-op, which keeps retransmitted retires silent.
  std::vector<Binding> kept;
  kept.reserve(bindings_.size());
  bool removed = false;
  for (auto& binding : bindings_) {
    if (!removed && binding.partition->id == partition) {
      removed = true;
      continue;
    }
    kept.push_back(std::move(binding));
  }
  bindings_.swap(kept);
}

std::optional<AuthorityNode::RedirectResult> AuthorityNode::handle(
    const BitVec& packet) {
  for (auto& binding : bindings_) {
    if (!binding.partition->region.matches(packet)) continue;
    RedirectResult result;
    result.partition = binding.partition->id;
    const auto idx = binding.partition->rules.match_index(packet);
    if (!idx.has_value()) {
      result.winner = nullptr;  // partition covers the packet, no rule does
      return result;
    }
    result.winner = &binding.partition->rules.at(*idx);
    result.install = binding.generator.generate(packet, *idx);
    return result;
  }
  return std::nullopt;
}

std::vector<std::size_t> AuthorityNode::splice_costs(PartitionId partition) {
  for (auto& binding : bindings_) {
    if (binding.partition->id != partition) continue;
    std::vector<std::size_t> costs;
    costs.reserve(binding.partition->rules.size());
    for (std::size_t i = 0; i < binding.partition->rules.size(); ++i) {
      costs.push_back(binding.generator.cost_of(i));
    }
    return costs;
  }
  throw contract_violation("splice_costs: partition not bound to this authority");
}

}  // namespace difane
