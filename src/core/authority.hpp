// Authority-switch control logic. An authority switch hosts one or more
// partitions: the clipped authority rules live in its TCAM's authority band
// (installed by the DIFANE controller), and this class answers the two
// questions a redirected packet raises — which rule wins, and which cache
// rules should be pushed back to the ingress switch.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cache.hpp"

namespace difane {

class AuthorityNode {
 public:
  AuthorityNode(SwitchId switch_id, CacheStrategy strategy,
                std::size_t max_splice_cost = 32)
      : switch_id_(switch_id),
        strategy_(strategy),
        max_splice_cost_(max_splice_cost) {}

  SwitchId switch_id() const { return switch_id_; }

  // Bind a partition this switch serves (as primary or backup). `partition`
  // must outlive the node. `synth_id_base` spaces the generator's synthetic
  // rule ids; callers hand each binding a disjoint range.
  void bind(const Partition& partition, RuleId synth_id_base);

  // Drop the binding for `partition` (live migration retired this switch
  // from the serving set). Unbinding a partition that is not bound is a
  // no-op, which keeps retransmitted/duplicated retire paths idempotent.
  void unbind(PartitionId partition);

  std::size_t partition_count() const { return bindings_.size(); }

  bool serves(PartitionId partition) const {
    for (const auto& binding : bindings_) {
      if (binding.partition->id == partition) return true;
    }
    return false;
  }

  struct RedirectResult {
    const Rule* winner = nullptr;   // nullptr => no rule in the partition
    PartitionId partition = 0;
    CacheInstall install;           // cache rules for the ingress switch
  };

  // Handle a redirected packet: locate the owning partition among this
  // switch's bindings, match it, and produce the cache install.
  // Returns nullopt if no bound partition covers the packet (a misdirected
  // packet — e.g. stale partition rules right after failover).
  std::optional<RedirectResult> handle(const BitVec& packet);

  // Number of cache-band TCAM entries the strategy charges for caching each
  // rule of the given partition (paper-style splice cost; used by benches).
  std::vector<std::size_t> splice_costs(PartitionId partition);

 private:
  struct Binding {
    const Partition* partition;
    CacheRuleGenerator generator;
  };

  SwitchId switch_id_;
  CacheStrategy strategy_;
  std::size_t max_splice_cost_;
  std::vector<Binding> bindings_;
};

}  // namespace difane
