#include "core/cache.hpp"

#include "flowspace/header.hpp"
#include "util/contract.hpp"

namespace difane {

const char* cache_strategy_name(CacheStrategy strategy) {
  switch (strategy) {
    case CacheStrategy::kMicroflow: return "microflow";
    case CacheStrategy::kDependentSet: return "dependent-set";
    case CacheStrategy::kCoverSet: return "cover-set";
    case CacheStrategy::kNone: return "none";
  }
  return "?";
}

const char* install_class_name(InstallClass cls) {
  switch (cls) {
    case InstallClass::kNormal: return "normal";
    case InstallClass::kElephant: return "elephant";
    case InstallClass::kBypass: return "bypass";
  }
  return "?";
}

InstallClass classify_install(const ElephantParams& params,
                              std::uint64_t guaranteed_packets) {
  if (!params.enabled) return InstallClass::kNormal;
  if (guaranteed_packets >= params.threshold) return InstallClass::kElephant;
  if (params.mice_bypass && guaranteed_packets < params.mice_min_packets) {
    return InstallClass::kBypass;
  }
  return InstallClass::kNormal;
}

CacheRuleGenerator::CacheRuleGenerator(const Partition& partition,
                                       SwitchId authority_switch,
                                       CacheStrategy strategy, RuleId synth_id_base,
                                       std::size_t max_splice_cost)
    : partition_(partition),
      authority_switch_(authority_switch),
      strategy_(strategy),
      // Cover-set shadows use deterministic ids synth_id_base + (parent,
      // matched) pair index, a space of size^2; sequential ids (microflow
      // entries, incl. the splice-cost fallback) must start above it or a
      // microflow install would silently *replace* a live shadow entry.
      next_synth_id_(synth_id_base +
                     (strategy == CacheStrategy::kCoverSet
                          ? static_cast<RuleId>(partition.rules.size() *
                                                partition.rules.size())
                          : 0)),
      shadow_id_base_(synth_id_base),
      max_splice_cost_(max_splice_cost) {}

const DependencyGraph& CacheRuleGenerator::graph() {
  if (!graph_) {
    graph_ = std::make_unique<DependencyGraph>(build_dependency_graph(partition_.rules));
  }
  return *graph_;
}

namespace {

// Exact-match pattern over all used header bits.
Ternary microflow_pattern(const BitVec& packet) {
  Ternary t;
  std::size_t at = 0;
  const std::size_t used = header_bits_used();
  while (at < used) {
    const std::size_t chunk = std::min<std::size_t>(64, used - at);
    t.set_exact(at, chunk, packet.get_bits(at, chunk));
    at += chunk;
  }
  return t;
}

}  // namespace

CacheInstall CacheRuleGenerator::generate(const BitVec& packet,
                                          std::size_t matched_idx) {
  expects(matched_idx < partition_.rules.size(), "generate: bad rule index");
  const Rule& matched = partition_.rules.at(matched_idx);
  expects(matched.match.matches(packet), "generate: packet does not match rule");

  CacheInstall install;
  switch (strategy_) {
    case CacheStrategy::kNone:
      return install;  // pure redirection: never install anything
    case CacheStrategy::kMicroflow: {
      install = microflow_install(packet, matched);
      break;
    }
    case CacheStrategy::kDependentSet: {
      // The matched rule plus its whole dependency closure inside the
      // partition, priorities preserved. Ids are the partition's own clipped
      // rule ids, so re-caching refreshes instead of duplicating. Deeply
      // entangled rules degrade to a microflow entry (see max_splice_cost).
      const auto closure =
          ancestor_closure(graph(), static_cast<std::uint32_t>(matched_idx));
      if (closure.size() + 1 > max_splice_cost_) {
        install = microflow_install(packet, matched);
        break;
      }
      install.rules.push_back(matched);
      for (const auto anc : closure) {
        install.rules.push_back(partition_.rules.at(anc));
      }
      break;
    }
    case CacheStrategy::kCoverSet: {
      if (graph().parents[matched_idx].size() + 1 > max_splice_cost_) {
        install = microflow_install(packet, matched);
        break;
      }
      // The matched rule, plus a shadow for each *immediate* parent: the
      // overlap region, at the parent's priority, redirecting back to the
      // authority switch. Any packet a parent would have won is bounced to
      // the authority instead of being mis-handled by the cached rule.
      install.rules.push_back(matched);
      for (const auto parent_idx : graph().parents[matched_idx]) {
        const Rule& parent = partition_.rules.at(parent_idx);
        const auto overlap = intersect(parent.match, matched.match);
        if (!overlap) continue;  // conservative graphs may list spurious parents
        Rule shadow;
        // Deterministic shadow id per (parent, matched) pair so repeated
        // caching refreshes rather than piles up; the pair index is unique
        // within the partition (< size^2).
        shadow.id = shadow_id_base_ + static_cast<RuleId>(
                                          parent_idx * partition_.rules.size() +
                                          matched_idx);
        // Strictly above the parent: when parent and matched rule share a
        // priority, the id tie-break would otherwise let the cached rule
        // steal the parent's packets (shadow ids are large, so they lose
        // ties). Over-shadowing is safe — the contested packet merely takes
        // the redirect and is resolved correctly at the authority switch.
        expects(parent.priority < std::numeric_limits<Priority>::max(),
                "cover-set: parent priority has no headroom");
        shadow.priority = parent.priority + 1;
        shadow.match = *overlap;
        shadow.action = Action::encap(authority_switch_);
        shadow.origin = parent.origin_or_self();
        install.rules.push_back(std::move(shadow));
      }
      break;
    }
  }
  return install;
}

CacheInstall CacheRuleGenerator::microflow_install(const BitVec& packet,
                                                   const Rule& matched) {
  CacheInstall install;
  Rule r;
  r.id = next_synth_id_++;
  r.priority = std::numeric_limits<Priority>::max();
  r.match = microflow_pattern(packet);
  r.action = matched.action;
  r.origin = matched.origin_or_self();
  install.rules.push_back(std::move(r));
  return install;
}

std::size_t CacheRuleGenerator::cost_of(std::size_t idx) {
  expects(idx < partition_.rules.size(), "cost_of: bad rule index");
  switch (strategy_) {
    case CacheStrategy::kNone:
      return 0;
    case CacheStrategy::kMicroflow:
      return 1;
    case CacheStrategy::kDependentSet:
      return 1 + ancestor_closure(graph(), static_cast<std::uint32_t>(idx)).size();
    case CacheStrategy::kCoverSet:
      return 1 + graph().parents[idx].size();
  }
  return 1;
}

}  // namespace difane
