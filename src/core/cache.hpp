// Cache-rule generation — how an authority switch reacts to a redirected
// packet. The paper's key point: wildcard rules cannot be cached naively,
// because an overlapping higher-priority rule that is *not* cached would let
// the cached rule steal its packets. Three semantics-preserving strategies:
//
//  * kMicroflow       — cache one exact-match rule per flow (the
//                       Ethane/NOX-era baseline; always safe, never shares).
//  * kDependentSet    — cache the matched (clipped) rule together with every
//                       rule in its dependency closure inside the partition.
//  * kCoverSet        — cache the matched rule plus, for each immediate
//                       dependency parent, a shadow rule at the parent's
//                       priority that *redirects back to the authority
//                       switch* instead of dragging the whole chain in.
//
// All three guarantee: a cache-band hit either yields the true policy
// winner's action or a redirect — never a wrong terminal action.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flowspace/dependency.hpp"
#include "partition/plan.hpp"
#include "switchsim/sw.hpp"

namespace difane {

// kNone declares "no ingress caching at all" — every flow keeps taking the
// authority redirect (pure redirection). It exists so an experiment that
// wants the uncached data point says so explicitly instead of smuggling it
// in through a zero cache capacity (ScenarioParams::validate() rejects a
// zero edge_cache_capacity under any installing strategy).
enum class CacheStrategy : std::uint8_t {
  kMicroflow = 0,
  kDependentSet,
  kCoverSet,
  kNone,
};

const char* cache_strategy_name(CacheStrategy strategy);

// A cache install: rules destined for one ingress switch's cache band.
struct CacheInstall {
  std::vector<Rule> rules;
};

// Generates cache rules for one partition. Owns the partition's dependency
// graph (built lazily on first use) and an id allocator for synthesized
// shadow/microflow rules.
class CacheRuleGenerator {
 public:
  // `partition` must outlive the generator. `authority_switch` is the switch
  // shadow rules redirect to. `synth_id_base` must not collide with policy
  // rule ids (synthesized ids count up from it). `max_splice_cost` bounds
  // the entries a single wildcard-cache decision may install: rules whose
  // dependent closure / shadow set is larger degrade to a microflow entry
  // (one exact-match rule), keeping a hot-but-deeply-entangled rule from
  // flooding the ingress cache with protectors.
  CacheRuleGenerator(const Partition& partition, SwitchId authority_switch,
                     CacheStrategy strategy, RuleId synth_id_base,
                     std::size_t max_splice_cost = 32);

  // Cache rules for a packet that matched `matched_idx` (index into the
  // partition's clipped table, priority order).
  CacheInstall generate(const BitVec& packet, std::size_t matched_idx);

  CacheStrategy strategy() const { return strategy_; }
  // TCAM entries the strategy would charge for caching each rule (the
  // paper-style cost of splicing a chain at that rule).
  std::size_t cost_of(std::size_t idx);

 private:
  const DependencyGraph& graph();

  CacheInstall microflow_install(const BitVec& packet, const Rule& matched);

  const Partition& partition_;
  SwitchId authority_switch_;
  CacheStrategy strategy_;
  RuleId next_synth_id_;     // sequential (microflow) ids
  RuleId shadow_id_base_;    // deterministic shadow-id space (cover-set)
  std::size_t max_splice_cost_;
  std::unique_ptr<DependencyGraph> graph_;  // lazy
};

}  // namespace difane
