// Cache-rule generation — how an authority switch reacts to a redirected
// packet. The paper's key point: wildcard rules cannot be cached naively,
// because an overlapping higher-priority rule that is *not* cached would let
// the cached rule steal its packets. Three semantics-preserving strategies:
//
//  * kMicroflow       — cache one exact-match rule per flow (the
//                       Ethane/NOX-era baseline; always safe, never shares).
//  * kDependentSet    — cache the matched (clipped) rule together with every
//                       rule in its dependency closure inside the partition.
//  * kCoverSet        — cache the matched rule plus, for each immediate
//                       dependency parent, a shadow rule at the parent's
//                       priority that *redirects back to the authority
//                       switch* instead of dragging the whole chain in.
//
// All three guarantee: a cache-band hit either yields the true policy
// winner's action or a redirect — never a wrong terminal action.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flowspace/dependency.hpp"
#include "partition/plan.hpp"
#include "switchsim/sw.hpp"

namespace difane {

// kNone declares "no ingress caching at all" — every flow keeps taking the
// authority redirect (pure redirection). It exists so an experiment that
// wants the uncached data point says so explicitly instead of smuggling it
// in through a zero cache capacity (ScenarioParams::validate() rejects a
// zero edge_cache_capacity under any installing strategy).
enum class CacheStrategy : std::uint8_t {
  kMicroflow = 0,
  kDependentSet,
  kCoverSet,
  kNone,
};

const char* cache_strategy_name(CacheStrategy strategy);

// A cache install: rules destined for one ingress switch's cache band.
struct CacheInstall {
  std::vector<Rule> rules;
};

// Elephant-aware install policy. The measurement literature (FDRC, the
// elephant-detection study in PAPERS.md) shows cache benefit concentrates in
// a few heavy flows while one-packet mice only churn TCAM entries; these
// knobs let the authority spend its ingress budget accordingly. Detection
// runs per authority switch on a space-saving summary (obs/heavy_hitter.hpp)
// fed by redirected-packet misses, and classification uses the summary's
// *guaranteed* (lower-bound) count so sketch overestimation can never
// promote a mouse.
struct ElephantParams {
  bool enabled = false;
  // Slots in each authority's space-saving summary (k in the N/k bound).
  std::size_t tracker_capacity = 256;
  // Guaranteed miss-packet count at which a flow becomes an elephant; its
  // cache entries then get `idle_timeout` instead of the base cache timeout.
  std::uint64_t threshold = 8;
  double idle_timeout = 60.0;
  // Probation: idle timeout for installs that have NOT (yet) reached the
  // elephant threshold — the short leash that keeps unproven flows from
  // squatting on TCAM slots between visits. 0 means "inherit the base
  // cache_idle_timeout" (probation off).
  double probation_idle_timeout = 0.0;
  // Proactive install: the moment a flow crosses the elephant threshold,
  // push its cache rules to EVERY edge switch (not just the ingress whose
  // packet triggered the promotion). An elephant's flows arrive at many
  // ingresses; pre-seeding converts each ingress's cold-start miss into a
  // hit, and since those entries would have been installed on first contact
  // anyway, steady-state occupancy is unchanged — only the misses go away.
  bool proactive = true;
  // Mice bypass: skip the cache install entirely until a flow has proven it
  // returns (guaranteed count >= mice_min_packets), so one-packet flows
  // never consume a TCAM slot. Costs exactly one extra redirect per
  // multi-packet flow; correctness is untouched (the redirect path is
  // always available).
  bool mice_bypass = false;
  std::uint64_t mice_min_packets = 2;
};

// What the policy decided for one redirected packet's would-be install.
enum class InstallClass : std::uint8_t {
  kNormal = 0,   // install with the base cache idle timeout
  kElephant,     // install with ElephantParams::idle_timeout
  kBypass,       // skip the install (mouse, not yet proven to return)
};

const char* install_class_name(InstallClass cls);

// Classify from the tracker's guaranteed (lower-bound) packet count for the
// flow, sampled *after* offering the current packet. Disabled params always
// yield kNormal.
InstallClass classify_install(const ElephantParams& params,
                              std::uint64_t guaranteed_packets);

// Generates cache rules for one partition. Owns the partition's dependency
// graph (built lazily on first use) and an id allocator for synthesized
// shadow/microflow rules.
class CacheRuleGenerator {
 public:
  // `partition` must outlive the generator. `authority_switch` is the switch
  // shadow rules redirect to. `synth_id_base` must not collide with policy
  // rule ids (synthesized ids count up from it). `max_splice_cost` bounds
  // the entries a single wildcard-cache decision may install: rules whose
  // dependent closure / shadow set is larger degrade to a microflow entry
  // (one exact-match rule), keeping a hot-but-deeply-entangled rule from
  // flooding the ingress cache with protectors.
  CacheRuleGenerator(const Partition& partition, SwitchId authority_switch,
                     CacheStrategy strategy, RuleId synth_id_base,
                     std::size_t max_splice_cost = 32);

  // Cache rules for a packet that matched `matched_idx` (index into the
  // partition's clipped table, priority order).
  CacheInstall generate(const BitVec& packet, std::size_t matched_idx);

  CacheStrategy strategy() const { return strategy_; }
  // TCAM entries the strategy would charge for caching each rule (the
  // paper-style cost of splicing a chain at that rule).
  std::size_t cost_of(std::size_t idx);

 private:
  const DependencyGraph& graph();

  CacheInstall microflow_install(const BitVec& packet, const Rule& matched);

  const Partition& partition_;
  SwitchId authority_switch_;
  CacheStrategy strategy_;
  RuleId next_synth_id_;     // sequential (microflow) ids
  RuleId shadow_id_base_;    // deterministic shadow-id space (cover-set)
  std::size_t max_splice_cost_;
  std::unique_ptr<DependencyGraph> graph_;  // lazy
};

}  // namespace difane
