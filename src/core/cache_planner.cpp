#include "core/cache_planner.hpp"

#include <algorithm>
#include <limits>

#include "util/contract.hpp"

namespace difane {

namespace {

// Marginal cost/gain of selecting rule `idx` given what is already chosen.
struct Marginal {
  std::size_t cost = 0;
  double gain = 0.0;
  std::vector<std::uint32_t> new_rules;  // rules that would newly be cached
};

// Rule weight for the greedy's gain: the measured vector when one was
// supplied (the elephant-aware path), the table's static annotation
// otherwise.
double rule_weight(const RuleTable& table, const double* weights,
                   std::uint32_t idx) {
  return weights != nullptr ? weights[idx] : table.at(idx).weight;
}

Marginal marginal_dependent(const RuleTable& table, const double* weights,
                            const DependencyGraph& graph,
                            const std::vector<bool>& cached, std::uint32_t idx) {
  Marginal m;
  if (!cached[idx]) {
    m.new_rules.push_back(idx);
  }
  for (const auto anc : ancestor_closure(graph, idx)) {
    if (!cached[anc]) m.new_rules.push_back(anc);
  }
  m.cost = m.new_rules.size();
  for (const auto r : m.new_rules) m.gain += rule_weight(table, weights, r);
  return m;
}

Marginal marginal_cover(const RuleTable& table, const double* weights,
                        const DependencyGraph& graph,
                        const std::vector<bool>& cached,
                        const std::vector<bool>& shadowed, std::uint32_t idx) {
  Marginal m;
  if (cached[idx]) return m;  // already terminal: nothing to gain
  m.new_rules.push_back(idx);
  m.cost = 1;
  for (const auto parent : graph.parents[idx]) {
    // A shadow is needed per parent unless the parent is itself cached (its
    // copy handles its packets terminally) or already shadowed.
    if (!cached[parent] && !shadowed[parent]) ++m.cost;
  }
  // Caching a rule that is currently only a shadow replaces the shadow (the
  // shadow would otherwise outrank the cached copy and bounce its traffic),
  // freeing one entry.
  if (shadowed[idx] && m.cost > 0) --m.cost;
  m.gain = rule_weight(table, weights, idx);
  return m;
}

CachePlan plan_cache_impl(const RuleTable& table, const DependencyGraph& graph,
                          CacheStrategy strategy, std::size_t budget,
                          const double* weights) {
  expects(strategy == CacheStrategy::kDependentSet ||
              strategy == CacheStrategy::kCoverSet,
          "plan_cache: strategy must be dependent-set or cover-set");
  expects(graph.size() == table.size(), "plan_cache: graph/table size mismatch");

  CachePlan plan;
  if (weights != nullptr) {
    for (std::uint32_t idx = 0; idx < table.size(); ++idx) {
      plan.total_weight += weights[idx];
    }
  } else {
    plan.total_weight = table.total_weight();
  }
  std::vector<bool> cached(table.size(), false);
  std::vector<bool> shadowed(table.size(), false);

  // No `entries_used < budget` bound on the loop itself: cover-set upgrades
  // of an already-shadowed rule whose parents are all covered cost *zero*
  // entries (the copy replaces the shadow one-for-one), so they remain
  // selectable at full budget. The loop still terminates — every selection
  // marks a previously uncached rule cached.
  for (;;) {
    double best_ratio = 0.0;
    std::uint32_t best = 0;
    Marginal best_m;
    bool found = false;
    for (std::uint32_t idx = 0; idx < table.size(); ++idx) {
      if (cached[idx]) continue;
      const Marginal m =
          strategy == CacheStrategy::kDependentSet
              ? marginal_dependent(table, weights, graph, cached, idx)
              : marginal_cover(table, weights, graph, cached, shadowed, idx);
      if (m.cost > budget - plan.entries_used) continue;
      // A zero-cost selection is a free upgrade (shadow -> terminal copy):
      // infinite gain ratio, take it before anything that spends entries.
      // Skipping these (the old `cost == 0 => continue`) left redirect
      // shadows sitting on top of fully covered rules, which is why cache
      // hit rate could *dip* as the budget grew past the point where whole
      // cover groups fit (see EXPERIMENTS.md, E6).
      const double ratio = m.cost == 0
                               ? std::numeric_limits<double>::infinity()
                               : m.gain / static_cast<double>(m.cost);
      if (!found || ratio > best_ratio) {
        found = true;
        best_ratio = ratio;
        best = idx;
        best_m = m;
      }
    }
    if (!found) break;

    plan.chosen.push_back(best);
    plan.entries_used += best_m.cost;
    plan.covered_weight += best_m.gain;
    if (strategy == CacheStrategy::kDependentSet) {
      for (const auto r : best_m.new_rules) cached[r] = true;
    } else {
      cached[best] = true;
      shadowed[best] = false;  // its shadow (if any) is replaced by the copy
      for (const auto parent : graph.parents[best]) {
        if (!cached[parent]) shadowed[parent] = true;
      }
    }
  }
  return plan;
}

}  // namespace

CachePlan plan_cache(const RuleTable& table, const DependencyGraph& graph,
                     CacheStrategy strategy, std::size_t budget) {
  return plan_cache_impl(table, graph, strategy, budget, nullptr);
}

CachePlan plan_cache(const RuleTable& table, const DependencyGraph& graph,
                     CacheStrategy strategy, std::size_t budget,
                     const std::vector<double>& weights) {
  expects(weights.size() == table.size(),
          "plan_cache: one measured weight per table rule");
  return plan_cache_impl(table, graph, strategy, budget, weights.data());
}

std::vector<double> elephant_rule_weights(
    const RuleTable& table,
    const std::vector<std::pair<BitVec, std::uint64_t>>& heavy_flows) {
  std::vector<double> weights(table.size(), 0.0);
  for (const auto& [header, count] : heavy_flows) {
    if (const auto idx = table.match_index(header); idx.has_value()) {
      weights[*idx] += static_cast<double>(count);
    }
  }
  return weights;
}

std::vector<Rule> materialize_plan(const RuleTable& table, const DependencyGraph& graph,
                                   const CachePlan& plan, CacheStrategy strategy,
                                   SwitchId authority_switch, RuleId synth_id_base) {
  std::vector<std::optional<Rule>> slots;
  std::vector<bool> emitted(table.size(), false);
  // shadow_slot[p]: index in `slots` of p's shadow, if one is live.
  std::vector<std::optional<std::size_t>> shadow_slot(table.size());
  RuleId next_id = synth_id_base;
  auto emit = [&](std::uint32_t idx) {
    if (emitted[idx]) return;
    emitted[idx] = true;
    // A cached copy supersedes (and must replace) the rule's own shadow:
    // the shadow would outrank the copy and bounce its traffic.
    if (shadow_slot[idx].has_value()) {
      slots[*shadow_slot[idx]].reset();
      shadow_slot[idx].reset();
    }
    slots.push_back(table.at(idx));
  };
  for (const auto idx : plan.chosen) {
    emit(idx);
    if (strategy == CacheStrategy::kDependentSet) {
      for (const auto anc : ancestor_closure(graph, idx)) emit(anc);
    } else {
      for (const auto parent : graph.parents[idx]) {
        if (emitted[parent]) continue;              // cached copy protects itself
        if (shadow_slot[parent].has_value()) continue;  // already shadowed
        Rule shadow;
        shadow.id = next_id++;
        expects(table.at(parent).priority < std::numeric_limits<Priority>::max(),
                "materialize_plan: parent priority has no headroom");
        shadow.priority = table.at(parent).priority + 1;
        shadow.match = table.at(parent).match;
        shadow.action = Action::encap(authority_switch);
        shadow.origin = table.at(parent).origin_or_self();
        shadow_slot[parent] = slots.size();
        slots.push_back(std::move(shadow));
      }
    }
  }
  std::vector<Rule> out;
  out.reserve(slots.size());
  for (auto& slot : slots) {
    if (slot.has_value()) out.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace difane
