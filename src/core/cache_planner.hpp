// Offline cache planning (extension): given a rule table with traffic
// weights and a TCAM budget, choose which rules to pin in the cache so the
// expected hit rate is maximized, respecting splice semantics:
//
//  * dependent-set: caching a rule requires its whole dependency closure;
//    every member cached is itself a terminal hit for its own traffic.
//  * cover-set: caching a rule costs the rule plus one shadow per immediate
//    parent not already shadowed; only the rule's own traffic terminates.
//
// The exact problem is an ILP (set-union knapsack); this uses the standard
// greedy weight/cost heuristic. It is both a controller feature (pre-warm
// the caches before traffic arrives) and the analytic model behind the
// cache-effectiveness experiment.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/cache.hpp"
#include "flowspace/dependency.hpp"

namespace difane {

struct CachePlan {
  std::vector<std::uint32_t> chosen;   // table indices, selection order
  std::size_t entries_used = 0;        // TCAM entries (rules + shadows)
  double covered_weight = 0.0;         // Σ weight of traffic that will hit
  double total_weight = 0.0;
  double expected_hit_rate() const {
    return total_weight > 0.0 ? covered_weight / total_weight : 0.0;
  }
};

// Plan a cache for `table` under `budget` entries. `strategy` must be
// kDependentSet or kCoverSet (microflow caching has no offline plan: its
// entries are per-flow, not per-rule).
CachePlan plan_cache(const RuleTable& table, const DependencyGraph& graph,
                     CacheStrategy strategy, std::size_t budget);

// Same greedy, but driven by externally *measured* per-rule weights (one per
// table index) instead of the table's static weight annotations — the
// planner half of elephant-aware caching: feed it elephant_rule_weights()
// from an authority's heavy-hitter summary to pre-warm the ingress cache
// with what traffic actually hit, not what the policy author guessed.
CachePlan plan_cache(const RuleTable& table, const DependencyGraph& graph,
                     CacheStrategy strategy, std::size_t budget,
                     const std::vector<double>& weights);

// Fold measured heavy flows — (header, estimated packet count) pairs, e.g.
// SpaceSaving::entries() from an authority tracker — onto the policy rules
// that win them. Returns one weight per table index; flows are attributed to
// their match_index winner (unmatched headers contribute nothing).
std::vector<double> elephant_rule_weights(
    const RuleTable& table,
    const std::vector<std::pair<BitVec, std::uint64_t>>& heavy_flows);

// Materialize the plan as installable cache rules (shadows redirect to
// `authority_switch`; synthetic ids from `synth_id_base`).
std::vector<Rule> materialize_plan(const RuleTable& table, const DependencyGraph& graph,
                                   const CachePlan& plan, CacheStrategy strategy,
                                   SwitchId authority_switch, RuleId synth_id_base);

}  // namespace difane
