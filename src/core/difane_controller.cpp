#include "core/difane_controller.hpp"

#include <algorithm>

#include "util/contract.hpp"
#include "util/log.hpp"

namespace difane {

DifaneController::DifaneController(Network& net, const RuleTable& policy,
                                   std::vector<SwitchId> authority_switches,
                                   DifaneControllerParams params)
    : net_(net),
      policy_(policy),
      authority_switches_(std::move(authority_switches)),
      params_(params),
      plan_(Partitioner(params.partitioner)
                .build(policy, static_cast<std::uint32_t>(authority_switches_.size()))) {
  expects(!authority_switches_.empty(), "DifaneController: need authority switches");
  for (const auto sw : authority_switches_) {
    nodes_.emplace(sw, std::make_unique<AuthorityNode>(sw, params_.cache_strategy,
                                                       params_.max_splice_cost));
  }
  params_.replicas = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(params_.replicas,
                                 static_cast<std::uint32_t>(authority_switches_.size())));
  // Bind each partition to its replica set (primary + ring successors) and
  // its backup. Each binding gets a disjoint synthetic-id range.
  RuleId synth_base = params_.synth_id_base;
  for (const auto& partition : plan_.partitions()) {
    std::vector<AuthorityIndex> serving;
    for (std::uint32_t r = 0; r < params_.replicas; ++r) {
      serving.push_back((partition.primary + r) %
                        static_cast<AuthorityIndex>(authority_switches_.size()));
    }
    if (std::find(serving.begin(), serving.end(), partition.backup) ==
        serving.end()) {
      serving.push_back(partition.backup);
    }
    for (const auto index : serving) {
      nodes_.at(authority_switch(index))->bind(partition, synth_base);
      synth_base += params_.synth_id_stride;
    }
  }
  next_synth_base_ = synth_base;
}

AuthorityIndex DifaneController::index_of(SwitchId sw) const {
  for (AuthorityIndex i = 0; i < authority_switches_.size(); ++i) {
    if (authority_switches_[i] == sw) return i;
  }
  throw contract_violation("index_of: not an authority switch");
}

std::vector<AuthorityIndex> DifaneController::serving_set(
    const Partition& partition) const {
  return serving_set(partition.primary, partition.backup);
}

std::vector<AuthorityIndex> DifaneController::serving_set(
    AuthorityIndex primary, AuthorityIndex backup) const {
  const auto k = static_cast<AuthorityIndex>(authority_switches_.size());
  std::vector<AuthorityIndex> serving;
  for (std::uint32_t r = 0; r < params_.replicas; ++r) {
    serving.push_back((primary + r) % k);
  }
  if (std::find(serving.begin(), serving.end(), backup) == serving.end()) {
    serving.push_back(backup);
  }
  return serving;
}

void DifaneController::bind_partition(std::size_t index, AuthorityIndex authority) {
  const auto& partition = plan_.partitions().at(index);
  AuthorityNode* node = nodes_.at(authority_switch(authority)).get();
  if (node->serves(partition.id)) return;  // idempotent under replays
  node->bind(partition, next_synth_base_);
  next_synth_base_ += params_.synth_id_stride;
}

void DifaneController::unbind_partition(std::size_t index, AuthorityIndex authority) {
  const auto& partition = plan_.partitions().at(index);
  nodes_.at(authority_switch(authority))->unbind(partition.id);
}

void DifaneController::commit_re_home(std::size_t index, AuthorityIndex dest) {
  plan_.re_home(index, dest);
}

std::size_t DifaneController::purge_partition_redirects(std::size_t index,
                                                        SwitchId old_switch) {
  const auto& partition = plan_.partitions().at(index);
  std::size_t purged = 0;
  for (SwitchId id = 0; id < net_.switch_count(); ++id) {
    Switch& sw = net_.sw(id);
    if (sw.failed()) continue;
    std::vector<RuleId> stale;
    for (const auto& entry : sw.table().entries(Band::kCache)) {
      if (entry.rule.action.type == ActionType::kEncap &&
          entry.rule.action.arg == old_switch &&
          intersects(entry.rule.match, partition.region)) {
        stale.push_back(entry.rule.id);
      }
    }
    for (const auto rule_id : stale) {
      if (sw.table().remove(rule_id, Band::kCache)) ++purged;
    }
  }
  return purged;
}

Rule DifaneController::partition_redirect_rule(std::size_t index,
                                               SwitchId for_switch) const {
  const auto& partition = plan_.partitions().at(index);
  Rule rule;
  rule.id = params_.partition_rule_id_base + static_cast<RuleId>(index);
  rule.priority = params_.partition_rule_priority;
  rule.match = partition.region;
  rule.action = Action::encap(replica_for(partition, for_switch));
  return rule;
}

SwitchId DifaneController::replica_for(const Partition& partition, SwitchId sw) const {
  const auto k = static_cast<AuthorityIndex>(authority_switches_.size());
  // Try the replica set in hash order, skipping failed switches.
  for (std::uint32_t probe = 0; probe < params_.replicas; ++probe) {
    const auto index = (partition.primary + (sw + partition.id + probe) %
                                                params_.replicas) %
                       k;
    const SwitchId candidate = authority_switch(index);
    if (!net_.sw(candidate).failed()) return candidate;
  }
  return authority_switch(partition.backup);
}

AuthorityNode* DifaneController::node_at(SwitchId sw) {
  const auto it = nodes_.find(sw);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void DifaneController::install_authority_rules() {
  const auto k = static_cast<AuthorityIndex>(authority_switches_.size());
  // Gather each authority switch's full serving load first and hand it to
  // the table as one bulk install: the per-rule install() path pays a
  // vector memmove plus a position refresh per rule, which is quadratic in
  // the table size and dominates construction at stress-tier rule counts
  // (hours at 10M rules). install_bulk lands the same final order —
  // rule_before is a strict total order over unique ids, so sorted-merge
  // order equals sequential-insert order bit for bit.
  std::vector<std::vector<const Rule*>> per_switch(authority_switches_.size());
  for (const auto& partition : plan_.partitions()) {
    std::vector<AuthorityIndex> serving;
    for (std::uint32_t r = 0; r < params_.replicas; ++r) {
      serving.push_back((partition.primary + r) % k);
    }
    if (std::find(serving.begin(), serving.end(), partition.backup) ==
        serving.end()) {
      serving.push_back(partition.backup);
    }
    for (const auto role : serving) {
      auto& dest = per_switch[role];
      for (const auto& rule : partition.rules.rules()) dest.push_back(&rule);
    }
  }
  for (AuthorityIndex role = 0;
       role < static_cast<AuthorityIndex>(per_switch.size()); ++role) {
    Switch& sw = net_.sw(authority_switch(role));
    sw.table().install_bulk(per_switch[role], Band::kAuthority,
                            net_.engine().now());
  }
}

void DifaneController::install_partition_rules() {
  auto rules = plan_.make_partition_rules(params_.partition_rule_priority,
                                          params_.partition_rule_id_base);
  std::vector<Rule> resolved;
  std::vector<const Rule*> batch;
  for (SwitchId id = 0; id < net_.switch_count(); ++id) {
    Switch& sw = net_.sw(id);
    if (sw.failed()) continue;
    resolved.clear();
    resolved.reserve(rules.size());
    batch.clear();
    for (std::size_t p = 0; p < rules.size(); ++p) {
      // Per-switch replica selection: different ingresses spread their
      // redirects for the same partition across the live replicas.
      Rule rule = rules[p];
      rule.action = Action::encap(replica_for(plan_.partitions()[p], id));
      resolved.push_back(std::move(rule));
    }
    for (const Rule& rule : resolved) batch.push_back(&rule);
    // Bulk path also covers the refresh case (failover/restart repointing:
    // same ids, refreshed in place), identically to per-rule install().
    sw.table().install_bulk(batch, Band::kPartition, net_.engine().now());
  }
}

void DifaneController::install_all() {
  install_authority_rules();
  install_partition_rules();
}

std::size_t DifaneController::handle_authority_restart(SwitchId restarted) {
  const AuthorityIndex index = index_of(restarted);
  expects(!net_.sw(restarted).failed(),
          "handle_authority_restart: switch still marked failed");

  // Reinstall the authority-band rules for every binding this switch serves
  // (same serving-set computation as install_authority_rules, restricted to
  // this switch). install() refreshes in place, so a partially surviving
  // table is also handled.
  const auto k = static_cast<AuthorityIndex>(authority_switches_.size());
  Switch& sw = net_.sw(restarted);
  std::size_t reinstalled = 0;
  for (const auto& partition : plan_.partitions()) {
    bool serves = partition.backup == index;
    for (std::uint32_t r = 0; !serves && r < params_.replicas; ++r) {
      serves = (partition.primary + r) % k == index;
    }
    if (!serves) continue;
    for (const auto& rule : partition.rules.rules()) {
      sw.table().install(rule, Band::kAuthority, net_.engine().now());
      ++reinstalled;
    }
  }
  // Refresh partition rules everywhere: replica_for sees the switch live
  // again, and the restarted switch itself gets its partition band back.
  install_partition_rules();
  log_info("restart: switch ", restarted, " rejoined, ", reinstalled,
           " authority rules reinstalled");
  return reinstalled;
}

std::size_t DifaneController::handle_authority_failure(SwitchId failed) {
  const AuthorityIndex failed_index = index_of(failed);

  std::size_t repointed = 0;
  for (const auto& partition : plan_.partitions()) {
    if (partition.primary == failed_index) ++repointed;
  }
  plan_.fail_over(failed_index);
  // Partition rules carry the same ids, so reinstalling refreshes the encap
  // target in place at every live switch.
  install_partition_rules();
  // Cached shadow rules (cache-band encap entries) still name the failed
  // switch — the partition-rule refresh cannot reach them, and until they
  // expire every packet they cover black-holes at the dead authority. Purge
  // them; cascade removal takes their dependents along, so those packets
  // fall back to the (re-pointed) partition band and redirect safely.
  std::size_t purged = 0;
  for (SwitchId id = 0; id < net_.switch_count(); ++id) {
    Switch& sw = net_.sw(id);
    if (sw.failed()) continue;
    std::vector<RuleId> stale;
    for (const auto& entry : sw.table().entries(Band::kCache)) {
      if (entry.rule.action.type == ActionType::kEncap &&
          entry.rule.action.arg == failed) {
        stale.push_back(entry.rule.id);
      }
    }
    for (const auto rule_id : stale) {
      if (sw.table().remove(rule_id, Band::kCache)) ++purged;
    }
  }
  log_info("failover: re-pointed ", repointed, " partitions away from switch ",
           failed, ", purged ", purged, " stale cached redirects");
  return repointed;
}

}  // namespace difane
