// The DIFANE controller. Proactive and off the packet path: it partitions
// the policy, installs authority rules at the authority switches (primary
// and backup), installs partition rules at every switch, and — on authority
// failure — re-points the affected partition rules at the backups. After
// setup, no packet ever visits the controller; that is the paper's thesis.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/authority.hpp"
#include "netsim/topology.hpp"
#include "partition/partitioner.hpp"

namespace difane {

struct DifaneControllerParams {
  PartitionerParams partitioner;
  CacheStrategy cache_strategy = CacheStrategy::kDependentSet;
  // Rules whose splice set exceeds this degrade to microflow caching.
  std::size_t max_splice_cost = 32;
  // Each partition is served by this many authority switches (primary plus
  // ring successors), and ingress switches spread their redirects across the
  // live replicas. Replication is DIFANE's answer to hot partitions: one
  // busy region of flow space need not bottleneck on one switch. Clamped to
  // the number of authority switches.
  std::uint32_t replicas = 1;
  Priority partition_rule_priority = 0;
  RuleId partition_rule_id_base = 0x20000000u;
  RuleId synth_id_base = 0x40000000u;
  RuleId synth_id_stride = 1u << 22;  // id space per partition binding
};

class DifaneController {
 public:
  // Partitions `policy` across `authority_switches` (k = list size) and
  // remembers the bindings. Call install_all() to push rules into `net`.
  DifaneController(Network& net, const RuleTable& policy,
                   std::vector<SwitchId> authority_switches,
                   DifaneControllerParams params);

  // Install authority rules (primary + backup copies) and partition rules
  // everywhere. Idempotent.
  void install_all();

  const PartitionPlan& plan() const { return plan_; }
  const std::vector<SwitchId>& authority_switches() const { return authority_switches_; }
  SwitchId authority_switch(AuthorityIndex index) const {
    return authority_switches_.at(index);
  }

  // The control logic living at an authority switch, or nullptr.
  AuthorityNode* node_at(SwitchId sw);

  // React to an authority switch failure: flip affected partitions to their
  // backups and reinstall partition rules at every live switch (pointing
  // only at live replicas). Returns the number of partitions re-pointed.
  std::size_t handle_authority_failure(SwitchId failed);

  // React to an authority switch rejoining after a crash: reinstall the
  // authority rules for every partition binding it serves (a rebooted switch
  // comes back with an empty TCAM) and refresh partition rules everywhere so
  // replica selection sees it live again. Partitions failed over while it
  // was down stay with their current primary — the restarted switch rejoins
  // as a replica/backup rather than preempting. Returns the number of
  // authority rules reinstalled at the switch.
  std::size_t handle_authority_restart(SwitchId restarted);

  // The authority switch that ingress `sw` should redirect to for
  // `partition`: a live replica chosen by (switch, partition) hash so load
  // spreads; falls back to the backup when every replica is down.
  SwitchId replica_for(const Partition& partition, SwitchId sw) const;

  // Total partition-band entries installed per switch (they are identical
  // across switches: one rule per partition).
  std::size_t partition_rules_per_switch() const { return plan_.partitions().size(); }

  // ---- live migration hooks (driven by the Scenario state machine) -------

  // Authority index of `sw`; throws if `sw` is not an authority switch.
  AuthorityIndex index_of(SwitchId sw) const;

  // The serving set (primary + ring successors + backup-if-absent) of a
  // partition under the plan's *current* assignment, or under a hypothetical
  // (primary, backup) pair — the migration planner uses the latter to
  // compute the post-move serving set before committing the re-home.
  std::vector<AuthorityIndex> serving_set(const Partition& partition) const;
  std::vector<AuthorityIndex> serving_set(AuthorityIndex primary,
                                          AuthorityIndex backup) const;

  // Bind/unbind partition `index` at one authority's control node. Binds
  // allocate a fresh disjoint synthetic-id range (continuing the ctor's
  // counter); unbinding a switch that does not serve the partition is a
  // no-op. Neither touches any TCAM — the caller moves the actual rules over
  // the control channel.
  void bind_partition(std::size_t index, AuthorityIndex authority);
  void unbind_partition(std::size_t index, AuthorityIndex authority);

  // Commit the re-home into the plan (primary = dest, backup = old primary).
  // Call between "destination stocked" and the partition-rule flips, so
  // replica_for answers with the new home for every flip rule.
  void commit_re_home(std::size_t index, AuthorityIndex dest);

  // Purge cache-band shadow redirects that still encap to `old_switch` and
  // intersect partition `index`'s region (the migration-scoped variant of
  // the failover purge). Returns entries removed (dependents cascade).
  std::size_t purge_partition_redirects(std::size_t index, SwitchId old_switch);

  // The partition-band redirect rule for partition `index` as `for_switch`
  // should hold it now (stable id, encap to replica_for under the current
  // plan) — the payload of a PartitionFlip.
  Rule partition_redirect_rule(std::size_t index, SwitchId for_switch) const;

 private:
  void install_partition_rules();
  void install_authority_rules();

  Network& net_;
  const RuleTable& policy_;
  std::vector<SwitchId> authority_switches_;
  DifaneControllerParams params_;
  PartitionPlan plan_;
  std::unordered_map<SwitchId, std::unique_ptr<AuthorityNode>> nodes_;
  RuleId next_synth_base_ = 0;  // continues the ctor's synthetic-id counter
};

}  // namespace difane
