#include "core/symbolic_verifier.hpp"

#include <sstream>
#include <unordered_set>

#include "flowspace/header.hpp"
#include "util/rng.hpp"

namespace difane {

std::string SymbolicReport::summary() const {
  std::ostringstream os;
  os << regions_checked << " regions checked";
  if (exhausted) os << " (budget exhausted: inconclusive)";
  if (violation.has_value()) {
    os << "; VIOLATION in [" << pattern_to_string(violation->region)
       << "]: " << violation->detail;
  } else if (!exhausted) {
    os << "; clean";
  }
  return os.str();
}

namespace {

struct Budget {
  std::size_t remaining;
  bool spend(std::size_t n = 1) {
    if (remaining < n) {
      remaining = 0;
      return false;
    }
    remaining -= n;
    return true;
  }
};

// Check that for every packet in `region`, the policy's winner action equals
// `decided` and the policy covers the whole region. Walks the policy in
// priority order, peeling `region` by subtraction; terminates as soon as
// the region is fully claimed.
std::optional<SymbolicViolation> check_terminal(const Ternary& region,
                                                const Action& decided,
                                                const RuleTable& policy,
                                                Budget& budget, bool& exhausted,
                                                std::size_t& checked) {
  std::vector<Ternary> pieces{region};
  for (const auto& rule : policy.rules()) {
    if (pieces.empty()) break;
    std::vector<Ternary> next;
    for (const auto& piece : pieces) {
      if (!budget.spend()) {
        exhausted = true;
        return std::nullopt;
      }
      ++checked;
      const auto overlap = intersect(piece, rule.match);
      if (!overlap.has_value()) {
        next.push_back(piece);
        continue;
      }
      if (!(rule.action == decided)) {
        return SymbolicViolation{
            *overlap, "switch decides " + decided.to_string() + " but policy rule " +
                          std::to_string(rule.id) + " says " + rule.action.to_string()};
      }
      const auto rest = subtract(piece, rule.match);
      next.insert(next.end(), rest.begin(), rest.end());
    }
    pieces = std::move(next);
  }
  if (!pieces.empty()) {
    return SymbolicViolation{pieces.front(),
                             "switch decides " + decided.to_string() +
                                 " where the policy matches nothing"};
  }
  return std::nullopt;
}

// The sub-region of `region` covered by some policy rule, if any (black-hole
// detection: switch space matching nothing is only legal over
// policy-uncovered space).
std::optional<Ternary> covered_overlap(const Ternary& region, const RuleTable& policy,
                                       Budget& budget, bool& exhausted) {
  for (const auto& rule : policy.rules()) {
    if (!budget.spend()) {
      exhausted = true;
      return std::nullopt;
    }
    if (const auto overlap = intersect(region, rule.match)) return overlap;
  }
  return std::nullopt;
}

// Authority-side resolution of `region` (inside `partition.region`): the
// partition table's winner must agree with the policy everywhere, and the
// partition must not black-hole space the policy covers.
std::optional<SymbolicViolation> check_partition(const Ternary& region,
                                                 const Partition& partition,
                                                 const RuleTable& policy,
                                                 Budget& budget, bool& exhausted,
                                                 std::size_t& checked) {
  std::vector<Ternary> pieces{region};
  for (const auto& rule : partition.rules.rules()) {
    if (pieces.empty()) break;
    std::vector<Ternary> next;
    for (const auto& piece : pieces) {
      if (!budget.spend()) {
        exhausted = true;
        return std::nullopt;
      }
      const auto overlap = intersect(piece, rule.match);
      if (!overlap.has_value()) {
        next.push_back(piece);
        continue;
      }
      auto violation =
          check_terminal(*overlap, rule.action, policy, budget, exhausted, checked);
      if (violation.has_value() || exhausted) return violation;
      const auto rest = subtract(piece, rule.match);
      next.insert(next.end(), rest.begin(), rest.end());
    }
    pieces = std::move(next);
  }
  for (const auto& piece : pieces) {
    const auto covered = covered_overlap(piece, policy, budget, exhausted);
    if (exhausted) return std::nullopt;
    if (covered.has_value()) {
      return SymbolicViolation{*covered, "partition " + std::to_string(partition.id) +
                                             " black-holes space the policy covers"};
    }
  }
  return std::nullopt;
}

}  // namespace

SymbolicReport verify_ingress_symbolically(Network& net, DifaneController& controller,
                                           const RuleTable& policy, SwitchId ingress,
                                           SymbolicParams params) {
  SymbolicReport report;
  Budget budget{params.max_regions};
  const FlowTable& table = net.sw(ingress).table();

  // Effective match order at the switch: cache, authority, partition bands.
  std::vector<const FlowEntry*> order;
  for (const auto band : {Band::kCache, Band::kAuthority, Band::kPartition}) {
    for (const auto& entry : table.entries(band)) order.push_back(&entry);
  }

  // Exact-match (microflow) entries cover a single packet each. Subtracting
  // points shatters regions (one subtraction per cared bit), so they are
  // point-checked directly and left *unsubtracted* from the walk. The only
  // imprecision: a later violation whose entire witness lies on such points
  // would be a false alarm — `witness_real` filters those by sampling.
  const std::size_t used_bits = header_bits_used();
  std::unordered_set<BitVec> exact_points;
  BitVec used_mask;
  for (std::size_t b = 0; b < used_bits; ++b) used_mask.set(b, true);
  auto canon = [&](const BitVec& v) { return v & used_mask; };
  Rng witness_rng(0xd1fa);
  auto witness_real = [&](const Ternary& witness) {
    if (exact_points.empty()) return true;
    for (int tries = 0; tries < 12; ++tries) {
      if (!exact_points.count(canon(witness.sample_point(witness_rng)))) return true;
    }
    return false;
  };

  std::vector<Ternary> pending{Ternary::wildcard()};
  for (const FlowEntry* entry : order) {
    if (pending.empty()) break;
    // Point-check exact entries without splitting the walk.
    if (entry->rule.match.care_bits() >= static_cast<int>(used_bits)) {
      const BitVec point = canon(entry->rule.match.value());
      const Rule* want = policy.match(point);
      const bool terminal = entry->rule.action.type == ActionType::kForward ||
                            entry->rule.action.type == ActionType::kDrop;
      if (terminal) {
        if (want == nullptr || !(want->action == entry->rule.action)) {
          report.violation = SymbolicViolation{
              entry->rule.match, "exact entry decides " +
                                     entry->rule.action.to_string() +
                                     " but the policy says " +
                                     (want ? want->action.to_string()
                                           : std::string("<none>"))};
          return report;
        }
        exact_points.insert(point);
        continue;
      }
      // Redirecting / punting exact entries are always safe to skip: the
      // authority or controller resolves them against the policy.
      exact_points.insert(point);
      continue;
    }
    std::vector<Ternary> next;
    for (const auto& region : pending) {
      if (!budget.spend()) {
        report.exhausted = true;
        return report;
      }
      const auto overlap = intersect(region, entry->rule.match);
      if (!overlap.has_value()) {
        next.push_back(region);
        continue;
      }
      const Action& action = entry->rule.action;
      std::optional<SymbolicViolation> violation;
      switch (action.type) {
        case ActionType::kForward:
        case ActionType::kDrop:
          violation = check_terminal(*overlap, action, policy, budget,
                                     report.exhausted, report.regions_checked);
          break;
        case ActionType::kEncap: {
          AuthorityNode* node = controller.node_at(action.arg);
          if (node == nullptr) {
            violation = SymbolicViolation{*overlap,
                                          "redirect to non-authority switch " +
                                              std::to_string(action.arg)};
            break;
          }
          // The region may span several partitions; each must be served by
          // the redirect target and must resolve consistently.
          for (const auto& partition : controller.plan().partitions()) {
            const auto in_part = intersect(*overlap, partition.region);
            if (!in_part.has_value()) continue;
            if (!node->serves(partition.id)) {
              violation = SymbolicViolation{
                  *in_part, "switch " + std::to_string(action.arg) +
                                " does not serve partition " +
                                std::to_string(partition.id)};
              break;
            }
            violation = check_partition(*in_part, partition, policy, budget,
                                        report.exhausted, report.regions_checked);
            if (violation.has_value() || report.exhausted) break;
          }
          break;
        }
        case ActionType::kToController:
          // Reactive path resolves against the policy itself.
          break;
      }
      if (report.exhausted) return report;
      if (violation.has_value() && witness_real(violation->region)) {
        report.violation = std::move(violation);
        return report;
      }
      const auto rest = subtract(region, entry->rule.match);
      next.insert(next.end(), rest.begin(), rest.end());
    }
    pending = std::move(next);
  }

  // Space matching nothing at the ingress is a black hole iff the policy
  // covers any of it.
  for (const auto& region : pending) {
    const auto covered = covered_overlap(region, policy, budget, report.exhausted);
    if (report.exhausted) return report;
    if (covered.has_value()) {
      report.violation = SymbolicViolation{
          *covered, "ingress matches nothing where the policy covers space"};
      return report;
    }
  }
  return report;
}

}  // namespace difane
