// Symbolic (exhaustive) verification of installed state. Where
// verifier.hpp samples packets, this walks *regions*: starting from the full
// header space at an ingress switch, it peels the switch's table in band +
// priority order into disjoint ternary regions per winning entry, follows
// redirects into the owning partitions, and checks every terminal region's
// action against the reference policy. Coverage is exact — a black hole or
// wrong action over even a single header value is found — at the cost of
// region blowup on large tables, bounded by `max_regions`.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/difane_controller.hpp"
#include "netsim/topology.hpp"

namespace difane {

struct SymbolicViolation {
  Ternary region;       // a witness region (disjoint piece)
  std::string detail;
};

struct SymbolicReport {
  // nullopt => analysis completed; value => first violation found.
  std::optional<SymbolicViolation> violation;
  bool exhausted = false;     // region budget hit: result is inconclusive
  std::size_t regions_checked = 0;

  bool clean() const { return !violation.has_value() && !exhausted; }
  std::string summary() const;
};

struct SymbolicParams {
  // Total region-operation budget per ingress. Operations are cheap word
  // manipulations; the default allows policies of a few thousand rules.
  std::size_t max_regions = 20000000;
};

// Verify one ingress switch's view of the network exhaustively.
SymbolicReport verify_ingress_symbolically(Network& net, DifaneController& controller,
                                           const RuleTable& policy, SwitchId ingress,
                                           SymbolicParams params = {});

}  // namespace difane
