#include "core/system.hpp"

#include <algorithm>

#include "partition/migration.hpp"
#include "util/contract.hpp"
#include "util/log.hpp"
#include "util/spsc_ring.hpp"

namespace difane {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kDifane: return "difane";
    case Mode::kNox: return "nox";
  }
  return "?";
}

// ---- parameter validation ------------------------------------------------
// One knob group per helper, every rejection a field-named ConfigError, all
// of them called from the single ScenarioParams::validate() pass at the
// bottom. A new knob group gets a new helper here — not an ad-hoc check at
// its construction site — so test_scenario_api can enumerate every error
// from one place.

namespace {

void validate_topology(const ScenarioParams& p) {
  if (p.edge_switches == 0) {
    throw ConfigError("edge_switches", "need at least one edge switch");
  }
  if (p.core_switches == 0) {
    throw ConfigError("core_switches", "need at least one core switch");
  }
  if (p.topology == TopologyKind::kLine && p.core_switches > p.edge_switches) {
    throw ConfigError("core_switches",
                      "line topology places authority state on chain nodes; "
                      "core_switches must be <= edge_switches (" +
                          std::to_string(p.core_switches) + " > " +
                          std::to_string(p.edge_switches) + ")");
  }
}

void validate_control_plane(const ScenarioParams& p) {
  if (p.mode == Mode::kDifane) {
    if (p.authority_count == 0) {
      throw ConfigError("authority_count", "DIFANE needs an authority switch");
    }
    if (p.authority_count > p.core_switches) {
      throw ConfigError("authority_count",
                        "authority_count must fit in the core tier (" +
                            std::to_string(p.authority_count) + " > " +
                            std::to_string(p.core_switches) + ")");
    }
    if (p.authority_replicas == 0) {
      throw ConfigError("authority_replicas", "need at least one replica");
    }
    // authority_replicas > authority_count is NOT rejected: the controller
    // clamps to the authority count (a documented convenience, relied on by
    // "replicate everywhere" configs).
    if (p.partitioner.capacity == 0) {
      throw ConfigError("partitioner.capacity",
                        "a zero-capacity partition can hold no rules");
    }
    if (p.max_splice_cost == 0) {
      throw ConfigError("max_splice_cost",
                        "a zero splice budget forbids every cache install; "
                        "use CacheStrategy::kNone to disable caching");
    }
  }
  // A zero cache with an installing strategy silently drops every install —
  // the classic mis-wire. Pure redirection must be declared via kNone.
  if (p.edge_cache_capacity == 0 && p.cache_strategy != CacheStrategy::kNone) {
    throw ConfigError("edge_cache_capacity",
                      "zero cache capacity with an installing cache strategy; "
                      "set CacheStrategy::kNone for pure redirection");
  }
}

void validate_timings(const ScenarioParams& p) {
  if (p.timings.authority_service <= 0.0) {
    throw ConfigError("timings.authority_service", "service time must be > 0");
  }
  if (p.timings.ttl_hops == 0) {
    throw ConfigError("timings.ttl_hops", "a zero TTL drops every packet");
  }
  if (p.timings.failover_detect < 0.0) {
    throw ConfigError("timings.failover_detect",
                      "detection delay cannot be negative");
  }
}

void validate_heartbeat(const ScenarioParams& p) {
  if (p.timings.heartbeat_interval < 0.0) {
    throw ConfigError("timings.heartbeat_interval",
                      "heartbeat interval cannot be negative");
  }
  if (p.timings.heartbeat_interval > 0.0) {
    if (p.timings.heartbeat_miss == 0) {
      throw ConfigError("timings.heartbeat_miss",
                        "a zero miss threshold declares every switch dead "
                        "on the first tick");
    }
    if (p.timings.heartbeat_horizon <= 0.0) {
      throw ConfigError("timings.heartbeat_horizon",
                        "heartbeat detection needs a positive horizon or the "
                        "monitor's tick chain never ends (set it at or past "
                        "the end of injected traffic)");
    }
  }
}

void validate_elephants(const ScenarioParams& p) {
  if (!p.elephants.enabled) return;
  if (p.mode != Mode::kDifane) {
    throw ConfigError("elephants.enabled",
                      "elephant-aware caching runs on DIFANE authority "
                      "switches; NOX mode has no authority miss stream to "
                      "feed the tracker");
  }
  if (p.cache_strategy == CacheStrategy::kNone) {
    throw ConfigError("elephants.enabled",
                      "elephant-aware caching (and mice bypass) modulates "
                      "cache installs; CacheStrategy::kNone never installs "
                      "anything to modulate");
  }
  if (p.elephants.tracker_capacity == 0) {
    throw ConfigError("elephants.tracker_capacity",
                      "a zero-slot space-saving summary can track nothing");
  }
  if (p.elephants.threshold == 0) {
    throw ConfigError("elephants.threshold",
                      "a zero threshold promotes every flow to elephant on "
                      "its first miss; use threshold >= 1");
  }
  if (p.elephants.idle_timeout <= 0.0) {
    throw ConfigError("elephants.idle_timeout",
                      "elephant idle timeout must be > 0 (0 means 'never "
                      "expire' at the flow table, which is spelled via the "
                      "base cache_idle_timeout, not here)");
  }
  if (p.elephants.mice_bypass && p.elephants.mice_min_packets < 2) {
    throw ConfigError("elephants.mice_min_packets",
                      "mice bypass needs a returning-flow bar of at least 2 "
                      "packets; 0/1 would bypass nothing");
  }
  if (p.elephants.probation_idle_timeout < 0.0) {
    throw ConfigError("elephants.probation_idle_timeout",
                      "probation idle timeout must be >= 0 (0 inherits the "
                      "base cache_idle_timeout)");
  }
}

void validate_measurement(const ScenarioParams& p) {
  if (!p.measurement.enabled) return;
  if (p.mode != Mode::kDifane) {
    throw ConfigError("measurement.enabled",
                      "flow measurement samples DIFANE cache/authority "
                      "entries; NOX mode installs none to measure");
  }
  if (p.measurement.sample_prob <= 0.0 || p.measurement.sample_prob > 1.0) {
    throw ConfigError("measurement.sample_prob",
                      "sampling probability must be in (0, 1]; 1.0 counts "
                      "every packet");
  }
  if (p.measurement.export_interval <= 0.0) {
    throw ConfigError("measurement.export_interval",
                      "export interval must be > 0");
  }
  if (p.measurement.export_horizon <= 0.0) {
    throw ConfigError("measurement.export_horizon",
                      "measurement needs a positive export horizon or the "
                      "tick chain never ends (set it at or past the end of "
                      "injected traffic)");
  }
  if (p.measurement.export_latency < 0.0) {
    throw ConfigError("measurement.export_latency",
                      "export latency cannot be negative");
  }
  if (p.measurement.record_capacity == 0) {
    throw ConfigError("measurement.record_capacity",
                      "a zero-record flow table can measure nothing");
  }
}

void validate_execution(const ScenarioParams& p) {
  if (p.threads == 0) {
    throw ConfigError("threads", "need at least one worker thread");
  }
  if (p.threads > 1 && p.link.latency <= 0.0) {
    throw ConfigError("threads",
                      "the sharded engine's conservative lookahead is the link "
                      "latency; threads > 1 needs link.latency > 0");
  }
  if (!util::is_power_of_two(p.shard_ring_capacity)) {
    throw ConfigError("shard_ring_capacity",
                      "SPSC outbox rings index with a mask; capacity must be "
                      "a power of two (>= 1)");
  }
  if (p.burst > p.shard_ring_capacity) {
    throw ConfigError("burst",
                      "a burst of " + std::to_string(p.burst) +
                          " packets can emit more cross-shard messages per "
                          "window than the " +
                          std::to_string(p.shard_ring_capacity) +
                          "-slot outbox ring holds; raise "
                          "shard_ring_capacity or shrink burst");
  }
  if (p.prefetch_depth == 0) {
    throw ConfigError("prefetch_depth",
                      "depth counts exact-match chain entries prefetched per "
                      "key and must be >= 1 (the batch pass itself is "
                      "enabled by burst > 0, not by this knob)");
  }
  if (p.prefetch_depth > FlowTable::kMaxBatch) {
    throw ConfigError("prefetch_depth",
                      "a depth of " + std::to_string(p.prefetch_depth) +
                          " would chase duplicate chains past any plausible "
                          "cache benefit; the supported range is 1.." +
                          std::to_string(FlowTable::kMaxBatch));
  }
}

void validate_reliability(const ScenarioParams& p) {
  if (!p.reliable_ctrl) return;
  if (p.timings.ctrl_rto_initial <= 0.0) {
    throw ConfigError("timings.ctrl_rto_initial",
                      "retransmission timeout must be > 0");
  }
  if (p.timings.ctrl_rto_backoff < 1.0) {
    throw ConfigError("timings.ctrl_rto_backoff",
                      "backoff factor must be >= 1 (shrinking timeouts "
                      "retransmit faster and faster forever)");
  }
  if (p.timings.ctrl_rto_max < p.timings.ctrl_rto_initial) {
    throw ConfigError("timings.ctrl_rto_max",
                      "backoff cap must be >= the initial timeout");
  }
  if (p.faults.msg_loss >= 1.0) {
    throw ConfigError("faults.msg_loss",
                      "reliable delivery with 100% loss retransmits "
                      "forever; loss must be < 1 when reliable_ctrl is on");
  }
}

void validate_migration(const ScenarioParams& p) {
  const auto& m = p.migration;
  if (!m.enabled) {
    // Dormant knobs are not validated: a default-constructed MigrationParams
    // with migration off must never reject (strict no-op contract).
    return;
  }
  if (p.mode != Mode::kDifane) {
    throw ConfigError("migration.enabled",
                      "live partition migration re-homes DIFANE authority "
                      "state; NOX mode has no partitions to move");
  }
  if (p.authority_count < 2) {
    throw ConfigError("migration.enabled",
                      "migration needs somewhere to move to: "
                      "authority_count must be >= 2");
  }
  if (!p.reliable_ctrl) {
    throw ConfigError("migration.enabled",
                      "make-before-break rides install/flip/retire acks; "
                      "migration requires reliable_ctrl");
  }
  if (m.wave_size == 0) {
    throw ConfigError("migration.wave_size",
                      "a zero-size migration wave can move nothing");
  }
  if (m.drain_timeout <= 0.0) {
    throw ConfigError("migration.drain_timeout",
                      "the drain window must be > 0 or in-flight redirects "
                      "race the source retirement");
  }
  if (m.check_interval < 0.0) {
    throw ConfigError("migration.check_interval",
                      "rebalance interval cannot be negative");
  }
  if (m.check_interval > 0.0 && m.horizon <= 0.0) {
    throw ConfigError("migration.horizon",
                      "the rebalance loop needs a positive horizon or its "
                      "tick chain never ends (set it at or past the end of "
                      "injected traffic)");
  }
  if (m.imbalance_threshold < 1.0) {
    throw ConfigError("migration.imbalance_threshold",
                      "threshold below 1 makes every balanced assignment "
                      "look overloaded; use >= 1");
  }
}

void validate_faults(const ScenarioParams& p) {
  p.faults.validate();
  for (const auto& crash : p.faults.crashes) {
    if (p.mode == Mode::kDifane && crash.authority_index >= p.authority_count) {
      throw ConfigError("faults.crashes",
                        "crash names authority index " +
                            std::to_string(crash.authority_index) + " but only " +
                            std::to_string(p.authority_count) + " exist");
    }
  }
}

}  // namespace

void ScenarioParams::validate() const {
  validate_topology(*this);
  validate_control_plane(*this);
  validate_timings(*this);
  validate_heartbeat(*this);
  validate_elephants(*this);
  validate_measurement(*this);
  validate_execution(*this);
  validate_reliability(*this);
  validate_migration(*this);
  validate_faults(*this);
}

Scenario::Scenario(RuleTable policy, ScenarioParams params)
    : policy_(std::move(policy)), params_(params) {
  params_.validate();
  switch (params_.topology) {
    case TopologyKind::kTwoTier:
      topo_ = build_two_tier(net_, params_.edge_switches, params_.core_switches,
                             params_.edge_cache_capacity,
                             /*core cache=*/params_.edge_cache_capacity,
                             params_.link);
      break;
    case TopologyKind::kLine: {
      const auto line = build_line(net_, params_.edge_switches,
                                   params_.edge_cache_capacity, params_.link);
      topo_.edge = line;
      // Authority nodes evenly spaced along the chain (midpoints of k
      // equal segments), so the worst detour is ~one segment.
      for (std::size_t i = 0; i < params_.core_switches; ++i) {
        const std::size_t pos = (2 * i + 1) * line.size() / (2 * params_.core_switches);
        topo_.core.push_back(line[std::min(pos, line.size() - 1)]);
      }
      break;
    }
  }
  // Batch prefetch depth is a per-table hardware hint (it matters only when
  // the burst data plane's lookup_prefetch pass runs, and never changes
  // results). Applied to every switch up front, before any rules land.
  for (SwitchId id = 0; id < net_.switch_count(); ++id) {
    net_.sw(id).table().set_prefetch_depth(
        static_cast<std::uint32_t>(params_.prefetch_depth));
  }
  switch (params_.mode) {
    case Mode::kDifane: {
      std::vector<SwitchId> authorities(topo_.core.begin(),
                                        topo_.core.begin() + params_.authority_count);
      DifaneControllerParams cp;
      cp.partitioner = params_.partitioner;
      cp.cache_strategy = params_.cache_strategy;
      cp.max_splice_cost = params_.max_splice_cost;
      cp.replicas = params_.authority_replicas;
      difane_ = std::make_unique<DifaneController>(net_, policy_, authorities, cp);
      difane_->install_all();
      for (const auto sw : authorities) {
        authority_queues_.emplace(
            sw, ServiceQueue(params_.timings.authority_service,
                             params_.timings.authority_backlog_max));
        if (params_.elephants.enabled) {
          elephant_trackers_.emplace(
              sw, obs::SpaceSaving<BitVec>(params_.elephants.tracker_capacity));
        }
      }
      break;
    }
    case Mode::kNox: {
      nox_ = std::make_unique<NoxControlPlane>(policy_, params_.nox);
      break;
    }
  }
  // Shard plan before any engine-holding component: agents and channels are
  // constructed against the engine that will execute their switch's events.
  build_shards();
  // Fault machinery first, so the channels and agents below can hook into
  // it. With an inactive plan nothing is built and every construction below
  // takes its legacy path. Under the sharded executor the injector splits
  // one Rng stream per shard (plus a coordinator stream) from the master
  // seed, so each shard's deterministic event order implies a deterministic
  // draw order regardless of worker scheduling.
  if (params_.faults.active()) {
    injector_ = std::make_unique<FaultInjector>(
        params_.faults, exec_ != nullptr ? shard_stats_.size() : 0);
  }
  // Control agents + install channels for every switch. Cache installs (from
  // authority switches or the NOX controller) go through these so they pay
  // propagation latency plus the per-flow-mod apply cost, in order.
  ControlChannel::Reliability reliability;
  reliability.enabled = params_.reliable_ctrl;
  reliability.rto_initial = params_.timings.ctrl_rto_initial;
  reliability.rto_backoff = params_.timings.ctrl_rto_backoff;
  reliability.rto_max = params_.timings.ctrl_rto_max;
  for (SwitchId id = 0; id < net_.switch_count(); ++id) {
    agents_.push_back(
        std::make_unique<SwitchAgent>(engine_of(id), net_.sw(id)));
    if (injector_ != nullptr) {
      // Under faults a protector install can be lost or fail, so dependents
      // must be checked rather than trusted (over-redirect beats
      // mis-forward); and applies draw from the install-fault budget.
      agents_.back()->set_strict_guards(true);
      agents_.back()->set_install_fault_hook(
          [this]() { return injector_->fail_install(); });
    }
    const double latency = params_.mode == Mode::kDifane
                               ? params_.timings.cache_install_latency
                               : params_.nox.one_way_latency;
    install_channels_.push_back(std::make_unique<ControlChannel>(
        engine_of(id), *agents_.back(), latency, reliability, injector_.get()));
  }
  // Heartbeat-based failure detection over the authority switches.
  if (difane_ != nullptr && params_.timings.heartbeat_interval > 0.0) {
    HeartbeatParams hp;
    hp.interval = params_.timings.heartbeat_interval;
    hp.miss_threshold = params_.timings.heartbeat_miss;
    hp.horizon = params_.timings.heartbeat_horizon;
    heartbeat_ = std::make_unique<HeartbeatMonitor>(
        net_, difane_->authority_switches(), hp, injector_.get());
    heartbeat_->on_failure([this](SwitchId sw, double) {
      // A migration whose destination just died must abort before the
      // failover re-points partitions (the rollback leans on the old copy
      // the migration had not yet retired).
      migration_on_crash(sw);
      difane_->handle_authority_failure(sw);
    });
    heartbeat_->on_recovery([this](SwitchId sw, double) {
      difane_->handle_authority_restart(sw);
    });
    heartbeat_->start();
  }
  // Measurement mode last: its piggyback hook wants the heartbeat monitor,
  // and its export channels want the injector, both built above.
  setup_measurement();
  schedule_faults();
  // Live-migration rebalance loop: a global-event tick chain (mirrors the
  // measurement tick chain). Explicit request_rehome() works without it.
  if (params_.migration.enabled && params_.migration.check_interval > 0.0 &&
      params_.migration.check_interval <= params_.migration.horizon) {
    net_.engine().at(params_.migration.check_interval,
                     [this]() { migration_tick(); });
  }
}

// Build the telemetry data plane: one FlowTelemetry + export channel per
// exporter (every edge switch, then every authority switch not already an
// edge — that fixed order is also the order finalize_measurement() merges
// the per-exporter batch streams, making the collector stream deterministic).
void Scenario::setup_measurement() {
  if (!params_.measurement.enabled) return;
  std::vector<char> is_exporter(net_.switch_count(), 0);
  for (const SwitchId e : topo_.edge) {
    if (!is_exporter[e]) {
      is_exporter[e] = 1;
      exporters_.push_back(e);
    }
  }
  std::vector<char> watched(net_.switch_count(), 0);
  if (difane_ != nullptr) {
    for (const SwitchId a : difane_->authority_switches()) {
      watched[a] = 1;
      if (!is_exporter[a]) {
        is_exporter[a] = 1;
        exporters_.push_back(a);
      }
    }
  }
  telemetry_.resize(net_.switch_count());
  export_endpoints_.resize(net_.switch_count());
  export_channels_.resize(net_.switch_count());
  export_seq_.assign(net_.switch_count(), 0);
  ControlChannel::Reliability reliability;
  reliability.enabled = params_.reliable_ctrl;
  reliability.rto_initial = params_.timings.ctrl_rto_initial;
  reliability.rto_backoff = params_.timings.ctrl_rto_backoff;
  reliability.rto_max = params_.timings.ctrl_rto_max;
  for (const SwitchId sw : exporters_) {
    // Per-switch sampler stream split from the master measurement seed, so
    // adding or removing one exporter never perturbs another's draws.
    std::uint64_t state =
        params_.measurement.seed ^
        ((static_cast<std::uint64_t>(sw) + 1) * 0x9e3779b97f4a7c15ULL);
    telemetry_[sw] =
        std::make_unique<FlowTelemetry>(params_.measurement, splitmix64(state));
    // Heartbeat piggyback: a batch arriving from a watched (authority)
    // switch is liveness evidence. The monitor is global state, so under the
    // sharded executor the note hops to the coordinator's global queue.
    CollectorEndpoint::BatchHook hook;
    if (heartbeat_ != nullptr && watched[sw]) {
      hook = [this, sw](const obs::FlowExportBatch& batch) {
        const std::uint64_t beat = batch.beat_seq;
        if (exec_ != nullptr) {
          exec_->schedule_global(cur_engine().now(), [this, sw, beat]() {
            heartbeat_->note_liveness(sw, beat);
          });
        } else {
          heartbeat_->note_liveness(sw, beat);
        }
      };
    }
    export_endpoints_[sw] = std::make_unique<CollectorEndpoint>(std::move(hook));
    export_channels_[sw] = std::make_unique<ControlChannel>(
        engine_of(sw), *export_endpoints_[sw], params_.measurement.export_latency,
        reliability, injector_.get());
    // Eviction flush: when a cache entry leaves this switch's table, any
    // pending counts bound to it close into kEvict records instead of
    // silently vanishing with the entry.
    net_.sw(sw).table().set_removal_listener(
        [this, sw](const FlowEntry& entry, CacheRemoval) {
          on_cache_removed(sw, entry);
        });
    if (params_.measurement.export_interval <= params_.measurement.export_horizon) {
      schedule_at_switch(sw, params_.measurement.export_interval,
                        [this, sw]() { export_tick(sw); });
    }
  }
}

void Scenario::export_tick(SwitchId sw) {
  // A failed switch exports nothing (its state is already lost); the tick
  // chain keeps running so exports resume when the switch restarts.
  if (!net_.sw(sw).failed()) {
    // Always send — an empty drain becomes a keepalive batch, which is what
    // lets the heartbeat piggyback distinguish "quiet but alive" from
    // "partitioned" for an authority serving no misses.
    send_export(sw, telemetry_[sw]->drain(obs::ExportKind::kPeriodic));
  }
  const double next = cur_engine().now() + params_.measurement.export_interval;
  if (next <= params_.measurement.export_horizon) {
    schedule_at_switch(sw, next, [this, sw]() { export_tick(sw); });
  }
}

void Scenario::send_export(SwitchId sw, std::vector<obs::FlowExportRecord> records) {
  obs::FlowExportBatch batch;
  batch.exporter = sw;
  batch.seq = export_seq_[sw]++;
  batch.sent_at = cur_engine().now();
  // Stamp the batch with the heartbeat epoch it was sent in; the monitor
  // accepts it as liveness evidence iff the stamp is within miss_threshold
  // ticks of its own counter (see HeartbeatMonitor::note_liveness).
  const double hb = params_.timings.heartbeat_interval;
  batch.beat_seq =
      hb > 0.0 ? static_cast<std::uint64_t>(batch.sent_at / hb) : 0;
  batch.sample_prob = params_.measurement.sample_prob;
  batch.records = std::move(records);
  FlowExport msg;
  msg.batch = std::move(batch);
  export_channels_[sw]->send(std::move(msg));
}

// FlowTable removal listener body (cache band only). Fires with the entry
// still intact, before the slot is reused; must not touch the table.
void Scenario::on_cache_removed(SwitchId sw, const FlowEntry& entry) {
  FlowTelemetry* tel = telemetry_[sw].get();
  if (tel == nullptr) return;
  // A crashing switch loses its counter state: the purge that empties its
  // TCAM must not launder pending counts into exports (crash_authority
  // drops the rest via drop_all()).
  const bool export_counts =
      params_.measurement.flush_on_evict && !net_.sw(sw).failed();
  tel->on_rule_removed(entry.rule.id, cur_engine().now(), export_counts);
}

// After the engine drains: final-drain every exporter, then feed the
// collector (and the optional sink) each exporter's batches in exporter-major
// order. The final batches bypass the export channel — there is no engine
// time left to pay latency in — so they carry kFinal records and fresh seqs
// but never contend with in-flight traffic.
void Scenario::finalize_measurement() {
  if (!params_.measurement.enabled) return;
  for (const SwitchId sw : exporters_) {
    FlowTelemetry& tel = *telemetry_[sw];
    std::vector<obs::FlowExportBatch> batches = export_endpoints_[sw]->take();
    if (net_.sw(sw).failed()) {
      tel.drop_all();  // still down at end of run: residual state is lost
    } else {
      std::vector<obs::FlowExportRecord> final_records =
          tel.drain(obs::ExportKind::kFinal);
      if (!final_records.empty()) {
        obs::FlowExportBatch batch;
        batch.exporter = sw;
        batch.seq = export_seq_[sw]++;
        batch.sent_at = net_.engine().now();
        const double hb = params_.timings.heartbeat_interval;
        batch.beat_seq =
            hb > 0.0 ? static_cast<std::uint64_t>(batch.sent_at / hb) : 0;
        batch.sample_prob = params_.measurement.sample_prob;
        batch.records = std::move(final_records);
        batches.push_back(std::move(batch));
      }
    }
    for (const auto& batch : batches) {
      collector_.on_batch(batch);
      if (export_sink_ != nullptr) export_sink_->on_batch(batch);
    }
  }
  collector_.on_close();
  if (export_sink_ != nullptr) export_sink_->on_close();
  // Switch-side accounting.
  stats_.telemetry_sampled_packets = 0;
  stats_.telemetry_sampled_bytes = 0;
  stats_.telemetry_records = 0;
  stats_.telemetry_dropped_records = 0;
  stats_.telemetry_dropped_packets = 0;
  stats_.telemetry_overflow_drops = 0;
  for (const SwitchId sw : exporters_) {
    const FlowTelemetry& tel = *telemetry_[sw];
    stats_.telemetry_sampled_packets += tel.sampled_packets();
    stats_.telemetry_sampled_bytes += tel.sampled_bytes();
    stats_.telemetry_records += tel.flow_records();
    stats_.telemetry_dropped_records += tel.dropped_records();
    stats_.telemetry_dropped_packets += tel.dropped_packets();
    stats_.telemetry_overflow_drops += tel.overflow_drops();
  }
  // Collector-side accounting.
  stats_.export_batches = collector_.batches();
  stats_.export_records = collector_.records();
  stats_.export_keepalives = collector_.keepalives();
  stats_.export_evict_records = collector_.evict_records();
  stats_.export_final_records = collector_.final_records();
  stats_.export_transmissions = 0;
  stats_.export_retransmits = 0;
  for (const SwitchId sw : exporters_) {
    stats_.export_transmissions += export_channels_[sw]->transmissions();
    stats_.export_retransmits += export_channels_[sw]->retransmits();
  }
  if (heartbeat_ != nullptr) {
    stats_.export_piggyback_fresh = heartbeat_->piggyback_fresh();
    stats_.export_piggyback_stale = heartbeat_->piggyback_stale();
  }
}

// Partition the switches into shards. DIFANE: authority switches spread
// round-robin across the shards first — each shard then accretes a slice of
// the edge — so concurrent authority-serving work lands on distinct workers.
// NOX: the controller gets a shard of its own (the punt path serializes
// through it anyway) and the switches share the rest. threads == 1 builds
// nothing: every downstream branch on exec_ takes the legacy path and the
// run is byte-identical to previous releases.
void Scenario::build_shards() {
  shard_of_.assign(net_.switch_count(), 0);
  ctrl_shard_ = 0;
  if (params_.threads <= 1 || net_.switch_count() == 0) return;
  std::size_t n_shards = 0;
  if (params_.mode == Mode::kDifane) {
    n_shards = std::min<std::size_t>(params_.threads, net_.switch_count());
    std::vector<char> placed(net_.switch_count(), 0);
    std::size_t next = 0;
    for (std::size_t i = 0; i < params_.authority_count; ++i) {
      const SwitchId sw = topo_.core[i];
      shard_of_[sw] = static_cast<std::uint32_t>(next++ % n_shards);
      placed[sw] = 1;
    }
    for (SwitchId id = 0; id < net_.switch_count(); ++id) {
      if (placed[id]) continue;
      shard_of_[id] = static_cast<std::uint32_t>(next++ % n_shards);
    }
  } else {
    n_shards = std::min<std::size_t>(params_.threads, net_.switch_count() + 1);
    const std::size_t sw_shards = n_shards - 1;  // threads > 1 => n_shards >= 2
    ctrl_shard_ = static_cast<std::uint32_t>(sw_shards);
    for (SwitchId id = 0; id < net_.switch_count(); ++id) {
      shard_of_[id] = static_cast<std::uint32_t>(id % sw_shards);
    }
  }
  shard::Executor::Options opts;
  opts.ring_capacity = params_.shard_ring_capacity;
  opts.steal = params_.steal;
  opts.pin_workers = params_.pin_workers;
  exec_ = std::make_unique<shard::Executor>(
      n_shards, params_.threads, params_.link.latency, &net_.engine(), opts);
  shard_stats_.resize(n_shards);
}

void Scenario::merge_shard_stats() {
  for (auto& s : shard_stats_) {
    stats_.merge_from(s);
    s = ScenarioStats{};  // reset so a rerun of this Scenario starts clean
  }
}

void ScenarioStats::merge_from(const ScenarioStats& other) {
  tracer.merge_from(other.tracer);
  ingress_cache_hits += other.ingress_cache_hits;
  ingress_local_hits += other.ingress_local_hits;
  redirects += other.redirects;
  queue_rejects += other.queue_rejects;
  cache_installs += other.cache_installs;
  cache_rules_installed += other.cache_rules_installed;
  cache_hit_mismatches += other.cache_hit_mismatches;
  elephant_promotions += other.elephant_promotions;
  elephant_installs += other.elephant_installs;
  elephant_proactive += other.elephant_proactive;
  mice_bypassed += other.mice_bypassed;
  cache_entries_final += other.cache_entries_final;
  stretch.merge_from(other.stretch);
  setup_completions.merge_from(other.setup_completions);
  ctrl_transmissions += other.ctrl_transmissions;
  ctrl_retransmits += other.ctrl_retransmits;
  ctrl_acks += other.ctrl_acks;
  ctrl_dup_requests += other.ctrl_dup_requests;
  ctrl_reordered += other.ctrl_reordered;
  msgs_lost += other.msgs_lost;
  msgs_duplicated += other.msgs_duplicated;
  msgs_jittered += other.msgs_jittered;
  install_faults += other.install_faults;
  guard_rejects += other.guard_rejects;
  heartbeats_heard += other.heartbeats_heard;
  heartbeats_missed += other.heartbeats_missed;
  failovers_detected += other.failovers_detected;
  recoveries_detected += other.recoveries_detected;
  spurious_failovers += other.spurious_failovers;
  link_flaps += other.link_flaps;
  authority_crashes += other.authority_crashes;
  authority_restarts += other.authority_restarts;
  telemetry_sampled_packets += other.telemetry_sampled_packets;
  telemetry_sampled_bytes += other.telemetry_sampled_bytes;
  telemetry_records += other.telemetry_records;
  telemetry_dropped_records += other.telemetry_dropped_records;
  telemetry_dropped_packets += other.telemetry_dropped_packets;
  telemetry_overflow_drops += other.telemetry_overflow_drops;
  export_batches += other.export_batches;
  export_records += other.export_records;
  export_keepalives += other.export_keepalives;
  export_evict_records += other.export_evict_records;
  export_final_records += other.export_final_records;
  export_transmissions += other.export_transmissions;
  export_retransmits += other.export_retransmits;
  export_piggyback_fresh += other.export_piggyback_fresh;
  export_piggyback_stale += other.export_piggyback_stale;
  migrations_started += other.migrations_started;
  migrations_completed += other.migrations_completed;
  migrations_aborted += other.migrations_aborted;
  migration_rules_moved += other.migration_rules_moved;
  // Peaks are maxima: shard-local double-occupancy never exceeds the global
  // peak, and the migration machinery only runs in global events anyway.
  migration_double_peak = std::max(migration_double_peak, other.migration_double_peak);
  migration_inflight_redirects += other.migration_inflight_redirects;
}

void Scenario::schedule_faults() {
  for (const auto& flap : params_.faults.link_flaps) {
    expects(flap.a < net_.switch_count() && flap.b < net_.switch_count() &&
                net_.adjacent(flap.a, flap.b),
            "faults.link_flaps: no such link in the built topology");
    net_.engine().at(flap.down_at, [this, flap]() {
      net_.set_link_failed(flap.a, flap.b, true);
      ++stats_.link_flaps;
      log_info("link ", flap.a, "-", flap.b, " down at t=", net_.engine().now());
    });
    if (flap.up_at >= 0.0) {
      net_.engine().at(flap.up_at, [this, flap]() {
        net_.set_link_failed(flap.a, flap.b, false);
      });
    }
  }
  if (difane_ == nullptr) return;
  const bool legacy_detect = params_.timings.heartbeat_interval <= 0.0;
  for (const auto& crash : params_.faults.crashes) {
    const SwitchId sw = difane_->authority_switch(crash.authority_index);
    net_.engine().at(crash.at, [this, sw]() { crash_authority(sw); });
    if (legacy_detect) {
      net_.engine().at(crash.at + params_.timings.failover_detect, [this, sw]() {
        migration_on_crash(sw);
        difane_->handle_authority_failure(sw);
      });
    }
    if (crash.restart_at >= 0.0) {
      net_.engine().at(crash.restart_at, [this, sw]() { restart_authority(sw); });
      if (legacy_detect) {
        net_.engine().at(crash.restart_at + params_.timings.failover_detect,
                         [this, sw]() { difane_->handle_authority_restart(sw); });
      }
    }
  }
}

void Scenario::crash_authority(SwitchId sw) {
  net_.set_failed(sw, true);
  // A crash loses the switch's installed state — it reboots with an empty
  // TCAM. (Distinct from schedule_authority_failure, which models a
  // fail-stop partition where the state is merely unreachable.)
  FlowTable& table = net_.sw(sw).table();
  table.clear_band(Band::kCache);
  table.clear_band(Band::kAuthority);
  table.clear_band(Band::kPartition);
  // The heavy-hitter summary is soft state on the switch: it reboots empty,
  // so a restarted authority re-detects its elephants from scratch (the
  // chaos suite pins this re-detection behaviour).
  if (const auto it = elephant_trackers_.find(sw); it != elephant_trackers_.end()) {
    it->second.reset();
  }
  // Flow counters are soft state too: the clear_band() purge above already
  // routed cache-bound pending counts to the dropped side (the removal
  // listener saw failed() == true), and drop_all() loses the rest —
  // authority-band-bound deltas and evict-closed records awaiting export.
  if (sw < telemetry_.size() && telemetry_[sw] != nullptr) {
    telemetry_[sw]->drop_all();
  }
  ++stats_.authority_crashes;
  log_info("authority switch ", sw, " crashed at t=", net_.engine().now());
}

void Scenario::restart_authority(SwitchId sw) {
  net_.set_failed(sw, false);
  ++stats_.authority_restarts;
  log_info("authority switch ", sw, " restarted at t=", net_.engine().now());
}

obs::MetricsReport ScenarioStats::snapshot(const std::string& experiment) const {
  obs::MetricsReport report(experiment);
  // Packet accounting.
  report.set("injected", static_cast<double>(tracer.injected()));
  report.set("delivered", static_cast<double>(tracer.delivered()));
  report.set("dropped_total", static_cast<double>(tracer.dropped()));
  for (std::size_t i = 0; i < kNumDropReasons; ++i) {
    const auto reason = static_cast<DropReason>(i);
    report.set(std::string("dropped_") + drop_reason_name(reason),
               static_cast<double>(tracer.dropped(reason)));
  }
  report.set("redirected_packets", static_cast<double>(tracer.redirected()));
  report.set("hops_mean", tracer.hops().mean());
  // Delay distributions (simulated seconds — deterministic, not wall time).
  const auto& first = tracer.first_packet_delay();
  report.set("first_delay_count", static_cast<double>(first.count()));
  if (!first.empty()) {
    report.set("first_delay_mean_s", first.mean());
    report.set("first_delay_p50_s", first.percentile(0.50));
    report.set("first_delay_p90_s", first.percentile(0.90));
    report.set("first_delay_p99_s", first.percentile(0.99));
  }
  const auto& later = tracer.later_packet_delay();
  if (!later.empty()) {
    report.set("later_delay_p50_s", later.percentile(0.50));
    report.set("later_delay_p99_s", later.percentile(0.99));
  }
  // Control-plane / caching behaviour.
  report.set("ingress_cache_hits", static_cast<double>(ingress_cache_hits));
  report.set("ingress_local_hits", static_cast<double>(ingress_local_hits));
  report.set("redirects", static_cast<double>(redirects));
  report.set("queue_rejects", static_cast<double>(queue_rejects));
  report.set("cache_installs", static_cast<double>(cache_installs));
  report.set("cache_rules_installed", static_cast<double>(cache_rules_installed));
  report.set("cache_hit_mismatches", static_cast<double>(cache_hit_mismatches));
  report.set("cache_hit_fraction", cache_hit_fraction());
  report.set("elephant_promotions", static_cast<double>(elephant_promotions));
  report.set("elephant_installs", static_cast<double>(elephant_installs));
  report.set("elephant_proactive", static_cast<double>(elephant_proactive));
  report.set("mice_bypassed", static_cast<double>(mice_bypassed));
  report.set("cache_entries_final", static_cast<double>(cache_entries_final));
  if (stretch.count() > 0) {
    report.set("stretch_p50", stretch.percentile(0.50));
    report.set("stretch_p99", stretch.percentile(0.99));
  }
  report.set("setup_completions", static_cast<double>(setup_completions.total()));
  report.set("setup_rate_per_s", setup_completions.rate());
  // Fault / robustness counters (all zero on a fault-free legacy-channel
  // run; emitted unconditionally so the report schema is run-independent).
  report.set("ctrl_transmissions", static_cast<double>(ctrl_transmissions));
  report.set("ctrl_retransmits", static_cast<double>(ctrl_retransmits));
  report.set("ctrl_acks", static_cast<double>(ctrl_acks));
  report.set("ctrl_dup_requests", static_cast<double>(ctrl_dup_requests));
  report.set("ctrl_reordered", static_cast<double>(ctrl_reordered));
  report.set("msgs_lost", static_cast<double>(msgs_lost));
  report.set("msgs_duplicated", static_cast<double>(msgs_duplicated));
  report.set("msgs_jittered", static_cast<double>(msgs_jittered));
  report.set("install_faults", static_cast<double>(install_faults));
  report.set("guard_rejects", static_cast<double>(guard_rejects));
  report.set("heartbeats_heard", static_cast<double>(heartbeats_heard));
  report.set("heartbeats_missed", static_cast<double>(heartbeats_missed));
  report.set("failovers_detected", static_cast<double>(failovers_detected));
  report.set("recoveries_detected", static_cast<double>(recoveries_detected));
  report.set("spurious_failovers", static_cast<double>(spurious_failovers));
  report.set("link_flaps", static_cast<double>(link_flaps));
  report.set("authority_crashes", static_cast<double>(authority_crashes));
  report.set("authority_restarts", static_cast<double>(authority_restarts));
  // Telemetry data plane (all zero with measurement off).
  report.set("telemetry_sampled_packets",
             static_cast<double>(telemetry_sampled_packets));
  report.set("telemetry_sampled_bytes",
             static_cast<double>(telemetry_sampled_bytes));
  report.set("telemetry_records", static_cast<double>(telemetry_records));
  report.set("telemetry_dropped_records",
             static_cast<double>(telemetry_dropped_records));
  report.set("telemetry_dropped_packets",
             static_cast<double>(telemetry_dropped_packets));
  report.set("telemetry_overflow_drops",
             static_cast<double>(telemetry_overflow_drops));
  report.set("export_batches", static_cast<double>(export_batches));
  report.set("export_records", static_cast<double>(export_records));
  report.set("export_keepalives", static_cast<double>(export_keepalives));
  report.set("export_evict_records", static_cast<double>(export_evict_records));
  report.set("export_final_records", static_cast<double>(export_final_records));
  report.set("export_transmissions", static_cast<double>(export_transmissions));
  report.set("export_retransmits", static_cast<double>(export_retransmits));
  report.set("export_piggyback_fresh",
             static_cast<double>(export_piggyback_fresh));
  report.set("export_piggyback_stale",
             static_cast<double>(export_piggyback_stale));
  // Live partition migration (all zero with migration off).
  report.set("migrations_started", static_cast<double>(migrations_started));
  report.set("migrations_completed", static_cast<double>(migrations_completed));
  report.set("migrations_aborted", static_cast<double>(migrations_aborted));
  report.set("migration_rules_moved", static_cast<double>(migration_rules_moved));
  report.set("migration_double_peak", static_cast<double>(migration_double_peak));
  report.set("migration_inflight_redirects",
             static_cast<double>(migration_inflight_redirects));
  return report;
}

std::vector<FlowStatsEntry> Scenario::query_flow_stats() const {
  std::vector<std::vector<FlowStatsEntry>> per_switch;
  per_switch.reserve(net_.switch_count());
  for (SwitchId id = 0; id < net_.switch_count(); ++id) {
    per_switch.push_back(collect_stats(net_.sw(id)));
  }
  return merge_stats(per_switch);
}

// Live (unexpired) cache-band entries across the edge at time `now` — the
// TCAM footprint a dump would show. Read-only walk (lookup() would sweep
// lazily-expired slots and mutate).
std::uint64_t Scenario::live_cache_entries(double now) const {
  std::uint64_t live = 0;
  for (const SwitchId e : topo_.edge) {
    for (const auto& entry : net_.sw(e).table().entries(Band::kCache)) {
      if (!entry.expired(now)) ++live;
    }
  }
  return live;
}

const ScenarioStats& Scenario::run(const std::vector<FlowSpec>& flows) {
  // Occupancy sample, if requested: a global event (under the sharded
  // executor globals run at window barriers with the workers paused, so the
  // cross-shard table read is race-free — the crash_authority pattern).
  if (params_.occupancy_sample_at >= 0.0) {
    net_.engine().at(params_.occupancy_sample_at, [this]() {
      stats_.cache_entries_final = live_cache_entries(net_.engine().now());
    });
  }
  if (params_.burst > 0) {
    inject_bursts(flows);
  } else {
    for (const auto& flow : flows) inject(flow);
  }
  if (exec_ != nullptr) {
    // Routes must exist before shard threads read next_hop() concurrently;
    // they are recomputed at the barrier after any window that ran global
    // events (link flaps, crashes) — the only events that invalidate them.
    net_.precompute_routes();
    exec_->run([this]() { net_.precompute_routes(); });
    merge_shard_stats();
  } else {
    net_.engine().run();
  }
  ensures(stats_.tracer.in_flight() == 0,
          "Scenario: packets unaccounted for after the run");
  if (params_.occupancy_sample_at < 0.0) {
    stats_.cache_entries_final = live_cache_entries(net_.engine().now());
  }
  finalize_measurement();
  collect_fault_stats();
  return stats_;
}

void Scenario::collect_fault_stats() {
  stats_.ctrl_transmissions = 0;
  stats_.ctrl_retransmits = 0;
  stats_.ctrl_acks = 0;
  stats_.ctrl_dup_requests = 0;
  stats_.ctrl_reordered = 0;
  for (const auto& channel : install_channels_) {
    stats_.ctrl_transmissions += channel->transmissions();
    stats_.ctrl_retransmits += channel->retransmits();
    stats_.ctrl_acks += channel->acks();
    stats_.ctrl_dup_requests += channel->dup_requests();
    stats_.ctrl_reordered += channel->reordered();
  }
  stats_.install_faults = 0;
  stats_.guard_rejects = 0;
  for (const auto& agent : agents_) {
    stats_.install_faults += agent->install_faults();
    stats_.guard_rejects += agent->guard_rejects();
  }
  if (injector_ != nullptr) {
    const auto& c = injector_->counters();
    stats_.msgs_lost = c.msgs_lost;
    stats_.msgs_duplicated = c.msgs_duplicated;
    stats_.msgs_jittered = c.msgs_jittered;
  }
  if (heartbeat_ != nullptr) {
    stats_.heartbeats_heard = heartbeat_->beats_heard();
    stats_.heartbeats_missed = heartbeat_->beats_missed();
    stats_.failovers_detected = heartbeat_->failures_declared();
    stats_.recoveries_detected = heartbeat_->recoveries_declared();
    stats_.spurious_failovers = heartbeat_->spurious_failovers();
  }
  // The per-channel totals are cumulative across runs of this scenario, so
  // only the delta since the previous collection reaches the global registry.
  obs_retransmits_->inc(stats_.ctrl_retransmits - obs_reported_.retransmits);
  obs_msgs_lost_->inc(stats_.msgs_lost - obs_reported_.msgs_lost);
  obs_failovers_->inc(stats_.failovers_detected - obs_reported_.failovers);
  obs_spurious_->inc(stats_.spurious_failovers - obs_reported_.spurious);
  obs_reported_ = {stats_.ctrl_retransmits, stats_.msgs_lost,
                   stats_.failovers_detected, stats_.spurious_failovers};
}

VerifyReport Scenario::verify_installed(std::size_t samples_per_ingress,
                                        std::uint64_t seed) {
  expects(difane_ != nullptr, "verify_installed: DIFANE mode only");
  VerifierParams vp;
  vp.samples_per_ingress = samples_per_ingress;
  vp.seed = seed;
  vp.now = net_.engine().now();
  return verify_installed_state(net_, *difane_, policy_, topo_.edge, vp);
}

void Scenario::inject(const FlowSpec& flow) {
  const SwitchId ingress = ingress_switch(flow.ingress_index);
  for (std::size_t p = 0; p < flow.packets; ++p) {
    Packet pkt;
    pkt.flow = flow.id;
    pkt.header = flow.header;
    pkt.created = flow.start + static_cast<double>(p) * flow.packet_gap;
    pkt.ingress = ingress;
    pkt.is_first_of_flow = (p == 0);
    schedule_at_switch(ingress, pkt.created, [this, ingress, pkt]() {
      st().tracer.on_injected(pkt);
      process(ingress, pkt);
    });
  }
}

void Scenario::inject_bursts(const std::vector<FlowSpec>& flows) {
  burst_plan_ = coalesce_bursts(
      flows, static_cast<std::uint32_t>(topo_.edge.size()), params_.burst);
  burst_resume_.assign(burst_plan_.groups.size(), BurstResume{});
  for (const auto& b : burst_plan_.bursts) {
    const SwitchId ingress = topo_.edge[b.group];
    const double when = burst_plan_.groups[b.group][b.begin].at;
    auto handler = [this, b]() { process_burst(b.group, b.begin, b.end); };
    static_assert(Engine::Handler::fits_inline<decltype(handler)>,
                  "burst event handler must not allocate");
    schedule_at_switch(ingress, when, std::move(handler));
  }
}

// Drain one burst's arrivals, one packet at a time, at each packet's own
// clock. Two deferral rules keep event interleaving — and therefore every
// observable stream — byte-identical to the scalar per-packet path:
//  * an engine event pending strictly before the next arrival runs first
//    (the scalar heap would pop it first; at equal times the packet wins
//    the FIFO tie-break, exactly like the inject-time event it replaces);
//  * an arrival at or past the engine's horizon belongs to a later window
//    (run_before would not have popped its per-packet event).
// Either way the remainder reschedules at the next arrival's own time, and
// the continuation picks its chunk's memoized batch state back up from
// burst_resume_ — the hash/prefetch pass is per chunk, not per deferral, so
// a redirect storm that defers after every packet still pays batch cost
// once per kMaxBatch packets. The shard's peek_time() sequence — which
// sizes conservative windows — also matches the scalar run's, and batch
// memoization is invisible to it (lookup_prefetch never mutates).
void Scenario::process_burst(std::uint32_t group, std::uint32_t begin,
                             std::uint32_t end) {
  const auto& arrivals = burst_plan_.groups[group];
  const SwitchId at = topo_.edge[group];
  BurstResume& resume = burst_resume_[group];
  std::uint32_t i = begin;
  while (i < end) {
    // Chunk of up to kMaxBatch arrivals: memoize exact-match heads and
    // prefetch their slab entries before resolving any of them. A resumed
    // continuation lands inside the stored chunk and skips straight to the
    // resolve loop; stale memoized heads (the table mutated since pass 1)
    // are recomputed per key by lookup_prepared's generation check.
    if (!(resume.chunk_begin <= i && i < resume.chunk_end)) {
      resume.chunk_begin = i;
      resume.chunk_end = std::min<std::uint32_t>(end, i + FlowTable::kMaxBatch);
      const FlowTable& table = net_.sw(at).table();
      const BitVec* keys[FlowTable::kMaxBatch];
      for (std::uint32_t k = i; k < resume.chunk_end; ++k) {
        keys[k - i] = &arrivals[k].header;
      }
      table.lookup_prefetch(keys, resume.chunk_end - i, resume.batch);
    }
    const std::uint32_t chunk_begin = resume.chunk_begin;
    const std::uint32_t chunk_end = resume.chunk_end;
    for (std::uint32_t k = i; k < chunk_end; ++k) {
      const auto& a = arrivals[k];
      Engine& eng = cur_engine();
      if (eng.peek_time() < a.at || a.at >= eng.horizon()) {
        auto cont = [this, group, k, end]() { process_burst(group, k, end); };
        static_assert(Engine::Handler::fits_inline<decltype(cont)>,
                      "burst continuation must not allocate");
        schedule_at_switch(at, a.at, std::move(cont));
        return;
      }
      eng.advance_to(a.at);
      Packet pkt;
      pkt.flow = a.flow;
      pkt.header = a.header;
      pkt.created = a.at;
      pkt.ingress = at;
      pkt.is_first_of_flow = a.first;
      st().tracer.on_injected(pkt);
      process_injected(at, pkt, resume.batch, k - chunk_begin);
    }
    i = chunk_end;
  }
}

void Scenario::dispose(const Packet& pkt, bool delivered, DropReason reason) {
  const double now = cur_engine().now();
  ScenarioStats& s = st();
  if (delivered) {
    s.tracer.on_delivered(pkt, now);
  } else {
    s.tracer.on_dropped(pkt, reason);
  }
  // Flow setup completes when the first packet reaches its policy-mandated
  // disposition (delivery or an explicit policy drop). Losses from overload
  // or failures are not completions.
  if (pkt.is_first_of_flow && (delivered || reason == DropReason::kPolicyDrop)) {
    s.setup_completions.record(now);
  }
}

void Scenario::process(SwitchId at, Packet pkt) {
  obs_packets_->inc();
  Switch& sw = net_.sw(at);
  if (sw.failed()) {
    dispose(pkt, false, DropReason::kSwitchFailed);
    return;
  }
  // In-flight tunnels bypass the policy tables at transit switches.
  if (pkt.encap_target.has_value()) {
    if (*pkt.encap_target == at) {
      handle_authority(at, pkt);
    } else {
      forward_hop(at, *pkt.encap_target, pkt);
    }
    return;
  }
  if (pkt.tunnel_egress.has_value()) {
    if (*pkt.tunnel_egress == at) {
      deliver(at, pkt);
    } else {
      forward_hop(at, *pkt.tunnel_egress, pkt);
    }
    return;
  }
  const double now = cur_engine().now();
  const FlowEntry* entry = sw.table().lookup(pkt.header, now, pkt.bytes);
  process_lookup_result(at, pkt, entry, now);
}

// process() for a freshly injected packet whose exact-match chain head was
// memoized (and prefetched) by FlowTable::lookup_prefetch. Injected packets
// carry no encap/tunnel state, so the transit branches of process() cannot
// apply; everything else is the scalar path verbatim.
void Scenario::process_injected(SwitchId at, const Packet& pkt,
                                const FlowTable::BatchState& batch,
                                std::size_t slot) {
  obs_packets_->inc();
  Switch& sw = net_.sw(at);
  if (sw.failed()) {
    dispose(pkt, false, DropReason::kSwitchFailed);
    return;
  }
  const double now = cur_engine().now();
  const FlowEntry* entry =
      sw.table().lookup_prepared(pkt.header, slot, batch, now, pkt.bytes);
  process_lookup_result(at, pkt, entry, now);
}

void Scenario::process_lookup_result(SwitchId at, Packet pkt,
                                     const FlowEntry* entry, double now) {
  if (entry == nullptr) {
    if (params_.mode == Mode::kNox && at == pkt.ingress) {
      punt_to_controller(pkt);
    } else {
      dispose(pkt, false, DropReason::kNoRule);
    }
    return;
  }
  // Ingress-side cache accounting (first lookup of the packet only).
  if (at == pkt.ingress && pkt.hops == 0 && !pkt.was_redirected) {
    if (entry->band == Band::kCache) {
      ++st().ingress_cache_hits;
    } else if (entry->band == Band::kAuthority) {
      ++st().ingress_local_hits;
    }
  }
  if (params_.verify_cache_hits && entry->band == Band::kCache &&
      entry->rule.action.type != ActionType::kEncap) {
    const Rule* want = policy_.match(pkt.header);
    if (want != nullptr && entry->rule.origin_or_self() != want->id) {
      ++st().cache_hit_mismatches;
      if (st().cache_hit_mismatches <= 5) {
        log_warn("cache-hit mismatch at switch ", at, ": hit ",
                 entry->rule.to_string(), " (origin ", entry->rule.origin_or_self(),
                 ") want ", want->to_string());
      }
    }
  }
  // Telemetry: a terminal match (the entry decides the packet's fate here —
  // encap means the authority decides, and is sampled there instead). This
  // is the packet's only table lookup, so it is offered exactly once.
  if (at < telemetry_.size() && telemetry_[at] != nullptr &&
      entry->band != Band::kPartition &&
      entry->rule.action.type != ActionType::kEncap) {
    telemetry_[at]->sample(pkt.header, entry->rule.id, now, pkt.bytes);
  }
  apply_action(at, pkt, entry->rule.action);
}

void Scenario::handle_authority(SwitchId at, Packet pkt) {
  obs_authority_->inc();
  const double now = cur_engine().now();
  auto queue_it = authority_queues_.find(at);
  expects(queue_it != authority_queues_.end(),
          "handle_authority: redirect reached a non-authority switch");
  const auto completion = queue_it->second.admit(now);
  if (!completion.has_value()) {
    ++st().queue_rejects;
    dispose(pkt, false, DropReason::kControllerQueue);
    return;
  }
  auto resolve = [this, at, pkt]() mutable {
    AuthorityNode* node = difane_->node_at(at);
    ensures(node != nullptr, "authority switch lost its control node");
    pkt.encap_target.reset();
    auto result = node->handle(pkt.header);
    if (!result.has_value()) {
      // Misdirected (e.g. stale partition rules during failover). With live
      // migration on, a redirect that chased a partition to a switch that
      // retired it re-encaps to the current owner instead of dropping — the
      // "zero lost packets attributable to migration" contract; the TTL
      // bounds the chase. Migration off keeps the legacy drop byte-for-byte.
      if (params_.migration.enabled) {
        const Partition& partition = difane_->plan().find(pkt.header);
        const SwitchId owner = difane_->replica_for(partition, at);
        if (owner != at && !net_.sw(owner).failed()) {
          apply_action(at, pkt, Action::encap(owner));
          return;
        }
      }
      dispose(pkt, false, DropReason::kUnreachable);
      return;
    }
    // A redirect landing at the *old* home of an in-flight migration is the
    // drain traffic make-before-break exists for; count it (the old copy
    // still resolves correctly — that is the point).
    if (!migrating_old_home_.empty()) {
      const auto mig = migrating_old_home_.find(result->partition);
      if (mig != migrating_old_home_.end() && mig->second == at) {
        ++st().migration_inflight_redirects;
      }
    }
    // Elephant-aware install policy: feed this miss into the authority's
    // heavy-hitter summary, then classify on the *guaranteed* (lower-bound)
    // count so sketch overestimation never promotes a mouse. Runs on the
    // authority's owning shard, so the summary needs no locking.
    double idle_timeout = params_.timings.cache_idle_timeout;
    bool bypass = false;
    bool promoted = false;
    const bool installable = !result->install.rules.empty() && pkt.ingress != at;
    if (params_.elephants.enabled) {
      if (params_.elephants.probation_idle_timeout > 0.0) {
        idle_timeout = params_.elephants.probation_idle_timeout;
      }
      auto& tracker = elephant_trackers_.find(at)->second;
      const std::uint64_t before = tracker.guaranteed(pkt.header);
      tracker.offer(pkt.header);
      switch (classify_install(params_.elephants,
                               tracker.guaranteed(pkt.header))) {
        case InstallClass::kElephant:
          idle_timeout = params_.elephants.idle_timeout;
          if (before < params_.elephants.threshold) {
            ++st().elephant_promotions;
            promoted = true;
          }
          if (installable) ++st().elephant_installs;
          break;
        case InstallClass::kBypass:
          bypass = true;
          if (installable) ++st().mice_bypassed;
          break;
        case InstallClass::kNormal:
          break;
      }
    }
    if (installable && !bypass) {
      if (exec_ == nullptr) {
        install_cache(pkt.ingress, at, result->install, idle_timeout);
      } else {
        // The ingress's channel lives on the ingress's shard engine; hop the
        // install there (it crosses the window boundary, so threads > 1 pays
        // the documented clamp on this latency-free control dispatch).
        const SwitchId ingress = pkt.ingress;
        exec_->schedule(shard_of_[ingress], cur_engine().now(),
                        [this, ingress, at, install = result->install,
                         idle_timeout]() {
                          install_cache(ingress, at, install, idle_timeout);
                        });
      }
      // Proactive install: a freshly promoted elephant's flows arrive at
      // many ingresses; pre-seed every other edge now so each one's
      // cold-start miss becomes a hit. These entries would have been
      // installed on first contact anyway — this moves the install earlier,
      // it does not grow the steady-state footprint.
      if (promoted && params_.elephants.proactive) {
        for (const SwitchId edge : topo_.edge) {
          if (edge == pkt.ingress) continue;
          ++st().elephant_proactive;
          if (exec_ == nullptr) {
            install_cache(edge, at, result->install, idle_timeout);
          } else {
            exec_->schedule(shard_of_[edge], cur_engine().now(),
                            [this, edge, at, install = result->install,
                             idle_timeout]() {
                              install_cache(edge, at, install, idle_timeout);
                            });
          }
        }
      }
    }
    if (result->winner == nullptr) {
      dispose(pkt, false, DropReason::kNoRule);
      return;
    }
    // Credit the hit to this switch's installed authority-band copy so
    // per-policy-rule counters stay exact (transparency).
    net_.sw(at).table().hit(result->winner->id, Band::kAuthority,
                            cur_engine().now(), pkt.bytes);
    // Telemetry: an authority resolution is this packet's terminal match.
    if (at < telemetry_.size() && telemetry_[at] != nullptr) {
      telemetry_[at]->sample(pkt.header, result->winner->id,
                             cur_engine().now(), pkt.bytes);
    }
    apply_action(at, pkt, result->winner->action);
  };
  static_assert(Engine::Handler::fits_inline<decltype(resolve)>,
                "authority-resolution capture must fit the engine's inline "
                "handler storage (raise Engine::kInlineHandlerBytes)");
  cur_engine().at(*completion, std::move(resolve));
}

void Scenario::install_cache(SwitchId ingress, SwitchId from_authority,
                             const CacheInstall& install, double idle_timeout) {
  // A group that cannot fit would evict its own members while installing,
  // leaving an unprotected rule behind; skip it (the flow keeps taking the
  // redirect path, which is always correct).
  if (install.rules.empty()) return;  // kNone: nothing to install
  if (install.rules.size() > params_.edge_cache_capacity) return;
  obs_installs_->inc();
  ScenarioStats& s = st();
  ++s.cache_installs;
  s.cache_rules_installed += install.rules.size();
  // An install push is liveness evidence for the sending authority: tell the
  // heartbeat monitor once the message would have reached the ingress, so a
  // run of lost beats from a switch that is visibly serving traffic does not
  // escalate into a spurious failover.
  if (heartbeat_ != nullptr) {
    const double arrive =
        cur_engine().now() + params_.timings.cache_install_latency;
    auto note = [this, from_authority]() {
      heartbeat_->note_message_from(from_authority);
    };
    if (exec_ != nullptr) {
      exec_->schedule_global(arrive, std::move(note));
    } else {
      net_.engine().at(arrive, std::move(note));
    }
  }
  // Protectors first: until the lowest-priority member lands, a partially
  // installed group only over-redirects, never mis-forwards.
  auto ordered = install.rules;
  std::sort(ordered.begin(), ordered.end(), rule_before);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    FlowMod mod;
    mod.op = FlowModOp::kAdd;
    mod.band = Band::kCache;
    mod.rule = ordered[i];
    mod.idle_timeout = idle_timeout;
    // Every earlier (higher-priority) group member protects this one: if any
    // of them leaves the cache, this entry must leave too. Redirect entries
    // are self-safe and guard nothing of their own.
    if (ordered[i].action.type != ActionType::kEncap) {
      for (std::size_t g = 0; g < i; ++g) mod.guards.push_back(ordered[g].id);
    }
    install_channels_[ingress]->send(mod);
  }
}

void Scenario::punt_to_controller(Packet pkt) {
  const double arrival = cur_engine().now() + params_.nox.one_way_latency;
  auto punt = [this, pkt]() mutable {
    const auto decision = nox_->handle_punt(cur_engine().now(), pkt.header);
    if (!decision.has_value()) {
      ++st().queue_rejects;
      dispose(pkt, false, DropReason::kControllerQueue);
      return;
    }
    auto resume = [this, pkt, decision]() mutable {
      if (decision->winner == nullptr) {
        dispose(pkt, false, DropReason::kNoRule);
        return;
      }
      const Action action = decision->winner->action;
      // The microflow install rides the control channel back to the ingress
      // (one-way latency + flow-mod apply cost, in order)...
      if (decision->cache_rule.has_value()) {
        FlowMod mod;
        mod.op = FlowModOp::kAdd;
        mod.band = Band::kCache;
        mod.rule = *decision->cache_rule;
        mod.idle_timeout = params_.timings.cache_idle_timeout;
        if (exec_ == nullptr) {
          install_channels_[pkt.ingress]->send(mod);
        } else {
          // The channel lives on the ingress's shard; hop the send there.
          const SwitchId ingress = pkt.ingress;
          exec_->schedule(shard_of_[ingress], cur_engine().now(),
                          [this, ingress, mod]() mutable {
                            install_channels_[ingress]->send(std::move(mod));
                          });
        }
      }
      // ...while the packet-out resumes the packet at the ingress switch.
      const double out = cur_engine().now() + params_.nox.one_way_latency;
      schedule_at_switch(pkt.ingress, out, [this, pkt, action]() mutable {
        Switch& sw = net_.sw(pkt.ingress);
        if (sw.failed()) {
          dispose(pkt, false, DropReason::kSwitchFailed);
          return;
        }
        apply_action(pkt.ingress, pkt, action);
      });
    };
    static_assert(Engine::Handler::fits_inline<decltype(resume)>,
                  "NOX resume capture (packet + controller decision) must fit "
                  "the engine's inline handler storage — it is the largest "
                  "event capture in core/system.cpp");
    cur_engine().at(decision->ready_time, std::move(resume));
  };
  if (exec_ != nullptr) {
    exec_->schedule(ctrl_shard_, arrival, std::move(punt));
  } else {
    net_.engine().at(arrival, std::move(punt));
  }
}

void Scenario::deliver(SwitchId at, Packet pkt) {
  if (pkt.is_first_of_flow) {
    const auto shortest = net_.distance(pkt.ingress, at);
    const double base = shortest == 0 ? 1.0 : static_cast<double>(shortest);
    st().stretch.add(static_cast<double>(std::max<std::uint32_t>(pkt.hops, 1)) / base);
  }
  dispose(pkt, true, DropReason::kPolicyDrop /*unused for deliveries*/);
}

void Scenario::apply_action(SwitchId at, Packet pkt, const Action& action) {
  switch (action.type) {
    case ActionType::kDrop:
      dispose(pkt, false, DropReason::kPolicyDrop);
      return;
    case ActionType::kForward: {
      const SwitchId egress = egress_switch(action.arg);
      if (at == egress) {
        deliver(at, pkt);
        return;
      }
      pkt.tunnel_egress = egress;
      forward_hop(at, egress, pkt);
      return;
    }
    case ActionType::kEncap: {
      const SwitchId target = action.arg;
      pkt.encap_target = target;
      if (!pkt.was_redirected) {
        pkt.was_redirected = true;
        ++st().redirects;
      }
      if (at == target) {
        handle_authority(at, pkt);
        return;
      }
      forward_hop(at, target, pkt);
      return;
    }
    case ActionType::kToController:
      punt_to_controller(pkt);
      return;
  }
}

void Scenario::forward_hop(SwitchId at, SwitchId toward, Packet pkt) {
  if (pkt.hops >= params_.timings.ttl_hops) {
    dispose(pkt, false, DropReason::kTtlExceeded);
    return;
  }
  const SwitchId nh = net_.next_hop(at, toward);
  if (nh == kInvalidSwitch) {
    dispose(pkt, false, DropReason::kUnreachable);
    return;
  }
  Link* link = net_.link(at, nh);
  ensures(link != nullptr, "forward_hop: next hop without a link");
  if (!link->up()) {
    // Raced a link flap: routes recompute around a downed link, but a packet
    // already committed to this hop has nowhere to go.
    dispose(pkt, false, DropReason::kUnreachable);
    return;
  }
  const double now = cur_engine().now();
  const double delivery = link->send(now, pkt.bytes) + params_.timings.switch_proc;
  pkt.hops += 1;
  auto hop = [this, nh, pkt]() { process(nh, pkt); };
  static_assert(Engine::Handler::fits_inline<decltype(hop)>,
                "per-hop capture must fit the engine's inline handler storage");
  // Every hop pays at least the link latency, so a cross-shard hop always
  // lands at or beyond the receiving window's start — never clamped.
  schedule_at_switch(nh, delivery, std::move(hop));
}

// ---- live partition migration --------------------------------------------
// Make-before-break over the reliable control channel. Every method below
// runs as a global event (workers parked), so mutating the plan, the
// authority bindings, and remote switch tables is race-free — the same
// discipline crash_authority established. The control messages themselves
// still ride the per-switch channels: sends hop to the owning shard, acks
// hop back to the global queue, so installs and flips pay latency, loss,
// and retransmission like any other control traffic.

void Scenario::request_rehome(std::size_t partition_index, AuthorityIndex dest,
                              SimTime when) {
  expects(params_.migration.enabled, "request_rehome: enable params.migration");
  expects(difane_ != nullptr, "request_rehome: DIFANE mode only");
  expects(partition_index < difane_->plan().partitions().size(),
          "request_rehome: no such partition");
  expects(dest < difane_->authority_switches().size(),
          "request_rehome: no such authority index");
  net_.engine().at(when, [this, partition_index, dest]() {
    start_migration(partition_index, dest);
  });
}

void Scenario::start_migration(std::size_t index, AuthorityIndex dest) {
  expects(shard::in_global_context(), "start_migration: global events only");
  const Partition& partition = difane_->plan().partitions().at(index);
  if (partition.primary == dest) return;  // already home
  // One move per partition at a time, at most wave_size concurrent moves;
  // excess requests queue FIFO and drain as slots free up.
  if (migrating_old_home_.count(partition.id) != 0 ||
      active_migrations_.size() >= params_.migration.wave_size) {
    migration_queue_.emplace_back(index, dest);
    return;
  }
  ++stats_.migrations_started;
  if (net_.sw(difane_->authority_switch(dest)).failed()) {
    ++stats_.migrations_aborted;  // nothing installed yet: trivially aborted
    return;
  }
  const auto old_serving = difane_->serving_set(partition);
  const auto new_serving = difane_->serving_set(dest, partition.primary);
  const std::size_t slot = migrations_.size();
  migrations_.emplace_back();
  LiveMigration& m = migrations_.back();
  m.index = index;
  m.from = partition.primary;
  m.to = dest;
  m.rules = partition.rules.rules().size();
  for (const auto member : new_serving) {
    if (std::find(old_serving.begin(), old_serving.end(), member) ==
        old_serving.end()) {
      m.installs.push_back(member);
    }
  }
  for (const auto member : old_serving) {
    if (std::find(new_serving.begin(), new_serving.end(), member) ==
        new_serving.end()) {
      m.retires.push_back(member);
    }
  }
  active_migrations_.push_back(slot);
  migrating_old_home_[partition.id] = difane_->authority_switch(m.from);
  // "Make" phase: stock every new serving-set member before any flip. The
  // extra copies are the double-occupancy cost make-before-break pays.
  stats_.migration_rules_moved += m.rules * m.installs.size();
  migration_double_now_ +=
      static_cast<std::int64_t>(m.rules * m.installs.size());
  stats_.migration_double_peak =
      std::max(stats_.migration_double_peak,
               static_cast<std::uint64_t>(migration_double_now_));
  log_info("migration: partition ", index, " authority ", m.from, " -> ",
           m.to, " (", m.rules, " rules, ", m.installs.size(), " installs, ",
           m.retires.size(), " retires) at t=", net_.engine().now());
  if (m.installs.empty()) {
    // Destination already stocked (it was a replica/backup): flip directly.
    migration_flip(slot);
    return;
  }
  m.pending_acks = m.installs.size();
  PartitionInstall msg;
  msg.rules = partition.rules.rules();
  for (const auto member : m.installs) {
    difane_->bind_partition(index, member);
    send_migration(difane_->authority_switch(member), msg,
                   [this, slot](bool ok) { migration_install_acked(slot, ok); });
  }
}

void Scenario::migration_install_acked(std::size_t slot, bool ok) {
  LiveMigration& m = migrations_[slot];
  if (!ok) m.aborted = true;  // destination crashed or refused the stock
  expects(m.pending_acks > 0, "migration: spurious install ack");
  if (--m.pending_acks > 0) return;
  if (m.aborted) {
    migration_rollback(slot);
  } else {
    migration_flip(slot);
  }
}

void Scenario::migration_flip(std::size_t slot) {
  LiveMigration& m = migrations_[slot];
  if (m.aborted) {  // destination died between the last ack and this event
    migration_rollback(slot);
    return;
  }
  // "Break" phase: commit the re-home first (primary = dest, backup = old
  // home), so every flip rule computed below already answers with the new
  // owner; the old home stays bound and stocked as the new backup, which is
  // what a post-flip destination crash falls back to.
  difane_->commit_re_home(m.index, m.to);
  m.flipped = true;
  std::vector<SwitchId> targets;
  for (SwitchId id = 0; id < net_.switch_count(); ++id) {
    if (!net_.sw(id).failed()) targets.push_back(id);
  }
  m.pending_acks = targets.size();
  for (const SwitchId sw : targets) {
    PartitionFlip msg;
    msg.rule = difane_->partition_redirect_rule(m.index, sw);
    send_migration(sw, std::move(msg),
                   [this, slot](bool ok) { migration_flip_acked(slot, ok); });
  }
  if (targets.empty()) migration_flip_acked(slot, true);  // degenerate
}

void Scenario::migration_flip_acked(std::size_t slot, bool /*ok*/) {
  // A refused flip (the switch crashed while the message was in flight) is
  // deliberately not an abort: its stale partition rule still points at the
  // old home — which remains bound — and the restart path reinstalls fresh
  // partition rules anyway. Over-redirecting is safe; mis-forwarding never
  // happens.
  LiveMigration& m = migrations_[slot];
  if (m.pending_acks > 0 && --m.pending_acks > 0) return;
  // Every live switch now redirects to the new home; give in-flight
  // redirects a drain window before retiring the source copy.
  net_.engine().at(net_.engine().now() + params_.migration.drain_timeout,
                   [this, slot]() { migration_drain_done(slot); });
}

void Scenario::migration_drain_done(std::size_t slot) {
  if (migrations_[slot].aborted) {
    migration_rollback(slot);
  } else {
    migration_finish(slot);
  }
}

void Scenario::migration_finish(std::size_t slot) {
  LiveMigration& m = migrations_[slot];
  const Partition& partition = difane_->plan().partitions()[m.index];
  // Retire the old-only serving members: unbind their control nodes and
  // remove the authority-band copies over the channel (fire-and-forget; a
  // crashed member already lost its table, and retiring an absent id is a
  // no-op, so duplicates are harmless).
  for (const auto member : m.retires) {
    difane_->unbind_partition(m.index, member);
    const SwitchId sw = difane_->authority_switch(member);
    if (net_.sw(sw).failed()) continue;
    PartitionRetire msg;
    for (const auto& rule : partition.rules.rules()) {
      msg.rule_ids.push_back(rule.id);
    }
    send_migration(sw, std::move(msg), {});
  }
  // Cached shadow redirects that still chase the old home defeat the move
  // (and, once traffic shifts, the old home's copy is demoted to backup):
  // purge them so those flows re-resolve via the flipped partition band.
  const std::size_t purged = difane_->purge_partition_redirects(
      m.index, migrating_old_home_.at(partition.id));
  migration_double_now_ -=
      static_cast<std::int64_t>(m.rules * m.installs.size());
  migrating_old_home_.erase(partition.id);
  ++stats_.migrations_completed;
  active_migrations_.erase(std::remove(active_migrations_.begin(),
                                       active_migrations_.end(), slot),
                           active_migrations_.end());
  log_info("migration: partition ", m.index, " completed at authority ", m.to,
           ", purged ", purged, " stale redirects, t=", net_.engine().now());
  pump_migration_queue();
}

void Scenario::migration_rollback(std::size_t slot) {
  LiveMigration& m = migrations_[slot];
  const Partition& partition = difane_->plan().partitions()[m.index];
  if (!m.flipped) {
    // Pre-flip abort: the plan never changed and no ingress was flipped, so
    // rolling back is unstocking the installs. A crashed member's table is
    // already empty; live members get the copies removed directly (global
    // event — the same direct-poke idiom as the failover purge).
    for (const auto member : m.installs) {
      difane_->unbind_partition(m.index, member);
      Switch& sw = net_.sw(difane_->authority_switch(member));
      if (sw.failed()) continue;
      for (const auto& rule : partition.rules.rules()) {
        sw.table().remove(rule.id, Band::kAuthority);
      }
    }
  }
  // Post-flip abort (destination crashed after the re-home committed):
  // nothing to undo here — handle_authority_failure already failed the plan
  // over to the backup, which is the fully stocked old home, and refreshed
  // the partition rules. The destination's binding stays, consistent with
  // any crashed replica, so a later restart re-stocks it.
  migration_double_now_ -=
      static_cast<std::int64_t>(m.rules * m.installs.size());
  migrating_old_home_.erase(partition.id);
  ++stats_.migrations_aborted;
  active_migrations_.erase(std::remove(active_migrations_.begin(),
                                       active_migrations_.end(), slot),
                           active_migrations_.end());
  log_info("migration: partition ", m.index, " aborted (",
           m.flipped ? "post" : "pre", "-flip) at t=", net_.engine().now());
  pump_migration_queue();
}

void Scenario::migration_on_crash(SwitchId sw) {
  if (!params_.migration.enabled || active_migrations_.empty()) return;
  for (const std::size_t slot : active_migrations_) {
    LiveMigration& m = migrations_[slot];
    // A destination crash aborts the move: pre-flip the pending install acks
    // come back refused and the rollback unstocks; post-flip the failover
    // running right after this falls back to the old home (= plan backup).
    // A *source* crash needs nothing special — the destination copy is the
    // one the machinery is building, and failover handles the old home like
    // any other failed authority.
    if (difane_->authority_switch(m.to) == sw) m.aborted = true;
  }
}

void Scenario::migration_tick() {
  MigrationPlannerParams planner;
  planner.wave_size = params_.migration.wave_size;
  planner.imbalance_threshold = params_.migration.imbalance_threshold;
  const auto steps = plan_rebalance_wave(difane_->plan(), planner);
  for (const auto& step : steps) {
    start_migration(step.partition_index, step.to);
  }
  const double next = net_.engine().now() + params_.migration.check_interval;
  if (next <= params_.migration.horizon) {
    net_.engine().at(next, [this]() { migration_tick(); });
  }
}

void Scenario::pump_migration_queue() {
  if (migration_queue_.empty()) return;
  std::vector<std::pair<std::size_t, AuthorityIndex>> queued;
  queued.swap(migration_queue_);
  for (const auto& [index, dest] : queued) {
    if (active_migrations_.size() < params_.migration.wave_size) {
      start_migration(index, dest);  // may re-queue if the partition is busy
    } else {
      migration_queue_.emplace_back(index, dest);
    }
  }
}

void Scenario::send_migration(SwitchId sw, Request request,
                              std::function<void(bool)> on_ack) {
  // The reply lands on the switch's shard engine; the ack mutates migration
  // state, so it hops to the global queue first (the heartbeat piggyback
  // hook set the pattern). The reliable channel fires on_reply exactly once,
  // so pending-ack counting is exact even under loss and duplication.
  ControlEndpoint::ReplyHandler on_reply;
  if (on_ack) {
    on_reply = [this, on_ack = std::move(on_ack)](const Reply& reply) {
      bool ok = true;
      if (const auto* r = std::get_if<FlowModReply>(&reply)) ok = r->ok;
      if (exec_ != nullptr) {
        exec_->schedule_global(cur_engine().now(),
                               [on_ack, ok]() { on_ack(ok); });
      } else {
        on_ack(ok);
      }
    };
  }
  auto do_send = [this, sw, request = std::move(request),
                  on_reply = std::move(on_reply)]() mutable {
    install_channels_[sw]->send(std::move(request), std::move(on_reply));
  };
  if (exec_ != nullptr) {
    exec_->schedule(shard_of_[sw], cur_engine().now(), std::move(do_send));
  } else {
    do_send();
  }
}

void Scenario::schedule_authority_failure(SimTime when, SwitchId authority) {
  expects(difane_ != nullptr, "schedule_authority_failure: DIFANE mode only");
  net_.engine().at(when, [this, authority]() {
    net_.set_failed(authority, true);
    log_info("authority switch ", authority, " failed at t=", net_.engine().now());
  });
  // With heartbeat detection on, the monitor notices the silence itself;
  // the fixed-delay oracle below is the legacy path.
  if (params_.timings.heartbeat_interval <= 0.0) {
    net_.engine().at(when + params_.timings.failover_detect, [this, authority]() {
      migration_on_crash(authority);
      difane_->handle_authority_failure(authority);
    });
  }
}

}  // namespace difane
