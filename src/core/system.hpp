// Scenario: the full simulated system. Wires a two-tier network, a policy,
// and either the DIFANE control plane (partition + authority switches +
// data-plane cache installs) or the NOX baseline (reactive controller), then
// drives generated traffic through the event engine and collects the
// measurements the paper's figures report.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "controller/nox.hpp"
#include "core/cache.hpp"
#include "core/difane_controller.hpp"
#include "core/telemetry.hpp"
#include "core/verifier.hpp"
#include "ctrlchan/channel.hpp"
#include "obs/flow_export.hpp"
#include "engine/sharded.hpp"
#include "faults/heartbeat.hpp"
#include "faults/injector.hpp"
#include "faults/plan.hpp"
#include "netsim/tracer.hpp"
#include "obs/heavy_hitter.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "workload/trafficgen.hpp"

namespace difane {

enum class Mode : std::uint8_t { kDifane = 0, kNox = 1 };

const char* mode_name(Mode mode);

enum class TopologyKind : std::uint8_t {
  kTwoTier = 0,  // edge switches under a core mesh; authorities at the core
  kLine = 1,     // a chain; every node is an edge, authorities evenly spaced
};

struct Timings {
  double switch_proc = 1e-6;         // per-hop forwarding overhead
  // Authority-switch miss path: ~800K flows/s per switch, the paper's
  // single-authority-switch throughput.
  double authority_service = 1.25e-6;
  double authority_backlog_max = 0.01;   // redirects dropped past this backlog
  double cache_install_latency = 2e-4;   // authority -> ingress install push
  double cache_idle_timeout = 10.0;      // cache-band idle timeout
  // Fixed-delay failure detection: the controller re-points partitions this
  // long after a scheduled failure. Used only while heartbeat detection is
  // off (heartbeat_interval == 0), which is the default.
  double failover_detect = 0.2;
  std::uint32_t ttl_hops = 64;

  // Heartbeat-based failure detection (DIFANE mode). interval > 0 switches
  // the failover path from the fixed failover_detect delay to a
  // HeartbeatMonitor over the authority switches: a switch is declared down
  // after heartbeat_miss consecutive missing beats and recovered on the
  // first beat heard again. heartbeat_horizon bounds the monitor's tick
  // chain so the engine's queue drains; set it at or past the end of
  // injected traffic.
  double heartbeat_interval = 0.0;  // 0 => legacy fixed-delay detection
  std::uint32_t heartbeat_miss = 3;
  double heartbeat_horizon = 0.0;

  // Reliable control-channel retransmission (see ControlChannel::Reliability;
  // consulted only when ScenarioParams::reliable_ctrl is set).
  double ctrl_rto_initial = 2e-3;
  double ctrl_rto_backoff = 2.0;
  double ctrl_rto_max = 0.1;
};

// Live partition migration (DIFANE mode, reliable control channel only).
// When enabled, the controller can re-home partitions to new authority
// switches mid-run with make-before-break semantics: install the authority
// rules at the destination first, flip every switch's partition redirect,
// wait out a drain window for in-flight redirects, then retire the source
// copy and purge stale cached redirects. Migrations are driven explicitly
// (Scenario::request_rehome) or by a periodic rebalance loop
// (check_interval > 0) that moves partitions off overloaded authorities in
// bounded waves. Strict no-op when disabled: no events, no Rng draws, no
// stats deltas.
struct MigrationParams {
  bool enabled = false;
  // Max partitions in flight at once; further requests queue FIFO.
  std::uint32_t wave_size = 4;
  // Seconds between "every switch flipped" and retiring the source copy —
  // the window in-flight redirects get to land at the old home.
  double drain_timeout = 0.01;
  // Rebalance loop period; 0 disables the loop (explicit re-homes only).
  double check_interval = 0.0;
  // Rebalance loop stops scheduling ticks at this sim time (required > 0
  // when check_interval > 0, so the engine's queue drains).
  double horizon = 0.0;
  // Rebalance trigger: heaviest authority load / mean load above this.
  double imbalance_threshold = 1.5;
};

struct ScenarioParams {
  Mode mode = Mode::kDifane;
  TopologyKind topology = TopologyKind::kTwoTier;
  // Two-tier: edge/core counts. Line: edge_switches is the chain length and
  // core_switches how many of those nodes host authority state.
  std::size_t edge_switches = 4;
  std::size_t core_switches = 2;
  std::uint32_t authority_count = 1;   // DIFANE: first k core switches
  std::size_t edge_cache_capacity = 1000;
  PartitionerParams partitioner;
  CacheStrategy cache_strategy = CacheStrategy::kDependentSet;
  // Rules whose splice set exceeds this degrade to microflow caching
  // (bounding how much ingress TCAM one caching decision may consume).
  std::size_t max_splice_cost = 32;
  // Authority switches serving each partition (hot-partition replication).
  std::uint32_t authority_replicas = 1;
  Timings timings;
  NoxParams nox;
  LinkParams link;
  // Paranoid mode: cross-check every terminal ingress cache hit against the
  // reference policy and log the first few mismatches. Costs a policy match
  // per packet; for debugging and the transparency tests.
  bool verify_cache_hits = false;

  // Reliable delivery on every control channel: sequence numbers, acks,
  // timeout + capped exponential backoff retransmission, duplicate
  // suppression and in-order apply at the switch agent. Required for
  // transparency under message faults; off by default (the clean wire needs
  // none of it and the baseline is calibrated against the legacy path).
  bool reliable_ctrl = false;

  // What goes wrong during the run (default: nothing). An active plan also
  // arms strict guard checking and the install-fault hook on every switch
  // agent. Replayable by (faults.seed, plan): rebuilding the scenario with
  // identical params reproduces a byte-identical report.
  FaultPlan faults;

  // Elephant-aware install policy (DIFANE mode with an installing cache
  // strategy only; validate() rejects other combinations). Each authority
  // switch runs a deterministic space-saving heavy-hitter summary over its
  // redirected-miss stream and classifies every would-be install as
  // elephant (longer idle timeout), normal, or mouse (bypassed entirely).
  ElephantParams elephants;

  // Flow measurement mode (DIFANE mode only; validate() rejects other
  // combinations). Every edge and authority switch samples its terminal
  // matches and periodically exports per-flow deltas over a reliable-capable
  // control channel to the scenario's FlowCollector; export batches carry
  // heartbeat sequence numbers, so with heartbeat detection on, telemetry
  // traffic doubles as liveness evidence. See core/telemetry.hpp.
  MeasurementParams measurement;

  // Live partition migration (DIFANE + reliable_ctrl only; validate()
  // rejects other combinations). See MigrationParams.
  MigrationParams migration;

  // When >= 0, ScenarioStats::cache_entries_final is sampled at this sim
  // time (a global event; scheduled by run()) instead of at the end of the
  // drained run. The drain tail of a long-lived flow can outlast every idle
  // timeout, so "live entries at the end of arrivals" is usually the
  // occupancy number an experiment wants.
  double occupancy_sample_at = -1.0;

  // Worker threads for the sharded parallel engine. 1 (the default) runs the
  // classic single-threaded event loop — byte-identical to previous
  // releases. N > 1 partitions the switches into per-authority-serving-set
  // shards executed under conservative time windows (lookahead = link
  // latency); results are then *seed-stable* — the same (seed, threads)
  // replays identically regardless of OS scheduling — but not numerically
  // equal to threads=1, because latency-free cross-shard control dispatches
  // are exchanged at window boundaries. See shard::Executor and the README
  // "Parallel execution" section.
  std::size_t threads = 1;

  // Burst-mode data plane (NDN-DPDK shape). 0 (the default) schedules one
  // engine event per injected packet — the classic scalar path. N > 0
  // coalesces up to N consecutive same-ingress packet arrivals into one
  // burst event whose handler batch-resolves FlowTable lookups (hash +
  // software prefetch over the entry slab first, then per-packet resolve at
  // each packet's own advanced clock). Observable behavior — stats,
  // telemetry export stream, verifier state, Rng draw order — is
  // byte-identical to the scalar path; test_prop_burst replays 100 seeds
  // against exactly that contract. Typical sweet spot: 32–64.
  std::size_t burst = 0;

  // Capacity (power of two) of each shard's SPSC outbox ring in the sharded
  // executor; only meaningful at threads > 1. Windows that emit more
  // cross-shard messages spill to a fallback vector — correct, just slower.
  std::size_t shard_ring_capacity = 1024;

  // Work stealing in the sharded executor (threads > 1 only): a worker that
  // drains its home shards claims runnable shards homed on busier workers,
  // in a deterministic scan order, one claimant per shard per window.
  // Results are *identical* with stealing on or off — a shard's event
  // stream does not depend on which thread runs it — so this is purely a
  // wall-clock knob for skewed shard loads (hot authority serving sets
  // under Zipf traffic). Default on; turn off to measure the imbalance.
  bool steal = true;

  // Pin each executor worker thread to one CPU (worker index mod hardware
  // concurrency; Linux pthread_setaffinity_np, no-op elsewhere). Keeps the
  // worker↔core mapping — and on multi-socket hosts the NUMA locality of
  // first-touched shard state — stable across windows. Byte-identical to
  // unpinned execution by the executor's determinism contract; on a
  // single-node host (like the CI container) it changes nothing at all.
  bool pin_workers = false;

  // Burst data plane only (burst > 0): how many entries of a key's
  // exact-match duplicate chain the batch prefetch pass pulls toward the
  // cache before the resolve pass runs. 1 (the default) prefetches each
  // chain head — the original behavior; deeper values help tables where
  // hot keys carry refreshed/expired duplicates, at the cost of cache
  // pollution when chains are short. A pure hardware hint: results are
  // byte-identical at any depth (test_prop_burst randomizes it). Range
  // 1..FlowTable::kMaxBatch, validated.
  std::size_t prefetch_depth = 1;

  // Reject mis-wired parameter combinations before any topology or control
  // plane is built. Throws difane::ConfigError naming the offending field.
  // The Scenario constructor calls this; call it yourself to fail fast when
  // assembling params from external input (CLI flags, config files).
  void validate() const;
};

struct ScenarioStats {
  Tracer tracer;
  std::uint64_t ingress_cache_hits = 0;   // first lookup hit the cache band
  std::uint64_t ingress_local_hits = 0;   // ingress itself was the authority
  std::uint64_t redirects = 0;            // packets sent via an authority switch
  std::uint64_t queue_rejects = 0;        // authority/controller overload drops
  std::uint64_t cache_installs = 0;       // install messages sent to ingresses
  std::uint64_t cache_rules_installed = 0;
  std::uint64_t cache_hit_mismatches = 0; // verify_cache_hits violations
  // Elephant-aware install policy accounting (all zero with the policy off).
  std::uint64_t elephant_promotions = 0;  // flows that crossed the threshold
  std::uint64_t elephant_installs = 0;    // installs sent with the long timeout
  std::uint64_t elephant_proactive = 0;   // promotion-time pre-seeds of other edges
  std::uint64_t mice_bypassed = 0;        // installs skipped by mice bypass
  // Live (unexpired) cache-band entries across the edge at the end of run():
  // the TCAM footprint the run leaves behind. Computed by run(), not merged.
  std::uint64_t cache_entries_final = 0;
  SampleSet stretch;                      // delivered first packets: hops / shortest
  RateMeter setup_completions;            // first-packet dispositions per second

  // Fault / robustness accounting, aggregated from the channels, the fault
  // injector, and the heartbeat monitor at the end of a run. All zero when
  // the run was fault-free with legacy channels.
  std::uint64_t ctrl_transmissions = 0;   // channel transmissions incl. rexmit
  std::uint64_t ctrl_retransmits = 0;
  std::uint64_t ctrl_acks = 0;
  std::uint64_t ctrl_dup_requests = 0;    // duplicates the receivers suppressed
  std::uint64_t ctrl_reordered = 0;       // arrivals buffered for in-order apply
  std::uint64_t msgs_lost = 0;            // transmissions the injector dropped
  std::uint64_t msgs_duplicated = 0;
  std::uint64_t msgs_jittered = 0;
  std::uint64_t install_faults = 0;       // FlowMod applies failed by injection
  std::uint64_t guard_rejects = 0;        // strict-guard install rejections
  std::uint64_t heartbeats_heard = 0;
  std::uint64_t heartbeats_missed = 0;
  std::uint64_t failovers_detected = 0;   // heartbeat failure declarations
  std::uint64_t recoveries_detected = 0;
  std::uint64_t spurious_failovers = 0;   // failovers declared for live switches
  std::uint64_t link_flaps = 0;           // link-down events executed
  std::uint64_t authority_crashes = 0;
  std::uint64_t authority_restarts = 0;

  // Telemetry data plane (all zero with measurement off). Switch side:
  // sampler and record-table accounting summed over every exporter. Export
  // side: what reached the collector, and the channel/piggyback activity the
  // export path generated (kept apart from ctrl_* so install-channel and
  // export-channel behaviour stay separately observable).
  std::uint64_t telemetry_sampled_packets = 0;
  std::uint64_t telemetry_sampled_bytes = 0;
  std::uint64_t telemetry_records = 0;        // distinct flow records created
  std::uint64_t telemetry_dropped_records = 0;
  std::uint64_t telemetry_dropped_packets = 0;
  std::uint64_t telemetry_overflow_drops = 0;
  std::uint64_t export_batches = 0;           // batches the collector received
  std::uint64_t export_records = 0;
  std::uint64_t export_keepalives = 0;        // empty (liveness-only) batches
  std::uint64_t export_evict_records = 0;     // eviction-flush closures
  std::uint64_t export_final_records = 0;     // end-of-run drain records
  std::uint64_t export_transmissions = 0;     // export-channel sends incl. rexmit
  std::uint64_t export_retransmits = 0;
  std::uint64_t export_piggyback_fresh = 0;   // batches accepted as liveness
  std::uint64_t export_piggyback_stale = 0;

  // Live partition migration (all zero with migration off). started counts
  // migrations entering the install phase; every one ends as completed or
  // aborted (destination crashed / install refused — the partition rolls
  // back to its old home, which was never retired).
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_aborted = 0;
  std::uint64_t migration_rules_moved = 0;     // authority rules installed at dests
  std::uint64_t migration_double_peak = 0;     // peak extra authority-rule copies
  std::uint64_t migration_inflight_redirects = 0;  // packets that landed at the
                                                   // old home mid-migration
  double cache_hit_fraction() const {
    const auto total = ingress_cache_hits + ingress_local_hits + redirects;
    return total ? static_cast<double>(ingress_cache_hits + ingress_local_hits) /
                       static_cast<double>(total)
                 : 0.0;
  }

  // Fold another shard's counters into this one (commutative sums plus
  // sample-set/rate-meter merges). The Scenario merges shards in fixed shard
  // order after a parallel run, so the aggregate is deterministic.
  void merge_from(const ScenarioStats& other);

  // Flatten every measurement into one structured report — the single
  // surface the exporters, benches, and tests consume, instead of each
  // caller poking tracer/stretch/setup_completions fields. Keys are stable
  // (see EXPERIMENTS.md "Reading BENCH_*.json"); values are derived purely
  // from the deterministic simulation, so the same seed produces a
  // byte-identical report modulo git_rev/wall_seconds.
  obs::MetricsReport snapshot(const std::string& experiment = "scenario") const;
};

class Scenario {
 public:
  Scenario(RuleTable policy, ScenarioParams params);

  // Inject every flow and run the engine until all events drain.
  const ScenarioStats& run(const std::vector<FlowSpec>& flows);

  // Schedule an authority switch failure at sim time `when` (DIFANE mode).
  // With heartbeat detection off, the controller re-points partitions
  // `failover_detect` later; with it on, the monitor detects the silence.
  void schedule_authority_failure(SimTime when, SwitchId authority);

  // Request a live re-home of partition `partition_index` to authority
  // `dest` at sim time `when` (requires params.migration.enabled). The move
  // runs make-before-break over the control channel; if more than
  // migration.wave_size moves are in flight, the request queues FIFO.
  // Re-homing a partition to its current primary is a no-op.
  void request_rehome(std::size_t partition_index, AuthorityIndex dest,
                      SimTime when);

  // Post-recovery sweep over the *actual* switch tables at the engine's
  // current clock: black holes, loops, dangling redirects, wrong actions.
  // Call after run() — a chaos run only counts as converged when this is
  // clean. DIFANE mode only.
  VerifyReport verify_installed(std::size_t samples_per_ingress = 200,
                                std::uint64_t seed = 1);

  Network& net() { return net_; }
  const RuleTable& policy() const { return policy_; }
  const ScenarioStats& stats() const { return stats_; }

  // Shards executed by a worker other than their home worker (threads > 1
  // with params.steal; 0 otherwise). Host-timing dependent — which steals
  // succeed depends on OS scheduling even though results never do — so this
  // is deliberately *not* part of ScenarioStats or any snapshot: it may
  // only feed tests and wall-style (ungated) telemetry.
  std::uint64_t shards_stolen() const {
    return exec_ != nullptr ? exec_->shards_stolen() : 0;
  }
  const PartitionPlan* plan() const {
    return difane_ ? &difane_->plan() : nullptr;
  }
  DifaneController* difane() { return difane_.get(); }

  SwitchId ingress_switch(std::uint32_t index) const {
    return topo_.edge[index % topo_.edge.size()];
  }
  SwitchId egress_switch(std::uint32_t egress_index) const {
    return topo_.edge[egress_index % topo_.edge.size()];
  }

  // Per-policy-rule counters aggregated across every switch (installed
  // copies + retired entries). With no overload or failures, each delivered
  // or policy-dropped packet is counted exactly once against the policy rule
  // that owned it — the OpenFlow-transparency property.
  std::vector<FlowStatsEntry> query_flow_stats() const;

  // Measurement mode: the controller-side collector, populated by run().
  // Its stream_dump() is the byte-identical-by-(seed, params) surface.
  const obs::FlowCollector& collector() const { return collector_; }
  // Optional extra sink fed the same batch stream as the collector (in
  // arrival order), then closed at the end of run(). Not owned.
  void set_collector_sink(obs::CollectorSink* sink) { export_sink_ = sink; }

  // Per-switch telemetry state (nullptr with measurement off or for
  // non-exporting switches); exposed for the tests' conservation checks.
  const FlowTelemetry* telemetry(SwitchId sw) const {
    return sw < telemetry_.size() ? telemetry_[sw].get() : nullptr;
  }

 private:
  // ---- live partition migration (all methods run as global events: the
  // executor parks workers for the global queue, so mutating plan/bindings
  // and poking remote switch state here is race-free — same discipline as
  // crash_authority). Control messages still ride the per-switch channels,
  // hopping to the owning shard to send and back to the global queue for the
  // ack, so installs/flips pay latency, loss, and retransmission like any
  // other control traffic.
  struct LiveMigration {
    std::size_t index = 0;          // partition index in the plan
    AuthorityIndex from = 0;        // old primary
    AuthorityIndex to = 0;          // destination
    std::vector<AuthorityIndex> installs;  // new-serving-set members to stock
    std::vector<AuthorityIndex> retires;   // old-only members to retire after
    std::size_t pending_acks = 0;   // outstanding install or flip acks
    std::size_t rules = 0;          // authority-rule copies per serving member
    bool aborted = false;           // destination crashed / refused installs
    bool flipped = false;           // re-home committed to the plan (selects
                                    // the rollback variant: pre-flip undoes
                                    // the installs, post-flip rides failover)
  };
  void start_migration(std::size_t index, AuthorityIndex dest);
  void migration_install_acked(std::size_t slot, bool ok);
  void migration_flip(std::size_t slot);
  void migration_flip_acked(std::size_t slot, bool ok);
  void migration_drain_done(std::size_t slot);
  void migration_finish(std::size_t slot);
  void migration_rollback(std::size_t slot);
  void migration_on_crash(SwitchId sw);   // called before failover handling
  void migration_tick();                  // periodic rebalance loop
  void pump_migration_queue();
  void send_migration(SwitchId sw, Request request,
                      std::function<void(bool)> on_ack);

  void schedule_faults();
  void crash_authority(SwitchId sw);
  void restart_authority(SwitchId sw);
  void collect_fault_stats();
  void setup_measurement();
  void export_tick(SwitchId sw);
  void send_export(SwitchId sw, std::vector<obs::FlowExportRecord> records);
  void on_cache_removed(SwitchId sw, const FlowEntry& entry);
  void finalize_measurement();
  void inject(const FlowSpec& flow);
  void process(SwitchId at, Packet pkt);
  // Burst-mode data plane (params_.burst > 0): one engine event per burst of
  // consecutive same-ingress arrivals instead of one per packet. The handler
  // advances the clock packet by packet, deferring the remainder whenever an
  // earlier engine event is pending or the window horizon is reached — so
  // event interleaving, and with it every observable stream, matches the
  // scalar path.
  void inject_bursts(const std::vector<FlowSpec>& flows);
  void process_burst(std::uint32_t group, std::uint32_t begin,
                     std::uint32_t end);
  void process_injected(SwitchId at, const Packet& pkt,
                        const FlowTable::BatchState& batch, std::size_t slot);
  // Tail shared by process() and process_injected(): miss handling, ingress
  // accounting, hit verification, telemetry sampling, action dispatch.
  void process_lookup_result(SwitchId at, Packet pkt, const FlowEntry* entry,
                             double now);
  void handle_authority(SwitchId at, Packet pkt);
  void punt_to_controller(Packet pkt);
  void apply_action(SwitchId at, Packet pkt, const Action& action);
  void deliver(SwitchId at, Packet pkt);
  void forward_hop(SwitchId at, SwitchId toward_neighbor_of, Packet pkt);
  void dispose(const Packet& pkt, bool delivered, DropReason reason);
  void install_cache(SwitchId ingress, SwitchId from_authority,
                     const CacheInstall& install, double idle_timeout);
  // Live (unexpired) cache-band entries across the edge at sim time `now`.
  // Read-only walk — lookup() would sweep lazily-expired slots and mutate.
  std::uint64_t live_cache_entries(double now) const;
  void build_shards();
  void merge_shard_stats();

  // The engine driving the code currently executing: the owning shard's
  // engine under the sharded executor, net_.engine() otherwise. Handlers use
  // this (never net_.engine() directly) for now()/after().
  Engine& cur_engine() {
    return exec_ ? exec_->context_engine() : net_.engine();
  }
  // Per-shard stats under the executor (merged in shard order after the
  // run), the scenario-wide stats otherwise.
  ScenarioStats& st() {
    if (exec_ == nullptr) return stats_;
    const std::uint32_t s = shard::current_shard();
    return s == shard::kNoShard ? stats_ : shard_stats_[s];
  }
  // Engine owning switch `sw`'s events (construction-time wiring).
  Engine& engine_of(SwitchId sw) {
    return exec_ ? exec_->shard_engine(shard_of_[sw]) : net_.engine();
  }
  // Schedule a handler that touches switch `sw` at absolute time `when`.
  void schedule_at_switch(SwitchId sw, SimTime when, Engine::Handler fn) {
    if (exec_ != nullptr) {
      exec_->schedule(shard_of_[sw], when, std::move(fn));
    } else {
      net_.engine().at(when, std::move(fn));
    }
  }

  RuleTable policy_;
  ScenarioParams params_;
  Network net_;
  TwoTierTopology topo_;
  std::unique_ptr<DifaneController> difane_;
  std::unique_ptr<NoxControlPlane> nox_;
  std::unordered_map<SwitchId, ServiceQueue> authority_queues_;
  // Heavy-hitter summary per authority switch (elephants.enabled only).
  // Touched exclusively from that authority's resolve handler, which the
  // sharded executor runs on the authority's owning shard — no locking
  // needed. The summary is control state on the switch: crash_authority()
  // resets it, so a restarted authority must re-detect its elephants.
  std::unordered_map<SwitchId, obs::SpaceSaving<BitVec>> elephant_trackers_;
  // One control agent per switch; installs ride ControlChannels so they pay
  // propagation latency plus the switch's flow-mod apply cost, in order.
  std::vector<std::unique_ptr<SwitchAgent>> agents_;
  std::vector<std::unique_ptr<ControlChannel>> install_channels_;
  // Fault machinery, present only when params_.faults.active() or heartbeat
  // detection is on; nullptr otherwise so the fault-free path stays exactly
  // the legacy one.
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<HeartbeatMonitor> heartbeat_;
  // Measurement mode (params_.measurement.enabled only; all empty/null
  // otherwise so the measurement-off path is byte-identical to before).
  // Indexed by SwitchId; only exporters (edge + authorities) are non-null.
  // Each exporter gets its own export channel + endpoint pair so batches pay
  // latency/reliability like any control message, while the endpoint buffers
  // stay shard-local; finalize_measurement() feeds them to the collector in
  // exporter order, which makes the merged stream deterministic.
  std::vector<std::unique_ptr<FlowTelemetry>> telemetry_;
  std::vector<std::unique_ptr<CollectorEndpoint>> export_endpoints_;
  std::vector<std::unique_ptr<ControlChannel>> export_channels_;
  std::vector<SwitchId> exporters_;       // export order: edge, then authorities
  std::vector<std::uint64_t> export_seq_; // per-exporter batch sequence
  obs::FlowCollector collector_;
  obs::CollectorSink* export_sink_ = nullptr;
  // Sharded parallel execution (threads > 1 only; nullptr keeps every code
  // path exactly the legacy single-threaded one). Global events — fault
  // schedules, heartbeat ticks, failover handling — stay on net_.engine(),
  // which the executor runs as its coordinator-side global queue.
  std::unique_ptr<shard::Executor> exec_;
  std::vector<std::uint32_t> shard_of_;   // switch -> shard
  std::uint32_t ctrl_shard_ = 0;          // NOX controller's home shard
  // Burst-mode arrival schedule (params_.burst > 0 only): stable storage the
  // burst handlers index into, so each event captures just {group, range}.
  BurstPlan burst_plan_;
  // Batch resume state, one slot per ingress group: the chunk bounds and
  // memoized exact-match heads of the chunk a deferred burst was working
  // through. The continuation finds its chunk still here and resumes the
  // batch pass mid-chunk instead of re-hashing and re-prefetching the whole
  // tail (an authority-redirect-heavy burst used to degrade to one full
  // 64-key prefetch pass per resumed packet). Stale heads are harmless:
  // lookup_prepared() recomputes per key when the table's generation moved.
  // A group's handlers all run on its ingress switch's shard, so each slot
  // is single-threaded within a window and handed across windows by the
  // executor's barrier.
  struct BurstResume {
    std::uint32_t chunk_begin = 0;
    std::uint32_t chunk_end = 0;  // begin == end: nothing stored
    FlowTable::BatchState batch;
  };
  std::vector<BurstResume> burst_resume_;
  // Live-migration state (params_.migration.enabled only; all empty
  // otherwise so the migration-off path is byte-identical to before).
  // Mutated exclusively from global events. Slots are stable for the run so
  // in-flight ack callbacks can address their migration by index.
  std::vector<LiveMigration> migrations_;
  std::vector<std::size_t> active_migrations_;           // slots in flight
  std::vector<std::pair<std::size_t, AuthorityIndex>> migration_queue_;
  // PartitionId -> old home switch while a migration is in flight; read on
  // the authority-resolution path (cheap empty() check first) to count
  // in-flight redirects that landed at the old home. Mutated only from
  // global events; read from shard handlers — the same discipline as the
  // plan itself under failover.
  std::unordered_map<PartitionId, SwitchId> migrating_old_home_;
  std::int64_t migration_double_now_ = 0;   // live extra authority-rule copies
  std::vector<ScenarioStats> shard_stats_;
  ScenarioStats stats_;
  // Process-wide observability hooks, resolved once here so the per-packet
  // cost is a single relaxed atomic increment (nothing at all when built
  // with DIFANE_OBS=OFF).
  obs::Counter* obs_packets_ =
      obs::MetricsRegistry::global().counter("scenario_packets_processed");
  obs::Counter* obs_authority_ =
      obs::MetricsRegistry::global().counter("scenario_authority_handled");
  obs::Counter* obs_installs_ =
      obs::MetricsRegistry::global().counter("scenario_cache_installs");
  // Fault-path counters, bumped once per run from the per-channel totals so
  // process-wide dashboards see retransmission and failover activity without
  // touching the hot path.
  obs::Counter* obs_retransmits_ =
      obs::MetricsRegistry::global().counter("scenario_ctrl_retransmits");
  obs::Counter* obs_msgs_lost_ =
      obs::MetricsRegistry::global().counter("scenario_ctrl_msgs_lost");
  obs::Counter* obs_failovers_ =
      obs::MetricsRegistry::global().counter("scenario_failovers_detected");
  obs::Counter* obs_spurious_ =
      obs::MetricsRegistry::global().counter("scenario_spurious_failovers");
  struct {
    std::uint64_t retransmits = 0;
    std::uint64_t msgs_lost = 0;
    std::uint64_t failovers = 0;
    std::uint64_t spurious = 0;
  } obs_reported_;
};

}  // namespace difane
