// Scenario: the full simulated system. Wires a two-tier network, a policy,
// and either the DIFANE control plane (partition + authority switches +
// data-plane cache installs) or the NOX baseline (reactive controller), then
// drives generated traffic through the event engine and collects the
// measurements the paper's figures report.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "controller/nox.hpp"
#include "core/difane_controller.hpp"
#include "ctrlchan/channel.hpp"
#include "netsim/tracer.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "workload/trafficgen.hpp"

namespace difane {

enum class Mode : std::uint8_t { kDifane = 0, kNox = 1 };

const char* mode_name(Mode mode);

enum class TopologyKind : std::uint8_t {
  kTwoTier = 0,  // edge switches under a core mesh; authorities at the core
  kLine = 1,     // a chain; every node is an edge, authorities evenly spaced
};

struct Timings {
  double switch_proc = 1e-6;         // per-hop forwarding overhead
  // Authority-switch miss path: ~800K flows/s per switch, the paper's
  // single-authority-switch throughput.
  double authority_service = 1.25e-6;
  double authority_backlog_max = 0.01;   // redirects dropped past this backlog
  double cache_install_latency = 2e-4;   // authority -> ingress install push
  double cache_idle_timeout = 10.0;      // cache-band idle timeout
  double failover_detect = 0.2;          // failure detection + re-point delay
  std::uint32_t ttl_hops = 64;
};

struct ScenarioParams {
  Mode mode = Mode::kDifane;
  TopologyKind topology = TopologyKind::kTwoTier;
  // Two-tier: edge/core counts. Line: edge_switches is the chain length and
  // core_switches how many of those nodes host authority state.
  std::size_t edge_switches = 4;
  std::size_t core_switches = 2;
  std::uint32_t authority_count = 1;   // DIFANE: first k core switches
  std::size_t edge_cache_capacity = 1000;
  PartitionerParams partitioner;
  CacheStrategy cache_strategy = CacheStrategy::kDependentSet;
  // Rules whose splice set exceeds this degrade to microflow caching
  // (bounding how much ingress TCAM one caching decision may consume).
  std::size_t max_splice_cost = 32;
  // Authority switches serving each partition (hot-partition replication).
  std::uint32_t authority_replicas = 1;
  Timings timings;
  NoxParams nox;
  LinkParams link;
  // Paranoid mode: cross-check every terminal ingress cache hit against the
  // reference policy and log the first few mismatches. Costs a policy match
  // per packet; for debugging and the transparency tests.
  bool verify_cache_hits = false;

  // Reject mis-wired parameter combinations before any topology or control
  // plane is built. Throws difane::ConfigError naming the offending field.
  // The Scenario constructor calls this; call it yourself to fail fast when
  // assembling params from external input (CLI flags, config files).
  void validate() const;
};

struct ScenarioStats {
  Tracer tracer;
  std::uint64_t ingress_cache_hits = 0;   // first lookup hit the cache band
  std::uint64_t ingress_local_hits = 0;   // ingress itself was the authority
  std::uint64_t redirects = 0;            // packets sent via an authority switch
  std::uint64_t queue_rejects = 0;        // authority/controller overload drops
  std::uint64_t cache_installs = 0;       // install messages sent to ingresses
  std::uint64_t cache_rules_installed = 0;
  std::uint64_t cache_hit_mismatches = 0; // verify_cache_hits violations
  SampleSet stretch;                      // delivered first packets: hops / shortest
  RateMeter setup_completions;            // first-packet dispositions per second
  double cache_hit_fraction() const {
    const auto total = ingress_cache_hits + ingress_local_hits + redirects;
    return total ? static_cast<double>(ingress_cache_hits + ingress_local_hits) /
                       static_cast<double>(total)
                 : 0.0;
  }

  // Flatten every measurement into one structured report — the single
  // surface the exporters, benches, and tests consume, instead of each
  // caller poking tracer/stretch/setup_completions fields. Keys are stable
  // (see EXPERIMENTS.md "Reading BENCH_*.json"); values are derived purely
  // from the deterministic simulation, so the same seed produces a
  // byte-identical report modulo git_rev/wall_seconds.
  obs::MetricsReport snapshot(const std::string& experiment = "scenario") const;
};

class Scenario {
 public:
  Scenario(RuleTable policy, ScenarioParams params);

  // Inject every flow and run the engine until all events drain.
  const ScenarioStats& run(const std::vector<FlowSpec>& flows);

  // Schedule an authority switch failure at sim time `when` (DIFANE mode).
  // The controller re-points partitions `failover_detect` later.
  void schedule_authority_failure(SimTime when, SwitchId authority);

  Network& net() { return net_; }
  const RuleTable& policy() const { return policy_; }
  const ScenarioStats& stats() const { return stats_; }
  const PartitionPlan* plan() const {
    return difane_ ? &difane_->plan() : nullptr;
  }
  DifaneController* difane() { return difane_.get(); }

  SwitchId ingress_switch(std::uint32_t index) const {
    return topo_.edge[index % topo_.edge.size()];
  }
  SwitchId egress_switch(std::uint32_t egress_index) const {
    return topo_.edge[egress_index % topo_.edge.size()];
  }

  // Per-policy-rule counters aggregated across every switch (installed
  // copies + retired entries). With no overload or failures, each delivered
  // or policy-dropped packet is counted exactly once against the policy rule
  // that owned it — the OpenFlow-transparency property.
  std::vector<FlowStatsEntry> query_flow_stats() const;

 private:
  void inject(const FlowSpec& flow);
  void process(SwitchId at, Packet pkt);
  void handle_authority(SwitchId at, Packet pkt);
  void punt_to_controller(Packet pkt);
  void apply_action(SwitchId at, Packet pkt, const Action& action);
  void deliver(SwitchId at, Packet pkt);
  void forward_hop(SwitchId at, SwitchId toward_neighbor_of, Packet pkt);
  void dispose(const Packet& pkt, bool delivered, DropReason reason);
  void install_cache(SwitchId ingress, const CacheInstall& install);

  RuleTable policy_;
  ScenarioParams params_;
  Network net_;
  TwoTierTopology topo_;
  std::unique_ptr<DifaneController> difane_;
  std::unique_ptr<NoxControlPlane> nox_;
  std::unordered_map<SwitchId, ServiceQueue> authority_queues_;
  // One control agent per switch; installs ride ControlChannels so they pay
  // propagation latency plus the switch's flow-mod apply cost, in order.
  std::vector<std::unique_ptr<SwitchAgent>> agents_;
  std::vector<std::unique_ptr<ControlChannel>> install_channels_;
  ScenarioStats stats_;
  // Process-wide observability hooks, resolved once here so the per-packet
  // cost is a single relaxed atomic increment (nothing at all when built
  // with DIFANE_OBS=OFF).
  obs::Counter* obs_packets_ =
      obs::MetricsRegistry::global().counter("scenario_packets_processed");
  obs::Counter* obs_authority_ =
      obs::MetricsRegistry::global().counter("scenario_authority_handled");
  obs::Counter* obs_installs_ =
      obs::MetricsRegistry::global().counter("scenario_cache_installs");
};

}  // namespace difane
