#include "core/telemetry.hpp"

#include "util/contract.hpp"

namespace difane {

bool FlowTelemetry::sample(const BitVec& header, RuleId rule, double now,
                           std::uint64_t bytes) {
  // Exactly one draw per offered packet, sampled or not, so the stream of
  // draws — and with it every downstream export — is a pure function of
  // (seed, offered-packet order).
  if (!rng_.bernoulli(params_.sample_prob)) return false;
  const auto it = index_.find(header);
  std::size_t slot;
  if (it != index_.end()) {
    slot = it->second;
  } else {
    if (pending_.size() >= params_.record_capacity) {
      // NetFlow cache exhaustion: the packet was sampled but there is no
      // record to bind it to. Count it as dropped so conservation still
      // balances (sampled == exported + dropped + pending).
      ++overflow_drops_;
      ++sampled_packets_;
      sampled_bytes_ += bytes;
      ++dropped_packets_;
      dropped_bytes_ += bytes;
      return true;
    }
    slot = pending_.size();
    PendingRecord rec;
    rec.header = header;
    rec.first_seen = now;
    pending_.push_back(rec);
    index_.emplace(header, slot);
    ++flow_records_;
  }
  PendingRecord& rec = pending_[slot];
  if (rec.rule != rule) {
    // Lazy rebind: the flow is now hitting a different entry (re-cache after
    // eviction, microflow vs wildcard). Old by_rule_ slots go stale and are
    // skipped at flush time by re-checking rec.rule.
    rec.rule = rule;
    by_rule_[rule].push_back(slot);
  }
  ++rec.packets;
  rec.bytes += bytes;
  rec.last_seen = now;
  ++sampled_packets_;
  sampled_bytes_ += bytes;
  return true;
}

void FlowTelemetry::on_rule_removed(RuleId rule, double now, bool export_counts) {
  const auto it = by_rule_.find(rule);
  if (it == by_rule_.end()) return;
  for (const std::size_t slot : it->second) {
    PendingRecord& rec = pending_[slot];
    if (rec.rule != rule) continue;  // rebound since; counts belong elsewhere
    rec.rule = kInvalidRuleId;       // next sample re-binds
    if (rec.packets == 0 && rec.bytes == 0) continue;
    if (export_counts) {
      obs::FlowExportRecord out;
      out.header = rec.header;
      out.sampled_packets = rec.packets;
      out.sampled_bytes = rec.bytes;
      out.first_seen = rec.first_seen;
      out.last_seen = rec.last_seen;
      out.rule = rule;
      out.kind = obs::ExportKind::kEvict;
      closed_.push_back(out);
    } else {
      ++dropped_records_;
      dropped_packets_ += rec.packets;
      dropped_bytes_ += rec.bytes;
    }
    rec.packets = 0;
    rec.bytes = 0;
  }
  by_rule_.erase(it);
  (void)now;
}

void FlowTelemetry::drop_all() {
  for (auto& rec : pending_) {
    // by_rule_ is wiped below, so every record must forget its binding or a
    // later sample against the same rule id would skip the by_rule_ push and
    // the slot would become unreachable for eviction flush.
    rec.rule = kInvalidRuleId;
    if (rec.packets == 0 && rec.bytes == 0) continue;
    ++dropped_records_;
    dropped_packets_ += rec.packets;
    dropped_bytes_ += rec.bytes;
    rec.packets = 0;
    rec.bytes = 0;
  }
  for (const auto& rec : closed_) {
    ++dropped_records_;
    dropped_packets_ += rec.sampled_packets;
    dropped_bytes_ += rec.sampled_bytes;
  }
  closed_.clear();
  by_rule_.clear();
}

std::vector<obs::FlowExportRecord> FlowTelemetry::drain(obs::ExportKind kind) {
  std::vector<obs::FlowExportRecord> out;
  out.swap(closed_);
  for (auto& rec : pending_) {
    if (rec.packets == 0 && rec.bytes == 0) continue;
    obs::FlowExportRecord r;
    r.header = rec.header;
    r.sampled_packets = rec.packets;
    r.sampled_bytes = rec.bytes;
    r.first_seen = rec.first_seen;
    r.last_seen = rec.last_seen;
    r.rule = rec.rule == kInvalidRuleId ? 0 : rec.rule;
    r.kind = kind;
    out.push_back(r);
    rec.packets = 0;
    rec.bytes = 0;
  }
  return out;
}

bool FlowTelemetry::idle() const {
  if (!closed_.empty()) return false;
  for (const auto& rec : pending_) {
    if (rec.packets != 0 || rec.bytes != 0) return false;
  }
  return true;
}

void CollectorEndpoint::deliver(const Request& request, ReplyHandler on_reply) {
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, FlowExport>) {
          received_.push_back(msg.batch);
          if (on_batch_) on_batch_(msg.batch);
          if (on_reply) on_reply(FlowExportAck{msg.xid, msg.batch.seq});
        } else {
          // A collector applies nothing else; still ack so a misdirected
          // request cannot wedge a reliable channel behind it.
          if (on_reply) on_reply(BarrierReply{msg.xid});
        }
      },
      request);
}

}  // namespace difane
