// Telemetry data plane: NetFlow-style flow measurement built out of the
// cache/authority entries DIFANE already installs. Each measuring switch
// runs a FlowTelemetry: every terminal match point offers the packet, one
// seeded Bernoulli draw decides whether it is sampled (estimate = count / p),
// and sampled counts accumulate per flow header until the periodic export
// tick drains them into a FlowExportBatch bound for the controller-side
// collector. Eviction-flush semantics close the ROADMAP's "does an evicted
// elephant lose its counts?" question: when the entry a flow's counts are
// bound to leaves the table, the pending delta is moved into a closed
// (kEvict) record that rides the next export instead of vanishing.
//
// Everything is deterministic by (seed, params): the sampler owns a private
// Rng (derived from MeasurementParams::seed and the switch id), draws exactly
// once per offered packet, and export batches are assembled in flow-creation
// order — the property suite replays the whole export stream byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ctrlchan/messages.hpp"
#include "obs/flow_export.hpp"
#include "util/rng.hpp"

namespace difane {

// The one validated knob block for measurement mode (ScenarioParams holds it
// next to the heartbeat/elephant groups; ScenarioParams::validate() rejects
// nonsense with field-named ConfigError).
struct MeasurementParams {
  bool enabled = false;
  // Per-packet sampling probability in (0, 1]. 1.0 counts every packet.
  double sample_prob = 1.0;
  // Seconds between export ticks at each measuring switch.
  double export_interval = 0.05;
  // No export ticks are scheduled past this sim time (the engine's queue
  // must drain; set it at or past the end of injected traffic). Pending
  // deltas that accrue after the last tick leave in the end-of-run drain.
  double export_horizon = 0.0;
  // One-way latency of the export channel to the collector.
  double export_latency = 2e-4;
  // Per-switch bound on tracked flow records; sampled packets of flows past
  // the bound are counted as overflow drops (NetFlow cache exhaustion).
  std::size_t record_capacity = 65536;
  // Flush pending counts as kEvict records when the entry they are bound to
  // leaves the cache. Off => those counts are dropped (and counted), which
  // is exactly the fidelity loss bench_e12 measures.
  bool flush_on_evict = true;
  // Master seed for the per-switch sampler streams.
  std::uint64_t seed = 1;
};

// Per-switch measurement state: the sampler, the per-flow pending deltas,
// and the evict-flushed records waiting for the next export.
class FlowTelemetry {
 public:
  FlowTelemetry(const MeasurementParams& params, std::uint64_t rng_seed)
      : params_(params), rng_(rng_seed) {}

  // Offer one packet that reached a terminal match against `rule`. Draws the
  // sampler exactly once; on success the delta accrues against the packet's
  // flow header. Returns true iff sampled.
  bool sample(const BitVec& header, RuleId rule, double now, std::uint64_t bytes);

  // The entry carrying `rule` left the cache. With export_counts, pending
  // deltas bound to it close into kEvict records that ride the next drain;
  // without (flush_on_evict off, or the switch is crashing and its state is
  // lost), they are dropped and counted. Safe to call from the FlowTable
  // removal listener: touches no table and sends nothing.
  void on_rule_removed(RuleId rule, double now, bool export_counts);

  // Crash: all pending and evict-closed state is lost.
  void drop_all();

  // Move everything currently exportable out: evict-closed records first
  // (oldest first), then nonzero pending deltas in flow-creation order as
  // `kind`. Leaves pending counters zeroed; flow records stay (a live flow
  // keeps accumulating into the same slot).
  std::vector<obs::FlowExportRecord> drain(obs::ExportKind kind);

  bool idle() const;  // nothing exportable right now

  // Conservation surface (the chaos suite asserts sampled == exported +
  // dropped + still-pending at every quiescent point).
  std::uint64_t sampled_packets() const { return sampled_packets_; }
  std::uint64_t sampled_bytes() const { return sampled_bytes_; }
  std::uint64_t flow_records() const { return flow_records_; }
  std::uint64_t overflow_drops() const { return overflow_drops_; }
  std::uint64_t dropped_records() const { return dropped_records_; }
  std::uint64_t dropped_packets() const { return dropped_packets_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }

 private:
  struct PendingRecord {
    BitVec header;
    RuleId rule = kInvalidRuleId;
    std::uint64_t packets = 0;  // pending (not yet exported) delta
    std::uint64_t bytes = 0;
    double first_seen = 0.0;
    double last_seen = 0.0;
  };

  MeasurementParams params_;
  Rng rng_;
  std::vector<PendingRecord> pending_;               // flow-creation order
  std::unordered_map<BitVec, std::size_t> index_;    // header -> pending_ slot
  // rule id -> pending_ slots whose counts are (or were) bound to it. Slots
  // rebind lazily when a flow starts hitting a different rule; stale entries
  // are skipped by re-checking PendingRecord::rule at flush time.
  std::unordered_map<RuleId, std::vector<std::size_t>> by_rule_;
  std::vector<obs::FlowExportRecord> closed_;        // evict-flushed, unsent

  std::uint64_t sampled_packets_ = 0;
  std::uint64_t sampled_bytes_ = 0;
  std::uint64_t flow_records_ = 0;
  std::uint64_t overflow_drops_ = 0;
  std::uint64_t dropped_records_ = 0;
  std::uint64_t dropped_packets_ = 0;
  std::uint64_t dropped_bytes_ = 0;
};

// Controller-side endpoint of an export channel: the ControlEndpoint that
// receives FlowExport requests, buffers the batches (shard-local; the
// Scenario feeds them to the CollectorSink in deterministic exporter-major
// order at end of run), fires an optional hook per batch (the heartbeat
// piggyback), and acks so the reliable channel stops retransmitting.
class CollectorEndpoint : public ControlEndpoint {
 public:
  using BatchHook = std::function<void(const obs::FlowExportBatch&)>;

  explicit CollectorEndpoint(BatchHook on_batch = {})
      : on_batch_(std::move(on_batch)) {}

  void deliver(const Request& request, ReplyHandler on_reply) override;

  const std::vector<obs::FlowExportBatch>& received() const { return received_; }
  std::vector<obs::FlowExportBatch> take() { return std::move(received_); }

 private:
  BatchHook on_batch_;
  std::vector<obs::FlowExportBatch> received_;
};

}  // namespace difane
