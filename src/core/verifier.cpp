#include "core/verifier.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace difane {

const char* verify_outcome_name(VerifyOutcome outcome) {
  switch (outcome) {
    case VerifyOutcome::kOk: return "ok";
    case VerifyOutcome::kBlackHole: return "black_hole";
    case VerifyOutcome::kLoop: return "loop";
    case VerifyOutcome::kDanglingRedirect: return "dangling_redirect";
    case VerifyOutcome::kWrongAction: return "wrong_action";
    case VerifyOutcome::kUnreachable: return "unreachable";
  }
  return "?";
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  os << samples << " samples, " << ok << " ok, " << violations.size()
     << " violations";
  for (const auto& v : violations) {
    os << "\n  [" << verify_outcome_name(v.outcome) << "] ingress " << v.ingress
       << ": " << v.detail;
  }
  return os.str();
}

namespace {

struct Walker {
  Network& net;
  DifaneController& controller;
  const RuleTable& policy;
  const VerifierParams& params;

  // Statically walk one packet from `ingress`; return the violation outcome
  // (kOk when the terminal action equals the policy winner's).
  VerifyOutcome walk(SwitchId ingress, const BitVec& packet, std::string* detail) {
    const Rule* want = policy.match(packet);
    SwitchId at = ingress;
    std::size_t hops = 0;
    bool redirected_once = false;
    while (true) {
      if (++hops > params.hop_budget) {
        *detail = "hop budget exhausted (redirect cycle?)";
        return VerifyOutcome::kLoop;
      }
      const FlowEntry* entry = net.sw(at).table().peek(packet, params.now);
      if (entry == nullptr) {
        *detail = "no rule matched at switch " + std::to_string(at);
        return VerifyOutcome::kBlackHole;
      }
      const Action& action = entry->rule.action;
      switch (action.type) {
        case ActionType::kEncap: {
          const SwitchId target = action.arg;
          if (net.sw(target).failed()) {
            *detail = "redirect to failed switch " + std::to_string(target);
            return VerifyOutcome::kDanglingRedirect;
          }
          if (net.next_hop(at, target) == kInvalidSwitch && at != target) {
            *detail = "no route from " + std::to_string(at) + " to authority " +
                      std::to_string(target);
            return VerifyOutcome::kUnreachable;
          }
          // At the authority, resolution happens against its bound
          // partitions, not its TCAM — mirror AuthorityNode::handle.
          AuthorityNode* node = controller.node_at(target);
          if (node == nullptr) {
            *detail = "redirect to non-authority switch " + std::to_string(target);
            return VerifyOutcome::kDanglingRedirect;
          }
          auto result = node->handle(packet);
          if (!result.has_value()) {
            *detail = "authority " + std::to_string(target) +
                      " owns no partition for the packet";
            return VerifyOutcome::kDanglingRedirect;
          }
          if (result->winner == nullptr) {
            *detail = "partition has no matching rule";
            return VerifyOutcome::kBlackHole;
          }
          const bool same =
              (want == nullptr) ? false : result->winner->action == want->action;
          if (!same) {
            *detail = "authority resolves to " + result->winner->action.to_string() +
                      ", policy says " +
                      (want ? want->action.to_string() : std::string("<none>"));
            return VerifyOutcome::kWrongAction;
          }
          (void)redirected_once;
          redirected_once = true;
          return VerifyOutcome::kOk;
        }
        case ActionType::kForward:
        case ActionType::kDrop: {
          const bool same = (want != nullptr) && action == want->action;
          if (!same) {
            *detail = "terminal " + action.to_string() + " at switch " +
                      std::to_string(at) + ", policy says " +
                      (want ? want->action.to_string() : std::string("<none>"));
            return VerifyOutcome::kWrongAction;
          }
          return VerifyOutcome::kOk;
        }
        case ActionType::kToController: {
          // Reactive miss path: by construction the controller resolves with
          // the policy itself; treat as consistent.
          return VerifyOutcome::kOk;
        }
      }
    }
  }
};

}  // namespace

VerifyReport verify_installed_state(Network& net, DifaneController& controller,
                                    const RuleTable& policy,
                                    const std::vector<SwitchId>& ingresses,
                                    VerifierParams params) {
  VerifyReport report;
  Rng rng(params.seed);
  Walker walker{net, controller, policy, params};
  for (const auto ingress : ingresses) {
    for (std::size_t s = 0; s < params.samples_per_ingress; ++s) {
      BitVec packet;
      if (s % 2 == 0 || policy.empty()) {
        packet = Ternary::wildcard().sample_point(rng);
      } else {
        packet = policy.at(rng.uniform(0, policy.size() - 1)).match.sample_point(rng);
      }
      ++report.samples;
      std::string detail;
      const VerifyOutcome outcome = walker.walk(ingress, packet, &detail);
      if (outcome == VerifyOutcome::kOk) {
        ++report.ok;
      } else if (report.violations.size() < params.max_violations) {
        report.violations.push_back(VerifyViolation{outcome, ingress, packet, detail});
      }
    }
  }
  return report;
}

}  // namespace difane
