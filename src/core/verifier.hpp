// Installed-state verifier — a NetPlumber-lite static checker over the
// *actual switch tables* (not the controller's intent). For sampled packets
// at each ingress, it walks the data plane statically: cache / authority /
// partition band semantics, encapsulation tunnels, terminal forwarding.
// Detects black holes (no rule anywhere), forwarding loops, dangling
// redirects (partition rule pointing at a switch that does not own the
// packet), and disagreement with the reference policy.
#pragma once

#include <string>
#include <vector>

#include "core/difane_controller.hpp"
#include "flowspace/rule_table.hpp"
#include "netsim/topology.hpp"

namespace difane {

enum class VerifyOutcome : std::uint8_t {
  kOk = 0,
  kBlackHole,       // no matching rule at the ingress
  kLoop,            // exceeded hop budget walking redirects
  kDanglingRedirect,// redirect landed at a switch without the partition
  kWrongAction,     // terminal action differs from the policy winner
  kUnreachable,     // no route toward redirect target / egress
};

const char* verify_outcome_name(VerifyOutcome outcome);

struct VerifyViolation {
  VerifyOutcome outcome = VerifyOutcome::kOk;
  SwitchId ingress = kInvalidSwitch;
  BitVec packet;
  std::string detail;
};

struct VerifyReport {
  std::size_t samples = 0;
  std::size_t ok = 0;
  std::vector<VerifyViolation> violations;  // capped at `max_violations`
  bool clean() const { return violations.empty(); }
  std::string summary() const;
};

struct VerifierParams {
  std::size_t samples_per_ingress = 500;
  std::size_t max_violations = 16;
  std::size_t hop_budget = 32;
  std::uint64_t seed = 1;
  // The instant the tables are inspected at: entries expired by `now` do not
  // match (exactly as the data plane would treat them). Pass the engine's
  // clock for a post-run sweep; 0.0 checks the freshly installed state.
  double now = 0.0;
};

// Statically verify the installed state of `net` (as set up by `controller`)
// against `policy`, sampling packets at each of `ingresses`.
VerifyReport verify_installed_state(Network& net, DifaneController& controller,
                                    const RuleTable& policy,
                                    const std::vector<SwitchId>& ingresses,
                                    VerifierParams params = {});

}  // namespace difane
