#include "ctrlchan/channel.hpp"

#include <algorithm>

namespace difane {

std::vector<double> ControlChannel::draw_deliveries() {
  std::vector<double> deliveries{0.0};
  if (faults_ != nullptr) faults_->transmit(deliveries);
  return deliveries;
}

void ControlChannel::send(Request request, ControlEndpoint::ReplyHandler on_reply) {
  ++sent_;
  if (!reliability_.enabled && faults_ == nullptr) {
    // Legacy exactly-once path, byte-identical to the pre-reliability
    // implementation (the deterministic baseline is calibrated against its
    // exact event pattern).
    ++transmissions_;
    engine_.after(latency_, [this, request = std::move(request),
                             on_reply = std::move(on_reply)]() {
      ControlEndpoint::ReplyHandler wrapped;
      if (on_reply) {
        wrapped = [this, on_reply](const Reply& reply) {
          engine_.after(latency_, [on_reply, reply]() { on_reply(reply); });
        };
      }
      agent_.deliver(request, std::move(wrapped));
    });
    return;
  }

  if (!reliability_.enabled) {
    // Unreliable wire with faults: every drawn copy is delivered and applied
    // as-is — losses vanish, duplicates double-apply, jitter reorders. This
    // is the mode the chaos suite uses to prove the *system* (not the
    // channel) degrades gracefully.
    ++transmissions_;
    for (const double extra : draw_deliveries()) {
      engine_.after(latency_ + extra, [this, request, on_reply]() {
        ControlEndpoint::ReplyHandler wrapped;
        if (on_reply) {
          wrapped = [this, on_reply](const Reply& reply) {
            for (const double back : draw_deliveries()) {
              engine_.after(latency_ + back,
                            [on_reply, reply]() { on_reply(reply); });
            }
          };
        }
        agent_.deliver(request, std::move(wrapped));
      });
    }
    return;
  }

  // Reliable mode: assign the next sequence number, remember the request
  // until its ack returns, transmit, and arm the retransmission timer.
  const std::uint64_t seq = next_seq_++;
  pending_.emplace(seq,
                   Pending{std::move(request), std::move(on_reply),
                           reliability_.rto_initial});
  transmit_request(seq);
  arm_retransmit_timer(seq, reliability_.rto_initial);
}

void ControlChannel::transmit_request(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // acked meanwhile
  ++transmissions_;
  for (const double extra : draw_deliveries()) {
    // The copy on the wire: capture the request by value so a retransmission
    // is independent of sender-side state changes.
    engine_.after(latency_ + extra, [this, seq, request = it->second.request]() {
      receive(seq, request);
    });
  }
}

void ControlChannel::arm_retransmit_timer(std::uint64_t seq, double delay) {
  engine_.after(delay, [this, seq]() {
    const auto it = pending_.find(seq);
    if (it == pending_.end()) return;  // acked; timer dies quietly
    ++retransmits_;
    transmit_request(seq);
    it->second.rto = std::min(it->second.rto * reliability_.rto_backoff,
                              reliability_.rto_max);
    arm_retransmit_timer(seq, it->second.rto);
  });
}

void ControlChannel::handle_ack(std::uint64_t seq, const Reply& reply) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) {
    ++dup_acks_;
    return;
  }
  ++acks_;
  ControlEndpoint::ReplyHandler on_reply = std::move(it->second.on_reply);
  pending_.erase(it);
  if (on_reply) on_reply(reply);
}

void ControlChannel::receive(std::uint64_t seq, const Request& request) {
  if (seq < expected_seq_) {
    // Already handed to the agent. If it finished applying, re-ack from the
    // reply cache (the original ack was evidently lost); if it is still in
    // the agent's pipeline, the in-flight apply will ack when it completes.
    ++dup_requests_;
    const auto cached = reply_cache_.find(seq);
    if (cached != reply_cache_.end()) send_ack(seq, cached->second);
    return;
  }
  if (seq > expected_seq_) {
    // Out of order: hold it until the gap fills so requests apply in send
    // order (a FlowMod delete overtaking its add must not invert them).
    if (!reorder_buffer_.emplace(seq, request).second) {
      ++dup_requests_;
    } else {
      ++reordered_;
    }
    return;
  }
  apply_in_order(seq, request);
  // Drain any buffered successors that are now in order.
  auto next = reorder_buffer_.find(expected_seq_);
  while (next != reorder_buffer_.end()) {
    const Request buffered = std::move(next->second);
    reorder_buffer_.erase(next);
    apply_in_order(expected_seq_, buffered);
    next = reorder_buffer_.find(expected_seq_);
  }
}

void ControlChannel::apply_in_order(std::uint64_t seq, const Request& request) {
  expects(seq == expected_seq_, "ControlChannel: out-of-order apply");
  ++expected_seq_;
  agent_.deliver(request, [this, seq](const Reply& reply) {
    reply_cache_.emplace(seq, reply);
    send_ack(seq, reply);
  });
}

void ControlChannel::send_ack(std::uint64_t seq, const Reply& reply) {
  for (const double extra : draw_deliveries()) {
    engine_.after(latency_ + extra,
                  [this, seq, reply]() { handle_ack(seq, reply); });
  }
}

}  // namespace difane
