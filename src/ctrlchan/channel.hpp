// Control channel: transports requests to a switch agent and replies back,
// each direction paying a propagation latency. DIFANE uses such channels in
// two places — controller -> switch for proactive installs, and authority
// switch -> ingress switch for cache installs (the latter rides the data
// plane, so its latency is a link latency, not a controller RTT).
//
// Two delivery modes:
//
//  * Legacy (default): exactly-once, fixed latency — the fairy-tale wire the
//    deterministic benches are calibrated against. With no fault source
//    attached this path is byte-identical to the original implementation.
//
//  * Reliable: sequence numbers on every request, an ack (carrying the
//    reply) per applied request, timeout + capped exponential backoff
//    retransmission on the sender, and an agent-side receiver half that
//    suppresses duplicates, re-acks already-applied sequence numbers from a
//    reply cache, and buffers out-of-order arrivals so requests apply in
//    send order regardless of how the wire reorders them. Built to survive
//    the FaultInjector (src/faults/), which perturbs every transmission
//    through the ChannelFaults hook below.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ctrlchan/switch_agent.hpp"

namespace difane {

// Fault hook for one control-message transmission. Implemented by
// faults::FaultInjector; defined here so ctrlchan does not depend on the
// faults layer. `deliveries` starts as {0.0} (one clean copy); the
// implementation may clear it (loss), append 0.0 (duplication), or add
// positive extra latency to any element (jitter => reordering).
class ChannelFaults {
 public:
  virtual ~ChannelFaults() = default;
  virtual void transmit(std::vector<double>& deliveries) = 0;
};

// Reliable-delivery knobs. `rto_backoff` multiplies the retransmission
// timeout after every expiry until it saturates at `rto_max` — the cap
// bounds the *delay*, never the attempt count, so a message outstanding
// across a long outage still goes through eventually (in-order apply means
// dropping one would wedge every later message behind it).
struct ChannelReliability {
  bool enabled = false;
  double rto_initial = 2e-3;
  double rto_backoff = 2.0;
  double rto_max = 0.1;
};

class ControlChannel {
 public:
  using Reliability = ChannelReliability;

  ControlChannel(Engine& engine, ControlEndpoint& agent, double one_way_latency,
                 Reliability reliability = Reliability{},
                 ChannelFaults* faults = nullptr)
      : engine_(engine),
        agent_(agent),
        latency_(one_way_latency),
        reliability_(reliability),
        faults_(faults) {
    expects(one_way_latency >= 0.0, "ControlChannel: negative latency");
    if (reliability_.enabled) {
      expects(reliability_.rto_initial > 0.0, "ControlChannel: rto_initial <= 0");
      expects(reliability_.rto_backoff >= 1.0, "ControlChannel: rto_backoff < 1");
      expects(reliability_.rto_max >= reliability_.rto_initial,
              "ControlChannel: rto_max < rto_initial");
    }
  }

  // Send a request; if `on_reply` is given it fires at the sender side after
  // the reply has travelled back. In reliable mode `on_reply` fires exactly
  // once (on the first ack) no matter how many copies the wire made.
  void send(Request request, ControlEndpoint::ReplyHandler on_reply = {});

  double latency() const { return latency_; }
  bool reliable() const { return reliability_.enabled; }

  // Sender-side counters.
  std::uint64_t sent() const { return sent_; }                // send() calls
  std::uint64_t transmissions() const { return transmissions_; }  // incl. rexmit
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t acks() const { return acks_; }
  std::uint64_t dup_acks() const { return dup_acks_; }
  // Receiver (agent-side) counters.
  std::uint64_t dup_requests() const { return dup_requests_; }
  std::uint64_t reordered() const { return reordered_; }  // buffered arrivals

 private:
  struct Pending {
    Request request;
    ControlEndpoint::ReplyHandler on_reply;
    double rto;
  };

  // Sender half.
  void transmit_request(std::uint64_t seq);
  void arm_retransmit_timer(std::uint64_t seq, double delay);
  void handle_ack(std::uint64_t seq, const Reply& reply);

  // Receiver half: the agent-side endpoint of the protocol. Owns the
  // expected-sequence cursor, the out-of-order buffer, and the reply cache
  // used to re-ack duplicates of already-applied requests.
  void receive(std::uint64_t seq, const Request& request);
  void apply_in_order(std::uint64_t seq, const Request& request);
  void send_ack(std::uint64_t seq, const Reply& reply);

  // Draw the delivery schedule for one transmission from the fault hook.
  std::vector<double> draw_deliveries();

  Engine& engine_;
  ControlEndpoint& agent_;
  double latency_;
  Reliability reliability_;
  ChannelFaults* faults_;

  // Sender state.
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Pending> pending_;  // unacked requests
  std::uint64_t sent_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t dup_acks_ = 0;

  // Receiver state.
  std::uint64_t expected_seq_ = 0;
  std::map<std::uint64_t, Request> reorder_buffer_;
  std::map<std::uint64_t, Reply> reply_cache_;  // applied seq -> reply
  std::uint64_t dup_requests_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace difane
