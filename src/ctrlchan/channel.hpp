// Control channel: transports requests to a switch agent and replies back,
// each direction paying a propagation latency. DIFANE uses such channels in
// two places — controller -> switch for proactive installs, and authority
// switch -> ingress switch for cache installs (the latter rides the data
// plane, so its latency is a link latency, not a controller RTT).
#pragma once

#include "ctrlchan/switch_agent.hpp"

namespace difane {

class ControlChannel {
 public:
  ControlChannel(Engine& engine, SwitchAgent& agent, double one_way_latency)
      : engine_(engine), agent_(agent), latency_(one_way_latency) {
    expects(one_way_latency >= 0.0, "ControlChannel: negative latency");
  }

  // Send a request; if `on_reply` is given it fires at the sender side after
  // the reply has travelled back.
  void send(Request request, SwitchAgent::ReplyHandler on_reply = {}) {
    ++sent_;
    engine_.after(latency_, [this, request = std::move(request),
                             on_reply = std::move(on_reply)]() {
      SwitchAgent::ReplyHandler wrapped;
      if (on_reply) {
        wrapped = [this, on_reply](const Reply& reply) {
          engine_.after(latency_, [on_reply, reply]() { on_reply(reply); });
        };
      }
      agent_.deliver(request, std::move(wrapped));
    });
  }

  double latency() const { return latency_; }
  std::uint64_t sent() const { return sent_; }

 private:
  Engine& engine_;
  SwitchAgent& agent_;
  double latency_;
  std::uint64_t sent_ = 0;
};

}  // namespace difane
