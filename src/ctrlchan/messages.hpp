// OpenFlow-1.0-flavored control messages. DIFANE's promise is that the
// controller (and authority switches) manage switch state through ordinary
// flow-table messages — no new switch hardware. This module models the
// message vocabulary the paper relies on: flow modifications, packet
// injection, barriers (ordering), and flow-statistics queries whose answers
// aggregate per *policy* rule even when the rule was clipped into many
// installed copies.
#pragma once

#include <cstdint>
#include <functional>
#include <variant>
#include <vector>

#include "obs/flow_export.hpp"
#include "switchsim/flow_table.hpp"

namespace difane {

using Xid = std::uint32_t;  // transaction id echoed in replies

enum class FlowModOp : std::uint8_t { kAdd = 0, kModify, kDelete };

struct FlowMod {
  Xid xid = 0;
  FlowModOp op = FlowModOp::kAdd;
  Band band = Band::kCache;
  Rule rule;                  // for kDelete only rule.id is consulted
  double idle_timeout = 0.0;  // cache band only
  double hard_timeout = 0.0;
  // Protector entries this rule depends on (see FlowEntry::guards).
  std::vector<RuleId> guards;
};

// Inject a packet at the switch as if it arrived on a port (the NOX
// packet-out used to resume a punted packet).
struct PacketOut {
  Xid xid = 0;
  BitVec header;
  std::uint32_t bytes = 100;
  Action action;  // the action the controller decided on
};

// Process all previously received messages before replying.
struct BarrierRequest {
  Xid xid = 0;
};

// Ask for counters. `origin` filters by the origin (policy) rule id;
// kInvalidRuleId means "everything".
struct FlowStatsRequest {
  Xid xid = 0;
  RuleId origin = kInvalidRuleId;
};

// One telemetry export batch travelling switch -> collector. Unlike the
// requests above this one flows *toward* the controller, which is why the
// channel endpoint is an abstract ControlEndpoint (below): the collector
// side reuses the exact same reliable-delivery machinery as a switch agent.
struct FlowExport {
  Xid xid = 0;
  obs::FlowExportBatch batch;
};

// ---- live partition migration ("make-before-break" re-homing) -----------
// These three messages are the control vocabulary of a partition move. All of
// them are idempotent by construction — installs and flips refresh an entry
// in place by rule id, retire of an absent id is a no-op — so the reliable
// channel's retransmission/duplication path needs no special casing.

// Install a partition's authority rules at the destination switch (the
// make-before-break "make": the destination is fully stocked before any
// ingress is flipped toward it).
struct PartitionInstall {
  Xid xid = 0;
  std::vector<Rule> rules;  // authority-band copies for one partition
};

// Flip one switch's partition-band redirect rule so new redirects chase the
// partition at its new home. The rule id is stable per partition, so the
// flip refreshes the existing entry in place.
struct PartitionFlip {
  Xid xid = 0;
  Rule rule;  // partition-band redirect (encap to the new authority)
};

// Retire the source copy after the drain window: remove the listed
// authority-band rule ids. Removing an id the switch no longer holds (crash,
// duplicate retire) is a silent no-op.
struct PartitionRetire {
  Xid xid = 0;
  std::vector<RuleId> rule_ids;
};

using Request =
    std::variant<FlowMod, PacketOut, BarrierRequest, FlowStatsRequest, FlowExport,
                 PartitionInstall, PartitionFlip, PartitionRetire>;

// ---- replies -------------------------------------------------------------

struct FlowModReply {
  Xid xid = 0;
  bool ok = false;
};

struct BarrierReply {
  Xid xid = 0;
};

// One row per distinct origin rule: counters summed over every installed
// copy (clipped partitions copies, microflow entries, shadow rules), so the
// controller sees exactly the per-policy-rule counters it would have seen
// with one giant table. This is the transparency property.
struct FlowStatsEntry {
  RuleId origin = kInvalidRuleId;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t installed_copies = 0;
};

struct FlowStatsReply {
  Xid xid = 0;
  std::vector<FlowStatsEntry> entries;
};

// Acknowledges a FlowExport batch by its per-exporter sequence number.
struct FlowExportAck {
  Xid xid = 0;
  std::uint64_t seq = 0;
};

using Reply = std::variant<FlowModReply, BarrierReply, FlowStatsReply, FlowExportAck>;

// ---- endpoint ------------------------------------------------------------

// The receiving end of a ControlChannel. SwitchAgent (switch-side apply
// pipeline) and the telemetry CollectorEndpoint (controller-side collector)
// both implement it, so one channel class serves both directions of the
// control plane. deliver() receives a transported request and must
// eventually invoke `on_reply` (when non-empty) exactly once — the reliable
// channel turns that reply into the ack that stops retransmission.
class ControlEndpoint {
 public:
  using ReplyHandler = std::function<void(const Reply&)>;

  virtual ~ControlEndpoint() = default;
  virtual void deliver(const Request& request, ReplyHandler on_reply) = 0;
};

}  // namespace difane
