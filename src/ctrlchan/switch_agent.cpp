#include "ctrlchan/switch_agent.hpp"

#include <algorithm>
#include <map>

namespace difane {

double SwitchAgent::admit(double cost) {
  const double now = engine_.now();
  const double start = std::max(next_free_, now);
  next_free_ = start + cost;
  return next_free_;
}

void SwitchAgent::deliver(const Request& request, ReplyHandler on_reply) {
  const double cost = std::visit(
      [&](const auto& msg) -> double {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, FlowMod>) return params_.flow_mod_cost;
        if constexpr (std::is_same_v<T, PacketOut>) return params_.packet_out_cost;
        if constexpr (std::is_same_v<T, FlowStatsRequest>) return params_.stats_cost;
        if constexpr (std::is_same_v<T, PartitionInstall>) {
          // A bulk authority install pays per rule, like the equivalent
          // stream of FlowMods would.
          return params_.flow_mod_cost *
                 static_cast<double>(std::max<std::size_t>(1, msg.rules.size()));
        }
        if constexpr (std::is_same_v<T, PartitionFlip>) return params_.flow_mod_cost;
        if constexpr (std::is_same_v<T, PartitionRetire>) return params_.flow_mod_cost;
        return 0.0;  // barriers only wait for the pipeline to drain
      },
      request);
  const double done = admit(cost);
  engine_.at(done, [this, request, on_reply = std::move(on_reply)]() {
    apply(request, on_reply);
  });
}

void SwitchAgent::apply(const Request& request, const ReplyHandler& on_reply) {
  ++applied_;
  const double now = engine_.now();
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, FlowMod>) {
          bool ok = false;
          switch (msg.op) {
            case FlowModOp::kAdd:
            case FlowModOp::kModify: {
              bool guards_ok = true;
              if (strict_guards_ && msg.band == Band::kCache) {
                for (const RuleId g : msg.guards) {
                  if (switch_.table().find(g, Band::kCache) == nullptr) {
                    guards_ok = false;
                    break;
                  }
                }
              }
              if (!guards_ok) {
                ++guard_rejects_;
              } else if (install_fault_ && install_fault_()) {
                ++install_faults_;
              } else {
                ok = switch_.table().install(msg.rule, msg.band, now,
                                             msg.idle_timeout, msg.hard_timeout,
                                             msg.guards);
              }
              break;
            }
            case FlowModOp::kDelete:
              ok = switch_.table().remove(msg.rule.id, msg.band);
              break;
          }
          if (on_reply) on_reply(FlowModReply{msg.xid, ok});
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          if (packet_out_) packet_out_(msg);
          // Confirm application when asked: a reliable channel needs every
          // request type to produce an ack-carrying reply.
          if (on_reply) on_reply(BarrierReply{msg.xid});
        } else if constexpr (std::is_same_v<T, BarrierRequest>) {
          // All earlier messages were applied before this event fired (the
          // pipeline cursor serialized them), so the barrier holds.
          if (on_reply) on_reply(BarrierReply{msg.xid});
        } else if constexpr (std::is_same_v<T, FlowStatsRequest>) {
          if (on_reply) {
            FlowStatsReply reply;
            reply.xid = msg.xid;
            reply.entries = collect_stats(switch_, msg.origin);
            on_reply(reply);
          }
        } else if constexpr (std::is_same_v<T, PartitionInstall>) {
          // Migration "make" step. A failed switch acks ok=false without
          // touching its (cleared) table, so the migration state machine can
          // abort instead of believing the destination is stocked.
          bool ok = !switch_.failed();
          if (ok) {
            for (const auto& rule : msg.rules) {
              switch_.table().install(rule, Band::kAuthority, now);
            }
          }
          if (on_reply) on_reply(FlowModReply{msg.xid, ok});
        } else if constexpr (std::is_same_v<T, PartitionFlip>) {
          bool ok = !switch_.failed();
          if (ok) {
            // Same rule id as the existing partition redirect: the install
            // refreshes the entry in place, atomically swinging the encap
            // target. Re-applying a duplicate flip is a no-op.
            switch_.table().install(msg.rule, Band::kPartition, now);
          }
          if (on_reply) on_reply(FlowModReply{msg.xid, ok});
        } else if constexpr (std::is_same_v<T, PartitionRetire>) {
          bool ok = !switch_.failed();
          if (ok) {
            for (const RuleId id : msg.rule_ids) {
              switch_.table().remove(id, Band::kAuthority);
            }
          }
          if (on_reply) on_reply(FlowModReply{msg.xid, ok});
        } else if constexpr (std::is_same_v<T, FlowExport>) {
          // A switch agent is not a collector; export batches terminate at a
          // CollectorEndpoint. Still ack so a misdirected batch cannot wedge
          // a reliable channel behind an unackable message.
          if (on_reply) on_reply(FlowExportAck{msg.xid, msg.batch.seq});
        }
      },
      request);
}

std::vector<FlowStatsEntry> collect_stats(const Switch& sw, RuleId origin_filter) {
  std::map<RuleId, FlowStatsEntry> by_origin;
  for (const auto band : {Band::kCache, Band::kAuthority}) {
    for (const auto& entry : sw.table().entries(band)) {
      // Redirect plumbing (partition band, shadow/encap rules) is excluded:
      // those hits are counted again at the authority switch's policy rule.
      if (entry.rule.action.type == ActionType::kEncap) continue;
      const RuleId origin = entry.rule.origin_or_self();
      if (origin_filter != kInvalidRuleId && origin != origin_filter) continue;
      auto& row = by_origin[origin];
      row.origin = origin;
      row.packets += entry.packets;
      row.bytes += entry.bytes;
      row.installed_copies += 1;
    }
  }
  // Counters that left the table with evicted/expired/deleted entries.
  for (const auto& [origin, counters] : sw.table().retired()) {
    if (origin_filter != kInvalidRuleId && origin != origin_filter) continue;
    auto& row = by_origin[origin];
    row.origin = origin;
    row.packets += counters.packets;
    row.bytes += counters.bytes;
  }
  std::vector<FlowStatsEntry> out;
  out.reserve(by_origin.size());
  for (auto& [origin, row] : by_origin) out.push_back(row);
  return out;
}

std::vector<FlowStatsEntry> merge_stats(
    const std::vector<std::vector<FlowStatsEntry>>& per_switch) {
  std::map<RuleId, FlowStatsEntry> by_origin;
  for (const auto& rows : per_switch) {
    for (const auto& row : rows) {
      auto& acc = by_origin[row.origin];
      acc.origin = row.origin;
      acc.packets += row.packets;
      acc.bytes += row.bytes;
      acc.installed_copies += row.installed_copies;
    }
  }
  std::vector<FlowStatsEntry> out;
  out.reserve(by_origin.size());
  for (auto& [origin, row] : by_origin) out.push_back(row);
  return out;
}

}  // namespace difane
