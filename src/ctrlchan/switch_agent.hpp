// The switch-local control agent: receives control messages, applies them to
// the switch's flow table in arrival order, and emits replies. Message
// processing takes time (a real switch's flow-mod path is ~ms-scale), which
// is what makes barriers meaningful: a BarrierReply is issued only after
// every earlier message has been *applied*, not merely received.
#pragma once

#include <functional>

#include "ctrlchan/messages.hpp"
#include "netsim/engine.hpp"
#include "switchsim/sw.hpp"

namespace difane {

struct SwitchAgentParams {
  double flow_mod_cost = 1e-4;   // apply time per flow-mod (typical ~0.1-1ms)
  double stats_cost = 5e-4;      // walking the table for counters
  double packet_out_cost = 1e-5;
};

class SwitchAgent : public ControlEndpoint {
 public:
  using ReplyHandler = ControlEndpoint::ReplyHandler;
  // Invoked when a PacketOut is applied: the embedding system decides what
  // "executing the action at this switch" means (forwarding lives in core/).
  using PacketOutHandler = std::function<void(const PacketOut&)>;

  SwitchAgent(Engine& engine, Switch& sw, SwitchAgentParams params = {})
      : engine_(engine), switch_(sw), params_(params) {}

  // Deliver a request to the agent (already transported; the channel adds
  // propagation latency). Requests are applied in delivery order; the reply
  // is emitted through `on_reply` when the request finishes applying.
  void deliver(const Request& request, ReplyHandler on_reply = {}) override;

  void set_packet_out_handler(PacketOutHandler handler) {
    packet_out_ = std::move(handler);
  }

  // Fault hook: invoked per FlowMod add/modify; returning true makes the
  // install fail at the switch (the reply still flows, ok = false). Models a
  // TCAM write error / partial install under the fault-injection layer.
  using InstallFaultHook = std::function<bool()>;
  void set_install_fault_hook(InstallFaultHook hook) {
    install_fault_ = std::move(hook);
  }

  // Strict guard checking: reject a cache-band add whose guard (protector)
  // entries are not all present. With an exactly-once in-order channel the
  // protectors-first install order makes this vacuous, but under message
  // loss or install faults a dependent could land without its protector and
  // steal packets it must not own. Rejecting it keeps partial group installs
  // safe: the flow over-redirects (always correct) instead of mis-forwarding.
  // Off by default so the fault-free baseline stays byte-identical.
  void set_strict_guards(bool strict) { strict_guards_ = strict; }

  Switch& attached_switch() { return switch_; }
  std::uint64_t applied() const { return applied_; }
  std::uint64_t install_faults() const { return install_faults_; }
  std::uint64_t guard_rejects() const { return guard_rejects_; }

 private:
  double admit(double cost);
  void apply(const Request& request, const ReplyHandler& on_reply);

  Engine& engine_;
  Switch& switch_;
  SwitchAgentParams params_;
  PacketOutHandler packet_out_;
  InstallFaultHook install_fault_;
  bool strict_guards_ = false;
  double next_free_ = 0.0;  // serialization of the agent's control pipeline
  std::uint64_t applied_ = 0;
  std::uint64_t install_faults_ = 0;
  std::uint64_t guard_rejects_ = 0;
};

// Aggregate counters per origin rule across one switch's whole table.
// Copies (partition clippings, shadow rules, microflow entries) fold into
// their origin; rules with no origin report under their own id.
std::vector<FlowStatsEntry> collect_stats(const Switch& sw,
                                          RuleId origin_filter = kInvalidRuleId);

// Merge stats rows from several switches (same origin folds together).
std::vector<FlowStatsEntry> merge_stats(
    const std::vector<std::vector<FlowStatsEntry>>& per_switch);

}  // namespace difane
