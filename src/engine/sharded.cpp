#include "engine/sharded.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace difane::shard {

namespace {

struct Ctx {
  Engine* engine = nullptr;
  std::uint32_t shard = kNoShard;
};

thread_local Ctx t_ctx;

}  // namespace

std::uint32_t current_shard() { return t_ctx.shard; }

Executor::Executor(std::size_t shards, std::size_t threads, SimTime lookahead,
                   Engine* global, std::size_t ring_capacity)
    : Executor(shards, threads, lookahead, global,
               Options{ring_capacity, /*steal=*/true, /*pin_workers=*/false}) {}

Executor::Executor(std::size_t shards, std::size_t threads, SimTime lookahead,
                   Engine* global, Options options)
    : global_(global), lookahead_(lookahead), options_(options) {
  expects(shards >= 1, "Executor: need at least one shard");
  expects(lookahead > 0.0,
          "Executor: conservative windows need a positive lookahead "
          "(minimum link latency)");
  expects(global != nullptr, "Executor: need a global engine");
  expects(util::is_power_of_two(options_.ring_capacity),
          "Executor: ring capacity must be a power of two");
  engines_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    engines_.push_back(std::make_unique<Engine>());
  }
  outboxes_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    outboxes_.push_back(std::make_unique<Outbox>(options_.ring_capacity));
  }
  const std::size_t workers = std::min(threads, shards);
  if (workers >= 2) {
    worker_shards_.resize(workers);
    home_worker_.resize(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      worker_shards_[s % workers].push_back(s);
      home_worker_[s] = static_cast<std::uint32_t>(s % workers);
    }
    claims_ = std::make_unique<std::atomic<std::uint64_t>[]>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      claims_[s].store(0, std::memory_order_relaxed);
    }
    workers_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      workers_.emplace_back([this, w]() { worker_main(w); });
    }
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

Engine& Executor::context_engine() {
  return t_ctx.engine != nullptr ? *t_ctx.engine : *global_;
}

void Executor::schedule(std::uint32_t target, SimTime when, Engine::Handler fn) {
  expects(target < engines_.size(), "Executor::schedule: bad shard");
  if (t_ctx.shard != kNoShard) {
    if (t_ctx.shard == target) {
      engines_[target]->at(when, std::move(fn));
      return;
    }
    outbox_push(t_ctx.shard, Msg{when, target, std::move(fn)});
    return;
  }
  // Coordinator / setup context: workers are parked, direct insert is safe
  // and keeps the deterministic order of the caller.
  Engine& e = *engines_[target];
  e.at(std::max(when, e.now()), std::move(fn));
}

void Executor::schedule_global(SimTime when, Engine::Handler fn) {
  if (t_ctx.shard != kNoShard) {
    outbox_push(t_ctx.shard, Msg{when, kGlobalTarget, std::move(fn)});
    return;
  }
  global_->at(std::max(when, global_->now()), std::move(fn));
}

void Executor::run_shard_inline(std::size_t s, SimTime wend) {
  t_ctx = Ctx{engines_[s].get(), static_cast<std::uint32_t>(s)};
  engines_[s]->run_before(wend);
  t_ctx = Ctx{};
}

void Executor::worker_main(std::size_t worker) {
#if defined(__linux__)
  if (options_.pin_workers) {
    // Best-effort affinity: worker w sticks to CPU (w mod ncpu). Failure
    // (cpuset restrictions, exotic hosts) is ignored — pinning is a
    // locality hint, never a correctness requirement.
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(worker % ncpu), &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  auto* stolen_metric = obs::MetricsRegistry::global().counter("engine_shards_stolen");
  std::uint64_t seen_epoch = 0;
  for (;;) {
    SimTime wend;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&]() { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      wend = wend_;
    }
    // Home pass. The claim comes before the peek: once another worker owns
    // a shard this window, even reading its engine would race the owner's
    // execution. A claimed-but-idle shard costs one peek and moves on.
    for (const std::size_t s : worker_shards_[worker]) {
      if (claim_shard(s, seen_epoch) && engines_[s]->peek_time() < wend) {
        run_shard_inline(s, wend);
      }
    }
    // Steal pass: scan every foreign shard in a fixed rotation from this
    // worker's index. The scan order is a pure function of (worker, shard
    // count) — deterministic — while which claims succeed depends on how
    // far the other workers got; either way each shard executes exactly
    // once per window, so results are identical and only wall-time moves.
    if (options_.steal) {
      const std::size_t n = engines_.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t s = (worker + 1 + i) % n;
        if (home_worker_[s] == worker) continue;
        if (claim_shard(s, seen_epoch) && engines_[s]->peek_time() < wend) {
          shards_stolen_.fetch_add(1, std::memory_order_relaxed);
          stolen_metric->inc();
          run_shard_inline(s, wend);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++done_;
    }
    cv_done_.notify_one();
  }
}

void Executor::deliver(std::vector<Msg>& msgs, SimTime wend) {
  // Deterministic cross-shard order: (when, source shard, send order). The
  // collection loop walks outboxes in shard order preserving per-shard FIFO,
  // so a stable sort on `when` alone realizes exactly that key.
  std::stable_sort(msgs.begin(), msgs.end(),
                   [](const Msg& a, const Msg& b) { return a.when < b.when; });
  cross_messages_ += msgs.size();
  for (auto& m : msgs) {
    // Clamp to the window boundary: nothing may land inside the window that
    // just executed. Packet hops pay >= lookahead and are never clamped;
    // latency-free control dispatches pay the boundary here.
    const SimTime when = std::max(m.when, wend);
    if (m.target == kGlobalTarget) {
      global_->at(std::max(when, global_->now()), std::move(m.fn));
    } else {
      Engine& e = *engines_[m.target];
      e.at(std::max(when, e.now()), std::move(m.fn));
    }
  }
  msgs.clear();
}

void Executor::run(const std::function<void()>& post_global) {
  std::vector<Msg> msgs;
  for (;;) {
    SimTime shard_min = Engine::kNoEvent;
    for (const auto& e : engines_) shard_min = std::min(shard_min, e->peek_time());
    const SimTime global_min = global_->peek_time();
    const SimTime tmin = std::min(shard_min, global_min);
    if (tmin >= Engine::kNoEvent) break;
    // Global events mutate cross-shard state (failures, route flaps), so the
    // window never crosses the next one; they run at the barrier below, and
    // shard events at the same timestamp run in the *next* window — i.e.
    // global state changes at time T are visible to every shard event at T.
    const SimTime wend = std::min(shard_min + lookahead_, global_min);
    ++windows_;

    std::size_t runnable = 0;
    for (const auto& e : engines_) runnable += e->peek_time() < wend ? 1 : 0;
    if (runnable > 1 && !workers_.empty()) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        wend_ = wend;
        done_ = 0;
        ++epoch_;
      }
      cv_work_.notify_all();
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&]() { return done_ == workers_.size(); });
    } else if (runnable > 0) {
      // A lone runnable shard (common in sparse phases) skips the worker
      // round-trip; execution is identical, just on the coordinator thread.
      for (std::size_t s = 0; s < engines_.size(); ++s) {
        if (engines_[s]->peek_time() < wend) run_shard_inline(s, wend);
      }
    }

    // Drain in shard order, ring before overflow, preserving each shard's
    // FIFO send order — the stable sort in deliver() then realizes the
    // deterministic (when, src shard, seq) key exactly as before.
    for (auto& obp : outboxes_) {
      Outbox& ob = *obp;
      Msg m;
      while (ob.ring.try_pop(m)) msgs.push_back(std::move(m));
      for (auto& v : ob.overflow) msgs.push_back(std::move(v));
      ob.overflow.clear();
    }
    deliver(msgs, wend);

    std::uint64_t global_events = 0;
    if (global_->peek_time() <= wend) global_events = global_->run(wend);
    if (global_events > 0 && post_global) post_global();
  }
}

std::uint64_t Executor::executed() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->executed();
  return total;
}

}  // namespace difane::shard
