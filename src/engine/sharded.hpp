// Conservative parallel discrete-event execution. The network is partitioned
// into shards (one per authority serving set, see core/system.cpp); each
// shard owns a private Engine whose events only touch that shard's switches,
// links, channels, and stats. Shards advance together through conservative
// time windows:
//
//   tmin  = earliest pending event across every shard + the global queue
//   wend  = min(shard_min + lookahead, next global event)
//   each shard runs its events with when < wend on a worker thread
//   barrier: cross-shard messages are sorted by (when, source shard, send
//   order) and delivered with when clamped to >= wend; then global events
//   (fault injection, heartbeat ticks, failover handling) with when <= wend
//   run on the coordinator while every worker is parked
//
// The lookahead is the minimum link latency: a packet leaving shard A at
// time t cannot reach shard B before t + lookahead, so executing a window of
// that width cannot miss a causally earlier cross-shard arrival. Cross-shard
// *control* dispatches (an authority handing an install to the ingress
// shard) carry no modeled wire latency of their own, so the clamp to the
// window boundary is where they pay the coordination cost — that is the
// documented threads>1 timing model, and it is deterministic: the same seed
// and shard count replay identically regardless of how worker threads are
// scheduled by the OS.
//
// Determinism contract:
//  * within a shard, the private Engine is the same deterministic FIFO
//    tie-broken heap as the serial engine;
//  * cross-shard delivery order is fixed by the (when, src shard, seq) sort,
//    never by arrival order;
//  * global events run single-threaded on the coordinator between windows;
//  * which worker executes a shard never affects results: an epoch-tagged
//    claim gives each shard to exactly one worker per window (its home
//    worker or, with Options::steal, an idle thief), and a shard's event
//    stream depends only on engine state, not on the executing thread — so
//    work stealing redistributes wall-clock, never outcomes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "netsim/engine.hpp"
#include "util/spsc_ring.hpp"

namespace difane::shard {

// Shard index of the code currently executing on this thread, or kNoShard
// when outside shard execution (coordinator, global events, setup code).
// The FaultInjector keys its per-shard Rng streams off this.
inline constexpr std::uint32_t kNoShard = 0xffffffffu;
std::uint32_t current_shard();

// True when the calling code runs outside shard execution — on the
// coordinator, in a global event (workers parked), or in setup code. State
// that spans shards (the partition plan, live-migration bookkeeping) may
// only be mutated when this holds; the migration state machine asserts it.
inline bool in_global_context() { return current_shard() == kNoShard; }

class Executor {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1024;

  struct Options {
    // Capacity of each shard's SPSC outbox ring (power of two); a window
    // that emits more cross-shard messages than that spills to a plain
    // vector, trading the lock-free hand-off for correctness, never
    // blocking.
    std::size_t ring_capacity = kDefaultRingCapacity;
    // Work stealing: within a window, a worker that exhausts its home
    // shards claims runnable shards homed on other workers, scanning all
    // shards in a fixed rotation from its own index. Each shard is claimed
    // by exactly one worker per window (epoch-tagged CAS), so the shard's
    // event execution — and therefore every result — is identical no
    // matter which worker ran it; stealing only changes wall-clock, never
    // outcomes. Which claims succeed does depend on OS scheduling, so the
    // shards_stolen() counter is a host measurement, not a deterministic
    // simulation quantity.
    bool steal = true;
    // Pin worker w to CPU (w mod hardware_concurrency) via
    // pthread_setaffinity_np (Linux only; silently a no-op elsewhere).
    // This keeps the worker↔core mapping stable so per-core caches and —
    // on multi-socket hosts — the NUMA pages a worker's shards touch stay
    // local across windows. We deliberately do not link libnuma: shard
    // state is placed by first touch, and pinning is purely a scheduling
    // hint, so results are byte-identical with it on or off (on the
    // single-node CI container it changes nothing at all).
    bool pin_workers = false;
  };

  // `global` is the engine for events that may touch cross-shard state
  // (Scenario hands in the Network's own engine, so fault schedules and the
  // heartbeat monitor keep using net.engine() verbatim). `threads` worker
  // threads execute `shards` shard engines; shards are homed on workers
  // round-robin — that home assignment is also the deterministic base of
  // the steal order — so threads > shards wastes nothing and shards >
  // threads just runs several shards per worker.
  Executor(std::size_t shards, std::size_t threads, SimTime lookahead,
           Engine* global, Options options);
  // Legacy convenience: default Options with an explicit ring capacity.
  Executor(std::size_t shards, std::size_t threads, SimTime lookahead,
           Engine* global, std::size_t ring_capacity = kDefaultRingCapacity);

  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t shards() const { return engines_.size(); }
  Engine& shard_engine(std::size_t s) { return *engines_[s]; }

  // Engine driving the code currently executing on this thread: the shard
  // engine inside shard execution, the global engine otherwise.
  Engine& context_engine();

  // Schedule `fn` on shard `target` at absolute sim time `when`. Same-shard
  // calls go straight into the local engine; cross-shard calls are buffered
  // and delivered at the next window boundary, clamped to the window end.
  void schedule(std::uint32_t target, SimTime when, Engine::Handler fn);

  // Schedule on the global (coordinator) queue. From shard execution the
  // event is buffered like any cross-shard message; from the coordinator or
  // setup code it lands directly.
  void schedule_global(SimTime when, Engine::Handler fn);

  // Run every engine to quiescence. `post_global` runs on the coordinator
  // after each window whose global phase executed at least one event (the
  // Scenario recomputes routes there, so workers never race the lazy
  // rebuild).
  void run(const std::function<void()>& post_global = {});

  std::uint64_t windows() const { return windows_; }
  std::uint64_t cross_messages() const { return cross_messages_; }
  std::uint64_t executed() const;

  // Runnable shards executed by a worker other than their home worker.
  // Host-timing dependent (see Options::steal) — exposed for tests and
  // wall-style telemetry, never for gated deterministic metrics.
  std::uint64_t shards_stolen() const {
    return shards_stolen_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kGlobalTarget = 0xfffffffeu;

  struct Msg {
    SimTime when;
    std::uint32_t target;
    Engine::Handler fn;
  };

  void worker_main(std::size_t worker);
  void run_shard_inline(std::size_t s, SimTime wend);
  void deliver(std::vector<Msg>& msgs, SimTime wend);

  // Claim shard `s` for window `epoch`. Exactly one worker per window wins;
  // the winner is the only thread that may touch the shard's engine until
  // the barrier. The epoch tag makes claims self-resetting across windows.
  bool claim_shard(std::size_t s, std::uint64_t epoch) {
    std::uint64_t prev = claims_[s].load(std::memory_order_relaxed);
    return prev != epoch &&
           claims_[s].compare_exchange_strong(prev, epoch,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<Engine>> engines_;
  Engine* global_;
  SimTime lookahead_;
  Options options_;

  // One outbox per shard (not per worker): a shard runs on exactly one
  // thread per window — the single producer — and the coordinator drains at
  // the barrier — the single consumer. The ring's acquire/release pairs
  // publish messages without taking the barrier mutex per message; the
  // overflow vector (rare: ring full) rides the barrier's mutex hand-off
  // instead. Once a window overflows, later messages go to the vector too,
  // so per-shard FIFO order survives (ring drains before overflow).
  struct Outbox {
    explicit Outbox(std::size_t capacity) : ring(capacity) {}
    util::SpscRing<Msg> ring;
    std::vector<Msg> overflow;
  };
  std::vector<std::unique_ptr<Outbox>> outboxes_;

  void outbox_push(std::uint32_t src_shard, Msg m) {
    Outbox& ob = *outboxes_[src_shard];
    if (!ob.overflow.empty() || !ob.ring.try_push(std::move(m))) {
      ob.overflow.push_back(std::move(m));
    }
  }

  // Worker pool, parked between windows. `epoch` ticking under the mutex
  // releases the workers; `done` counting back up releases the coordinator.
  // The mutex hand-off is the happens-before edge that publishes engine and
  // outbox state in both directions (TSan-clean by construction).
  std::vector<std::thread> workers_;
  std::vector<std::vector<std::size_t>> worker_shards_;
  std::vector<std::uint32_t> home_worker_;  // shard -> home worker index
  // Per-shard epoch-tagged claim slots (see claim_shard). unique_ptr array
  // because std::atomic is neither copyable nor movable.
  std::unique_ptr<std::atomic<std::uint64_t>[]> claims_;
  std::atomic<std::uint64_t> shards_stolen_{0};
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  std::size_t done_ = 0;
  SimTime wend_ = 0.0;
  bool stop_ = false;

  std::uint64_t windows_ = 0;
  std::uint64_t cross_messages_ = 0;
};

}  // namespace difane::shard
