#include "faults/heartbeat.hpp"

#include "util/contract.hpp"

namespace difane {

HeartbeatMonitor::HeartbeatMonitor(Network& net, std::vector<SwitchId> watched,
                                   HeartbeatParams params, FaultInjector* injector)
    : net_(net), params_(params), injector_(injector) {
  expects(params_.interval > 0.0, "HeartbeatMonitor: interval must be > 0");
  expects(params_.miss_threshold >= 1, "HeartbeatMonitor: need a miss threshold");
  expects(params_.horizon > 0.0, "HeartbeatMonitor: need a horizon");
  for (const SwitchId sw : watched) watched_.push_back(WatchState{sw, 0, false});
}

void HeartbeatMonitor::start() {
  if (params_.interval <= params_.horizon) {
    net_.engine().after(params_.interval, [this]() { tick(); });
  }
}

void HeartbeatMonitor::note_message_from(SwitchId sw) {
  for (auto& w : watched_) {
    if (w.sw == sw) w.message_since_tick = true;
  }
}

void HeartbeatMonitor::note_liveness(SwitchId sw, std::uint64_t beat_seq) {
  // Fresh iff stamped within miss_threshold ticks of the monitor's counter —
  // the same slack the miss counter itself grants, so transit/retransmission
  // delay up to threshold x interval cannot turn live evidence stale.
  if (beat_seq + params_.miss_threshold < tick_seq_) {
    ++piggyback_stale_;
    return;
  }
  ++piggyback_fresh_;
  note_message_from(sw);
}

void HeartbeatMonitor::tick() {
  ++tick_seq_;
  const double now = net_.engine().now();
  for (auto& w : watched_) {
    // A failed switch emits nothing; a live switch's beat can still be lost
    // on the control wire.
    const bool beat_arrived =
        !net_.sw(w.sw).failed() &&
        (injector_ == nullptr || !injector_->heartbeat_lost());
    // Any message heard from the switch since the last tick proves liveness
    // just as well as the dedicated beat — it resets the miss counter, so a
    // run of lost/jittered beats from a switch that is visibly serving
    // traffic cannot accumulate into a spurious failover.
    const bool alive = beat_arrived || w.message_since_tick;
    w.message_since_tick = false;
    if (alive) {
      if (beat_arrived) ++beats_heard_;
      w.consecutive_misses = 0;
      if (w.declared_down) {
        w.declared_down = false;
        ++recoveries_declared_;
        if (on_recovery_) on_recovery_(w.sw, now);
      }
    } else {
      ++beats_missed_;
      ++w.consecutive_misses;
      if (!w.declared_down && w.consecutive_misses >= params_.miss_threshold) {
        w.declared_down = true;
        ++failures_declared_;
        if (!net_.sw(w.sw).failed()) ++spurious_failovers_;
        if (on_failure_) on_failure_(w.sw, now);
      }
    }
  }
  if (now + params_.interval <= params_.horizon) {
    net_.engine().after(params_.interval, [this]() { tick(); });
  }
}

}  // namespace difane
