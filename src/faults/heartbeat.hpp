// Heartbeat-based failure detection. Each watched switch emits a beat every
// `interval` seconds (beats traverse the control network, so the
// FaultInjector may drop them); the monitor declares a switch down after
// `miss_threshold` consecutive missing beats and declares recovery on the
// first beat heard from a switch it considered down. This replaces the
// hardcoded failover_detect oracle: detection latency becomes an emergent
// property of interval x threshold x beat loss, exactly the trade-off a real
// deployment tunes.
//
// The monitor stops scheduling ticks past `horizon` so the engine's event
// queue can drain (Scenario::run runs until the queue is empty); pick a
// horizon at or past the end of injected traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/injector.hpp"
#include "netsim/topology.hpp"

namespace difane {

struct HeartbeatParams {
  double interval = 0.05;         // seconds between beats
  std::uint32_t miss_threshold = 3;  // consecutive misses => declare failure
  double horizon = 0.0;           // no ticks scheduled past this sim time
};

class HeartbeatMonitor {
 public:
  // `when` is the detection instant (the tick that crossed the threshold or
  // heard the reviving beat).
  using Callback = std::function<void(SwitchId sw, double when)>;

  HeartbeatMonitor(Network& net, std::vector<SwitchId> watched,
                   HeartbeatParams params, FaultInjector* injector = nullptr);

  void on_failure(Callback cb) { on_failure_ = std::move(cb); }
  void on_recovery(Callback cb) { on_recovery_ = std::move(cb); }

  // Schedule the periodic tick chain. Call once, after the callbacks are set.
  void start();

  // Liveness evidence from any control message the authority sent (a cache
  // install arriving at an ingress, an ack): treat it like a beat at the next
  // tick. Without this, jitter larger than miss_threshold x interval can
  // stall the beat stream long enough to declare a *spurious* failover —
  // failing over a switch that is demonstrably alive and serving — followed
  // by an immediate recovery, churning the partition tables twice for
  // nothing.
  void note_message_from(SwitchId sw);

  // Piggybacked liveness: telemetry export batches stamp the heartbeat tick
  // index current when they left the switch (beat_seq = floor(send_time /
  // interval)). A batch is accepted as a beat only while its stamp is fresh —
  // within miss_threshold ticks of the monitor's own tick counter — so a
  // batch retransmitted across a long partition cannot resurrect a switch
  // with stale evidence. Fresh stamps reset the miss counter exactly like
  // note_message_from; stale ones are counted and ignored. This is what lets
  // the monitor tell a *quiet* authority (no installs, no acks, but exports
  // or keepalives still flowing) from a *partitioned* one.
  void note_liveness(SwitchId sw, std::uint64_t beat_seq);

  // Monitor-side tick counter (ticks fired so far); tick k fires at time
  // k * interval, which is what makes beat_seq stamps comparable to it.
  std::uint64_t tick_seq() const { return tick_seq_; }
  std::uint64_t piggyback_fresh() const { return piggyback_fresh_; }
  std::uint64_t piggyback_stale() const { return piggyback_stale_; }

  std::uint64_t beats_heard() const { return beats_heard_; }
  std::uint64_t beats_missed() const { return beats_missed_; }
  std::uint64_t failures_declared() const { return failures_declared_; }
  std::uint64_t recoveries_declared() const { return recoveries_declared_; }
  // Failure declarations for a switch that was not actually failed at
  // declaration time (detection false positives).
  std::uint64_t spurious_failovers() const { return spurious_failovers_; }

 private:
  void tick();

  struct WatchState {
    SwitchId sw = kInvalidSwitch;
    std::uint32_t consecutive_misses = 0;
    bool declared_down = false;
    bool message_since_tick = false;
  };

  Network& net_;
  HeartbeatParams params_;
  FaultInjector* injector_;
  std::vector<WatchState> watched_;
  Callback on_failure_;
  Callback on_recovery_;
  std::uint64_t tick_seq_ = 0;
  std::uint64_t beats_heard_ = 0;
  std::uint64_t beats_missed_ = 0;
  std::uint64_t failures_declared_ = 0;
  std::uint64_t recoveries_declared_ = 0;
  std::uint64_t spurious_failovers_ = 0;
  std::uint64_t piggyback_fresh_ = 0;
  std::uint64_t piggyback_stale_ = 0;
};

}  // namespace difane
