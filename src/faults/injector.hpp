// FaultInjector: the runtime half of a FaultPlan. Seeded Rng streams drive
// every stochastic decision (message loss, duplication, jitter, install
// failures, heartbeat loss), drawn in event-execution order — which the
// engine makes deterministic — so a (seed, plan) pair replays bit-for-bit.
// The injector is passive: it owns no events of its own, it only answers
// "what happens to this transmission?" when a channel or monitor asks.
//
// Stream layout: with `shard_streams == 0` (the default) one Rng serves
// every draw — the legacy single-stream order, byte-identical to previous
// releases and what Scenario uses at threads=1. With shard_streams == S the
// injector keeps S+1 independent streams split from the master seed via
// SplitMix64: draws made inside shard s (identified by shard::current_shard())
// use stream s, and draws from the coordinator/global context (heartbeat
// ticks) use stream S. Each shard executes its own events in a deterministic
// order, so each stream's draw sequence — and therefore the whole chaos
// replay — is independent of worker-thread scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "ctrlchan/channel.hpp"
#include "engine/sharded.hpp"
#include "faults/plan.hpp"
#include "util/rng.hpp"

namespace difane {

class FaultInjector : public ChannelFaults {
 public:
  explicit FaultInjector(const FaultPlan& plan, std::size_t shard_streams = 0)
      : plan_(plan) {
    plan_.validate();
    std::uint64_t state = plan.seed;
    const std::size_t streams = shard_streams == 0 ? 1 : shard_streams + 1;
    streams_.reserve(streams);
    // Stream 0 of a single-stream injector is seeded with the plan seed
    // directly (the legacy draw order); split streams each get a SplitMix64
    // derivation so no two shards share a sequence.
    for (std::size_t i = 0; i < streams; ++i) {
      streams_.emplace_back(streams == 1 ? plan.seed : splitmix64(state));
    }
  }

  // ChannelFaults: perturb one control-message transmission. Loss beats
  // duplication (a lost message has no copies to duplicate); each surviving
  // copy draws its own jitter so duplicates can arrive out of order.
  void transmit(std::vector<double>& deliveries) override {
    Stream& s = stream();
    ++s.counters.msgs_total;
    if (plan_.msg_loss > 0.0 && s.rng.bernoulli(plan_.msg_loss)) {
      deliveries.clear();
      ++s.counters.msgs_lost;
      return;
    }
    if (plan_.msg_dup > 0.0 && s.rng.bernoulli(plan_.msg_dup)) {
      deliveries.push_back(0.0);
      ++s.counters.msgs_duplicated;
    }
    if (plan_.msg_jitter_prob > 0.0 && plan_.msg_jitter_max > 0.0) {
      bool jittered = false;
      for (double& extra : deliveries) {
        if (s.rng.bernoulli(plan_.msg_jitter_prob)) {
          extra += s.rng.uniform01() * plan_.msg_jitter_max;
          jittered = true;
        }
      }
      if (jittered) ++s.counters.msgs_jittered;
    }
  }

  // One FlowMod install attempt: true => the switch fails the install.
  bool fail_install() {
    if (plan_.install_fail <= 0.0) return false;
    Stream& s = stream();
    if (!s.rng.bernoulli(plan_.install_fail)) return false;
    ++s.counters.install_faults;
    return true;
  }

  // One heartbeat on the wire: true => it never reaches the monitor.
  bool heartbeat_lost() {
    if (plan_.msg_loss <= 0.0) return false;
    Stream& s = stream();
    if (!s.rng.bernoulli(plan_.msg_loss)) return false;
    ++s.counters.heartbeats_lost;
    return true;
  }

  struct Counters {
    std::uint64_t msgs_total = 0;
    std::uint64_t msgs_lost = 0;
    std::uint64_t msgs_duplicated = 0;
    std::uint64_t msgs_jittered = 0;
    std::uint64_t install_faults = 0;
    std::uint64_t heartbeats_lost = 0;
  };

  // Totals across every stream. Only call outside parallel execution (the
  // Scenario collects after run()).
  const Counters& counters() const {
    totals_ = Counters{};
    for (const auto& s : streams_) {
      totals_.msgs_total += s.counters.msgs_total;
      totals_.msgs_lost += s.counters.msgs_lost;
      totals_.msgs_duplicated += s.counters.msgs_duplicated;
      totals_.msgs_jittered += s.counters.msgs_jittered;
      totals_.install_faults += s.counters.install_faults;
      totals_.heartbeats_lost += s.counters.heartbeats_lost;
    }
    return totals_;
  }
  const FaultPlan& plan() const { return plan_; }

 private:
  struct Stream {
    explicit Stream(std::uint64_t seed) : rng(seed) {}
    Rng rng;
    Counters counters;
  };

  Stream& stream() {
    if (streams_.size() == 1) return streams_[0];
    const std::uint32_t s = shard::current_shard();
    // Out-of-range shards (an executor wider than this injector was built
    // for) share the global stream rather than reading out of bounds.
    return s == shard::kNoShard || s + 1 >= streams_.size() ? streams_.back()
                                                            : streams_[s];
  }

  FaultPlan plan_;
  std::vector<Stream> streams_;
  mutable Counters totals_;
};

}  // namespace difane
