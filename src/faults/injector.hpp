// FaultInjector: the runtime half of a FaultPlan. One seeded Rng drives
// every stochastic decision (message loss, duplication, jitter, install
// failures, heartbeat loss), drawn in event-execution order — which the
// engine makes deterministic — so a (seed, plan) pair replays bit-for-bit.
// The injector is passive: it owns no events of its own, it only answers
// "what happens to this transmission?" when a channel or monitor asks.
#pragma once

#include <cstdint>

#include "ctrlchan/channel.hpp"
#include "faults/plan.hpp"
#include "util/rng.hpp"

namespace difane {

class FaultInjector : public ChannelFaults {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {
    plan_.validate();
  }

  // ChannelFaults: perturb one control-message transmission. Loss beats
  // duplication (a lost message has no copies to duplicate); each surviving
  // copy draws its own jitter so duplicates can arrive out of order.
  void transmit(std::vector<double>& deliveries) override {
    ++counters_.msgs_total;
    if (plan_.msg_loss > 0.0 && rng_.bernoulli(plan_.msg_loss)) {
      deliveries.clear();
      ++counters_.msgs_lost;
      return;
    }
    if (plan_.msg_dup > 0.0 && rng_.bernoulli(plan_.msg_dup)) {
      deliveries.push_back(0.0);
      ++counters_.msgs_duplicated;
    }
    if (plan_.msg_jitter_prob > 0.0 && plan_.msg_jitter_max > 0.0) {
      bool jittered = false;
      for (double& extra : deliveries) {
        if (rng_.bernoulli(plan_.msg_jitter_prob)) {
          extra += rng_.uniform01() * plan_.msg_jitter_max;
          jittered = true;
        }
      }
      if (jittered) ++counters_.msgs_jittered;
    }
  }

  // One FlowMod install attempt: true => the switch fails the install.
  bool fail_install() {
    if (plan_.install_fail <= 0.0) return false;
    if (!rng_.bernoulli(plan_.install_fail)) return false;
    ++counters_.install_faults;
    return true;
  }

  // One heartbeat on the wire: true => it never reaches the monitor.
  bool heartbeat_lost() {
    if (plan_.msg_loss <= 0.0) return false;
    if (!rng_.bernoulli(plan_.msg_loss)) return false;
    ++counters_.heartbeats_lost;
    return true;
  }

  struct Counters {
    std::uint64_t msgs_total = 0;
    std::uint64_t msgs_lost = 0;
    std::uint64_t msgs_duplicated = 0;
    std::uint64_t msgs_jittered = 0;
    std::uint64_t install_faults = 0;
    std::uint64_t heartbeats_lost = 0;
  };
  const Counters& counters() const { return counters_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  Counters counters_;
};

}  // namespace difane
