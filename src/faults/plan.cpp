#include "faults/plan.hpp"

#include <sstream>

#include "util/contract.hpp"

namespace difane {

bool FaultPlan::active() const {
  return msg_loss > 0.0 || msg_dup > 0.0 ||
         (msg_jitter_prob > 0.0 && msg_jitter_max > 0.0) || install_fail > 0.0 ||
         !link_flaps.empty() || !crashes.empty();
}

namespace {

void check_probability(const char* field, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw ConfigError(std::string("faults.") + field,
                      "probability must be in [0, 1], got " + std::to_string(p));
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_probability("msg_loss", msg_loss);
  check_probability("msg_dup", msg_dup);
  check_probability("msg_jitter_prob", msg_jitter_prob);
  check_probability("install_fail", install_fail);
  if (msg_jitter_max < 0.0) {
    throw ConfigError("faults.msg_jitter_max", "jitter bound must be >= 0");
  }
  for (const auto& flap : link_flaps) {
    if (flap.a == flap.b) {
      throw ConfigError("faults.link_flaps", "a link needs distinct endpoints");
    }
    if (flap.down_at < 0.0) {
      throw ConfigError("faults.link_flaps", "down_at must be >= 0");
    }
    if (flap.up_at >= 0.0 && flap.up_at <= flap.down_at) {
      throw ConfigError("faults.link_flaps",
                        "up_at must come strictly after down_at");
    }
  }
  for (const auto& crash : crashes) {
    if (crash.at < 0.0) {
      throw ConfigError("faults.crashes", "crash time must be >= 0");
    }
    if (crash.restart_at >= 0.0 && crash.restart_at <= crash.at) {
      throw ConfigError("faults.crashes",
                        "restart_at must come strictly after the crash");
    }
  }
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << seed << " loss=" << msg_loss << " dup=" << msg_dup
     << " jitter=" << msg_jitter_prob << "x" << msg_jitter_max
     << " install_fail=" << install_fail;
  for (const auto& f : link_flaps) {
    os << " flap(" << f.a << "-" << f.b << " @" << f.down_at << ".." << f.up_at
       << ")";
  }
  for (const auto& c : crashes) {
    os << " crash(a" << c.authority_index << " @" << c.at << " restart "
       << c.restart_at << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace difane
