// FaultPlan: a declarative, seeded description of everything that may go
// wrong in one simulation run. The plan is pure data — probabilities for the
// stochastic faults (control-message loss/duplication/latency jitter, failed
// cache installs) plus explicit schedules for the deterministic ones (link
// flaps, authority-switch crashes and restarts). A (seed, plan) pair fully
// determines every fault decision: the FaultInjector draws from one Rng in
// event-execution order, which the engine makes deterministic, so chaos runs
// replay bit-for-bit exactly like the proptest suites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "switchsim/sw.hpp"

namespace difane {

// One link goes down at `down_at` and (optionally) comes back at `up_at`.
// Both directions of the (a, b) pair flap together, as a cable cut would.
struct LinkFlap {
  SwitchId a = kInvalidSwitch;
  SwitchId b = kInvalidSwitch;
  double down_at = 0.0;
  double up_at = -1.0;  // < 0: stays down for the rest of the run
};

// An authority switch crashes at `at`, losing all installed flow-table state
// (a real switch reboot comes back empty). If `restart_at` >= 0 the switch
// rejoins then; the controller reinstalls its rules once the restart is
// detected. Indexed into the scenario's authority list, not by SwitchId, so
// plans stay valid across topology sizes.
struct AuthorityCrash {
  std::uint32_t authority_index = 0;
  double at = 0.0;
  double restart_at = -1.0;  // < 0: stays down for the rest of the run
};

struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-transmission probabilities for control messages (cache installs,
  // acks, heartbeats). Reordering is not a separate knob: it emerges from
  // jitter, since two messages with different jitter draws overtake each
  // other on the wire.
  double msg_loss = 0.0;         // P[a transmission is dropped]
  double msg_dup = 0.0;          // P[a transmission is delivered twice]
  double msg_jitter_prob = 0.0;  // P[a delivery picks up extra latency]
  double msg_jitter_max = 0.0;   // extra latency ~ U[0, msg_jitter_max]

  // P[an applied FlowMod add/modify fails at the switch] — the partial /
  // failed cache-install fault. The reply still flows (ok = false).
  double install_fail = 0.0;

  std::vector<LinkFlap> link_flaps;
  std::vector<AuthorityCrash> crashes;

  // True when any fault can actually occur. Inactive plans leave every code
  // path byte-identical to a build without the faults layer.
  bool active() const;

  // Reject malformed plans with a field-naming difane::ConfigError
  // ("faults.<field>"), mirroring ScenarioParams::validate().
  void validate() const;

  std::string to_string() const;
};

}  // namespace difane
