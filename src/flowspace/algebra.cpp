#include "flowspace/algebra.hpp"

namespace difane {

std::optional<std::vector<Ternary>> winner_region(const RuleTable& table,
                                                  std::size_t idx,
                                                  std::size_t max_pieces) {
  expects(idx < table.size(), "winner_region: index out of range");
  std::vector<Ternary> higher;
  higher.reserve(idx);
  for (std::size_t i = 0; i < idx; ++i) higher.push_back(table.at(i).match);
  return subtract_all(table.at(idx).match, higher, max_pieces);
}

RuleTable clip_table(const RuleTable& table, const Ternary& region) {
  std::vector<Rule> clipped;
  clipped.reserve(table.size());
  for (const auto& rule : table.rules()) {
    if (auto inter = intersect(rule.match, region)) {
      Rule copy = rule;
      copy.match = *inter;
      clipped.push_back(std::move(copy));
    }
  }
  return RuleTable(std::move(clipped));
}

namespace {

// Compare winner actions for one packet. Matching *no* rule is itself an
// observable outcome and must agree.
bool same_winner(const RuleTable& a, const RuleTable& b, const BitVec& packet) {
  const Rule* ra = a.match(packet);
  const Rule* rb = b.match(packet);
  if ((ra == nullptr) != (rb == nullptr)) return false;
  if (ra == nullptr) return true;
  return ra->action == rb->action;
}

BitVec biased_sample(const RuleTable& table, Rng& rng) {
  if (table.empty()) return Ternary::wildcard().sample_point(rng);
  const auto idx = rng.uniform(0, table.size() - 1);
  return table.at(idx).match.sample_point(rng);
}

}  // namespace

std::optional<BitVec> find_semantic_difference(const RuleTable& a, const RuleTable& b,
                                               Rng& rng, std::size_t samples) {
  for (std::size_t i = 0; i < samples; ++i) {
    const BitVec packet = (i % 2 == 0) ? Ternary::wildcard().sample_point(rng)
                                       : biased_sample(a, rng);
    if (!same_winner(a, b, packet)) return packet;
  }
  return std::nullopt;
}

std::optional<BitVec> find_semantic_difference_in(const RuleTable& a,
                                                  const RuleTable& b,
                                                  const Ternary& region, Rng& rng,
                                                  std::size_t samples) {
  for (std::size_t i = 0; i < samples; ++i) {
    BitVec packet;
    if (i % 2 == 0) {
      packet = region.sample_point(rng);
    } else {
      // Bias inside rules of `a` clipped to the region so specific rules are hit.
      const auto idx = a.empty() ? 0 : rng.uniform(0, a.size() - 1);
      if (!a.empty()) {
        if (auto inter = intersect(a.at(idx).match, region)) {
          packet = inter->sample_point(rng);
        } else {
          packet = region.sample_point(rng);
        }
      } else {
        packet = region.sample_point(rng);
      }
    }
    if (!same_winner(a, b, packet)) return packet;
  }
  return std::nullopt;
}

}  // namespace difane
