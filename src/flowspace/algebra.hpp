// Rule-table level header-space operations: winner regions, clipping a table
// to a flow-space region (the partitioner's core primitive), and sampling-
// based semantic equivalence used by the property tests.
#pragma once

#include <optional>
#include <vector>

#include "flowspace/rule_table.hpp"
#include "util/rng.hpp"

namespace difane {

// The region of flow space where rules()[idx] is the winning rule: its
// predicate minus the union of all higher-priority predicates. Disjoint
// pieces; nullopt if the decomposition exceeds `max_pieces`.
std::optional<std::vector<Ternary>> winner_region(const RuleTable& table,
                                                  std::size_t idx,
                                                  std::size_t max_pieces = 4096);

// Clip every rule of `table` to `region`: keep (rule.match ∩ region) with the
// original priority/action/weight; drop rules that do not intersect. The
// result is semantically identical to `table` for all packets inside
// `region`. Rule ids are preserved (the same logical rule may appear in
// several partitions — that duplication is exactly what DIFANE's partitioning
// cost metric counts).
RuleTable clip_table(const RuleTable& table, const Ternary& region);

// Sampling-based semantic equivalence: draw `samples` random packets (half
// uniform over the whole space, half biased inside random rules of `a` so
// that narrow rules get exercised) and compare winner actions. Returns the
// first differing packet if any.
std::optional<BitVec> find_semantic_difference(const RuleTable& a, const RuleTable& b,
                                               Rng& rng, std::size_t samples);

// Same, but compare `a` against `b` only within `region`.
std::optional<BitVec> find_semantic_difference_in(const RuleTable& a,
                                                  const RuleTable& b,
                                                  const Ternary& region, Rng& rng,
                                                  std::size_t samples);

}  // namespace difane
