// Fixed-width 256-bit vector backing packet headers and ternary patterns.
// 256 bits is enough for the OpenFlow 1.0 12-tuple (253 bits) with room to
// spare; keeping the width fixed lets every algebra operation be four
// word-ops with no allocation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "util/contract.hpp"

namespace difane {

inline constexpr std::size_t kHeaderBits = 256;
inline constexpr std::size_t kHeaderWords = kHeaderBits / 64;

struct BitVec {
  std::array<std::uint64_t, kHeaderWords> w{};

  static BitVec zero() { return BitVec{}; }
  static BitVec ones() {
    BitVec v;
    v.w.fill(~0ULL);
    return v;
  }

  bool get(std::size_t bit) const {
    expects(bit < kHeaderBits, "BitVec: bit index out of range");
    return (w[bit / 64] >> (bit % 64)) & 1ULL;
  }

  void set(std::size_t bit, bool value) {
    expects(bit < kHeaderBits, "BitVec: bit index out of range");
    const std::uint64_t mask = 1ULL << (bit % 64);
    if (value) {
      w[bit / 64] |= mask;
    } else {
      w[bit / 64] &= ~mask;
    }
  }

  // Write `width` bits of `value` starting at `offset` (LSB of the field at
  // `offset`). Fields never straddle more than two words given width <= 64,
  // so this is one or two masked word writes. Bits of `value` above `width`
  // are ignored.
  void set_bits(std::size_t offset, std::size_t width, std::uint64_t value) {
    expects(width >= 1 && width <= 64 && offset + width <= kHeaderBits,
            "BitVec: bad field bounds");
    const std::size_t word = offset / 64;
    const std::size_t shift = offset % 64;  // <= 63, so shifts below are defined
    const std::uint64_t field = width == 64 ? ~0ULL : (1ULL << width) - 1ULL;
    value &= field;
    w[word] = (w[word] & ~(field << shift)) | (value << shift);
    if (shift + width > 64) {
      const std::uint64_t hi = (1ULL << (shift + width - 64)) - 1ULL;
      w[word + 1] = (w[word + 1] & ~hi) | (value >> (64 - shift));
    }
  }

  std::uint64_t get_bits(std::size_t offset, std::size_t width) const {
    expects(width >= 1 && width <= 64 && offset + width <= kHeaderBits,
            "BitVec: bad field bounds");
    const std::size_t word = offset / 64;
    const std::size_t shift = offset % 64;
    const std::uint64_t field = width == 64 ? ~0ULL : (1ULL << width) - 1ULL;
    std::uint64_t out = w[word] >> shift;
    if (shift + width > 64) out |= w[word + 1] << (64 - shift);
    return out & field;
  }

  bool is_zero() const {
    for (auto word : w) {
      if (word != 0) return false;
    }
    return true;
  }

  int popcount() const;

  friend BitVec operator&(const BitVec& a, const BitVec& b) {
    BitVec r;
    for (std::size_t i = 0; i < kHeaderWords; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
  }
  friend BitVec operator|(const BitVec& a, const BitVec& b) {
    BitVec r;
    for (std::size_t i = 0; i < kHeaderWords; ++i) r.w[i] = a.w[i] | b.w[i];
    return r;
  }
  friend BitVec operator^(const BitVec& a, const BitVec& b) {
    BitVec r;
    for (std::size_t i = 0; i < kHeaderWords; ++i) r.w[i] = a.w[i] ^ b.w[i];
    return r;
  }
  friend BitVec operator~(const BitVec& a) {
    BitVec r;
    for (std::size_t i = 0; i < kHeaderWords; ++i) r.w[i] = ~a.w[i];
    return r;
  }
  friend bool operator==(const BitVec& a, const BitVec& b) { return a.w == b.w; }

  std::uint64_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (auto word : w) {
      h ^= word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

inline int BitVec::popcount() const {
  int n = 0;
  for (auto word : w) n += __builtin_popcountll(word);
  return n;
}

}  // namespace difane

template <>
struct std::hash<difane::BitVec> {
  std::size_t operator()(const difane::BitVec& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};
