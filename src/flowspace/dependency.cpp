#include "flowspace/dependency.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace difane {

std::size_t DependencyGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& p : parents) n += p.size();
  return n;
}

std::size_t DependencyGraph::chain_depth(std::uint32_t i) const {
  expects(i < parents.size(), "chain_depth: index out of range");
  // Memoized DFS over a DAG (edges always go to strictly smaller indices, so
  // iterating upward in index order is a topological order).
  std::vector<std::size_t> depth(parents.size(), 0);
  for (std::uint32_t v = 0; v <= i; ++v) {
    for (const auto p : parents[v]) depth[v] = std::max(depth[v], depth[p] + 1);
  }
  return depth[i];
}

std::size_t DependencyGraph::max_chain_depth() const {
  std::size_t best = 0;
  std::vector<std::size_t> depth(parents.size(), 0);
  for (std::uint32_t v = 0; v < parents.size(); ++v) {
    for (const auto p : parents[v]) depth[v] = std::max(depth[v], depth[p] + 1);
    best = std::max(best, depth[v]);
  }
  return best;
}

DependencyGraph build_dependency_graph(const RuleTable& table, std::size_t max_pieces) {
  DependencyGraph graph;
  const std::size_t n = table.size();
  graph.parents.assign(n, {});
  graph.children.assign(n, {});
  graph.conservative.assign(n, false);

  for (std::size_t i = 0; i < n; ++i) {
    const Ternary& pred = table.at(i).match;
    std::vector<Ternary> remainder{pred};
    bool exploded = false;
    // Walk from the rule immediately above i upward. Only rules that
    // intersect the *remainder* are true dependencies; rules that intersect
    // pred but whose overlap is already claimed by a rule in between are not.
    for (std::size_t up = i; up-- > 0;) {
      const Ternary& higher = table.at(up).match;
      if (!exploded) {
        bool bites = false;
        std::vector<Ternary> next;
        for (const auto& piece : remainder) {
          if (intersects(piece, higher)) {
            bites = true;
            auto sub = subtract(piece, higher);
            next.insert(next.end(), sub.begin(), sub.end());
          } else {
            next.push_back(piece);
          }
        }
        if (next.size() > max_pieces) {
          exploded = true;
          graph.conservative[i] = true;
        } else {
          remainder = std::move(next);
        }
        if (bites) {
          graph.parents[i].push_back(static_cast<std::uint32_t>(up));
        }
        if (!exploded && remainder.empty()) break;  // fully shadowed above `up`
      } else {
        // Conservative fallback: any intersecting higher rule is a parent.
        if (intersects(pred, higher)) {
          graph.parents[i].push_back(static_cast<std::uint32_t>(up));
        }
      }
    }
    std::sort(graph.parents[i].begin(), graph.parents[i].end());
    for (const auto p : graph.parents[i]) {
      graph.children[p].push_back(static_cast<std::uint32_t>(i));
    }
  }
  return graph;
}

std::vector<std::uint32_t> ancestor_closure(const DependencyGraph& graph,
                                            std::uint32_t idx) {
  expects(idx < graph.size(), "ancestor_closure: index out of range");
  std::vector<bool> seen(graph.size(), false);
  std::vector<std::uint32_t> stack{idx};
  std::vector<std::uint32_t> out;
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    for (const auto p : graph.parents[v]) {
      if (!seen[p]) {
        seen[p] = true;
        out.push_back(p);
        stack.push_back(p);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace difane
