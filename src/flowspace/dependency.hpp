// Rule dependency graph. Rule r depends on higher-priority rule s when some
// packet inside r's predicate would be stolen by s if r were installed
// without s. Caching a rule therefore requires caching (or otherwise
// neutralizing) its dependency closure — this drives DIFANE's wildcard
// cache-rule generation.
#pragma once

#include <cstdint>
#include <vector>

#include "flowspace/rule_table.hpp"

namespace difane {

struct DependencyGraph {
  // parents[i]: indices (into the table's priority order) of the rules that
  // rule i directly depends on — the higher-priority rules that overlap the
  // part of rule i's predicate not already owned by an even-higher rule.
  std::vector<std::vector<std::uint32_t>> parents;
  // children[i]: inverse edges.
  std::vector<std::vector<std::uint32_t>> children;
  // True for rules where the residual decomposition exceeded the piece budget
  // and edges were added conservatively (every intersecting higher rule).
  std::vector<bool> conservative;

  std::size_t size() const { return parents.size(); }
  std::size_t edge_count() const;
  // Longest parent-chain length from i upward (depth 0 = no parents).
  std::size_t chain_depth(std::uint32_t i) const;
  std::size_t max_chain_depth() const;
};

// Build the graph with the exact residual algorithm: walk higher-priority
// rules in priority order, keep the not-yet-claimed remainder of rule i's
// predicate, and add an edge whenever a higher rule bites into the remainder.
DependencyGraph build_dependency_graph(const RuleTable& table,
                                       std::size_t max_pieces = 4096);

// All rules reachable upward from `idx` (its dependent set, excluding idx).
std::vector<std::uint32_t> ancestor_closure(const DependencyGraph& graph,
                                            std::uint32_t idx);

}  // namespace difane
