#include "flowspace/header.hpp"

#include <sstream>

namespace difane {

namespace {
std::vector<FieldSpec> build_layout() {
  std::vector<FieldSpec> specs;
  std::size_t offset = 0;
  auto add = [&](Field f, const char* name, std::size_t width) {
    specs.push_back(FieldSpec{f, name, offset, width});
    offset += width;
  };
  add(Field::kInPort, "in_port", 16);
  add(Field::kEthSrc, "eth_src", 48);
  add(Field::kEthDst, "eth_dst", 48);
  add(Field::kEthType, "eth_type", 16);
  add(Field::kVlanId, "vlan_id", 12);
  add(Field::kVlanPcp, "vlan_pcp", 3);
  add(Field::kIpSrc, "ip_src", 32);
  add(Field::kIpDst, "ip_dst", 32);
  add(Field::kIpProto, "ip_proto", 8);
  add(Field::kIpTos, "ip_tos", 6);
  add(Field::kTpSrc, "tp_src", 16);
  add(Field::kTpDst, "tp_dst", 16);
  ensures(offset <= kHeaderBits, "12-tuple must fit the header vector");
  return specs;
}
}  // namespace

const std::vector<FieldSpec>& all_fields() {
  static const std::vector<FieldSpec> specs = build_layout();
  return specs;
}

const FieldSpec& field_spec(Field f) { return all_fields().at(static_cast<std::size_t>(f)); }

std::size_t header_bits_used() {
  const auto& last = all_fields().back();
  return last.offset + last.width;
}

PacketBuilder& PacketBuilder::set(Field f, std::uint64_t value) {
  const auto& spec = field_spec(f);
  bits_.set_bits(spec.offset, spec.width, value);
  return *this;
}

std::uint64_t get_field(const BitVec& packet, Field f) {
  const auto& spec = field_spec(f);
  return packet.get_bits(spec.offset, spec.width);
}

void match_exact(Ternary& t, Field f, std::uint64_t value) {
  const auto& spec = field_spec(f);
  t.set_exact(spec.offset, spec.width, value);
}

void match_prefix(Ternary& t, Field f, std::uint64_t value, std::size_t plen) {
  const auto& spec = field_spec(f);
  t.set_prefix(spec.offset, spec.width, value, plen);
}

std::vector<std::pair<std::uint64_t, std::size_t>> range_to_prefixes(
    std::uint64_t lo, std::uint64_t hi, std::size_t width) {
  expects(width >= 1 && width <= 64, "range_to_prefixes: bad width");
  const std::uint64_t limit = width == 64 ? ~0ULL : (1ULL << width) - 1;
  expects(lo <= hi && hi <= limit, "range_to_prefixes: bad range");
  std::vector<std::pair<std::uint64_t, std::size_t>> out;
  // Greedy: at each step take the largest aligned power-of-two block that
  // starts at `lo` and does not overshoot `hi`.
  while (true) {
    std::size_t block_log = width;
    // Largest alignment of lo.
    if (lo != 0) block_log = static_cast<std::size_t>(__builtin_ctzll(lo));
    // Shrink until block fits in remaining range.
    while (block_log > 0) {
      const std::uint64_t span = (block_log >= 64) ? ~0ULL : (1ULL << block_log) - 1;
      if (lo + span <= hi && block_log <= width) break;
      --block_log;
    }
    const std::uint64_t span = (block_log >= 64) ? ~0ULL : (1ULL << block_log) - 1;
    out.emplace_back(lo, width - block_log);
    if (lo + span >= hi) break;
    lo += span + 1;
  }
  return out;
}

std::vector<Ternary> match_range(const Ternary& base, Field f, std::uint64_t lo,
                                 std::uint64_t hi) {
  const auto& spec = field_spec(f);
  std::vector<Ternary> out;
  for (const auto& [value, plen] : range_to_prefixes(lo, hi, spec.width)) {
    Ternary t = base;
    t.set_prefix(spec.offset, spec.width, value, plen);
    out.push_back(t);
  }
  return out;
}

std::string pattern_to_string(const Ternary& t) {
  std::ostringstream os;
  bool any = false;
  for (const auto& spec : all_fields()) {
    const std::string bits = t.bits_to_string(spec.offset, spec.width);
    if (bits.find_first_not_of('x') == std::string::npos) continue;  // unconstrained
    if (any) os << " ";
    os << spec.name << "=" << bits;
    any = true;
  }
  if (!any) return "*";
  return os.str();
}

std::string ipv4_to_string(std::uint32_t ip) {
  std::ostringstream os;
  os << ((ip >> 24) & 0xff) << "." << ((ip >> 16) & 0xff) << "." << ((ip >> 8) & 0xff)
     << "." << (ip & 0xff);
  return os.str();
}

std::uint32_t make_ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return (static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

}  // namespace difane
