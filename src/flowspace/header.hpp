// OpenFlow 1.0 12-tuple header layout over the 256-bit header vector, plus
// builders for packets and per-field pattern constraints (exact, prefix,
// range with range->prefix expansion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flowspace/ternary.hpp"

namespace difane {

enum class Field : std::uint8_t {
  kInPort = 0,   // 16 bits
  kEthSrc,       // 48
  kEthDst,       // 48
  kEthType,      // 16
  kVlanId,       // 12
  kVlanPcp,      // 3
  kIpSrc,        // 32
  kIpDst,        // 32
  kIpProto,      // 8
  kIpTos,        // 6
  kTpSrc,        // 16 (transport source port)
  kTpDst,        // 16 (transport destination port)
};

inline constexpr std::size_t kNumFields = 12;

struct FieldSpec {
  Field field;
  const char* name;
  std::size_t offset;  // bit offset of field LSB in the header vector
  std::size_t width;   // bits
};

// Layout table; offsets are contiguous from bit 0.
const FieldSpec& field_spec(Field f);
const std::vector<FieldSpec>& all_fields();

// Total bits used by the 12-tuple (== offset+width of the last field).
std::size_t header_bits_used();

// ---- Packet construction ----------------------------------------------

// A concrete packet header is just a BitVec; this builder names the fields.
class PacketBuilder {
 public:
  PacketBuilder& set(Field f, std::uint64_t value);
  PacketBuilder& ip_src(std::uint32_t v) { return set(Field::kIpSrc, v); }
  PacketBuilder& ip_dst(std::uint32_t v) { return set(Field::kIpDst, v); }
  PacketBuilder& ip_proto(std::uint8_t v) { return set(Field::kIpProto, v); }
  PacketBuilder& tp_src(std::uint16_t v) { return set(Field::kTpSrc, v); }
  PacketBuilder& tp_dst(std::uint16_t v) { return set(Field::kTpDst, v); }
  PacketBuilder& in_port(std::uint16_t v) { return set(Field::kInPort, v); }
  BitVec build() const { return bits_; }

 private:
  BitVec bits_;
};

std::uint64_t get_field(const BitVec& packet, Field f);

// ---- Pattern construction ----------------------------------------------

// Constrain a field of `t` to an exact value.
void match_exact(Ternary& t, Field f, std::uint64_t value);

// Constrain a field of `t` to a CIDR-style prefix of length `plen`.
void match_prefix(Ternary& t, Field f, std::uint64_t value, std::size_t plen);

// Range -> minimal prefix cover (the classic TCAM "range expansion" that
// inflates ACLs). Returns (value, prefix_len) pairs covering [lo, hi].
std::vector<std::pair<std::uint64_t, std::size_t>> range_to_prefixes(
    std::uint64_t lo, std::uint64_t hi, std::size_t width);

// Expand one pattern with a range constraint on field `f` into several
// patterns, one per covering prefix.
std::vector<Ternary> match_range(const Ternary& base, Field f, std::uint64_t lo,
                                 std::uint64_t hi);

// Human-readable pattern dump: one "field=bits" token per constrained field.
std::string pattern_to_string(const Ternary& t);

// Dotted-quad helper for examples and logs.
std::string ipv4_to_string(std::uint32_t ip);
std::uint32_t make_ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d);

}  // namespace difane
