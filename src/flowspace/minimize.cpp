#include "flowspace/minimize.hpp"

#include <algorithm>

namespace difane {

RuleTable eliminate_shadowed(const RuleTable& table, MinimizeStats* stats,
                             std::size_t max_pieces) {
  const auto shadowed = table.find_shadowed(max_pieces);
  RuleTable out = table;
  for (const auto id : shadowed) out.remove(id);
  if (stats) {
    stats->shadowed_removed += shadowed.size();
  }
  return out;
}

namespace {

// If a and b differ in exactly one cared bit (same care mask), return the
// merged pattern with that bit wildcarded.
std::optional<Ternary> fuse(const Ternary& a, const Ternary& b) {
  if (!(a.care() == b.care())) return std::nullopt;
  const BitVec diff = a.value() ^ b.value();
  if (diff.popcount() != 1) return std::nullopt;
  const BitVec care = a.care() & ~diff;
  return Ternary(a.value() & care, care);
}

}  // namespace

RuleTable merge_siblings(const RuleTable& table, MinimizeStats* stats) {
  std::vector<Rule> rules = table.rules();
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < rules.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < rules.size(); ++j) {
        if (rules[i].priority != rules[j].priority) continue;
        if (!(rules[i].action == rules[j].action)) continue;
        const auto merged = fuse(rules[i].match, rules[j].match);
        if (!merged.has_value()) continue;
        // Ties within a priority level break by id. Merging moves the
        // higher-id sibling's region down to the lower id; an equal-priority
        // rule whose id sits between the two and overlaps that region would
        // change winners. Skip such merges.
        const RuleId lo = std::min(rules[i].id, rules[j].id);
        const RuleId hi = std::max(rules[i].id, rules[j].id);
        bool hazard = false;
        for (std::size_t k = 0; k < rules.size() && !hazard; ++k) {
          if (k == i || k == j) continue;
          hazard = rules[k].priority == rules[i].priority && rules[k].id > lo &&
                   rules[k].id < hi && intersects(rules[k].match, *merged);
        }
        if (hazard) continue;
        rules[i].match = *merged;
        rules[i].weight += rules[j].weight;
        // The merged rule keeps the lower id (stable tie-break position).
        rules[i].id = std::min(rules[i].id, rules[j].id);
        rules.erase(rules.begin() + static_cast<std::ptrdiff_t>(j));
        if (stats) ++stats->merges;
        changed = true;
        break;
      }
    }
  }
  return RuleTable(std::move(rules));
}

RuleTable minimize(const RuleTable& table, MinimizeStats* stats) {
  MinimizeStats local;
  local.before = table.size();
  RuleTable out = merge_siblings(eliminate_shadowed(table, &local), &local);
  // Merging can expose new shadows (a fused broad rule may cover lower
  // rules); one more elimination pass reaches the common fixed point.
  out = eliminate_shadowed(out, &local);
  local.after = out.size();
  if (stats) *stats = local;
  return out;
}

}  // namespace difane
