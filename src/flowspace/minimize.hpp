// Policy minimization — the classic TCAM-shrinking pre-pass (in the spirit
// of TCAM Razor). Two semantics-preserving reductions:
//
//  * shadow elimination: drop rules that can never win (their predicate is
//    fully covered by higher-priority rules);
//  * sibling merge: two rules that differ in exactly one cared bit, with the
//    same action and priority, fuse into one rule with that bit wildcarded
//    (undoes range-expansion blowup), applied to closure.
//
// Minimization trades away per-rule counter transparency (merged rules
// cannot report separate counters), which is exactly why DIFANE-style
// caching *splices* rather than compresses; the partitioning benches use
// this as the compression baseline.
#pragma once

#include "flowspace/rule_table.hpp"

namespace difane {

struct MinimizeStats {
  std::size_t shadowed_removed = 0;
  std::size_t merges = 0;
  std::size_t before = 0;
  std::size_t after = 0;
};

// Remove rules that cannot win. `max_pieces` bounds the residual
// decomposition per rule; rules whose analysis exceeds it are kept.
RuleTable eliminate_shadowed(const RuleTable& table, MinimizeStats* stats = nullptr,
                             std::size_t max_pieces = 4096);

// Fuse sibling pairs (same priority, same action, predicates differing in
// exactly one cared bit) until a fixed point. Safe regardless of other
// rules: the union of the two siblings equals the merged predicate, and
// their shared priority means no rule between them.
RuleTable merge_siblings(const RuleTable& table, MinimizeStats* stats = nullptr);

// Both passes; returns the minimized table and fills `stats`.
RuleTable minimize(const RuleTable& table, MinimizeStats* stats = nullptr);

}  // namespace difane
