#include "flowspace/rule.hpp"

#include <sstream>

namespace difane {

std::string Action::to_string() const {
  switch (type) {
    case ActionType::kForward: return "fwd(" + std::to_string(arg) + ")";
    case ActionType::kDrop: return "drop";
    case ActionType::kEncap: return "encap(" + std::to_string(arg) + ")";
    case ActionType::kToController: return "to_controller";
  }
  return "?";
}

std::string Rule::to_string() const {
  std::ostringstream os;
  os << "R" << id << " prio=" << priority << " [" << pattern_to_string(match)
     << "] -> " << action.to_string();
  return os.str();
}

}  // namespace difane
