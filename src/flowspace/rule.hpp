// Rules: a ternary predicate plus an action at a priority. The three DIFANE
// rule kinds (cache / authority / partition) are all Rules; the switch flow
// table layers them into priority bands.
#pragma once

#include <cstdint>
#include <string>

#include "flowspace/header.hpp"
#include "flowspace/ternary.hpp"

namespace difane {

using RuleId = std::uint32_t;
using Priority = std::int32_t;

inline constexpr RuleId kInvalidRuleId = 0xffffffffu;

enum class ActionType : std::uint8_t {
  kForward,       // forward out a port (arg = port)
  kDrop,          // discard
  kEncap,         // encapsulate and redirect to a switch (arg = switch id);
                  // this is how DIFANE partition rules steer cache misses
  kToController,  // punt to the controller (the NOX baseline's miss path)
};

struct Action {
  ActionType type = ActionType::kDrop;
  std::uint32_t arg = 0;

  static Action forward(std::uint32_t port) { return {ActionType::kForward, port}; }
  static Action drop() { return {ActionType::kDrop, 0}; }
  static Action encap(std::uint32_t switch_id) { return {ActionType::kEncap, switch_id}; }
  static Action to_controller() { return {ActionType::kToController, 0}; }

  friend bool operator==(const Action& a, const Action& b) {
    return a.type == b.type && a.arg == b.arg;
  }

  std::string to_string() const;
};

struct Rule {
  RuleId id = kInvalidRuleId;
  Priority priority = 0;
  Ternary match;
  Action action;
  // Expected share of traffic hitting this rule; drives cache decisions and
  // the Zipf workload. Not part of matching semantics.
  double weight = 0.0;
  // When this rule is a clipped copy produced by partitioning (or a shadow
  // rule derived from one), the id of the original policy rule it descends
  // from. Lets counters be aggregated back per policy rule (transparency).
  RuleId origin = kInvalidRuleId;

  RuleId origin_or_self() const { return origin == kInvalidRuleId ? id : origin; }

  std::string to_string() const;
};

// Total priority order used everywhere: higher priority wins; ties broken by
// lower id (first-installed wins), making match results deterministic.
inline bool rule_before(const Rule& a, const Rule& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.id < b.id;
}

}  // namespace difane
