#include "flowspace/rule_table.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace difane {

RuleTable::RuleTable(std::vector<Rule> rules) : rules_(std::move(rules)) {
  std::stable_sort(rules_.begin(), rules_.end(), rule_before);
}

void RuleTable::add(Rule rule) {
  expects(rule.id != kInvalidRuleId, "RuleTable: rule needs a valid id");
  expects(!contains(rule.id), "RuleTable: duplicate rule id");
  const auto pos = std::lower_bound(rules_.begin(), rules_.end(), rule, rule_before);
  rules_.insert(pos, std::move(rule));
}

bool RuleTable::remove(RuleId id) {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [id](const Rule& r) { return r.id == id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

bool RuleTable::contains(RuleId id) const { return find(id) != nullptr; }

const Rule* RuleTable::find(RuleId id) const {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [id](const Rule& r) { return r.id == id; });
  return it == rules_.end() ? nullptr : &*it;
}

const Rule* RuleTable::match(const BitVec& packet) const {
  for (const auto& rule : rules_) {
    if (rule.match.matches(packet)) return &rule;
  }
  return nullptr;
}

std::optional<std::size_t> RuleTable::match_index(const BitVec& packet) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].match.matches(packet)) return i;
  }
  return std::nullopt;
}

double RuleTable::total_weight() const {
  double sum = 0.0;
  for (const auto& rule : rules_) sum += rule.weight;
  return sum;
}

bool RuleTable::has_default() const {
  return !rules_.empty() && rules_.back().match.is_full_wildcard();
}

std::vector<RuleId> RuleTable::find_shadowed(std::size_t max_pieces) const {
  std::vector<RuleId> shadowed;
  std::vector<Ternary> higher;
  higher.reserve(rules_.size());
  for (const auto& rule : rules_) {
    const auto residual = subtract_all(rule.match, higher, max_pieces);
    if (residual.has_value() && residual->empty()) shadowed.push_back(rule.id);
    higher.push_back(rule.match);
  }
  return shadowed;
}

}  // namespace difane
