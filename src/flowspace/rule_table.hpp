// Priority-ordered rule table with TCAM match semantics. This is the policy
// representation the controller partitions and the reference model the
// correctness properties compare against.
#pragma once

#include <optional>
#include <vector>

#include "flowspace/rule.hpp"

namespace difane {

class RuleTable {
 public:
  RuleTable() = default;
  explicit RuleTable(std::vector<Rule> rules);

  // Insert preserving (priority desc, id asc) order. O(n).
  void add(Rule rule);

  // Remove by id; returns false if absent.
  bool remove(RuleId id);

  bool contains(RuleId id) const;
  const Rule* find(RuleId id) const;

  // Highest-priority matching rule, or nullptr. Linear scan — this models a
  // TCAM's semantics, not its speed; see classifier/ for fast lookup.
  const Rule* match(const BitVec& packet) const;
  std::optional<std::size_t> match_index(const BitVec& packet) const;

  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const Rule& at(std::size_t i) const { return rules_.at(i); }
  const std::vector<Rule>& rules() const { return rules_; }

  double total_weight() const;

  // True iff the table has a full-wildcard rule at the lowest priority level,
  // i.e. every packet matches something.
  bool has_default() const;

  // Ids of rules that can never win because higher-priority rules cover their
  // entire predicate. Rules whose residual computation exceeds the piece
  // budget are conservatively reported as *not* shadowed.
  std::vector<RuleId> find_shadowed(std::size_t max_pieces = 4096) const;

 private:
  std::vector<Rule> rules_;  // invariant: sorted by rule_before
};

}  // namespace difane
