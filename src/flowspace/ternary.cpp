#include "flowspace/ternary.hpp"

namespace difane {

void Ternary::set_exact(std::size_t offset, std::size_t width, std::uint64_t value) {
  expects(width >= 1 && width <= 64 && offset + width <= kHeaderBits,
          "Ternary: bad field bounds");
  if (width < 64) {
    expects(value < (1ULL << width), "Ternary: value wider than field");
  }
  value_.set_bits(offset, width, value);
  for (std::size_t i = 0; i < width; ++i) care_.set(offset + i, true);
}

void Ternary::set_prefix(std::size_t offset, std::size_t width, std::uint64_t value,
                         std::size_t prefix_len) {
  expects(prefix_len <= width, "Ternary: prefix longer than field");
  if (prefix_len == 0) return;
  // CIDR semantics: the prefix constrains the *most significant* bits of the
  // field. Field bit (width-1) is its MSB, stored at offset + width - 1.
  for (std::size_t i = 0; i < prefix_len; ++i) {
    const std::size_t field_bit = width - 1 - i;
    const bool bit = (value >> field_bit) & 1ULL;
    value_.set(offset + field_bit, bit);
    care_.set(offset + field_bit, true);
  }
}

BitVec Ternary::sample_point(Rng& rng) const {
  BitVec noise;
  for (auto& word : noise.w) word = rng.next_u64();
  // Keep cared bits from value_, fill wildcard bits with noise.
  return value_ | (noise & ~care_);
}

std::string Ternary::bits_to_string(std::size_t offset, std::size_t width) const {
  expects(offset + width <= kHeaderBits, "Ternary: bad range");
  std::string s;
  s.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t bit = offset + width - 1 - i;  // MSB first
    if (!care_.get(bit)) {
      s.push_back('x');
    } else {
      s.push_back(value_.get(bit) ? '1' : '0');
    }
  }
  return s;
}

std::vector<Ternary> subtract(const Ternary& a, const Ternary& b) {
  if (!intersects(a, b)) return {a};
  std::vector<Ternary> out;
  // Peel off, one bit at a time, the region of `a` that disagrees with `b`
  // on a bit `b` cares about but the running remainder does not. Each peeled
  // piece is disjoint from all previous pieces (they agree with b on earlier
  // peel bits) and from b (they disagree on the peel bit).
  Ternary cur = a;
  for (std::size_t bit = 0; bit < kHeaderBits; ++bit) {
    if (!b.care().get(bit) || cur.care().get(bit)) continue;
    Ternary piece = cur;
    piece.set_exact(bit, 1, b.value().get(bit) ? 0 : 1);
    out.push_back(piece);
    cur.set_exact(bit, 1, b.value().get(bit) ? 1 : 0);
  }
  // `cur` is now a ∩ b and is intentionally dropped.
  return out;
}

std::optional<std::vector<Ternary>> subtract_all(const Ternary& a,
                                                 const std::vector<Ternary>& bs,
                                                 std::size_t max_pieces) {
  std::vector<Ternary> pieces{a};
  for (const auto& b : bs) {
    std::vector<Ternary> next;
    for (const auto& piece : pieces) {
      auto sub = subtract(piece, b);
      next.insert(next.end(), sub.begin(), sub.end());
      if (next.size() > max_pieces) return std::nullopt;
    }
    pieces = std::move(next);
    if (pieces.empty()) break;
  }
  return pieces;
}

}  // namespace difane
