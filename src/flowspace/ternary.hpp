// Ternary patterns — the TCAM match semantics DIFANE's flow space is made of.
// A pattern is (value, care): bit i matches packet bit p_i iff care_i == 0
// (wildcard) or value_i == p_i. Invariant: value & ~care == 0.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "flowspace/bitvec.hpp"
#include "util/rng.hpp"

namespace difane {

class Ternary {
 public:
  // Full wildcard (matches every packet).
  Ternary() = default;

  // Construct from raw value/care; normalizes wildcard bits to value 0.
  Ternary(const BitVec& value, const BitVec& care) : value_(value & care), care_(care) {}

  static Ternary wildcard() { return Ternary(); }

  const BitVec& value() const { return value_; }
  const BitVec& care() const { return care_; }

  bool matches(const BitVec& packet) const {
    return ((packet ^ value_) & care_).is_zero();
  }

  // Number of exact (cared-for) bits. More care bits = more specific.
  int care_bits() const { return care_.popcount(); }

  // log2 of the number of packets this pattern covers.
  int log2_size() const { return static_cast<int>(kHeaderBits) - care_bits(); }

  bool is_full_wildcard() const { return care_.is_zero(); }

  // Constrain bits [offset, offset+width) to equal `value` exactly.
  void set_exact(std::size_t offset, std::size_t width, std::uint64_t value);

  // Constrain the top `prefix_len` bits of the field to match `value`'s top
  // bits (CIDR-style: the field's most significant bits are cared for).
  void set_prefix(std::size_t offset, std::size_t width, std::uint64_t value,
                  std::size_t prefix_len);

  // Intersection: patterns conflict iff they disagree on a bit both care
  // about; otherwise the result cares about the union of care bits.
  friend std::optional<Ternary> intersect(const Ternary& a, const Ternary& b) {
    if (!((a.value_ ^ b.value_) & (a.care_ & b.care_)).is_zero()) return std::nullopt;
    return Ternary(a.value_ | b.value_, a.care_ | b.care_);
  }

  friend bool intersects(const Ternary& a, const Ternary& b) {
    return ((a.value_ ^ b.value_) & (a.care_ & b.care_)).is_zero();
  }

  // True iff every packet matching `b` also matches `a` (a is a superset).
  friend bool covers(const Ternary& a, const Ternary& b) {
    return (a.care_ & ~b.care_).is_zero() && ((a.value_ ^ b.value_) & a.care_).is_zero();
  }

  friend bool operator==(const Ternary& a, const Ternary& b) {
    return a.value_ == b.value_ && a.care_ == b.care_;
  }

  // A uniformly random packet inside this pattern (wildcard bits coin-flipped).
  BitVec sample_point(Rng& rng) const;

  // Raw bit string "01xx..." over [offset, offset+width), MSB first.
  std::string bits_to_string(std::size_t offset, std::size_t width) const;

  std::uint64_t hash() const { return value_.hash() * 1000003ULL ^ care_.hash(); }

 private:
  BitVec value_;
  BitVec care_;
};

// a \ b as a set of disjoint ternary patterns (header-space subtraction).
// Result patterns are pairwise disjoint, none intersects b, and their union
// with (a ∩ b) is exactly a. At most one pattern per care-bit of b.
std::vector<Ternary> subtract(const Ternary& a, const Ternary& b);

// a \ (b1 ∪ b2 ∪ ...): repeated subtraction with an explosion guard.
// If the intermediate piece count exceeds `max_pieces`, returns std::nullopt
// (caller must fall back to a conservative answer).
std::optional<std::vector<Ternary>> subtract_all(const Ternary& a,
                                                 const std::vector<Ternary>& bs,
                                                 std::size_t max_pieces = 4096);

}  // namespace difane

template <>
struct std::hash<difane::Ternary> {
  std::size_t operator()(const difane::Ternary& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};
