#include "netsim/engine.hpp"

#include <algorithm>

namespace difane {

void Engine::at(SimTime when, Handler fn) {
  expects(when >= now_, "Engine: cannot schedule in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  heap_.push_back(HeapItem{when, seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

std::uint64_t Engine::run(SimTime until, std::uint64_t max_events) {
  horizon_ = until;
  std::uint64_t count = 0;
  while (!heap_.empty() && count < max_events) {
    const HeapItem top = heap_.front();
    if (top.when > until) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    // Move the handler out and recycle the slot before invoking, so
    // re-entrant scheduling is safe (it may reuse this very slot).
    Handler fn = std::move(slots_[top.slot]);
    free_slots_.push_back(top.slot);
    now_ = top.when;
    fn();
    ++count;
    ++executed_;
  }
  if (heap_.empty() && now_ < until && until < 1e18) now_ = until;
  return count;
}

std::uint64_t Engine::run_before(SimTime end) {
  horizon_ = end;
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_.front().when < end) {
    const HeapItem top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    Handler fn = std::move(slots_[top.slot]);
    free_slots_.push_back(top.slot);
    now_ = top.when;
    fn();
    ++count;
    ++executed_;
  }
  return count;
}

void Engine::clear() {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
}

}  // namespace difane
