#include "netsim/engine.hpp"

namespace difane {

void Engine::at(SimTime when, Handler fn) {
  expects(when >= now_, "Engine: cannot schedule in the past");
  queue_.push(Event{when, seq_++, std::move(fn)});
}

std::uint64_t Engine::run(SimTime until, std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (!queue_.empty() && count < max_events) {
    const Event& top = queue_.top();
    if (top.when > until) break;
    // Move the handler out before popping so re-entrant scheduling is safe.
    Handler fn = std::move(const_cast<Event&>(top).fn);
    now_ = top.when;
    queue_.pop();
    fn();
    ++count;
    ++executed_;
  }
  if (queue_.empty() && now_ < until && until < 1e18) now_ = until;
  return count;
}

void Engine::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace difane
