// Discrete-event engine. Events are closures executed in nondecreasing
// timestamp order; ties break by schedule order (FIFO), which makes runs
// deterministic. This is the testbed substitute: switch processing, link
// propagation, controller service times are all events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/contract.hpp"

namespace difane {

using SimTime = double;  // seconds

class Engine {
 public:
  using Handler = std::function<void()>;

  // Schedule at absolute time `when` (>= now).
  void at(SimTime when, Handler fn);
  // Schedule `delay` seconds from now.
  void after(SimTime delay, Handler fn) { at(now_ + delay, std::move(fn)); }

  SimTime now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

  // Run until the queue drains, `until` is passed, or `max_events` fire.
  // Returns the number of events executed by this call.
  std::uint64_t run(SimTime until = 1e18, std::uint64_t max_events = ~0ULL);

  // Drop all pending events (end-of-experiment cleanup).
  void clear();

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace difane
