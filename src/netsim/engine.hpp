// Discrete-event engine. Events are closures executed in nondecreasing
// timestamp order; ties break by schedule order (FIFO), which makes runs
// deterministic. This is the testbed substitute: switch processing, link
// propagation, controller service times are all events.
//
// Fast-path layout: handlers are SBO callables (no per-event std::function
// heap closure) stored in a slab whose slots recycle through a free list,
// and the priority queue orders 24-byte {when, seq, slot} records instead of
// sifting whole events. Once the slab and heap reach their high-water marks,
// steady-state schedule/dispatch performs zero heap allocations for any
// handler that fits the inline buffer (bench_a3_fastpath gates on this).
#pragma once

#include <cstdint>
#include <vector>

#include "util/contract.hpp"
#include "util/inline_fn.hpp"

namespace difane {

using SimTime = double;  // seconds

class Engine {
 public:
  // Inline handler storage. Sized for the largest event capture in
  // core/system.cpp (static_asserted at those call sites); larger handlers
  // still work via InlineFn's heap fallback, they just allocate.
  static constexpr std::size_t kInlineHandlerBytes = 256;
  using Handler = InlineFn<kInlineHandlerBytes>;

  // Schedule at absolute time `when` (>= now).
  void at(SimTime when, Handler fn);
  // Schedule `delay` seconds from now.
  void after(SimTime delay, Handler fn) { at(now_ + delay, std::move(fn)); }

  SimTime now() const { return now_; }

  // Advance the clock to `t` without executing anything. Legal only between
  // now() and the next pending event — the burst data plane coalesces many
  // packet arrivals into one event and uses this so each packet still
  // observes its own arrival time via now() (timeout sweeps, telemetry
  // timestamps, and removal listeners all read the clock).
  void advance_to(SimTime t) {
    expects(t >= now_ && t <= peek_time(),
            "Engine: advance_to must stay between now() and peek_time()");
    now_ = t;
  }

  // Upper bound of the window the engine is currently executing: `end` inside
  // run_before(end), `until` inside run(until), effectively unbounded (1e18)
  // otherwise. Burst handlers defer packets with arrival >= horizon() so a
  // coalesced burst never leaks work past a conservative window barrier.
  SimTime horizon() const { return horizon_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

  // Timestamp of the earliest pending event, or kNoEvent when the queue is
  // empty. The sharded executor uses this to size conservative time windows.
  static constexpr SimTime kNoEvent = 1e300;
  SimTime peek_time() const { return heap_.empty() ? kNoEvent : heap_.front().when; }

  // Run until the queue drains, `until` is passed, or `max_events` fire.
  // Returns the number of events executed by this call.
  std::uint64_t run(SimTime until = 1e18, std::uint64_t max_events = ~0ULL);

  // Run every event with `when` strictly before `end`, leaving `now()` at the
  // last executed event (never advanced to `end`). This is the window-bounded
  // primitive for conservative parallel execution: events at exactly `end`
  // belong to the next window, after the barrier has exchanged cross-shard
  // messages and applied global state changes.
  std::uint64_t run_before(SimTime end);

  // Drop all pending events (end-of-experiment cleanup).
  void clear();

 private:
  struct HeapItem {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::vector<HeapItem> heap_;  // binary min-heap via std::push_heap/pop_heap
  std::vector<Handler> slots_;  // handler slab, indexed by HeapItem::slot
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0.0;
  SimTime horizon_ = 1e18;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace difane
