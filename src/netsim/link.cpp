#include "netsim/link.hpp"

// Link is header-only; this translation unit pins the library.
namespace difane {}
