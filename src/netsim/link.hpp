// Point-to-point unidirectional link with propagation latency and a
// serialization rate. Transmission is modelled with a next-free cursor: a
// packet begins serializing when the previous one finishes, giving FIFO
// ordering and queueing delay without per-packet queue objects.
#pragma once

#include <cstdint>

#include "netsim/engine.hpp"

namespace difane {

class Link {
 public:
  Link(SimTime latency, double rate_bps) : latency_(latency), rate_bps_(rate_bps) {
    expects(latency >= 0.0 && rate_bps > 0.0, "Link: bad parameters");
  }

  // Account for sending `bytes` at `now`; returns the delivery time at the
  // far end (serialization wait + tx time + propagation).
  SimTime send(SimTime now, std::uint32_t bytes) {
    const SimTime tx = static_cast<double>(bytes) * 8.0 / rate_bps_;
    const SimTime start = next_free_ > now ? next_free_ : now;
    next_free_ = start + tx;
    ++packets_;
    bytes_ += bytes;
    return next_free_ + latency_;
  }

  SimTime latency() const { return latency_; }
  double rate_bps() const { return rate_bps_; }
  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }
  // Queueing backlog at `now` in seconds of serialization time.
  SimTime backlog(SimTime now) const { return next_free_ > now ? next_free_ - now : 0.0; }

  // Administrative / fault state. A down link carries nothing; routing skips
  // it and the forwarding path drops packets that race a flap.
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

 private:
  SimTime latency_;
  double rate_bps_;
  SimTime next_free_ = 0.0;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  bool up_ = true;
};

}  // namespace difane
