// The simulated packet. DIFANE's redirection is modelled by the `encap`
// field: a partition-rule hit wraps the packet toward an authority switch;
// the authority switch unwraps it and forwards it toward the real egress.
#pragma once

#include <cstdint>
#include <optional>

#include "flowspace/bitvec.hpp"
#include "switchsim/sw.hpp"

namespace difane {

using FlowId = std::uint64_t;

struct Packet {
  FlowId flow = 0;
  BitVec header;
  std::uint32_t bytes = 100;
  double created = 0.0;  // sim time the packet entered the network
  SwitchId ingress = kInvalidSwitch;
  // Set while the packet rides a DIFANE encapsulation tunnel toward an
  // authority switch.
  std::optional<SwitchId> encap_target;
  // Set once a terminal forwarding decision is made: the packet is tunneled
  // to this egress switch and transit switches do not re-consult the policy.
  std::optional<SwitchId> tunnel_egress;
  std::uint32_t hops = 0;
  bool was_redirected = false;   // took the authority-switch detour
  bool is_first_of_flow = false; // the packet the paper's delay figure times
};

}  // namespace difane
