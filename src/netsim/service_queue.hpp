// Deterministic single-server FIFO queue with constant service time and a
// bounded backlog, modelled with a next-free cursor (like Link). This is how
// the flow-setup bottlenecks are expressed: the NOX controller is one such
// queue (~20 us/flow), a DIFANE authority switch's miss path is another
// (~1.25 us/flow). Saturation, queueing delay, and overload drops all fall
// out of the cursor arithmetic.
#pragma once

#include <cstdint>
#include <optional>

#include "netsim/engine.hpp"
#include "obs/metrics.hpp"

namespace difane {

class ServiceQueue {
 public:
  ServiceQueue(double service_time, double max_backlog)
      : service_time_(service_time), max_backlog_(max_backlog) {
    expects(service_time > 0.0 && max_backlog >= 0.0, "ServiceQueue: bad parameters");
  }

  // Try to enqueue work arriving at `now`. Returns the completion time, or
  // nullopt if the backlog (waiting time) would exceed the bound.
  std::optional<SimTime> admit(SimTime now) {
    const SimTime backlog = next_free_ > now ? next_free_ - now : 0.0;
    if (backlog > max_backlog_) {
      ++rejected_;
      obs_rejected_->inc();
      return std::nullopt;
    }
    const SimTime start = next_free_ > now ? next_free_ : now;
    next_free_ = start + service_time_;
    ++admitted_;
    obs_admitted_->inc();
    return next_free_;
  }

  double service_time() const { return service_time_; }
  double capacity_per_sec() const { return 1.0 / service_time_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  SimTime backlog(SimTime now) const {
    return next_free_ > now ? next_free_ - now : 0.0;
  }

 private:
  double service_time_;
  double max_backlog_;
  SimTime next_free_ = 0.0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  // Process-wide aggregates across every queue instance (authority switches
  // and the NOX controller alike); no-ops when observability is off.
  obs::Counter* obs_admitted_ =
      obs::MetricsRegistry::global().counter("service_queue_admitted");
  obs::Counter* obs_rejected_ =
      obs::MetricsRegistry::global().counter("service_queue_rejected");
};

}  // namespace difane
