#include "netsim/topology.hpp"

#include <deque>
#include <limits>

#include "util/contract.hpp"

namespace difane {

SwitchId Network::add_switch(std::size_t cache_capacity, std::size_t hw_capacity) {
  const auto id = static_cast<SwitchId>(switches_.size());
  switches_.push_back(std::make_unique<Switch>(id, cache_capacity, hw_capacity));
  routes_valid_ = false;
  return id;
}

void Network::add_link(SwitchId a, SwitchId b, LinkParams params) {
  expects(a < switches_.size() && b < switches_.size() && a != b,
          "add_link: bad endpoints");
  links_[{a, b}] = std::make_unique<Link>(params.latency, params.rate_bps);
  links_[{b, a}] = std::make_unique<Link>(params.latency, params.rate_bps);
  // Port numbering: use the neighbor id as the port id (unique per neighbor).
  switches_[a]->connect(b, b);
  switches_[b]->connect(a, a);
  routes_valid_ = false;
}

Switch& Network::sw(SwitchId id) {
  expects(id < switches_.size(), "sw: bad switch id");
  return *switches_[id];
}

const Switch& Network::sw(SwitchId id) const {
  expects(id < switches_.size(), "sw: bad switch id");
  return *switches_[id];
}

Link* Network::link(SwitchId from, SwitchId to) {
  const auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : it->second.get();
}

bool Network::adjacent(SwitchId a, SwitchId b) const {
  return links_.count({a, b}) > 0;
}

void Network::set_failed(SwitchId id, bool failed) {
  sw(id).set_failed(failed);
  routes_valid_ = false;
}

void Network::set_link_failed(SwitchId a, SwitchId b, bool down) {
  const auto forward = links_.find({a, b});
  const auto backward = links_.find({b, a});
  expects(forward != links_.end() && backward != links_.end(),
          "set_link_failed: no such link");
  forward->second->set_up(!down);
  backward->second->set_up(!down);
  routes_valid_ = false;
}

void Network::recompute_routes() {
  const std::size_t n = switches_.size();
  const auto unreachable = std::numeric_limits<std::size_t>::max();
  next_.assign(n, std::vector<SwitchId>(n, kInvalidSwitch));
  dist_.assign(n, std::vector<std::size_t>(n, unreachable));
  // BFS from each destination over reverse edges (links are symmetric here),
  // recording the next hop toward the destination.
  for (SwitchId to = 0; to < n; ++to) {
    if (switches_[to]->failed()) continue;
    auto& nxt = next_[to];
    auto& dst = dist_[to];
    dst[to] = 0;
    nxt[to] = to;
    std::deque<SwitchId> queue{to};
    while (!queue.empty()) {
      const SwitchId at = queue.front();
      queue.pop_front();
      for (const auto& [port, neighbor] : switches_[at]->ports()) {
        (void)port;
        if (neighbor >= n) continue;
        // Intermediate hops must be alive; `at` was checked on entry.
        if (switches_[neighbor]->failed()) continue;
        // The step recorded below uses the (neighbor, at) link; a downed
        // link carries nothing in either direction.
        const auto link_it = links_.find({neighbor, at});
        if (link_it == links_.end() || !link_it->second->up()) continue;
        if (dst[neighbor] != unreachable) continue;
        dst[neighbor] = dst[at] + 1;
        nxt[neighbor] = at;  // from `neighbor`, step to `at` toward `to`
        queue.push_back(neighbor);
      }
    }
  }
  routes_valid_ = true;
}

SwitchId Network::next_hop(SwitchId from, SwitchId to) {
  expects(from < switches_.size() && to < switches_.size(), "next_hop: bad ids");
  if (!routes_valid_) recompute_routes();
  return next_[to][from];
}

std::size_t Network::distance(SwitchId from, SwitchId to) {
  expects(from < switches_.size() && to < switches_.size(), "distance: bad ids");
  if (!routes_valid_) recompute_routes();
  return dist_[to][from];
}

TwoTierTopology build_two_tier(Network& net, std::size_t edges, std::size_t cores,
                               std::size_t edge_cache_capacity,
                               std::size_t core_cache_capacity, LinkParams params) {
  expects(edges >= 1 && cores >= 1, "build_two_tier: need >= 1 of each tier");
  TwoTierTopology topo;
  for (std::size_t i = 0; i < cores; ++i) {
    topo.core.push_back(net.add_switch(core_cache_capacity));
  }
  for (std::size_t i = 0; i < edges; ++i) {
    const auto edge = net.add_switch(edge_cache_capacity);
    topo.edge.push_back(edge);
    for (const auto core : topo.core) net.add_link(edge, core, params);
  }
  // Core full mesh so authority switches can reach each other directly.
  for (std::size_t i = 0; i < topo.core.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.core.size(); ++j) {
      net.add_link(topo.core[i], topo.core[j], params);
    }
  }
  return topo;
}

std::vector<SwitchId> build_line(Network& net, std::size_t n, std::size_t cache_capacity,
                                 LinkParams params) {
  expects(n >= 1, "build_line: need >= 1 switch");
  std::vector<SwitchId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(net.add_switch(cache_capacity));
  for (std::size_t i = 0; i + 1 < n; ++i) net.add_link(ids[i], ids[i + 1], params);
  return ids;
}

}  // namespace difane
