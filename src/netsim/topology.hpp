// Network: switches + directed links + shortest-path routing. Topology
// builders approximate the environments the paper targets: an
// enterprise-style two-tier network (edge switches under a core layer,
// authority switches placed at/near the core) and small line/star topologies
// for focused tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "netsim/engine.hpp"
#include "netsim/link.hpp"
#include "switchsim/sw.hpp"

namespace difane {

struct LinkParams {
  SimTime latency = 100e-6;  // 100 us per hop, LAN-scale
  double rate_bps = 10e9;    // 10 Gbps
};

class Network {
 public:
  Engine& engine() { return engine_; }

  SwitchId add_switch(std::size_t cache_capacity,
                      std::size_t hw_capacity = std::numeric_limits<std::size_t>::max());

  // Bidirectional: creates one Link object per direction.
  void add_link(SwitchId a, SwitchId b, LinkParams params = {});

  Switch& sw(SwitchId id);
  const Switch& sw(SwitchId id) const;
  std::size_t switch_count() const { return switches_.size(); }

  Link* link(SwitchId from, SwitchId to);
  bool adjacent(SwitchId a, SwitchId b) const;

  // Next hop on a shortest path (hop count) from `from` toward `to`, skipping
  // failed switches; kInvalidSwitch if unreachable. Routes are recomputed
  // lazily after topology or failure changes.
  SwitchId next_hop(SwitchId from, SwitchId to);
  // Hop distance, or SIZE_MAX if unreachable.
  std::size_t distance(SwitchId from, SwitchId to);

  void set_failed(SwitchId id, bool failed);

  // Take the (a, b) link down or bring it back up — both directions, as a
  // cable cut would. Routes recompute lazily around it.
  void set_link_failed(SwitchId a, SwitchId b, bool down);

  void invalidate_routes() { routes_valid_ = false; }

  // Force the lazy route recompute now. The sharded executor calls this from
  // the coordinator (before the run and after every barrier that executed
  // global events) so worker threads never race to rebuild next_/dist_.
  void precompute_routes() {
    if (!routes_valid_) recompute_routes();
  }

 private:
  void recompute_routes();

  Engine engine_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::map<std::pair<SwitchId, SwitchId>, std::unique_ptr<Link>> links_;
  // next_[to][from] = next hop from `from` toward `to`.
  std::vector<std::vector<SwitchId>> next_;
  std::vector<std::vector<std::size_t>> dist_;
  bool routes_valid_ = false;
};

// ---- topology builders --------------------------------------------------

struct TwoTierTopology {
  std::vector<SwitchId> edge;  // ingress/egress switches (hosts hang here)
  std::vector<SwitchId> core;  // core layer; authority switches live here
};

// `edges` edge switches each linked to every core switch (folded Clos).
TwoTierTopology build_two_tier(Network& net, std::size_t edges, std::size_t cores,
                               std::size_t edge_cache_capacity,
                               std::size_t core_cache_capacity,
                               LinkParams params = {});

// A chain s0 - s1 - ... - s(n-1).
std::vector<SwitchId> build_line(Network& net, std::size_t n,
                                 std::size_t cache_capacity, LinkParams params = {});

}  // namespace difane
