#include "netsim/tracer.hpp"

#include <sstream>

namespace difane {

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kNoRule: return "no_rule";
    case DropReason::kPolicyDrop: return "policy_drop";
    case DropReason::kSwitchFailed: return "switch_failed";
    case DropReason::kUnreachable: return "unreachable";
    case DropReason::kControllerQueue: return "controller_queue";
    case DropReason::kTtlExceeded: return "ttl_exceeded";
  }
  return "?";
}

void Tracer::on_injected(const Packet& packet) {
  (void)packet;
  ++injected_;
}

void Tracer::on_delivered(const Packet& packet, double now) {
  ++delivered_;
  if (packet.was_redirected) ++redirected_;
  const double delay = now - packet.created;
  if (packet.is_first_of_flow) {
    first_delay_.add(delay);
  } else {
    later_delay_.add(delay);
  }
  hops_.add(static_cast<double>(packet.hops));
}

void Tracer::on_dropped(const Packet& packet, DropReason reason) {
  (void)packet;
  ++dropped_total_;
  ++dropped_[static_cast<std::size_t>(reason)];
}

std::string Tracer::summary() const {
  std::ostringstream os;
  os << "injected=" << injected_ << " delivered=" << delivered_
     << " dropped=" << dropped_total_ << " in_flight=" << in_flight()
     << " redirected=" << redirected_;
  for (std::size_t i = 0; i < kNumDropReasons; ++i) {
    if (dropped_[i]) {
      os << " " << drop_reason_name(static_cast<DropReason>(i)) << "=" << dropped_[i];
    }
  }
  return os.str();
}

}  // namespace difane
