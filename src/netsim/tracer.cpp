#include "netsim/tracer.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace difane {

namespace {

// Process-wide packet-accounting aggregates across every Tracer instance.
// Resolved once; each hook is a single relaxed increment (or nothing when
// built with DIFANE_OBS=OFF).
struct TracerObs {
  obs::Counter* injected =
      obs::MetricsRegistry::global().counter("tracer_injected");
  obs::Counter* delivered =
      obs::MetricsRegistry::global().counter("tracer_delivered");
  obs::Counter* dropped =
      obs::MetricsRegistry::global().counter("tracer_dropped");
};

TracerObs& tracer_obs() {
  static TracerObs hooks;
  return hooks;
}

}  // namespace

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kNoRule: return "no_rule";
    case DropReason::kPolicyDrop: return "policy_drop";
    case DropReason::kSwitchFailed: return "switch_failed";
    case DropReason::kUnreachable: return "unreachable";
    case DropReason::kControllerQueue: return "controller_queue";
    case DropReason::kTtlExceeded: return "ttl_exceeded";
  }
  return "?";
}

void Tracer::on_injected(const Packet& packet) {
  (void)packet;
  ++injected_;
  tracer_obs().injected->inc();
}

void Tracer::on_delivered(const Packet& packet, double now) {
  ++delivered_;
  tracer_obs().delivered->inc();
  if (packet.was_redirected) ++redirected_;
  const double delay = now - packet.created;
  if (packet.is_first_of_flow) {
    first_delay_.add(delay);
  } else {
    later_delay_.add(delay);
  }
  hops_.add(static_cast<double>(packet.hops));
}

void Tracer::on_dropped(const Packet& packet, DropReason reason) {
  (void)packet;
  ++dropped_total_;
  ++dropped_[static_cast<std::size_t>(reason)];
  tracer_obs().dropped->inc();
}

void Tracer::merge_from(const Tracer& other) {
  injected_ += other.injected_;
  delivered_ += other.delivered_;
  dropped_total_ += other.dropped_total_;
  for (std::size_t i = 0; i < kNumDropReasons; ++i) dropped_[i] += other.dropped_[i];
  redirected_ += other.redirected_;
  first_delay_.merge_from(other.first_delay_);
  later_delay_.merge_from(other.later_delay_);
  hops_.merge_from(other.hops_);
}

std::string Tracer::summary() const {
  std::ostringstream os;
  os << "injected=" << injected_ << " delivered=" << delivered_
     << " dropped=" << dropped_total_ << " in_flight=" << in_flight()
     << " redirected=" << redirected_;
  for (std::size_t i = 0; i < kNumDropReasons; ++i) {
    if (dropped_[i]) {
      os << " " << drop_reason_name(static_cast<DropReason>(i)) << "=" << dropped_[i];
    }
  }
  return os.str();
}

}  // namespace difane
