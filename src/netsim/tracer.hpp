// Packet accounting: delivery/drop bookkeeping, packet conservation, and the
// delay distributions the paper's figures report (first packets vs the
// rest, redirected vs cached paths).
#pragma once

#include <cstdint>
#include <string>

#include "netsim/packet.hpp"
#include "util/stats.hpp"

namespace difane {

enum class DropReason : std::uint8_t {
  kNoRule = 0,        // matched nothing anywhere (policy has no default)
  kPolicyDrop,        // matched an explicit drop rule (not an error)
  kSwitchFailed,      // arrived at a failed switch
  kUnreachable,       // routing found no path
  kControllerQueue,   // controller queue overflow (NOX baseline)
  kTtlExceeded,       // forwarding loop guard
};
inline constexpr std::size_t kNumDropReasons = 6;

const char* drop_reason_name(DropReason reason);

class Tracer {
 public:
  void on_injected(const Packet& packet);
  void on_delivered(const Packet& packet, double now);
  void on_dropped(const Packet& packet, DropReason reason);

  // Fold another tracer's accounting in (per-shard tracers merged in
  // shard-index order at the end of a sharded run). Delay sample sets append;
  // their percentiles sort first, so results are merge-order independent.
  void merge_from(const Tracer& other);

  std::uint64_t injected() const { return injected_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_total_; }
  std::uint64_t dropped(DropReason reason) const {
    return dropped_[static_cast<std::size_t>(reason)];
  }
  // Conservation: injected - delivered - dropped = packets still in flight.
  std::int64_t in_flight() const {
    return static_cast<std::int64_t>(injected_) - static_cast<std::int64_t>(delivered_) -
           static_cast<std::int64_t>(dropped_total_);
  }

  std::uint64_t redirected() const { return redirected_; }

  const SampleSet& first_packet_delay() const { return first_delay_; }
  const SampleSet& later_packet_delay() const { return later_delay_; }
  const OnlineStats& hops() const { return hops_; }

  std::string summary() const;

 private:
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_total_ = 0;
  std::uint64_t dropped_[kNumDropReasons] = {};
  std::uint64_t redirected_ = 0;
  SampleSet first_delay_;
  SampleSet later_delay_;
  OnlineStats hops_;
};

}  // namespace difane
