#include "obs/flow_export.hpp"

#include <fstream>
#include <stdexcept>

namespace difane::obs {

const char* export_kind_name(ExportKind kind) {
  switch (kind) {
    case ExportKind::kPeriodic: return "periodic";
    case ExportKind::kEvict: return "evict";
    case ExportKind::kFinal: return "final";
  }
  return "?";
}

namespace {

// Headers serialize as 64 hex chars, most-significant word first, so the
// string sorts like the 256-bit value and round-trips exactly.
std::string header_to_hex(const BitVec& v) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(kHeaderWords * 16);
  for (std::size_t w = kHeaderWords; w-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(digits[(v.w[w] >> shift) & 0xf]);
    }
  }
  return out;
}

BitVec header_from_hex(const std::string& s) {
  if (s.size() != kHeaderWords * 16) {
    throw std::runtime_error("flow-export: header must be " +
                             std::to_string(kHeaderWords * 16) +
                             " hex chars, got " + std::to_string(s.size()));
  }
  BitVec v;
  std::size_t i = 0;
  for (std::size_t w = kHeaderWords; w-- > 0;) {
    std::uint64_t word = 0;
    for (std::size_t d = 0; d < 16; ++d, ++i) {
      const char c = s[i];
      std::uint64_t nibble = 0;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        throw std::runtime_error("flow-export: bad hex char in header");
      }
      word = (word << 4) | nibble;
    }
    v.w[w] = word;
  }
  return v;
}

ExportKind kind_from_name(const std::string& name) {
  if (name == "periodic") return ExportKind::kPeriodic;
  if (name == "evict") return ExportKind::kEvict;
  if (name == "final") return ExportKind::kFinal;
  throw std::runtime_error("flow-export: unknown record kind '" + name + "'");
}

}  // namespace

Json FlowExportRecord::to_json() const {
  Json::Object o;
  o["header"] = Json(header_to_hex(header));
  o["packets"] = Json(sampled_packets);
  o["bytes"] = Json(sampled_bytes);
  o["first_seen"] = Json(first_seen);
  o["last_seen"] = Json(last_seen);
  o["rule"] = Json(rule);
  o["kind"] = Json(export_kind_name(kind));
  return Json(std::move(o));
}

FlowExportRecord FlowExportRecord::from_json(const Json& doc) {
  FlowExportRecord r;
  r.header = header_from_hex(doc.get("header").as_string());
  r.sampled_packets = static_cast<std::uint64_t>(doc.get("packets").as_number());
  r.sampled_bytes = static_cast<std::uint64_t>(doc.get("bytes").as_number());
  r.first_seen = doc.get("first_seen").as_number();
  r.last_seen = doc.get("last_seen").as_number();
  r.rule = static_cast<std::uint64_t>(doc.get("rule").as_number());
  r.kind = kind_from_name(doc.get("kind").as_string());
  return r;
}

Json FlowExportBatch::to_json() const {
  Json::Object o;
  o["schema"] = Json(kFlowExportSchema);
  o["exporter"] = Json(exporter);
  o["seq"] = Json(seq);
  o["beat_seq"] = Json(beat_seq);
  o["sent_at"] = Json(sent_at);
  o["sample_prob"] = Json(sample_prob);
  Json::Array records_json;
  records_json.reserve(records.size());
  for (const auto& r : records) records_json.push_back(r.to_json());
  o["records"] = Json(std::move(records_json));
  return Json(std::move(o));
}

FlowExportBatch FlowExportBatch::from_json(const Json& doc) {
  const std::string& schema = doc.get("schema").as_string();
  if (schema != kFlowExportSchema) {
    throw std::runtime_error("flow-export: schema mismatch: got '" + schema +
                             "', want '" + kFlowExportSchema + "'");
  }
  FlowExportBatch b;
  b.exporter = static_cast<std::uint32_t>(doc.get("exporter").as_number());
  b.seq = static_cast<std::uint64_t>(doc.get("seq").as_number());
  b.beat_seq = static_cast<std::uint64_t>(doc.get("beat_seq").as_number());
  b.sent_at = doc.get("sent_at").as_number();
  b.sample_prob = doc.get("sample_prob").as_number();
  if (b.sample_prob <= 0.0 || b.sample_prob > 1.0) {
    throw std::runtime_error("flow-export: sample_prob out of (0, 1]");
  }
  for (const auto& rec : doc.get("records").as_array()) {
    b.records.push_back(FlowExportRecord::from_json(rec));
  }
  return b;
}

void FlowCollector::on_batch(const FlowExportBatch& batch) {
  ++batches_;
  if (batch.keepalive()) ++keepalives_;
  for (const auto& rec : batch.records) {
    ++records_;
    if (rec.kind == ExportKind::kEvict) ++evict_records_;
    if (rec.kind == ExportKind::kFinal) ++final_records_;
    const auto [it, inserted] = index_.try_emplace(rec.header, flows_.size());
    if (inserted) {
      flows_.emplace_back(rec.header, FlowTotals{});
      flows_.back().second.first_seen = rec.first_seen;
    }
    FlowTotals& t = flows_[it->second].second;
    t.sampled_packets += rec.sampled_packets;
    t.sampled_bytes += rec.sampled_bytes;
    t.estimated_packets +=
        static_cast<double>(rec.sampled_packets) / batch.sample_prob;
    t.estimated_bytes +=
        static_cast<double>(rec.sampled_bytes) / batch.sample_prob;
    t.first_seen = std::min(t.first_seen, rec.first_seen);
    t.last_seen = std::max(t.last_seen, rec.last_seen);
  }
  stream_.push_back(batch);
}

const FlowCollector::FlowTotals* FlowCollector::find(const BitVec& header) const {
  const auto it = index_.find(header);
  return it == index_.end() ? nullptr : &flows_[it->second].second;
}

Json FlowCollector::stream_json() const {
  Json::Array out;
  out.reserve(stream_.size());
  for (const auto& batch : stream_) out.push_back(batch.to_json());
  return Json(std::move(out));
}

void FlowCollector::clear() {
  flows_.clear();
  index_.clear();
  stream_.clear();
  batches_ = records_ = keepalives_ = evict_records_ = final_records_ = 0;
}

void JsonCollectorSink::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("JsonCollectorSink: cannot open '" + path + "'");
  }
  out << json().dump(2) << "\n";
}

}  // namespace difane::obs
