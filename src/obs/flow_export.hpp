// Flow-export records: the measurement product of the telemetry data plane.
// A switch running in measurement mode samples packets against its installed
// cache/authority entries (NetFlow-style packet sampling: each terminal match
// is sampled with probability p, so estimate = sampled / p) and periodically
// exports the per-flow deltas over the control channel to a collector. The
// record schema is versioned ("difane-flow-export-v1") and lives next to the
// bench-report schemas; both share the deterministic obs::Json value type, so
// a collector stream serializes to the same bytes on every run of the same
// (seed, params) — the replay-by-seed contract the property suite pins.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "flowspace/bitvec.hpp"
#include "obs/json.hpp"

namespace difane::obs {

inline constexpr const char* kFlowExportSchema = "difane-flow-export-v1";

// Why a record left the switch:
//  * kPeriodic — the regular export tick shipped the accumulated delta.
//  * kEvict    — the entry the counts were bound to left the cache (LRU
//    eviction, timeout, failover purge, cascade) and flush-on-evict closed
//    the record rather than dropping it.
//  * kFinal    — end-of-run drain of deltas that accrued after the last tick.
enum class ExportKind : std::uint8_t { kPeriodic = 0, kEvict = 1, kFinal = 2 };

const char* export_kind_name(ExportKind kind);

struct FlowExportRecord {
  BitVec header;                       // the flow key (all packets share it)
  std::uint64_t sampled_packets = 0;   // raw sampled counts; estimate = /p
  std::uint64_t sampled_bytes = 0;
  double first_seen = 0.0;             // sim time of the first sampled packet
  double last_seen = 0.0;
  std::uint64_t rule = 0;              // entry id the counts were bound to
  ExportKind kind = ExportKind::kPeriodic;

  Json to_json() const;
  static FlowExportRecord from_json(const Json& doc);
  friend bool operator==(const FlowExportRecord& a, const FlowExportRecord& b) {
    return a.header == b.header && a.sampled_packets == b.sampled_packets &&
           a.sampled_bytes == b.sampled_bytes && a.first_seen == b.first_seen &&
           a.last_seen == b.last_seen && a.rule == b.rule && a.kind == b.kind;
  }
};

// One export message from one switch: a batch of records plus the liveness
// piggyback. An empty batch is a keepalive — it carries no counters but its
// beat_seq still proves the exporter alive, which is exactly what lets the
// heartbeat monitor tell "quiet but alive" from "partitioned".
struct FlowExportBatch {
  std::uint32_t exporter = 0;     // SwitchId of the exporting switch
  std::uint64_t seq = 0;          // per-exporter export sequence number
  std::uint64_t beat_seq = 0;     // heartbeat tick index at send time
  double sent_at = 0.0;           // sim time the batch left the switch
  double sample_prob = 1.0;       // p the records were sampled at
  std::vector<FlowExportRecord> records;

  bool keepalive() const { return records.empty(); }

  // {"schema": "difane-flow-export-v1", ...}; from_json validates the schema
  // string and every field, throwing std::runtime_error naming the problem.
  Json to_json() const;
  static FlowExportBatch from_json(const Json& doc);
};

// Where collected batches go. The collector machinery is a public API, not
// bench plumbing: tests plug in MemoryCollectorSink, benches JsonCollectorSink,
// embedders anything else.
class CollectorSink {
 public:
  virtual ~CollectorSink() = default;
  virtual void on_batch(const FlowExportBatch& batch) = 0;
  // The run is over; no further batches will arrive.
  virtual void on_close() {}
};

// The controller-side collector: aggregates per-flow totals across every
// exporter and keeps the canonical batch stream (arrival order) whose JSON
// dump is the byte-identity surface. Estimates divide by the sampling
// probability each batch declares.
class FlowCollector : public CollectorSink {
 public:
  struct FlowTotals {
    std::uint64_t sampled_packets = 0;
    std::uint64_t sampled_bytes = 0;
    double estimated_packets = 0.0;
    double estimated_bytes = 0.0;
    double first_seen = 0.0;
    double last_seen = 0.0;
  };

  void on_batch(const FlowExportBatch& batch) override;

  // Aggregated totals in first-appearance order (deterministic).
  const std::vector<std::pair<BitVec, FlowTotals>>& flows() const {
    return flows_;
  }
  const FlowTotals* find(const BitVec& header) const;

  std::uint64_t batches() const { return batches_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t keepalives() const { return keepalives_; }
  std::uint64_t evict_records() const { return evict_records_; }
  std::uint64_t final_records() const { return final_records_; }

  // The canonical export stream: every batch as JSON, in arrival order.
  // dump() of this value is the byte-identical-replay surface.
  Json stream_json() const;
  std::string stream_dump() const { return stream_json().dump(); }

  void clear();

 private:
  std::vector<std::pair<BitVec, FlowTotals>> flows_;
  std::unordered_map<BitVec, std::size_t> index_;
  std::vector<FlowExportBatch> stream_;
  std::uint64_t batches_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t keepalives_ = 0;
  std::uint64_t evict_records_ = 0;
  std::uint64_t final_records_ = 0;
};

// Test sink: remembers every batch verbatim.
class MemoryCollectorSink : public CollectorSink {
 public:
  void on_batch(const FlowExportBatch& batch) override {
    batches_.push_back(batch);
  }
  void on_close() override { closed_ = true; }
  const std::vector<FlowExportBatch>& batches() const { return batches_; }
  bool closed() const { return closed_; }

 private:
  std::vector<FlowExportBatch> batches_;
  bool closed_ = false;
};

// Bench/CLI sink: accumulates the stream as a JSON array and writes it out
// (same deterministic serialization as the MetricsReport exporters).
class JsonCollectorSink : public CollectorSink {
 public:
  void on_batch(const FlowExportBatch& batch) override {
    stream_.push_back(batch.to_json());
  }
  Json json() const { return Json(stream_); }
  void write_file(const std::string& path) const;

 private:
  Json::Array stream_;
};

}  // namespace difane::obs
