// Deterministic heavy-hitter detection: the space-saving (stream-summary)
// sketch of Metwally et al., as applied to elephant-flow detection in the
// measurement literature (see PAPERS.md). An authority switch feeds every
// redirected-packet miss into one of these; the cache-install policy then
// asks "how heavy is this flow, at least?" before spending TCAM on it.
//
// Guarantees (the property suite in tests/test_prop_heavy_hitter.cpp holds
// the implementation to these over adversarial streams):
//  * overestimate only:  true_count <= count  for every tracked key;
//  * bounded error:      count - true_count <= error <= N / k, where N is
//    the total weight offered and k the capacity;
//  * completeness:       any key with true_count > N / k is tracked.
//
// Everything is deterministic: eviction scans slots in insertion order with
// a fixed tiebreak, so the same offer sequence always produces the same
// summary — a requirement for byte-identical scenario replay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/contract.hpp"

namespace difane::obs {

template <typename Key, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class SpaceSaving {
 public:
  struct Entry {
    Key key{};
    std::uint64_t count = 0;  // estimated weight (upper bound on the truth)
    std::uint64_t error = 0;  // count - error is a certain lower bound
  };

  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {
    expects(capacity_ >= 1, "SpaceSaving: capacity must be >= 1");
    slots_.reserve(capacity_);
    index_.reserve(capacity_ * 2);
  }

  // Record `weight` more units for `key`. When the summary is full, the
  // minimum-count slot is recycled: the new key inherits the victim's count
  // as its error floor (the classic space-saving overestimate).
  void offer(const Key& key, std::uint64_t weight = 1) {
    total_ += weight;
    if (const auto it = index_.find(key); it != index_.end()) {
      Slot& s = slots_[it->second];
      s.count += weight;
      s.seq = next_seq_++;
      return;
    }
    if (slots_.size() < capacity_) {
      index_.emplace(key, slots_.size());
      slots_.push_back(Slot{key, weight, 0, next_seq_++});
      return;
    }
    const std::size_t victim = min_slot();
    Slot& s = slots_[victim];
    index_.erase(s.key);
    const std::uint64_t floor = s.count;
    s = Slot{key, floor + weight, floor, next_seq_++};
    index_.emplace(key, victim);
  }

  // Estimated count (0 for an untracked key — the caller can add min_count()
  // back if it wants the sketch-wide upper bound instead).
  std::uint64_t estimate(const Key& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : slots_[it->second].count;
  }

  // Certain lower bound on the key's true count: count minus the inherited
  // error. 0 for untracked keys. This is what policy decisions should use —
  // it never inflates a mouse into an elephant.
  std::uint64_t guaranteed(const Key& key) const {
    const auto it = index_.find(key);
    if (it == index_.end()) return 0;
    const Slot& s = slots_[it->second];
    return s.count - s.error;
  }

  std::optional<Entry> find(const Key& key) const {
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    const Slot& s = slots_[it->second];
    return Entry{s.key, s.count, s.error};
  }

  // Smallest tracked count — the upper bound on any *untracked* key's true
  // count. 0 while the summary still has free slots.
  std::uint64_t min_count() const {
    if (slots_.size() < capacity_) return 0;
    return slots_[min_slot()].count;
  }

  // Tracked entries, heaviest first (ties broken by most-recent touch, then
  // never reached: seq stamps are unique). Deterministic for a deterministic
  // offer sequence.
  std::vector<Entry> entries() const {
    std::vector<const Slot*> order;
    order.reserve(slots_.size());
    for (const Slot& s : slots_) order.push_back(&s);
    std::sort(order.begin(), order.end(), [](const Slot* a, const Slot* b) {
      if (a->count != b->count) return a->count > b->count;
      return a->seq > b->seq;
    });
    std::vector<Entry> out;
    out.reserve(order.size());
    for (const Slot* s : order) out.push_back(Entry{s->key, s->count, s->error});
    return out;
  }

  std::vector<Entry> top(std::size_t n) const {
    auto all = entries();
    if (all.size() > n) all.resize(n);
    return all;
  }

  // Fold another summary into this one (e.g. per-replica sketches after a
  // failover). A key missing from one side contributes that side's
  // min_count() as both count and error — the standard sketch merge, which
  // keeps the overestimate property and bounds the combined error by
  // N_a/k_a + N_b/k_b. The result keeps this summary's capacity.
  void merge_from(const SpaceSaving& other) {
    const std::uint64_t floor_self = min_count();
    const std::uint64_t floor_other = other.min_count();
    std::vector<Slot> merged;
    merged.reserve(slots_.size() + other.slots_.size());
    for (const Slot& s : slots_) {
      Slot m = s;
      if (const auto it = other.index_.find(s.key); it != other.index_.end()) {
        m.count += other.slots_[it->second].count;
        m.error += other.slots_[it->second].error;
      } else {
        m.count += floor_other;
        m.error += floor_other;
      }
      merged.push_back(std::move(m));
    }
    for (const Slot& o : other.slots_) {
      if (index_.find(o.key) != index_.end()) continue;
      Slot m = o;
      m.count += floor_self;
      m.error += floor_self;
      merged.push_back(std::move(m));
    }
    // Keep the heaviest `capacity_` keys; iteration above is deterministic
    // (this summary's slots in insertion order, then the other's), and the
    // stable sort preserves that order on count ties.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Slot& a, const Slot& b) { return a.count > b.count; });
    if (merged.size() > capacity_) merged.resize(capacity_);
    slots_.clear();
    index_.clear();
    next_seq_ = 0;
    for (Slot& m : merged) {
      m.seq = next_seq_++;
      index_.emplace(m.key, slots_.size());
      slots_.push_back(std::move(m));
    }
    total_ += other.total_;
  }

  void reset() {
    slots_.clear();
    index_.clear();
    total_ = 0;
    next_seq_ = 0;
  }

  std::uint64_t total() const { return total_; }  // N: total weight offered
  std::size_t size() const { return slots_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    Key key{};
    std::uint64_t count = 0;
    std::uint64_t error = 0;
    std::uint64_t seq = 0;  // last-touch stamp: unique, monotone
  };

  // Deterministic min scan: smallest count, least-recently-touched on ties.
  std::size_t min_slot() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      const Slot& b = slots_[best];
      if (s.count < b.count || (s.count == b.count && s.seq < b.seq)) best = i;
    }
    return best;
  }

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::unordered_map<Key, std::size_t, Hash, Eq> index_;
  std::uint64_t total_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace difane::obs
