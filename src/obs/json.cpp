#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace difane::obs {

namespace {

[[noreturn]] void kind_error(const char* want, Json::Kind got) {
  static const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  throw std::runtime_error(std::string("Json: expected ") + want + ", have " +
                           names[static_cast<int>(got)]);
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return str_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

Json::Array& Json::as_array() {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

Json::Object& Json::as_object() {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_[key];
}

const Json& Json::get(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("Json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return kind_ == Kind::kObject && obj_.count(key) > 0;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber: return num_ == other.num_;
    case Kind::kString: return str_ == other.str_;
    case Kind::kArray: return arr_ == other.arr_;
    case Kind::kObject: return obj_ == other.obj_;
  }
  return false;
}

std::string format_number(double v) {
  if (!std::isfinite(v)) {
    throw std::runtime_error("Json: cannot serialize non-finite number");
  }
  // Integral values (the common case for counters) print without a
  // fractional part as long as they are exactly representable.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    const auto as_int = static_cast<long long>(v);
    return std::to_string(as_int);
  }
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: out += format_number(num_); return;
    case Kind::kString: escape_string(out, str_); return;
    case Kind::kArray: {
      if (arr_.empty()) { out += "[]"; return; }
      out += '[';
      bool first = true;
      for (const auto& item : arr_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) { out += "{}"; return; }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(out, key);
        out += indent < 0 ? ":" : ": ";
        value.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("Json parse error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') { ++pos_; return Json(std::move(obj)); }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') { ++pos_; continue; }
      if (next == '}') { ++pos_; return Json(std::move(obj)); }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') { ++pos_; return Json(std::move(arr)); }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') { ++pos_; continue; }
      if (next == ']') { ++pos_; return Json(std::move(arr)); }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (BMP only; we never emit
          // surrogate pairs ourselves).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      fail("malformed number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace difane::obs
