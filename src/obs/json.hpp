// Minimal JSON value type for the observability pipeline: the bench
// exporters, trajectory merger, and compare tool all speak this. Two
// properties matter more than generality:
//   1. Deterministic output — object keys are stored sorted (std::map) and
//      numbers render via std::to_chars (shortest round-trip), so the same
//      report serializes to the same bytes on every run. The determinism
//      test and the bench_compare gate both rely on this.
//   2. Round-tripping — parse(dump(v)) == v for everything we emit.
// Not a general-purpose JSON library: no comments, no NaN/Inf (rejected on
// write), UTF-8 passed through verbatim.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace difane::obs {

class Json;

class Json {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;  // sorted keys => stable dumps

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : kind_(Kind::kNumber), num_(v) {}
  Json(long v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(long long v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(unsigned v) : kind_(Kind::kNumber), num_(v) {}
  Json(unsigned long v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(unsigned long long v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  Json(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors throw std::runtime_error on a kind mismatch, so schema
  // validation failures surface as exceptions with context.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  // Object convenience: operator[] inserts null on a missing key (and turns
  // a null value into an object, like nlohmann); get() is the const lookup
  // that throws naming the missing key.
  Json& operator[](const std::string& key);
  const Json& get(const std::string& key) const;
  bool contains(const std::string& key) const;

  bool operator==(const Json& other) const;

  // Serialize. indent < 0 => compact single line; indent >= 0 => pretty
  // printed with that many spaces per level. Deterministic either way.
  std::string dump(int indent = -1) const;

  // Parse a complete JSON document; trailing garbage is an error. Throws
  // std::runtime_error with a byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

// Render a double the way dump() does: integers without a fractional part,
// everything else via shortest-round-trip to_chars. Exposed because the CSV
// exporter and tests need the identical formatting.
std::string format_number(double v);

}  // namespace difane::obs
