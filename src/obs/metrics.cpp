#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

#include "util/contract.hpp"

namespace difane::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  expects(std::is_sorted(bounds_.begin(), bounds_.end()),
          "Histogram: bucket bounds must be sorted");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double x) {
  if constexpr (!kEnabled) { (void)x; return; }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

double Histogram::upper_bound(std::size_t i) const {
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

double Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen > rank) {
      // Overflow bucket has no finite bound; report the last finite one.
      return i < bounds_.size() ? bounds_[i]
                                : (bounds_.empty() ? 0.0 : bounds_.back());
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

// Shared sinks for the disabled build: every mutation is already a no-op,
// so all callers can safely share one instrument without a registry lock.
Counter& dummy_counter() { static Counter c; return c; }
Gauge& dummy_gauge() { static Gauge g; return g; }
Timer& dummy_timer() { static Timer t; return t; }
Histogram& dummy_histogram() {
  static Histogram h({1.0});
  return h;
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name) {
  if constexpr (!kEnabled) return &dummy_counter();
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[name];
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  if constexpr (!kEnabled) return &dummy_gauge();
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[name];
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  if constexpr (!kEnabled) return &dummy_histogram();
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[name];
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return entry.histogram.get();
}

Timer* MetricsRegistry::timer(const std::string& name) {
  if constexpr (!kEnabled) return &dummy_timer();
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[name];
  if (!entry.timer) entry.timer = std::make_unique<Timer>();
  return entry.timer.get();
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::map<std::string, double> out;
  if constexpr (!kEnabled) return out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (entry.counter) out[name] = static_cast<double>(entry.counter->value());
    if (entry.gauge) out[name] = entry.gauge->value();
    if (entry.timer) {
      out[name + "_wall_seconds"] = entry.timer->total_seconds();
      out[name + "_count"] = static_cast<double>(entry.timer->count());
    }
    if (entry.histogram) {
      out[name + "_count"] = static_cast<double>(entry.histogram->count());
      out[name + "_sum"] = entry.histogram->sum();
      out[name + "_p50"] = entry.histogram->percentile(0.50);
      out[name + "_p99"] = entry.histogram->percentile(0.99);
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.timer) entry.timer->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace difane::obs
