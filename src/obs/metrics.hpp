// Low-overhead metrics: counters, gauges, fixed-bucket histograms and
// wall-clock timers registered by name in a MetricsRegistry. Hot paths keep
// a raw pointer to their instrument (one registry lookup at construction)
// and bump it with a relaxed atomic op — cheap enough for per-packet use.
//
// The whole layer compiles out when the build defines DIFANE_OBS_ENABLED=0
// (cmake -DDIFANE_OBS=OFF): every mutation inlines to nothing and the
// registry hands back a shared dummy instrument without taking a lock, so
// instrumented code needs no #ifdefs and pays literally zero cycles.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef DIFANE_OBS_ENABLED
#define DIFANE_OBS_ENABLED 1
#endif

namespace difane::obs {

inline constexpr bool kEnabled = DIFANE_OBS_ENABLED != 0;

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if constexpr (kEnabled) value_.fetch_add(n, std::memory_order_relaxed);
    else (void)n;
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    if constexpr (kEnabled) value_.store(v, std::memory_order_relaxed);
    else (void)v;
  }
  void add(double delta) {
    if constexpr (kEnabled) {
      double cur = value_.load(std::memory_order_relaxed);
      while (!value_.compare_exchange_weak(cur, cur + delta,
                                           std::memory_order_relaxed)) {
      }
    } else {
      (void)delta;
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with an
// implicit overflow bucket past the last bound. Bounds are fixed at
// registration, so observe() is a branchless-ish scan + one relaxed inc —
// no allocation, safe from multiple threads.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  // Upper bound of bucket i; +inf for the overflow bucket.
  double upper_bound(std::size_t i) const;
  // Nearest-bound percentile estimate (value of the bucket holding rank p).
  double percentile(double p) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Accumulates wall-clock seconds + a call count. Pair with ScopedTimer.
class Timer {
 public:
  void record(double seconds) {
    if constexpr (kEnabled) {
      count_.fetch_add(1, std::memory_order_relaxed);
      double cur = total_.load(std::memory_order_relaxed);
      while (!total_.compare_exchange_weak(cur, cur + seconds,
                                           std::memory_order_relaxed)) {
      }
    } else {
      (void)seconds;
    }
  }
  double total_seconds() const { return total_.load(std::memory_order_relaxed); }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset() {
    total_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> total_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

// RAII wall-clock scope: records elapsed seconds into a Timer on exit.
// Compiles to nothing when observability is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer) {
    if constexpr (kEnabled) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if constexpr (kEnabled) {
      if (timer_ != nullptr) {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        timer_->record(std::chrono::duration<double>(elapsed).count());
      }
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

// Name -> instrument registry. Registration takes a mutex; returned pointers
// are stable for the registry's lifetime (instruments are node-allocated),
// so hot paths look up once and bump forever. snapshot() flattens every
// instrument into name -> double entries:
//   counter  c           -> "c"
//   gauge    g           -> "g"
//   timer    t           -> "t_wall_seconds", "t_count"
//   histo    h           -> "h_count", "h_sum", "h_p50", "h_p99"
// Timer values carry the `_wall_seconds` suffix on purpose: downstream
// tooling (bench_compare, the determinism test) treats *_wall_* metrics as
// host timing, exempt from determinism comparison.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, std::vector<double> upper_bounds);
  Timer* timer(const std::string& name);

  std::map<std::string, double> snapshot() const;
  // Zero every instrument in place. Pointers handed out earlier stay valid
  // (hot paths cache them), so this is safe between bench reps.
  void reset();

  // Process-wide registry the built-in instrumentation reports into.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Timer> timer;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace difane::obs
