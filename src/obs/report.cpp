#include "obs/report.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace difane::obs {

namespace {

constexpr const char* kReportSchema = "difane-bench-report-v1";
constexpr const char* kTrajectorySchema = "difane-bench-trajectory-v1";

}  // namespace

const char* build_git_rev() {
#ifdef DIFANE_GIT_REV
  return DIFANE_GIT_REV;
#else
  return "unknown";
#endif
}

bool is_wall_metric(const std::string& name) {
  // "_rss_" marks resident-set-size measurements (bench_e11_scale's
  // high-water mark): like wall time, RSS depends on the host's allocator,
  // page size, and layout, so it is exempt from the byte-identical
  // determinism gates and only checked under an explicit drift threshold.
  return name.find("_wall_") != std::string::npos ||
         name.find("_rss_") != std::string::npos || name == "wall_seconds";
}

Json MetricsReport::to_json() const {
  Json doc{Json::Object{}};
  doc["schema"] = Json(kReportSchema);
  doc["experiment"] = Json(experiment);
  doc["git_rev"] = Json(git_rev);
  doc["params"] = Json(params);
  Json::Object metric_obj;
  for (const auto& [name, value] : metrics) metric_obj.emplace(name, Json(value));
  doc["metrics"] = Json(std::move(metric_obj));
  doc["wall_seconds"] = Json(wall_seconds);
  return doc;
}

std::string MetricsReport::to_json_string(int indent) const {
  return to_json().dump(indent) + "\n";
}

std::string MetricsReport::to_csv() const {
  std::string out = "experiment,metric,value\n";
  for (const auto& [name, value] : metrics) {
    out += experiment + "," + name + "," + format_number(value) + "\n";
  }
  return out;
}

MetricsReport MetricsReport::from_json(const Json& doc) {
  if (!doc.is_object()) throw std::runtime_error("report: not a JSON object");
  const std::string schema = doc.get("schema").as_string();
  if (schema != kReportSchema) {
    throw std::runtime_error("report: unknown schema '" + schema + "'");
  }
  MetricsReport report;
  report.experiment = doc.get("experiment").as_string();
  if (report.experiment.empty()) {
    throw std::runtime_error("report: empty experiment id");
  }
  report.git_rev = doc.get("git_rev").as_string();
  report.params = doc.get("params").as_object();
  report.metrics.clear();
  for (const auto& [name, value] : doc.get("metrics").as_object()) {
    if (!value.is_number()) {
      throw std::runtime_error("report: metric '" + name + "' is not a number");
    }
    report.metrics.emplace(name, value.as_number());
  }
  report.wall_seconds = doc.get("wall_seconds").as_number();
  return report;
}

namespace {

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  os << text;
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void MetricsReport::write_json_file(const std::string& path) const {
  write_text_file(path, to_json_string());
}

void MetricsReport::write_csv_file(const std::string& path) const {
  write_text_file(path, to_csv());
}

MetricsReport merge_reps(const std::vector<MetricsReport>& reps) {
  if (reps.empty()) throw std::runtime_error("merge_reps: no reports");
  MetricsReport merged = reps.front();
  if (reps.size() == 1) return merged;
  // Mean of every metric present in all reps; metrics missing from some rep
  // (e.g. a conditional table row) keep the first rep's value.
  for (auto& [name, value] : merged.metrics) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& rep : reps) {
      const auto it = rep.metrics.find(name);
      if (it == rep.metrics.end()) break;
      sum += it->second;
      ++n;
    }
    if (n == reps.size()) value = sum / static_cast<double>(n);
  }
  double wall = 0.0;
  for (const auto& rep : reps) wall += rep.wall_seconds;
  merged.wall_seconds = wall / static_cast<double>(reps.size());
  return merged;
}

Json Trajectory::to_json() const {
  Json doc{Json::Object{}};
  doc["schema"] = Json(kTrajectorySchema);
  doc["git_rev"] = Json(git_rev);
  doc["base_seed"] = Json(static_cast<double>(base_seed));
  Json::Object exp_obj;
  for (const auto& [id, report] : experiments) {
    exp_obj.emplace(id, report.to_json());
  }
  doc["experiments"] = Json(std::move(exp_obj));
  return doc;
}

Trajectory Trajectory::from_json(const Json& doc) {
  if (!doc.is_object()) throw std::runtime_error("trajectory: not a JSON object");
  const std::string schema = doc.get("schema").as_string();
  if (schema != kTrajectorySchema) {
    throw std::runtime_error("trajectory: unknown schema '" + schema + "'");
  }
  Trajectory traj;
  traj.git_rev = doc.get("git_rev").as_string();
  traj.base_seed = static_cast<std::uint64_t>(doc.get("base_seed").as_number());
  for (const auto& [id, report] : doc.get("experiments").as_object()) {
    traj.experiments.emplace(id, MetricsReport::from_json(report));
  }
  return traj;
}

void Trajectory::write_json_file(const std::string& path) const {
  write_text_file(path, to_json().dump(2) + "\n");
}

Json load_json_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return Json::parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace difane::obs
