// Structured experiment reports. Every bench run reduces to one
// MetricsReport; bench_all merges reports into a Trajectory; bench_compare
// diffs trajectories. The JSON schema is stable and versioned:
//
//   BENCH_<id>.json (schema "difane-bench-report-v1"):
//   {
//     "schema": "difane-bench-report-v1",
//     "experiment": "E1",
//     "git_rev": "<short rev or 'unknown'>",
//     "params": { ... run configuration: seeds, reps, sizes ... },
//     "metrics": { "<name>": <number>, ... },
//     "wall_seconds": 1.23
//   }
//
//   trajectory file (schema "difane-bench-trajectory-v1"):
//   {
//     "schema": "difane-bench-trajectory-v1",
//     "git_rev": "...",
//     "base_seed": 7,
//     "experiments": { "E1": <report>, ... }
//   }
//
// Naming convention: metric keys containing "_wall_" (and the report-level
// "wall_seconds" / "git_rev" fields) are host measurements and are excluded
// from byte-determinism guarantees; every other metric is derived from the
// deterministic simulation and must reproduce exactly from the same seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace difane::obs {

// The git revision baked in at configure time (DIFANE_GIT_REV), "unknown"
// when the build was configured outside a git checkout.
const char* build_git_rev();

// True when a metric key names a host measurement — wall-clock timing
// ("_wall_", "wall_seconds") or resident-set size ("_rss_") — rather than a
// deterministic simulation quantity. Host metrics are exempt from the
// byte-identity gates (bench_compare applies them only under an explicit
// --wall-threshold).
bool is_wall_metric(const std::string& name);

struct MetricsReport {
  MetricsReport() = default;
  explicit MetricsReport(std::string experiment_id)
      : experiment(std::move(experiment_id)) {}

  std::string experiment;
  std::string git_rev = build_git_rev();
  Json::Object params;
  std::map<std::string, double> metrics;
  double wall_seconds = 0.0;

  void set(const std::string& name, double value) { metrics[name] = value; }

  Json to_json() const;
  std::string to_json_string(int indent = 2) const;
  // CSV rows: experiment,metric,value — header included.
  std::string to_csv() const;

  // Parse + schema-validate; throws std::runtime_error naming the problem.
  static MetricsReport from_json(const Json& doc);

  void write_json_file(const std::string& path) const;
  void write_csv_file(const std::string& path) const;
};

// Merge repetition reports of one experiment: metrics are averaged (they are
// identical across reps for deterministic benches; averaging smooths the
// wall-clock ones), wall_seconds averaged, params taken from the first rep.
MetricsReport merge_reps(const std::vector<MetricsReport>& reps);

struct Trajectory {
  std::string git_rev = build_git_rev();
  std::uint64_t base_seed = 0;
  std::map<std::string, MetricsReport> experiments;

  Json to_json() const;
  static Trajectory from_json(const Json& doc);
  void write_json_file(const std::string& path) const;
};

// Load + parse a JSON document from disk; throws std::runtime_error with the
// path on I/O or parse failure.
Json load_json_file(const std::string& path);

}  // namespace difane::obs
