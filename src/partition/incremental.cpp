#include "partition/incremental.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "flowspace/header.hpp"
#include "util/contract.hpp"

namespace difane {

IncrementalPartitioner::IncrementalPartitioner(const RuleTable& initial_policy,
                                               PartitionerParams params,
                                               std::uint32_t authority_count)
    : policy_(initial_policy), params_(params), authority_count_(authority_count) {
  expects(authority_count_ >= 1, "IncrementalPartitioner: need >= 1 authority");
  build_initial();
}

void IncrementalPartitioner::build_initial() {
  nodes_.clear();
  Node rootnode;
  rootnode.region = Ternary::wildcard();
  for (const auto& rule : policy_.rules()) rootnode.rules.push_back(rule);
  nodes_.push_back(std::move(rootnode));
  root_ = 0;
  // Split the root (recursively) until capacity holds everywhere.
  std::vector<PartitionId> ignore;
  std::vector<std::uint32_t> pending{root_};
  while (!pending.empty()) {
    const auto at = pending.back();
    pending.pop_back();
    if (nodes_[at].cut_bit < 0 && nodes_[at].rules.size() > params_.capacity) {
      split_leaf(at, ignore);
      if (nodes_[at].cut_bit >= 0) {
        pending.push_back(nodes_[at].left);
        pending.push_back(nodes_[at].right);
      }
    }
  }
}

int IncrementalPartitioner::pick_bit(const std::vector<Rule>& rules,
                                     const Ternary& region) const {
  int best_bit = -1;
  double best_score = std::numeric_limits<double>::infinity();
  const std::size_t n = rules.size();
  for (std::size_t bit = 0; bit < header_bits_used(); ++bit) {
    if (region.care().get(bit)) continue;
    std::size_t n0 = 0, n1 = 0;
    for (const auto& rule : rules) {
      if (!rule.match.care().get(bit)) {
        ++n0;
        ++n1;
      } else if (rule.match.value().get(bit)) {
        ++n1;
      } else {
        ++n0;
      }
    }
    if (n0 == n || n1 == n) continue;
    const double score = static_cast<double>(std::max(n0, n1)) +
                         params_.dup_penalty * static_cast<double>(n0 + n1 - n);
    if (score < best_score) {
      best_score = score;
      best_bit = static_cast<int>(bit);
    }
  }
  return best_bit;
}

void IncrementalPartitioner::sorted_insert(std::vector<Rule>& rules, Rule rule) {
  const auto pos = std::lower_bound(rules.begin(), rules.end(), rule, rule_before);
  rules.insert(pos, std::move(rule));
}

void IncrementalPartitioner::split_leaf(std::uint32_t node,
                                        std::vector<PartitionId>& touched) {
  const int bit = pick_bit(nodes_[node].rules, nodes_[node].region);
  if (bit < 0) return;  // indistinguishable rules: capacity is soft here

  Node left, right;
  left.region = nodes_[node].region;
  left.region.set_exact(static_cast<std::size_t>(bit), 1, 0);
  right.region = nodes_[node].region;
  right.region.set_exact(static_cast<std::size_t>(bit), 1, 1);
  // Sticky assignment: both halves start at the parent's home, so a split
  // moves no rules off-switch until a rebalance decides to.
  left.home = nodes_[node].home;
  right.home = nodes_[node].home;
  for (const auto& rule : nodes_[node].rules) {
    // Re-clip to each child region the rule reaches.
    if (auto li = intersect(rule.match, left.region)) {
      Rule copy = rule;
      copy.match = *li;
      left.rules.push_back(std::move(copy));
    }
    if (auto ri = intersect(rule.match, right.region)) {
      Rule copy = rule;
      copy.match = *ri;
      right.rules.push_back(std::move(copy));
    }
  }
  nodes_[node].rules.clear();
  nodes_[node].rules.shrink_to_fit();
  nodes_[node].cut_bit = bit;
  const auto l = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::move(left));
  const auto r = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::move(right));
  nodes_[node].left = l;
  nodes_[node].right = r;
  touched.push_back(l);
  touched.push_back(r);
}

void IncrementalPartitioner::insert_into(std::uint32_t node, const Rule& rule,
                                         std::vector<PartitionId>& touched) {
  Node& n = nodes_[node];
  if (n.cut_bit >= 0) {
    const auto bit = static_cast<std::size_t>(n.cut_bit);
    const std::uint32_t l = n.left;
    const std::uint32_t r = n.right;
    if (!rule.match.care().get(bit)) {
      insert_into(l, rule, touched);
      insert_into(r, rule, touched);
    } else if (rule.match.value().get(bit)) {
      insert_into(r, rule, touched);
    } else {
      insert_into(l, rule, touched);
    }
    return;
  }
  auto clipped = intersect(rule.match, n.region);
  ensures(clipped.has_value(), "insert_into: routed rule must intersect leaf");
  Rule copy = rule;
  copy.match = *clipped;
  sorted_insert(n.rules, std::move(copy));
  touched.push_back(node);
  if (n.rules.size() > params_.capacity) {
    split_leaf(node, touched);
  }
}

std::vector<PartitionId> IncrementalPartitioner::insert(const Rule& rule) {
  expects(!policy_.contains(rule.id), "IncrementalPartitioner: duplicate rule id");
  policy_.add(rule);
  std::vector<PartitionId> touched;
  insert_into(root_, rule, touched);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

std::vector<PartitionId> IncrementalPartitioner::remove(RuleId id) {
  if (!policy_.remove(id)) return {};
  std::vector<PartitionId> touched;
  std::vector<std::uint32_t> leaves;
  collect_leaves(root_, leaves);
  for (const auto leaf : leaves) {
    auto& rules = nodes_[leaf].rules;
    const auto before = rules.size();
    rules.erase(std::remove_if(rules.begin(), rules.end(),
                               [id](const Rule& r) { return r.id == id; }),
                rules.end());
    if (rules.size() != before) touched.push_back(leaf);
  }
  // Merge sibling leaf pairs that now fit together: re-clip from the policy
  // so the merged leaf is exact, not a union of clipped fragments.
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::uint32_t at = 0; at < nodes_.size(); ++at) {
      Node& n = nodes_[at];
      if (!n.alive || n.cut_bit < 0) continue;
      Node& l = nodes_[n.left];
      Node& r = nodes_[n.right];
      if (l.cut_bit >= 0 || r.cut_bit >= 0) continue;
      // Count unique policy rules intersecting the parent region.
      std::size_t combined = 0;
      for (const auto& rule : policy_.rules()) {
        if (intersects(rule.match, n.region)) ++combined;
      }
      if (combined > params_.capacity) continue;
      std::vector<Rule> rebuilt;
      for (const auto& rule : policy_.rules()) {
        if (auto inter = intersect(rule.match, n.region)) {
          Rule copy = rule;
          copy.match = *inter;
          rebuilt.push_back(std::move(copy));
        }
      }
      // The merged leaf keeps the heavier child's home (ties go left): the
      // bulk of its rules already live there, so the merge itself moves the
      // smaller share.
      n.home = l.rules.size() >= r.rules.size() ? l.home : r.home;
      l.alive = false;
      r.alive = false;
      l.rules.clear();
      r.rules.clear();
      n.cut_bit = -1;
      n.rules = std::move(rebuilt);
      std::sort(n.rules.begin(), n.rules.end(), rule_before);
      touched.push_back(at);
      merged = true;
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

void IncrementalPartitioner::collect_leaves(std::uint32_t node,
                                            std::vector<std::uint32_t>& out) const {
  const Node& n = nodes_[node];
  if (!n.alive) return;
  if (n.cut_bit < 0) {
    out.push_back(node);
    return;
  }
  collect_leaves(n.left, out);
  collect_leaves(n.right, out);
}

std::size_t IncrementalPartitioner::partition_count() const {
  std::vector<std::uint32_t> leaves;
  collect_leaves(root_, leaves);
  return leaves.size();
}

std::size_t IncrementalPartitioner::total_rules() const {
  std::vector<std::uint32_t> leaves;
  collect_leaves(root_, leaves);
  std::size_t n = 0;
  for (const auto leaf : leaves) n += nodes_[leaf].rules.size();
  return n;
}

PartitionPlan IncrementalPartitioner::snapshot() {
  std::vector<std::uint32_t> leaves;
  collect_leaves(root_, leaves);
  // Sticky assignment: seed the per-authority loads from leaves that already
  // have a home, then LPT-pack only the homeless ones (largest first onto
  // the lightest authority — the same packing the batch partitioner uses,
  // restricted to the leaves that actually need a decision).
  std::vector<std::size_t> load(authority_count_, 0);
  std::vector<AuthorityIndex> assignment(leaves.size(), 0);
  std::vector<std::size_t> unassigned;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const Node& n = nodes_[leaves[i]];
    if (n.home >= 0 && static_cast<std::uint32_t>(n.home) < authority_count_) {
      assignment[i] = static_cast<AuthorityIndex>(n.home);
      load[assignment[i]] += n.rules.size();
    } else {
      unassigned.push_back(i);
    }
  }
  std::sort(unassigned.begin(), unassigned.end(),
            [&](std::size_t a, std::size_t b) {
              const auto la = nodes_[leaves[a]].rules.size();
              const auto lb = nodes_[leaves[b]].rules.size();
              if (la != lb) return la > lb;
              return a < b;  // deterministic tie-break by leaf order
            });
  for (const auto i : unassigned) {
    const auto lightest = static_cast<AuthorityIndex>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[i] = lightest;
    load[lightest] += nodes_[leaves[i]].rules.size();
    nodes_[leaves[i]].home = static_cast<std::int32_t>(lightest);
  }
  std::vector<Partition> partitions;
  partitions.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    Partition p;
    p.id = leaves[i];
    p.region = nodes_[leaves[i]].region;
    p.rules = RuleTable(nodes_[leaves[i]].rules);
    p.primary = assignment[i];
    p.backup = authority_count_ > 1 ? (assignment[i] + 1) % authority_count_
                                    : assignment[i];
    partitions.push_back(std::move(p));
  }
  return PartitionPlan(std::move(partitions), policy_.size(), authority_count_);
}

}  // namespace difane
