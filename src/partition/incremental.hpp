// Incremental partition maintenance. Policy churn (rule insert/delete) must
// not trigger a full repartition: DIFANE updates only the partitions whose
// regions the changed rule touches. This class keeps the cut tree mutable,
// splits leaves that overflow, merges sibling leaves that empty out, and
// reports exactly which partitions changed — the metric the churn
// experiment (E7) measures against a full rebuild.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/partitioner.hpp"

namespace difane {

class IncrementalPartitioner {
 public:
  IncrementalPartitioner(const RuleTable& initial_policy, PartitionerParams params,
                         std::uint32_t authority_count);

  // Insert/remove a policy rule. Returns the ids (leaf node indices, stable
  // across ops) of every partition whose rule set changed, including leaves
  // created by splits.
  std::vector<PartitionId> insert(const Rule& rule);
  std::vector<PartitionId> remove(RuleId id);

  // Current policy (kept in sync with the tree).
  const RuleTable& policy() const { return policy_; }

  std::size_t partition_count() const;
  std::size_t total_rules() const;  // sum of clipped copies across leaves

  // Materialize the current tree as a PartitionPlan. Authority assignment is
  // sticky: leaves keep the home they were given by an earlier snapshot
  // (split children inherit the parent's home, a merge keeps the heavier
  // child's), and only homeless leaves are LPT-packed onto the lightest
  // authority. Two successive snapshots without churn are therefore
  // identical, and churn moves only the partitions it touched — the property
  // live migration needs so a re-plan doesn't reshuffle the whole network.
  PartitionPlan snapshot();

 private:
  struct Node {
    Ternary region;
    std::int32_t cut_bit = -1;  // -1 => leaf
    std::uint32_t left = 0, right = 0;
    std::vector<Rule> rules;    // leaf only: clipped copies, priority-sorted
    bool alive = true;          // false once merged away
    std::int32_t home = -1;     // sticky authority assignment; -1 = unassigned
  };

  void build_initial();
  void insert_into(std::uint32_t node, const Rule& rule,
                   std::vector<PartitionId>& touched);
  void split_leaf(std::uint32_t node, std::vector<PartitionId>& touched);
  void collect_leaves(std::uint32_t node, std::vector<std::uint32_t>& out) const;
  int pick_bit(const std::vector<Rule>& rules, const Ternary& region) const;
  static void sorted_insert(std::vector<Rule>& rules, Rule rule);

  RuleTable policy_;
  PartitionerParams params_;
  std::uint32_t authority_count_;
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
};

}  // namespace difane
