#include "partition/migration.hpp"

#include <algorithm>
#include <limits>

#include "util/contract.hpp"

namespace difane {

std::vector<MigrationStep> plan_rebalance_wave(const PartitionPlan& plan,
                                               const MigrationPlannerParams& params) {
  expects(params.wave_size >= 1, "plan_rebalance_wave: wave_size must be >= 1");
  const auto k = plan.authority_count();
  std::vector<MigrationStep> steps;
  if (k < 2) return steps;

  // Work on a mutable copy of the load vector and a per-partition owner map
  // so each planned step is reflected in the next iteration's choice.
  std::vector<std::size_t> load = plan.rules_per_authority();
  const auto& partitions = plan.partitions();
  std::vector<AuthorityIndex> owner(partitions.size());
  for (std::size_t i = 0; i < partitions.size(); ++i) owner[i] = partitions[i].primary;

  std::size_t total = 0;
  for (const auto l : load) total += l;
  const double mean = static_cast<double>(total) / static_cast<double>(k);
  if (mean <= 0.0) return steps;

  while (steps.size() < params.wave_size) {
    const auto heaviest = static_cast<AuthorityIndex>(
        std::max_element(load.begin(), load.end()) - load.begin());
    const auto lightest = static_cast<AuthorityIndex>(
        std::min_element(load.begin(), load.end()) - load.begin());
    if (heaviest == lightest) break;
    if (static_cast<double>(load[heaviest]) <= params.imbalance_threshold * mean)
      break;
    // Smallest partition on the heaviest authority whose move still shrinks
    // the gap (moving it must not just swap which side is overloaded).
    const std::size_t gap = load[heaviest] - load[lightest];
    std::size_t best = partitions.size();
    std::size_t best_rules = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      if (owner[i] != heaviest) continue;
      const std::size_t r = partitions[i].rules.size();
      // Moving r shrinks the pair's gap iff r < gap (new gap = |gap - 2r|).
      if (r == 0 || r >= gap) continue;
      if (r < best_rules) {
        best_rules = r;
        best = i;
      }
    }
    if (best == partitions.size()) break;  // nothing helps; wave done
    steps.push_back(MigrationStep{best, heaviest, lightest, best_rules});
    owner[best] = lightest;
    load[heaviest] -= best_rules;
    load[lightest] += best_rules;
  }
  return steps;
}

std::vector<MigrationStep> diff_assignments(const PartitionPlan& before,
                                            const PartitionPlan& after) {
  expects(before.partitions().size() == after.partitions().size(),
          "diff_assignments: plans must cover the same partitions");
  std::vector<MigrationStep> steps;
  for (std::size_t i = 0; i < before.partitions().size(); ++i) {
    const auto& b = before.partitions()[i];
    const auto& a = after.partitions()[i];
    expects(b.id == a.id, "diff_assignments: partition ordering mismatch");
    if (b.primary == a.primary) continue;
    steps.push_back(MigrationStep{i, b.primary, a.primary, b.rules.size()});
  }
  return steps;
}

std::vector<std::vector<MigrationStep>> batch_waves(std::vector<MigrationStep> steps,
                                                    std::uint32_t wave_size) {
  expects(wave_size >= 1, "batch_waves: wave_size must be >= 1");
  std::vector<std::vector<MigrationStep>> waves;
  for (std::size_t at = 0; at < steps.size(); at += wave_size) {
    const auto end = std::min(steps.size(), at + wave_size);
    waves.emplace_back(steps.begin() + static_cast<std::ptrdiff_t>(at),
                       steps.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return waves;
}

}  // namespace difane
