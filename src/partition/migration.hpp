// Live-migration planning. When the incremental partitioner splits/merges
// under policy churn (or the load across authorities drifts), the controller
// decides *which* partitions to re-home and batches the moves into bounded
// waves — the execution (make-before-break over the control channel) lives
// in core/. Planning is pure: given a plan, emit MigrationSteps.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/plan.hpp"

namespace difane {

// One partition move. `rules` is the clipped-copy count that must be
// installed at the destination (the cost the E7 migration row reports).
struct MigrationStep {
  std::size_t partition_index = 0;  // index into plan.partitions()
  AuthorityIndex from = 0;
  AuthorityIndex to = 0;
  std::size_t rules = 0;
};

struct MigrationPlannerParams {
  std::uint32_t wave_size = 4;        // max concurrent moves per wave
  double imbalance_threshold = 1.5;   // heaviest/mean load ratio that triggers
};

// Greedy rebalance: while the heaviest authority exceeds
// `imbalance_threshold` x mean load, move its smallest partition that still
// helps to the lightest authority. At most `wave_size` steps are returned —
// the caller re-plans after the wave lands, so convergence is incremental
// and the double-occupancy window stays bounded. Deterministic: ties break
// by partition index.
std::vector<MigrationStep> plan_rebalance_wave(const PartitionPlan& plan,
                                               const MigrationPlannerParams& params);

// Diff two assignments of the *same* partition list (e.g. the live plan vs a
// fresh sticky snapshot): one step per partition whose primary differs.
// Both plans must have the same partition count and ordering.
std::vector<MigrationStep> diff_assignments(const PartitionPlan& before,
                                            const PartitionPlan& after);

// Chunk an arbitrary step list into waves of at most `wave_size` (>= 1).
std::vector<std::vector<MigrationStep>> batch_waves(
    std::vector<MigrationStep> steps, std::uint32_t wave_size);

}  // namespace difane
