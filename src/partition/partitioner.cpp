#include "partition/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "classifier/dtree.hpp"
#include "flowspace/header.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace difane {

namespace {

struct LeafRegion {
  Ternary region;
  std::vector<std::uint32_t> rule_indices;  // into the policy's priority order
};

class TreeBuilder {
 public:
  TreeBuilder(const RuleTable& policy, const PartitionerParams& params)
      : policy_(policy), params_(params), rng_(params.seed) {}

  std::vector<LeafRegion> run() {
    std::vector<std::uint32_t> all(policy_.size());
    std::iota(all.begin(), all.end(), 0u);
    recurse(Ternary::wildcard(), all, 0);
    return std::move(leaves_);
  }

 private:
  int pick_bit(const std::vector<std::uint32_t>& rules, const Ternary& region,
               std::size_t* best_max_side) {
    // Candidate bits: inside the used header, not already fixed by the region.
    std::vector<int> separating;
    int best_bit = -1;
    double best_score = std::numeric_limits<double>::infinity();
    const std::size_t n = rules.size();
    for (std::size_t bit = 0; bit < header_bits_used(); ++bit) {
      if (region.care().get(bit)) continue;
      if (params_.strategy == CutStrategy::kIpBitsOnly && !is_ip_bit(bit)) continue;
      std::size_t n0 = 0, n1 = 0;
      for (const auto i : rules) {
        const auto& m = policy_.at(i).match;
        if (!m.care().get(bit)) {
          ++n0;
          ++n1;
        } else if (m.value().get(bit)) {
          ++n1;
        } else {
          ++n0;
        }
      }
      if (n0 == n || n1 == n) continue;  // does not separate
      separating.push_back(static_cast<int>(bit));
      const double score = static_cast<double>(std::max(n0, n1)) +
                           params_.dup_penalty * static_cast<double>(n0 + n1 - n);
      if (score < best_score) {
        best_score = score;
        best_bit = static_cast<int>(bit);
        *best_max_side = std::max(n0, n1);
      }
    }
    if (params_.strategy == CutStrategy::kRandomBit && !separating.empty()) {
      const int bit = separating[rng_.uniform(0, separating.size() - 1)];
      std::size_t n0 = 0, n1 = 0;
      for (const auto i : rules) {
        const auto& m = policy_.at(i).match;
        if (!m.care().get(static_cast<std::size_t>(bit))) {
          ++n0;
          ++n1;
        } else if (m.value().get(static_cast<std::size_t>(bit))) {
          ++n1;
        } else {
          ++n0;
        }
      }
      *best_max_side = std::max(n0, n1);
      return bit;
    }
    return best_bit;
  }

  static bool is_ip_bit(std::size_t bit) {
    const auto& src = field_spec(Field::kIpSrc);
    const auto& dst = field_spec(Field::kIpDst);
    return (bit >= src.offset && bit < src.offset + src.width) ||
           (bit >= dst.offset && bit < dst.offset + dst.width);
  }

  void recurse(const Ternary& region, std::vector<std::uint32_t>& rules,
               std::size_t depth) {
    if (rules.size() <= params_.capacity || depth >= params_.max_depth) {
      leaves_.push_back(LeafRegion{region, std::move(rules)});
      return;
    }
    std::size_t best_max_side = rules.size();
    const int bit = pick_bit(rules, region, &best_max_side);
    // No separating bit, or the best cut leaves almost everything on one
    // side (pure duplication): stop here, capacity becomes soft.
    if (bit < 0 || static_cast<double>(best_max_side) >
                       params_.min_progress * static_cast<double>(rules.size())) {
      leaves_.push_back(LeafRegion{region, std::move(rules)});
      return;
    }
    std::vector<std::uint32_t> left, right;
    for (const auto i : rules) {
      const auto& m = policy_.at(i).match;
      if (!m.care().get(static_cast<std::size_t>(bit))) {
        left.push_back(i);
        right.push_back(i);
      } else if (m.value().get(static_cast<std::size_t>(bit))) {
        right.push_back(i);
      } else {
        left.push_back(i);
      }
    }
    rules.clear();
    rules.shrink_to_fit();
    Ternary left_region = region;
    left_region.set_exact(static_cast<std::size_t>(bit), 1, 0);
    Ternary right_region = region;
    right_region.set_exact(static_cast<std::size_t>(bit), 1, 1);
    recurse(left_region, left, depth + 1);
    recurse(right_region, right, depth + 1);
  }

  const RuleTable& policy_;
  const PartitionerParams& params_;
  Rng rng_;
  std::vector<LeafRegion> leaves_;
};

// Longest-processing-time greedy bin packing: heaviest leaf first onto the
// currently lightest authority. The load metric is *traffic* (summed,
// region-scaled rule weights), not rule count: DIFANE balances the miss load
// across authority switches, and an authority that owns a rule-sparse but
// traffic-heavy region would otherwise become the hot spot.
std::vector<AuthorityIndex> assign_leaves(const std::vector<LeafRegion>& leaves,
                                          const std::vector<double>& leaf_weights,
                                          std::uint32_t k) {
  std::vector<std::size_t> order(leaves.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return leaf_weights[a] > leaf_weights[b];
  });
  std::vector<double> load(k, 0.0);
  std::vector<AuthorityIndex> assignment(leaves.size(), 0);
  for (const auto leaf : order) {
    const auto lightest = static_cast<AuthorityIndex>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[leaf] = lightest;
    load[lightest] += leaf_weights[leaf];
  }
  return assignment;
}

// A clipped copy of a rule carries the share of the rule's traffic that its
// clipped region represents: halving the region (one more cared bit) halves
// the expected traffic, assuming traffic uniform within the rule's region.
double clipped_weight(const Rule& rule, const Ternary& clipped) {
  const int shrink = rule.match.log2_size() - clipped.log2_size();
  return rule.weight * std::pow(2.0, -static_cast<double>(shrink));
}

}  // namespace

PartitionPlan Partitioner::build(const RuleTable& policy,
                                 std::uint32_t authority_count) const {
  expects(authority_count >= 1, "Partitioner: need at least one authority switch");
  // Produce at least one partition per authority switch: a plan with fewer
  // leaves than switches would leave the extras idle. Shrinking the
  // effective leaf capacity to ~(rules/k) forces enough cuts to spread load.
  PartitionerParams effective = params_;
  if (authority_count > 1 && !policy.empty()) {
    effective.capacity = std::max<std::size_t>(
        1, std::min(params_.capacity, policy.size() / authority_count));
  }
  TreeBuilder builder(policy, effective);
  auto leaves = builder.run();
  ensures(!leaves.empty(), "Partitioner: tree produced no leaves");

  std::vector<double> leaf_weights(leaves.size(), 0.0);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (const auto idx : leaves[i].rule_indices) {
      const Rule& rule = policy.at(idx);
      if (const auto inter = intersect(rule.match, leaves[i].region)) {
        leaf_weights[i] += clipped_weight(rule, *inter);
      }
    }
  }
  const auto assignment = assign_leaves(leaves, leaf_weights, authority_count);

  // Clipped copies get fresh ids (a policy rule may land in several
  // partitions; installed copies must not collide), with `origin` pointing
  // back at the policy rule.
  RuleId next_copy_id = 0;
  for (const auto& rule : policy.rules()) {
    next_copy_id = std::max(next_copy_id, rule.id + 1);
  }

  std::vector<Partition> partitions;
  partitions.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    Partition p;
    p.id = static_cast<PartitionId>(i);
    p.region = leaves[i].region;
    // Clip the policy to the leaf region. Leaf membership was tracked by cut
    // bits, which is equivalent to intersecting with the region pattern.
    std::vector<Rule> clipped;
    clipped.reserve(leaves[i].rule_indices.size());
    for (const auto idx : leaves[i].rule_indices) {
      const Rule& rule = policy.at(idx);
      auto inter = intersect(rule.match, p.region);
      // Membership by cut bits implies intersection is non-empty.
      ensures(inter.has_value(), "Partitioner: leaf member does not intersect region");
      Rule copy = rule;
      copy.match = *inter;
      copy.weight = clipped_weight(rule, *inter);
      copy.origin = rule.origin_or_self();
      copy.id = next_copy_id++;
      clipped.push_back(std::move(copy));
    }
    p.rules = RuleTable(std::move(clipped));
    p.primary = assignment[i];
    p.backup = authority_count > 1 ? (assignment[i] + 1) % authority_count
                                   : assignment[i];
    partitions.push_back(std::move(p));
  }
  return PartitionPlan(std::move(partitions), policy.size(), authority_count);
}

}  // namespace difane
