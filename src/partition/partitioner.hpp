// DIFANE's decision-tree flow-space partitioner. Recursively cuts the flow
// space on header bits, duplicating rules that span a cut, until every leaf
// fits an authority switch's TCAM budget; then bin-packs leaves onto the k
// authority switches. The cut-bit choice trades rule duplication against
// balance, like the paper's HiCuts-style partitioning.
#pragma once

#include <cstdint>

#include "partition/plan.hpp"

namespace difane {

enum class CutStrategy : std::uint8_t {
  kBestBit,    // scan all header bits, pick min(duplication+imbalance) [paper]
  kIpBitsOnly, // restrict cuts to src/dst IP bits (ablation: fixed dimensions)
  kRandomBit,  // random separating bit (ablation: no cost function)
};

struct PartitionerParams {
  // Max rules per partition (authority-switch TCAM budget per region).
  std::size_t capacity = 1000;
  // Cut scoring: score = max(n0,n1) + dup_penalty * duplicated.
  double dup_penalty = 1.0;
  CutStrategy strategy = CutStrategy::kBestBit;
  std::uint64_t seed = 1;       // for kRandomBit
  std::size_t max_depth = 200;  // recursion bound (>= header bits suffices)
  // Stop splitting a leaf when even the best cut keeps more than this
  // fraction of its rules on one side: past that point cuts only duplicate
  // broad wildcard rules without spreading load. Capacity becomes soft for
  // such leaves (wildcard-heavy policies cannot be partitioned arbitrarily
  // finely — every partition must carry its own copy of rules like the
  // default).
  double min_progress = 0.95;
};

class Partitioner {
 public:
  explicit Partitioner(PartitionerParams params = {}) : params_(params) {}

  // Partition `policy` for `authority_count` authority switches. Primary
  // assignment balances rule counts (LPT greedy); backups are primary+1 mod k.
  PartitionPlan build(const RuleTable& policy, std::uint32_t authority_count) const;

  const PartitionerParams& params() const { return params_; }

 private:
  PartitionerParams params_;
};

}  // namespace difane
