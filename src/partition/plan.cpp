#include "partition/plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/contract.hpp"

namespace difane {

PartitionPlan::PartitionPlan(std::vector<Partition> partitions,
                             std::size_t original_rule_count,
                             std::uint32_t authority_count)
    : partitions_(std::move(partitions)),
      original_rule_count_(original_rule_count),
      authority_count_(authority_count) {
  expects(!partitions_.empty(), "PartitionPlan: need at least one partition");
  expects(authority_count_ >= 1, "PartitionPlan: need at least one authority");
}

const Partition& PartitionPlan::find(const BitVec& packet) const {
  for (const auto& p : partitions_) {
    if (p.region.matches(packet)) return p;
  }
  // Regions cover the full space by construction; reaching here is a bug.
  throw contract_violation("PartitionPlan: packet in no partition region");
}

std::vector<Rule> PartitionPlan::make_partition_rules(Priority priority,
                                                      RuleId first_id,
                                                      bool use_backup) const {
  std::vector<Rule> out;
  out.reserve(partitions_.size());
  RuleId id = first_id;
  for (const auto& p : partitions_) {
    Rule r;
    r.id = id++;
    r.priority = priority;
    r.match = p.region;
    r.action = Action::encap(use_backup ? p.backup : p.primary);
    out.push_back(std::move(r));
  }
  return out;
}

std::size_t PartitionPlan::total_rules() const {
  std::size_t n = 0;
  for (const auto& p : partitions_) n += p.rules.size();
  return n;
}

double PartitionPlan::duplication_factor() const {
  if (original_rule_count_ == 0) return 1.0;
  return static_cast<double>(total_rules()) /
         static_cast<double>(original_rule_count_);
}

std::vector<std::size_t> PartitionPlan::rules_per_authority() const {
  std::vector<std::size_t> counts(authority_count_, 0);
  for (const auto& p : partitions_) counts.at(p.primary) += p.rules.size();
  return counts;
}

std::size_t PartitionPlan::max_rules_per_authority() const {
  const auto counts = rules_per_authority();
  return *std::max_element(counts.begin(), counts.end());
}

std::optional<std::string> PartitionPlan::validate(const RuleTable& policy, Rng& rng,
                                                   std::size_t samples) const {
  for (std::size_t s = 0; s < samples; ++s) {
    // Alternate uniform packets with packets biased into policy rules.
    BitVec packet;
    if (s % 2 == 0 || policy.empty()) {
      packet = Ternary::wildcard().sample_point(rng);
    } else {
      packet = policy.at(rng.uniform(0, policy.size() - 1)).match.sample_point(rng);
    }
    // Disjointness + completeness.
    std::size_t owners = 0;
    const Partition* owner = nullptr;
    for (const auto& p : partitions_) {
      if (p.region.matches(packet)) {
        ++owners;
        owner = &p;
      }
    }
    if (owners != 1) {
      std::ostringstream os;
      os << "packet owned by " << owners << " partitions (expected 1)";
      return os.str();
    }
    // Semantic agreement inside the owner region.
    const Rule* want = policy.match(packet);
    const Rule* got = owner->rules.match(packet);
    const bool same = (want == nullptr && got == nullptr) ||
                      (want != nullptr && got != nullptr && want->action == got->action);
    if (!same) {
      std::ostringstream os;
      os << "partition " << owner->id << " disagrees with policy: want "
         << (want ? want->to_string() : "<none>") << " got "
         << (got ? got->to_string() : "<none>");
      return os.str();
    }
  }
  return std::nullopt;
}

void PartitionPlan::fail_over(AuthorityIndex failed) {
  for (auto& p : partitions_) {
    if (p.primary == failed) std::swap(p.primary, p.backup);
  }
}

void PartitionPlan::re_home(std::size_t index, AuthorityIndex new_primary) {
  expects(index < partitions_.size(), "re_home: partition index out of range");
  expects(new_primary < authority_count_, "re_home: authority out of range");
  auto& p = partitions_[index];
  if (p.primary == new_primary) return;
  const AuthorityIndex old_primary = p.primary;
  p.primary = new_primary;
  p.backup = old_primary;
}

}  // namespace difane
