// Partition plan: the output of DIFANE's flow-space partitioning. The plan
// carves the whole flow space into disjoint ternary regions (the leaves of a
// cut tree), clips the policy into each region, and assigns regions to
// authority switches. Partition rules — the low-priority redirect rules the
// controller installs in *every* switch — are synthesized from the plan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flowspace/algebra.hpp"
#include "flowspace/rule_table.hpp"

namespace difane {

using PartitionId = std::uint32_t;
using AuthorityIndex = std::uint32_t;  // 0..k-1, mapped to switch ids by core

struct Partition {
  PartitionId id = 0;
  Ternary region;          // disjoint from all other partitions; union covers all
  RuleTable rules;         // policy clipped to `region`
  AuthorityIndex primary = 0;
  AuthorityIndex backup = 0;  // used when the primary authority switch fails
};

class PartitionPlan {
 public:
  PartitionPlan() = default;
  PartitionPlan(std::vector<Partition> partitions, std::size_t original_rule_count,
                std::uint32_t authority_count);

  const std::vector<Partition>& partitions() const { return partitions_; }
  std::uint32_t authority_count() const { return authority_count_; }
  std::size_t original_rule_count() const { return original_rule_count_; }

  // The partition whose region contains `packet`. Regions are disjoint and
  // complete by construction, so exactly one matches.
  const Partition& find(const BitVec& packet) const;

  // Low-priority redirect rules: one per partition, encap to the partition's
  // primary (or backup) authority. `priority` should sit below every policy
  // priority; ids are allocated from `first_id`.
  std::vector<Rule> make_partition_rules(Priority priority, RuleId first_id,
                                         bool use_backup = false) const;

  // ---- cost metrics (what the paper's partitioning evaluation reports) ----
  // Sum of clipped rule copies across all partitions.
  std::size_t total_rules() const;
  // total_rules / original policy size: the duplication overhead of cutting.
  double duplication_factor() const;
  // Rules hosted by each authority switch (sum over its partitions).
  std::vector<std::size_t> rules_per_authority() const;
  std::size_t max_rules_per_authority() const;

  // Sampling check that regions are disjoint and complete, and that each
  // partition's clipped table agrees with `policy` inside its region.
  // Returns a description of the first violation, or nullopt.
  std::optional<std::string> validate(const RuleTable& policy, Rng& rng,
                                      std::size_t samples) const;

  // Reassign the partitions of a failed authority to their backups.
  void fail_over(AuthorityIndex failed);

  // Live migration: re-home partition `index` to `new_primary`. The old
  // primary becomes the backup (never retired from the plan), so a crash of
  // the new home mid- or post-migration rolls back via the ordinary
  // fail_over path to a fully stocked copy. Region and rules are untouched —
  // bound AuthorityNode pointers into partitions() stay valid.
  void re_home(std::size_t index, AuthorityIndex new_primary);

 private:
  std::vector<Partition> partitions_;
  std::size_t original_rule_count_ = 0;
  std::uint32_t authority_count_ = 0;
};

}  // namespace difane
