#include "proptest/gen.hpp"

#include <algorithm>

#include "flowspace/header.hpp"

namespace difane::proptest {

namespace {

// Common transport ports (the values real ACLs constrain) plus a random tail.
std::uint16_t gen_port(Rng& rng) {
  static constexpr std::uint16_t kCommon[] = {22, 53, 80, 123, 443, 8080};
  if (rng.bernoulli(0.7)) {
    return kCommon[rng.uniform(0, std::size(kCommon) - 1)];
  }
  return static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
}

std::size_t gen_prefix_len(Rng& rng, double wildcard_density) {
  // Wide prefixes (the overlap makers) with probability wildcard_density,
  // otherwise the /16../32 range real configs use.
  if (rng.bernoulli(wildcard_density)) return rng.uniform(4, 16);
  return rng.uniform(16, 32);
}

// Widen or narrow an existing pattern by a few bits, staying inside the used
// header so derived rules keep overlapping their ancestors.
Ternary mutate_pattern(Rng& rng, const Ternary& base) {
  BitVec value = base.value();
  BitVec care = base.care();
  const std::size_t used = header_bits_used();
  const int flips = static_cast<int>(rng.uniform(1, 6));
  for (int i = 0; i < flips; ++i) {
    const std::size_t bit = rng.uniform(0, used - 1);
    if (care.get(bit)) {
      if (rng.bernoulli(0.5)) {
        care.set(bit, false);  // widen: wildcard this bit
      } else {
        value.set(bit, !value.get(bit));  // shift: sibling pattern
      }
    } else {
      care.set(bit, true);  // narrow: pin this bit
      value.set(bit, rng.bernoulli(0.5));
    }
  }
  return Ternary(value, care);
}

}  // namespace

Ternary gen_pattern(Rng& rng, const TableGenParams& params) {
  Ternary t;
  if (rng.bernoulli(params.p_dim)) {
    match_prefix(t, Field::kIpSrc, rng.next_u64() & 0xffffffffu,
                 gen_prefix_len(rng, params.wildcard_density));
  }
  if (rng.bernoulli(params.p_dim)) {
    match_prefix(t, Field::kIpDst, rng.next_u64() & 0xffffffffu,
                 gen_prefix_len(rng, params.wildcard_density));
  }
  if (rng.bernoulli(params.p_dim * 0.7)) {
    static constexpr std::uint8_t kProtos[] = {1, 6, 17};
    match_exact(t, Field::kIpProto, kProtos[rng.uniform(0, 2)]);
  }
  if (rng.bernoulli(params.p_dim * 0.6)) {
    match_exact(t, Field::kTpDst, gen_port(rng));
  }
  return t;
}

RuleTable gen_table(Rng& rng, const TableGenParams& params) {
  const std::size_t n = rng.uniform(params.min_rules, params.max_rules);
  std::vector<Rule> rules;
  rules.reserve(n + 1);
  Priority priority = static_cast<Priority>(2 * n + 2);
  for (std::size_t i = 0; i < n; ++i) {
    Rule r;
    r.id = static_cast<RuleId>(i);
    if (i > 0 && !rng.bernoulli(params.p_priority_tie)) {
      priority -= static_cast<Priority>(rng.uniform(1, 2));
    }
    r.priority = priority;
    if (!rules.empty() && rng.bernoulli(params.p_derive)) {
      r.match = mutate_pattern(rng, rules[rng.uniform(0, rules.size() - 1)].match);
    } else {
      r.match = gen_pattern(rng, params);
    }
    r.action = rng.bernoulli(params.p_drop_action)
                   ? Action::drop()
                   : Action::forward(static_cast<std::uint32_t>(
                         rng.uniform(0, params.egress_count - 1)));
    r.weight = rng.uniform01() + 0.01;
    rules.push_back(std::move(r));
  }
  if (params.add_default) {
    Rule def;
    def.id = static_cast<RuleId>(n);
    def.priority = priority - 1;
    def.match = Ternary::wildcard();
    def.action = Action::forward(0);
    def.weight = 0.01;
    rules.push_back(std::move(def));
  }
  return RuleTable(std::move(rules));
}

BitVec gen_boundary_packet(Rng& rng, const RuleTable& table) {
  if (table.empty()) return Ternary::wildcard().sample_point(rng);
  const auto pick = [&]() -> const Ternary& {
    return table.at(rng.uniform(0, table.size() - 1)).match;
  };
  switch (rng.uniform(0, 3)) {
    case 0:
      return Ternary::wildcard().sample_point(rng);
    case 1:
      return pick().sample_point(rng);
    case 2: {
      // A point where two rules compete: sample their intersection.
      const Ternary& a = pick();
      for (int tries = 0; tries < 4; ++tries) {
        if (const auto both = intersect(a, pick())) return both->sample_point(rng);
      }
      return a.sample_point(rng);
    }
    default: {
      // One bit off a rule's border: flips in and out of neighboring rules.
      BitVec pkt = pick().sample_point(rng);
      const std::size_t bit = rng.uniform(0, header_bits_used() - 1);
      pkt.set(bit, !pkt.get(bit));
      return pkt;
    }
  }
}

std::vector<BitVec> gen_packets(Rng& rng, const RuleTable& table, std::size_t count) {
  std::vector<BitVec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(gen_boundary_packet(rng, table));
  return out;
}

TopoGen gen_topology(Rng& rng) {
  TopoGen t;
  t.edge_switches = rng.uniform(1, 4);
  t.core_switches = rng.uniform(1, 3);
  t.authority_count = static_cast<std::uint32_t>(rng.uniform(1, t.core_switches));
  static constexpr std::size_t kCaches[] = {8, 16, 64, 256};
  t.edge_cache_capacity = kCaches[rng.uniform(0, std::size(kCaches) - 1)];
  t.partition_capacity = rng.uniform(4, 32);
  return t;
}

std::vector<FlowSpec> flows_from_packets(const std::vector<BitVec>& packets,
                                         std::uint32_t ingress_count,
                                         double gap) {
  std::vector<FlowSpec> flows;
  flows.reserve(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    FlowSpec f;
    f.id = i;
    f.header = packets[i];
    f.start = static_cast<double>(i) * gap;
    f.packets = 1 + i % 3;
    f.packet_gap = gap / 4.0;
    f.ingress_index = static_cast<std::uint32_t>(i % std::max(1u, ingress_count));
    flows.push_back(std::move(f));
  }
  return flows;
}

}  // namespace difane::proptest
