// Seeded generators for the property-based testing harness. Everything here
// is a pure function of the Rng handed in, so a property failure replays
// bit-for-bit from its printed case seed. The generators are tuned to make
// the *hard* inputs likely: rule tables with dense wildcard overlap, nested
// prefixes, priority ties, and packets sitting on rule boundaries — the
// regime where wildcard caching and cut-based partitioning break subtly.
#pragma once

#include <cstdint>
#include <vector>

#include "flowspace/rule_table.hpp"
#include "util/rng.hpp"
#include "workload/trafficgen.hpp"

namespace difane::proptest {

struct TableGenParams {
  std::size_t min_rules = 2;
  std::size_t max_rules = 48;
  // Probability a rule is derived from an already-generated rule (copy its
  // pattern, then widen/narrow a few bits) instead of drawn fresh. Derived
  // rules are what creates overlap chains and shadowing.
  double p_derive = 0.5;
  // For fresh rules: probability each of the classic 5-tuple dimensions is
  // constrained at all (src/dst IP prefix, proto, dst port).
  double p_dim = 0.6;
  // Of constrained IP dimensions, bias toward short prefixes (wide rules).
  // Higher = more wildcard bits = denser overlap.
  double wildcard_density = 0.4;
  // Probability two consecutive rules share a priority (tie-break coverage).
  double p_priority_tie = 0.3;
  double p_drop_action = 0.3;
  std::uint32_t egress_count = 4;
  // Append a lowest-priority full-wildcard forward rule so every packet
  // matches (required by the end-to-end scenarios; partition/classifier
  // oracles also exercise tables without it).
  bool add_default = true;
};

// Random ternary pattern constraining a few 5-tuple dimensions.
Ternary gen_pattern(Rng& rng, const TableGenParams& params);

// Random rule table. Ids are 0..n-1 in generation order; priorities descend
// in bands with occasional ties; weights are uniform.
RuleTable gen_table(Rng& rng, const TableGenParams& params);

// A packet biased to land on decision boundaries: inside a random rule, in
// the intersection of two overlapping rules, one bit-flip off a rule's
// border, or uniformly random. Tables may be empty (falls back to uniform).
BitVec gen_boundary_packet(Rng& rng, const RuleTable& table);

// A batch of boundary-biased packets.
std::vector<BitVec> gen_packets(Rng& rng, const RuleTable& table, std::size_t count);

// Small random two-tier scenario shape for the end-to-end properties.
struct TopoGen {
  std::size_t edge_switches = 2;
  std::size_t core_switches = 1;
  std::uint32_t authority_count = 1;
  std::size_t edge_cache_capacity = 64;
  std::size_t partition_capacity = 16;
};

TopoGen gen_topology(Rng& rng);

// Deterministic flow specs from a packet list: flow i starts at i * gap with
// 1..3 packets, spread round-robin over `ingress_count` ingresses.
std::vector<FlowSpec> flows_from_packets(const std::vector<BitVec>& packets,
                                         std::uint32_t ingress_count,
                                         double gap = 5e-3);

}  // namespace difane::proptest
