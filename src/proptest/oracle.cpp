#include "proptest/oracle.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "classifier/linear.hpp"
#include "core/authority.hpp"
#include "core/system.hpp"
#include "flowspace/header.hpp"
#include "flowspace/minimize.hpp"
#include "partition/incremental.hpp"
#include "switchsim/flow_table.hpp"

namespace difane::proptest {

namespace {

std::string describe(const Rule* r) { return r ? r->to_string() : "<none>"; }

// Winner identity across clipped/cached copies: the policy rule it descends
// from. Action equality is checked separately (a copy must act identically).
bool same_winner(const Rule* want, const Rule* got) {
  if ((want == nullptr) != (got == nullptr)) return false;
  if (want == nullptr) return true;
  return want->origin_or_self() == got->origin_or_self() &&
         want->action == got->action;
}

// Probe packets for an oracle: the counterexample's own packets plus
// deterministically sampled boundary packets.
std::vector<BitVec> probes_for(const Counterexample& cex, const RuleTable& table,
                               std::uint64_t sample_seed, std::size_t samples) {
  std::vector<BitVec> probes = cex.packets;
  Rng rng(sample_seed);
  for (std::size_t i = 0; i < samples; ++i) {
    probes.push_back(gen_boundary_packet(rng, table));
  }
  return probes;
}

}  // namespace

Violation check_classifier_agreement(const Counterexample& cex,
                                     const DTreeParams& params) {
  const RuleTable table = cex.table();
  const LinearClassifier linear{table};
  const DTreeClassifier tree(table, params);
  for (std::size_t i = 0; i < cex.packets.size(); ++i) {
    const Rule* a = linear.classify(cex.packets[i]);
    const Rule* b = tree.classify(cex.packets[i]);
    const bool same = (a == nullptr && b == nullptr) ||
                      (a != nullptr && b != nullptr && a->id == b->id);
    if (!same) {
      std::ostringstream os;
      os << "packet[" << i << "]: linear=" << describe(a) << " dtree=" << describe(b);
      return os.str();
    }
  }
  return std::nullopt;
}

namespace {

// Shared body for the clean, faulty, and migrating transparency oracles.
// `difane_faults` (nullable) applies only to the DIFANE side, together with
// reliable control channels; the NOX oracle always runs on the clean wire.
// `migration_seed` (nullable) additionally enables live migration on the
// DIFANE side and schedules 1..3 deterministic mid-trace re-homes.
Violation nox_vs_difane_impl(const Counterexample& cex, const TopoGen& topo,
                             CacheStrategy strategy, double cache_idle_timeout,
                             const FaultPlan* difane_faults,
                             const std::uint64_t* migration_seed = nullptr) {
  const RuleTable policy = cex.table();
  const auto flows = flows_from_packets(
      cex.packets, static_cast<std::uint32_t>(topo.edge_switches));

  ScenarioParams params;
  params.topology = TopologyKind::kTwoTier;
  params.edge_switches = topo.edge_switches;
  params.core_switches = topo.core_switches;
  params.authority_count = topo.authority_count;
  params.edge_cache_capacity = topo.edge_cache_capacity;
  params.partitioner.capacity = topo.partition_capacity;
  params.cache_strategy = strategy;
  params.timings.cache_idle_timeout = cache_idle_timeout;
  params.verify_cache_hits = true;

  params.mode = Mode::kDifane;
  if (difane_faults != nullptr) {
    params.reliable_ctrl = true;
    params.faults = *difane_faults;
  }
  if (migration_seed != nullptr) {
    params.authority_count = std::max<std::uint32_t>(2, params.authority_count);
    // Authorities live on the core tier.
    params.core_switches =
        std::max<std::size_t>(params.core_switches, params.authority_count);
    params.reliable_ctrl = true;  // migration's transport
    params.migration.enabled = true;
    params.migration.wave_size = 2;
    params.migration.drain_timeout = 0.004;
  }
  Scenario difane(policy, params);
  if (migration_seed != nullptr) {
    // 1..3 re-homes at 10..60ms — inside the trace (flow i starts at
    // i * 5ms). Destinations drawn uniformly; a re-home to the current
    // primary is a documented no-op, so some draws deliberately test that.
    Rng mrng(*migration_seed);
    const std::uint64_t n_parts = difane.plan()->partitions().size();
    const std::uint64_t moves = 1 + mrng.uniform(0, 2);
    for (std::uint64_t i = 0; i < moves; ++i) {
      const auto index = static_cast<std::size_t>(mrng.uniform(0, n_parts - 1));
      const auto dest = static_cast<AuthorityIndex>(
          mrng.uniform(0, params.authority_count - 1));
      difane.request_rehome(index, dest,
                            0.01 + 0.02 * static_cast<double>(i) +
                                mrng.uniform01() * 0.01);
    }
  }
  const auto& ds = difane.run(flows);

  params.mode = Mode::kNox;
  params.reliable_ctrl = false;
  params.faults = FaultPlan{};
  params.migration = MigrationParams{};  // NOX has no partitions to move
  Scenario nox(policy, params);
  const auto& ns = nox.run(flows);

  // Transparency is only promised without capacity losses; the generators
  // keep rates far below every service rate, so losses mean the comparison
  // is vacuous, not that the property failed.
  for (const auto* s : {&ds, &ns}) {
    if (s->queue_rejects > 0 || s->tracer.dropped(DropReason::kControllerQueue) > 0 ||
        s->tracer.dropped(DropReason::kSwitchFailed) > 0 ||
        s->tracer.dropped(DropReason::kTtlExceeded) > 0 ||
        s->tracer.dropped(DropReason::kUnreachable) > 0) {
      return std::nullopt;
    }
  }

  std::ostringstream os;
  if (ds.cache_hit_mismatches != 0) {
    os << ds.cache_hit_mismatches << " ingress cache hits named the wrong winner";
    return os.str();
  }
  const auto agg = [&](const char* what, std::uint64_t d, std::uint64_t n) -> Violation {
    if (d == n) return std::nullopt;
    std::ostringstream o;
    o << what << ": difane=" << d << " nox=" << n;
    return o.str();
  };
  if (auto v = agg("delivered", ds.tracer.delivered(), ns.tracer.delivered())) return v;
  if (auto v = agg("policy drops", ds.tracer.dropped(DropReason::kPolicyDrop),
                   ns.tracer.dropped(DropReason::kPolicyDrop))) {
    return v;
  }
  if (auto v = agg("no-rule drops", ds.tracer.dropped(DropReason::kNoRule),
                   ns.tracer.dropped(DropReason::kNoRule))) {
    return v;
  }

  // DIFANE per-policy-rule counters must equal the single-table reference
  // (which is, by construction, what the NOX controller computes per punt).
  struct Ref {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  std::map<RuleId, Ref> ref;
  for (const auto& flow : flows) {
    if (const Rule* winner = policy.match(flow.header)) {
      ref[winner->id].packets += flow.packets;
      ref[winner->id].bytes += 100ull * flow.packets;
    }
  }
  std::map<RuleId, Ref> got;
  for (const auto& row : difane.query_flow_stats()) {
    got[row.origin] = Ref{row.packets, row.bytes};
  }
  for (const auto& [origin, want] : ref) {
    const auto it = got.find(origin);
    if (it == got.end() || it->second.packets != want.packets ||
        it->second.bytes != want.bytes) {
      os << "rule " << origin << " counters: want " << want.packets << " pkts/"
         << want.bytes << " B, got "
         << (it == got.end() ? std::string("<missing>")
                             : std::to_string(it->second.packets) + " pkts/" +
                                   std::to_string(it->second.bytes) + " B");
      return os.str();
    }
  }
  for (const auto& [origin, counters] : got) {
    if (counters.packets != 0 && ref.find(origin) == ref.end()) {
      os << "phantom counters for rule " << origin << " (" << counters.packets
         << " pkts)";
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace

Violation check_nox_vs_difane(const Counterexample& cex, const TopoGen& topo,
                              CacheStrategy strategy, double cache_idle_timeout) {
  return nox_vs_difane_impl(cex, topo, strategy, cache_idle_timeout, nullptr);
}

Violation check_nox_vs_difane_faulty(const Counterexample& cex, const TopoGen& topo,
                                     CacheStrategy strategy,
                                     double cache_idle_timeout,
                                     const FaultPlan& difane_faults) {
  return nox_vs_difane_impl(cex, topo, strategy, cache_idle_timeout,
                            &difane_faults);
}

Violation check_nox_vs_difane_migrating(const Counterexample& cex,
                                        const TopoGen& topo,
                                        CacheStrategy strategy,
                                        double cache_idle_timeout,
                                        const FaultPlan& difane_faults,
                                        std::uint64_t migration_seed) {
  return nox_vs_difane_impl(cex, topo, strategy, cache_idle_timeout,
                            &difane_faults, &migration_seed);
}

Violation check_partition(const Counterexample& cex, const PartitionerParams& params,
                          std::uint32_t authority_count, std::uint64_t sample_seed,
                          std::size_t samples) {
  const RuleTable policy = cex.table();
  const PartitionPlan plan = Partitioner(params).build(policy, authority_count);
  std::ostringstream os;

  // Every policy rule reaches at least one partition.
  std::unordered_map<RuleId, bool> reachable;
  for (const auto& rule : policy.rules()) reachable[rule.origin_or_self()] = false;
  for (const auto& p : plan.partitions()) {
    for (const auto& rule : p.rules.rules()) reachable[rule.origin_or_self()] = true;
  }
  for (const auto& [id, seen] : reachable) {
    if (!seen) {
      os << "policy rule " << id << " unreachable: clipped into no partition";
      return os.str();
    }
  }

  // Capacity holds except where the partitioner provably could not cut: the
  // best-scoring separating bit (the one it would have chosen) leaves more
  // than min_progress of the rules on one side. Mirrors the effective
  // capacity shrink build() applies for multi-authority plans. kRandomBit
  // stops on whatever bit it sampled, so over-capacity leaves prove nothing.
  std::size_t effective = params.capacity;
  if (authority_count > 1 && !policy.empty()) {
    effective = std::max<std::size_t>(
        1, std::min(params.capacity, policy.size() / authority_count));
  }
  const auto& ip_src = field_spec(Field::kIpSrc);
  const auto& ip_dst = field_spec(Field::kIpDst);
  const auto is_ip_bit = [&](std::size_t bit) {
    return (bit >= ip_src.offset && bit < ip_src.offset + ip_src.width) ||
           (bit >= ip_dst.offset && bit < ip_dst.offset + ip_dst.width);
  };
  for (const auto& p : plan.partitions()) {
    const std::size_t n = p.rules.size();
    if (n <= effective || params.strategy == CutStrategy::kRandomBit) continue;
    if (static_cast<std::size_t>(p.region.care_bits()) >= params.max_depth) continue;
    int best_bit = -1;
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best_max_side = n;
    for (std::size_t bit = 0; bit < header_bits_used(); ++bit) {
      if (p.region.care().get(bit)) continue;
      if (params.strategy == CutStrategy::kIpBitsOnly && !is_ip_bit(bit)) continue;
      std::size_t n0 = 0, n1 = 0;
      for (const auto& rule : p.rules.rules()) {
        if (!rule.match.care().get(bit)) {
          ++n0;
          ++n1;
        } else if (rule.match.value().get(bit)) {
          ++n1;
        } else {
          ++n0;
        }
      }
      if (n0 == n || n1 == n) continue;
      const double score = static_cast<double>(std::max(n0, n1)) +
                           params.dup_penalty * static_cast<double>(n0 + n1 - n);
      if (score < best_score) {
        best_score = score;
        best_bit = static_cast<int>(bit);
        best_max_side = std::max(n0, n1);
      }
    }
    if (best_bit >= 0 &&
        static_cast<double>(best_max_side) <=
            params.min_progress * static_cast<double>(n)) {
      os << "partition " << p.id << " holds " << n << " rules (cap " << effective
         << ") but bit " << best_bit << " still cuts it";
      return os.str();
    }
  }

  // Regions disjoint + complete, and the clipped tables agree with the
  // policy packet-by-packet (winner identity, not just action).
  for (const auto& packet : probes_for(cex, policy, sample_seed, samples)) {
    std::size_t owners = 0;
    const Partition* owner = nullptr;
    for (const auto& p : plan.partitions()) {
      if (p.region.matches(packet)) {
        ++owners;
        owner = &p;
      }
    }
    if (owners != 1) {
      os << "packet owned by " << owners << " partition regions (expected 1)";
      return os.str();
    }
    const Rule* want = policy.match(packet);
    const Rule* got = owner->rules.match(packet);
    if (!same_winner(want, got)) {
      os << "partition " << owner->id << " winner mismatch: policy "
         << describe(want) << " vs clipped " << describe(got);
      return os.str();
    }
  }
  return std::nullopt;
}

Violation check_cache_vs_authority(const Counterexample& cex,
                                   const CacheChurnParams& params) {
  const RuleTable policy = cex.table();
  const PartitionPlan plan =
      Partitioner(params.partitioner).build(policy, params.authority_count);

  // One AuthorityNode per authority index; switch ids are arbitrary labels.
  constexpr SwitchId kAuthorityBase = 1000;
  std::vector<std::unique_ptr<AuthorityNode>> nodes;
  for (std::uint32_t a = 0; a < params.authority_count; ++a) {
    nodes.push_back(std::make_unique<AuthorityNode>(
        kAuthorityBase + a, params.strategy, params.max_splice_cost));
  }
  RuleId synth_base = 0x40000000u;
  for (const auto& p : plan.partitions()) {
    nodes[p.primary]->bind(p, synth_base);
    synth_base += 1u << 22;
  }

  // The ingress switch: cache band + partition band, as DIFANE installs it.
  FlowTable ingress(params.cache_capacity);
  RuleId partition_rule_id = 0x20000000u;
  for (const auto& p : plan.partitions()) {
    Rule r;
    r.id = partition_rule_id++;
    r.priority = 0;
    r.match = p.region;
    r.action = Action::encap(kAuthorityBase + p.primary);
    ingress.install(r, Band::kPartition, 0.0);
  }

  Rng churn(params.churn_seed);
  double now = 0.0;
  std::ostringstream os;
  for (std::size_t i = 0; i < cex.packets.size(); ++i) {
    const BitVec& packet = cex.packets[i];
    // Time jumps: mostly small (cache stays warm), sometimes past the idle
    // timeout (everything expires). Plus forced removals: the churn a real
    // switch sees from flow-removed races and manual flow-mods.
    now += churn.bernoulli(0.2) ? params.idle_timeout * 2.5
                                : params.idle_timeout * 0.1;
    if (churn.bernoulli(0.15) && ingress.size(Band::kCache) > 0) {
      const auto& entries = ingress.entries(Band::kCache);
      const RuleId victim = entries[churn.uniform(0, entries.size() - 1)].rule.id;
      ingress.remove(victim, Band::kCache);
    }

    const Rule* want = policy.match(packet);
    const FlowEntry* entry = ingress.lookup(packet, now);
    if (entry == nullptr) {
      os << "packet[" << i << "]: no entry matched (partition band must cover)";
      return os.str();
    }
    if (entry->band == Band::kCache &&
        entry->rule.action.type != ActionType::kEncap) {
      // Terminal cache hit: must be the true policy winner.
      if (!same_winner(want, &entry->rule)) {
        os << "packet[" << i << "]: cache hit " << entry->rule.to_string()
           << " but policy winner is " << describe(want);
        return os.str();
      }
      continue;
    }
    // Redirect (partition rule or cover-set shadow): resolve at the
    // authority switch the encap names, then install its cache response.
    const SwitchId target = entry->rule.action.arg;
    if (target < kAuthorityBase ||
        target >= kAuthorityBase + params.authority_count) {
      os << "packet[" << i << "]: redirect to unknown switch " << target;
      return os.str();
    }
    auto result = nodes[target - kAuthorityBase]->handle(packet);
    if (!result.has_value()) {
      os << "packet[" << i << "]: authority " << target
         << " has no partition covering the packet";
      return os.str();
    }
    if (!same_winner(want, result->winner)) {
      os << "packet[" << i << "]: authority winner " << describe(result->winner)
         << " but policy winner is " << describe(want);
      return os.str();
    }
    // Mirror Scenario::install_cache: protectors first, each non-redirect
    // member guarded by every higher-priority member of its group; groups
    // that cannot fit are skipped (the redirect path stays correct).
    if (result->install.rules.empty() ||
        result->install.rules.size() > params.cache_capacity) {
      continue;
    }
    auto ordered = result->install.rules;
    std::sort(ordered.begin(), ordered.end(), rule_before);
    for (std::size_t j = 0; j < ordered.size(); ++j) {
      std::vector<RuleId> guards;
      if (ordered[j].action.type != ActionType::kEncap) {
        for (std::size_t g = 0; g < j; ++g) guards.push_back(ordered[g].id);
      }
      ingress.install(ordered[j], Band::kCache, now, params.idle_timeout, 0.0,
                      std::move(guards));
    }
  }
  return std::nullopt;
}

Violation check_minimize(const Counterexample& cex, std::uint64_t sample_seed,
                         std::size_t samples) {
  const RuleTable table = cex.table();
  const RuleTable once = minimize(table);
  const RuleTable twice = minimize(once);
  std::ostringstream os;
  if (once.size() != twice.size()) {
    os << "minimize not idempotent: " << table.size() << " -> " << once.size()
       << " -> " << twice.size() << " rules";
    return os.str();
  }
  for (std::size_t i = 0; i < once.size(); ++i) {
    const Rule& a = once.at(i);
    const Rule& b = twice.at(i);
    if (a.id != b.id || a.priority != b.priority || !(a.match == b.match) ||
        !(a.action == b.action)) {
      os << "minimize not idempotent at rule " << i << ": " << a.to_string()
         << " vs " << b.to_string();
      return os.str();
    }
  }
  // Semantics preserved: same winning action everywhere (ids may change —
  // merged siblings keep the lower id — so actions are the contract).
  for (const auto& packet : probes_for(cex, table, sample_seed, samples)) {
    const Rule* want = table.match(packet);
    const Rule* got = once.match(packet);
    const bool same = (want == nullptr && got == nullptr) ||
                      (want != nullptr && got != nullptr && want->action == got->action);
    if (!same) {
      os << "minimize changed semantics: original " << describe(want)
         << " vs minimized " << describe(got);
      return os.str();
    }
  }
  return std::nullopt;
}

Violation check_incremental(const Counterexample& cex, const PartitionerParams& params,
                            std::uint32_t authority_count, std::uint64_t sample_seed,
                            std::size_t samples) {
  // First half of the rules seed the tree; the rest arrive as churn, and
  // every third insert is later removed again.
  std::vector<Rule> base(cex.rules.begin(),
                         cex.rules.begin() + static_cast<std::ptrdiff_t>(
                                                 (cex.rules.size() + 1) / 2));
  std::vector<Rule> ops(cex.rules.begin() + static_cast<std::ptrdiff_t>(base.size()),
                        cex.rules.end());
  RuleTable expected{base};
  IncrementalPartitioner inc(expected, params, authority_count);
  for (const auto& rule : ops) {
    inc.insert(rule);
    expected.add(rule);
  }
  for (std::size_t i = 0; i < ops.size(); i += 3) {
    inc.remove(ops[i].id);
    expected.remove(ops[i].id);
  }

  std::ostringstream os;
  if (inc.policy().size() != expected.size()) {
    os << "incremental policy drifted: " << inc.policy().size() << " rules vs "
       << expected.size() << " expected";
    return os.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (inc.policy().at(i).id != expected.at(i).id) {
      os << "incremental policy order drifted at index " << i;
      return os.str();
    }
  }

  const PartitionPlan incremental_plan = inc.snapshot();
  const PartitionPlan rebuilt = Partitioner(params).build(expected, authority_count);
  for (const auto& packet : probes_for(cex, expected, sample_seed, samples)) {
    const Rule* want = expected.match(packet);
    for (const auto* plan : {&incremental_plan, &rebuilt}) {
      const char* which = plan == &incremental_plan ? "incremental" : "rebuilt";
      std::size_t owners = 0;
      const Partition* owner = nullptr;
      for (const auto& p : plan->partitions()) {
        if (p.region.matches(packet)) {
          ++owners;
          owner = &p;
        }
      }
      if (owners != 1) {
        os << which << " plan: packet owned by " << owners << " regions";
        return os.str();
      }
      const Rule* got = owner->rules.match(packet);
      if (!same_winner(want, got)) {
        os << which << " plan disagrees with policy: " << describe(want) << " vs "
           << describe(got);
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::string shrink_report(const std::function<Violation(const Counterexample&)>& oracle,
                          Counterexample cex, std::size_t max_attempts) {
  const Violation original = oracle(cex);
  ShrinkStats stats;
  const Counterexample minimized =
      shrink(std::move(cex),
             [&](const Counterexample& c) { return oracle(c).has_value(); },
             max_attempts, &stats);
  const Violation still = oracle(minimized);
  std::ostringstream os;
  os << "violation: " << original.value_or("<vanished?>") << "\n"
     << "minimized counterexample (" << stats.attempts << " shrink attempts, "
     << stats.accepted << " accepted): " << minimized.to_string()
     << "minimized violation: " << still.value_or("<vanished?>") << "\n";
  return os.str();
}

}  // namespace difane::proptest
