// Differential oracles: each check_* function re-derives a DIFANE guarantee
// from first principles and compares two independent implementations (or an
// implementation against the single-table reference semantics). They are
// deterministic functions of their inputs — no hidden randomness — so the
// shrinker can re-run them as its still-fails predicate, and the fuzz tool
// can loop them for hours. A nullopt result means the property held; a
// string describes the first violation found.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "classifier/dtree.hpp"
#include "core/cache.hpp"
#include "faults/plan.hpp"
#include "partition/partitioner.hpp"
#include "proptest/gen.hpp"
#include "proptest/shrink.hpp"

namespace difane::proptest {

using Violation = std::optional<std::string>;

// (1) Cross-implementation classifier oracle: the decision tree must return
// the exact same winner (by id) as the linear TCAM reference on every packet.
Violation check_classifier_agreement(const Counterexample& cex,
                                     const DTreeParams& params);

// (2) End-to-end transparency: the same policy and flows through core/system
// in DIFANE mode and NOX mode must deliver/drop the same packets, and the
// DIFANE per-policy-rule counters must equal the single-table reference.
// Overload losses in either mode make the comparison vacuous (returns
// nullopt): transparency is only promised when nothing is dropped for
// capacity reasons, and the generators keep rates far below capacity.
Violation check_nox_vs_difane(const Counterexample& cex, const TopoGen& topo,
                              CacheStrategy strategy, double cache_idle_timeout);

// (2b) Transparency under message faults: the DIFANE side runs with reliable
// control channels and `difane_faults` perturbing every control transmission
// (loss, duplication, jitter, failed installs — no crashes or flaps); the
// NOX side stays on the clean wire as the oracle. With loss < 1 the reliable
// channel delivers every install eventually, so delivered-packet
// dispositions and per-policy-rule counters must match the fault-free
// baseline exactly — faults may change *when* caches fill, never *what*
// happens to a packet.
Violation check_nox_vs_difane_faulty(const Counterexample& cex, const TopoGen& topo,
                                     CacheStrategy strategy,
                                     double cache_idle_timeout,
                                     const FaultPlan& difane_faults);

// (2c) Transparency across live partition migration: the DIFANE side runs
// with reliable control channels, the given message faults, and 1..3
// make-before-break re-homes (derived deterministically from
// `migration_seed`) firing mid-trace; the NOX side stays clean and static.
// A migration moves authority state and flips redirects while packets are in
// flight, yet delivered-packet dispositions and per-policy-rule counters
// must still equal the fault-free single-table reference — moving a
// partition may change *where* a packet is resolved, never *what* happens
// to it. Forces authority_count >= 2 (a move needs a destination).
Violation check_nox_vs_difane_migrating(const Counterexample& cex,
                                        const TopoGen& topo,
                                        CacheStrategy strategy,
                                        double cache_idle_timeout,
                                        const FaultPlan& difane_faults,
                                        std::uint64_t migration_seed);

// (3) Partitioner post-conditions for any CutStrategy: regions disjoint and
// complete, every policy rule reachable through some partition, per-packet
// match agreement (winner origin + action) between the clipped tables and
// the policy, and capacity respected except where the cut provably cannot
// make progress (soft leaves). `sample_seed` derives extra probe packets on
// top of cex.packets.
Violation check_partition(const Counterexample& cex, const PartitionerParams& params,
                          std::uint32_t authority_count, std::uint64_t sample_seed,
                          std::size_t samples);

struct CacheChurnParams {
  CacheStrategy strategy = CacheStrategy::kDependentSet;
  std::size_t cache_capacity = 8;     // small: forces LRU eviction
  std::size_t max_splice_cost = 32;
  PartitionerParams partitioner;
  std::uint32_t authority_count = 1;
  double idle_timeout = 0.05;
  std::uint64_t churn_seed = 1;       // drives time jumps + forced removals
};

// (4) Cache-vs-authority oracle: replay packets through an ingress flow
// table fed by authority-switch cache installs, under eviction, idle expiry,
// and random forced removals (churn). Every terminal cache-band hit must
// name the same winner (origin + action) as the single-table policy; every
// redirect must resolve at an authority to that same winner.
Violation check_cache_vs_authority(const Counterexample& cex,
                                   const CacheChurnParams& params);

// (5a) minimize() is idempotent (a second pass changes nothing) and
// preserves matching semantics (same winning action on every probe packet).
Violation check_minimize(const Counterexample& cex, std::uint64_t sample_seed,
                         std::size_t samples);

// (5b) Incremental partition maintenance equals a full rebuild: grow a
// tree from the first half of cex.rules, insert the rest, remove every
// third inserted rule, then compare the snapshot against Partitioner::build
// on the same final policy, packet-by-packet.
Violation check_incremental(const Counterexample& cex, const PartitionerParams& params,
                            std::uint32_t authority_count, std::uint64_t sample_seed,
                            std::size_t samples);

// Shrink `cex` under `oracle` and format a failure report: the minimized
// input, its violation, and the shrink effort spent.
std::string shrink_report(const std::function<Violation(const Counterexample&)>& oracle,
                          Counterexample cex, std::size_t max_attempts = 20000);

}  // namespace difane::proptest
