// The property runner: DIFANE_PROPERTY(Name, cases) expands to a gtest TEST
// that runs `cases` random cases, each with its own Rng seeded from a
// per-case seed, and stops at the first failing case with replay
// instructions. Replay environment:
//
//   DIFANE_PROPTEST_REPLAY=<seed>  run exactly one case with that seed
//                                  (the seed a failure report prints)
//   DIFANE_PROPTEST_SEED=<seed>    change the base seed of the whole sweep
//   DIFANE_PROPTEST_CASES=<n>      override the case count (e.g. long soaks)
//
// Case seeds derive from the base seed by splitmix64, so every case is an
// independent, reproducible stream; runs are deterministic end to end.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/rng.hpp"

namespace difane::proptest {

struct PropertyContext {
  std::uint64_t case_seed;
  std::size_t case_index;
  Rng rng;
};

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr ? std::strtoull(s, nullptr, 0) : fallback;
}

template <typename Body>
void run_property(const char* name, std::size_t default_cases,
                  std::uint64_t default_seed, Body&& body) {
  if (const char* replay = std::getenv("DIFANE_PROPTEST_REPLAY")) {
    const std::uint64_t seed = std::strtoull(replay, nullptr, 0);
    PropertyContext ctx{seed, 0, Rng(seed)};
    body(ctx);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "property " << name << " failed on replayed seed 0x"
                    << std::hex << seed;
    }
    return;
  }
  const std::uint64_t base = env_u64("DIFANE_PROPTEST_SEED", default_seed);
  const std::size_t cases = static_cast<std::size_t>(
      env_u64("DIFANE_PROPTEST_CASES", default_cases));
  std::uint64_t state = base;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t case_seed = splitmix64(state);
    PropertyContext ctx{case_seed, i, Rng(case_seed)};
    body(ctx);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "property " << name << " failed at case " << i << " of "
                    << cases << "; replay with: DIFANE_PROPTEST_REPLAY=0x"
                    << std::hex << case_seed << " ./" << name
                    << " (any runner of this test binary)";
      return;
    }
  }
}

}  // namespace difane::proptest

// `cases` is the default case count; the body sees `ctx` (PropertyContext&).
#define DIFANE_PROPERTY(name, cases)                                        \
  static void name##_PropertyBody(::difane::proptest::PropertyContext& ctx); \
  TEST(Property, name) {                                                    \
    ::difane::proptest::run_property(#name, (cases), 0xd1fa9eULL,           \
                                     name##_PropertyBody);                  \
  }                                                                         \
  static void name##_PropertyBody(::difane::proptest::PropertyContext& ctx)
