#include "proptest/shrink.hpp"

#include <algorithm>
#include <sstream>

#include "flowspace/header.hpp"

namespace difane::proptest {

namespace {

// Exact pattern over the used header bits, so packets print with the same
// "field=bits" tokens rules do.
Ternary exact_pattern(const BitVec& packet) {
  Ternary t;
  std::size_t at = 0;
  const std::size_t used = header_bits_used();
  while (at < used) {
    const std::size_t chunk = std::min<std::size_t>(64, used - at);
    t.set_exact(at, chunk, packet.get_bits(at, chunk));
    at += chunk;
  }
  return t;
}

}  // namespace

std::string Counterexample::to_string() const {
  std::ostringstream os;
  os << rules.size() << " rules, " << packets.size() << " packets\n";
  for (const auto& r : rules) os << "  " << r.to_string() << "\n";
  for (std::size_t i = 0; i < packets.size(); ++i) {
    os << "  packet[" << i << "] " << pattern_to_string(exact_pattern(packets[i]))
       << "\n";
  }
  return os.str();
}

Counterexample shrink(Counterexample cex, const StillFails& still_fails,
                      std::size_t max_attempts, ShrinkStats* stats) {
  ShrinkStats local;
  const auto attempt = [&](const Counterexample& cand) {
    if (local.attempts >= max_attempts) return false;
    ++local.attempts;
    if (!still_fails(cand)) return false;
    ++local.accepted;
    return true;
  };

  // Delta-debug one list: remove chunks, halving the chunk size, greedily
  // restarting a pass whenever a removal sticks.
  const auto minimize_list = [&](auto member) {
    bool any = false;
    std::size_t chunk = std::max<std::size_t>(1, (cex.*member).size() / 2);
    while (true) {
      bool removed = true;
      while (removed) {
        removed = false;
        for (std::size_t i = 0; i < (cex.*member).size();) {
          Counterexample cand = cex;
          auto& vec = cand.*member;
          const std::size_t take = std::min(chunk, vec.size() - i);
          vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(i),
                    vec.begin() + static_cast<std::ptrdiff_t>(i + take));
          if (attempt(cand)) {
            cex = std::move(cand);
            removed = any = true;
          } else {
            i += take;
          }
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
    return any;
  };

  // Simplify surviving rules: wildcard cared bits one at a time (a wider rule
  // is a simpler rule — fewer constraints to read).
  const auto widen_rules = [&] {
    bool any = false;
    const std::size_t used = header_bits_used();
    for (std::size_t r = 0; r < cex.rules.size(); ++r) {
      for (std::size_t bit = 0; bit < used; ++bit) {
        if (!cex.rules[r].match.care().get(bit)) continue;
        Counterexample cand = cex;
        BitVec care = cand.rules[r].match.care();
        care.set(bit, false);
        cand.rules[r].match = Ternary(cand.rules[r].match.value(), care);
        if (attempt(cand)) {
          cex = std::move(cand);
          any = true;
        }
      }
    }
    return any;
  };

  // Canonicalize packets toward all-zero bits.
  const auto zero_packets = [&] {
    bool any = false;
    const std::size_t used = header_bits_used();
    for (std::size_t p = 0; p < cex.packets.size(); ++p) {
      for (std::size_t bit = 0; bit < used; ++bit) {
        if (!cex.packets[p].get(bit)) continue;
        Counterexample cand = cex;
        cand.packets[p].set(bit, false);
        if (attempt(cand)) {
          cex = std::move(cand);
          any = true;
        }
      }
    }
    return any;
  };

  bool progress = true;
  while (progress && local.attempts < max_attempts) {
    progress = false;
    if (minimize_list(&Counterexample::rules)) progress = true;
    if (minimize_list(&Counterexample::packets)) progress = true;
    if (widen_rules()) progress = true;
    if (zero_packets()) progress = true;
  }
  if (stats) *stats = local;
  return cex;
}

}  // namespace difane::proptest
