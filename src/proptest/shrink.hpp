// Greedy counterexample shrinking. A failing property hands the shrinker its
// (rule table, packet trace) input plus a predicate that re-runs the check;
// the shrinker then minimizes by delta-debugging: drop chunks of rules, drop
// chunks of packets, then simplify surviving rules bit-by-bit, repeating
// until a fixed point (or an attempt budget). The result is the smallest
// input the greedy search can find that still fails — usually 2-4 rules and
// one packet, small enough to read off the bug by eye.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flowspace/rule_table.hpp"

namespace difane::proptest {

// The universal counterexample shape for this repo's properties: a policy
// (as a rule list) plus the packet headers that expose the disagreement.
// Properties that don't use packets just leave the vector empty.
struct Counterexample {
  std::vector<Rule> rules;
  std::vector<BitVec> packets;

  RuleTable table() const { return RuleTable(rules); }
  std::string to_string() const;
};

// Re-runs the property on a candidate input. Returns true if the candidate
// STILL fails (i.e. is still a counterexample). Must be deterministic.
using StillFails = std::function<bool(const Counterexample&)>;

struct ShrinkStats {
  std::size_t attempts = 0;   // predicate evaluations
  std::size_t accepted = 0;   // attempts that kept the failure
};

// Greedily minimize `cex` under `still_fails`. `max_attempts` bounds total
// predicate evaluations so shrinking an expensive end-to-end property stays
// tractable. The input must itself fail; the result always fails.
Counterexample shrink(Counterexample cex, const StillFails& still_fails,
                      std::size_t max_attempts = 20000, ShrinkStats* stats = nullptr);

}  // namespace difane::proptest
