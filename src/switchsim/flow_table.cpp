#include "switchsim/flow_table.hpp"

#include <algorithm>

#include "util/contract.hpp"
#include "util/prefetch.hpp"

namespace difane {

const char* band_name(Band band) {
  switch (band) {
    case Band::kCache: return "cache";
    case Band::kAuthority: return "authority";
    case Band::kPartition: return "partition";
  }
  return "?";
}

const char* cache_removal_name(CacheRemoval cause) {
  switch (cause) {
    case CacheRemoval::kEvicted: return "evicted";
    case CacheRemoval::kExpired: return "expired";
    case CacheRemoval::kRemoved: return "removed";
    case CacheRemoval::kCascaded: return "cascaded";
    case CacheRemoval::kCleared: return "cleared";
  }
  return "?";
}

FlowTable::FlowTable(std::size_t cache_capacity, std::size_t hw_capacity)
    : cache_capacity_(cache_capacity), hw_capacity_(hw_capacity) {}

bool FlowTable::full_mask(const Ternary& match) {
  for (auto word : match.care().w) {
    if (word != ~0ULL) return false;
  }
  return true;
}

double FlowTable::next_expiry(const FlowEntry& e) {
  double t = std::numeric_limits<double>::infinity();
  if (e.hard_timeout > 0.0) t = e.install_time + e.hard_timeout;
  if (e.idle_timeout > 0.0) t = std::min(t, e.last_hit + e.idle_timeout);
  return t;
}

void FlowTable::note_expiry(const FlowEntry& e) {
  expiry_watermark_ = std::min(expiry_watermark_, next_expiry(e));
}

void FlowTable::recompute_watermark() {
  double t = std::numeric_limits<double>::infinity();
  for (const auto& bs : bands_) {
    for (const auto slot : bs.order) t = std::min(t, next_expiry(slab_[slot]));
  }
  expiry_watermark_ = t;
}

std::uint32_t FlowTable::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slab_.size());
  slab_.emplace_back();
  exact_next_.push_back(kNilSlot);
  order_pos_.push_back(0);
  return slot;
}

void FlowTable::release_slot(std::uint32_t slot) {
  FlowEntry& e = slab_[slot];
  e.rule = Rule{};
  e.packets = 0;
  e.bytes = 0;
  e.guards.clear();  // keeps capacity for the next tenant
  exact_next_[slot] = kNilSlot;
  free_slots_.push_back(slot);
}

void FlowTable::refresh_positions(const BandState& bs, std::size_t from) {
  for (std::size_t i = from; i < bs.order.size(); ++i) {
    order_pos_[bs.order[i]] = static_cast<std::uint32_t>(i);
  }
}

void FlowTable::order_insert(BandState& bs, std::uint32_t slot) {
  // Same probe sequence as lower_bound over the old entry vector, so the
  // landing position matches it bit-for-bit even when stale-positioned
  // refreshed entries leave the band not strictly sorted.
  const Rule& key = slab_[slot].rule;
  const auto it = std::lower_bound(
      bs.order.begin(), bs.order.end(), key,
      [this](std::uint32_t s, const Rule& r) { return rule_before(slab_[s].rule, r); });
  const std::size_t pos = static_cast<std::size_t>(it - bs.order.begin());
  bs.order.insert(it, slot);
  refresh_positions(bs, pos);
}

void FlowTable::order_erase(BandState& bs, std::uint32_t slot) {
  const std::size_t pos = order_pos_[slot];
  bs.order.erase(bs.order.begin() + static_cast<std::ptrdiff_t>(pos));
  refresh_positions(bs, pos);
}

void FlowTable::link_cache_aux(std::uint32_t slot) {
  const FlowEntry& e = slab_[slot];
  if (full_mask(e.rule.match)) {
    const auto [it, inserted] = cache_exact_.try_emplace(e.rule.match.value(), slot);
    if (!inserted) {
      exact_next_[slot] = it->second;
      it->second = slot;
    } else {
      exact_next_[slot] = kNilSlot;
    }
  } else {
    const std::uint32_t pos = order_pos_[slot];
    const auto it = std::lower_bound(
        cache_wild_order_.begin(), cache_wild_order_.end(), pos,
        [this](std::uint32_t s, std::uint32_t p) { return order_pos_[s] < p; });
    cache_wild_order_.insert(it, slot);
  }
}

void FlowTable::unlink_cache_aux(std::uint32_t slot) {
  const FlowEntry& e = slab_[slot];
  if (full_mask(e.rule.match)) {
    const auto it = cache_exact_.find(e.rule.match.value());
    expects(it != cache_exact_.end(), "FlowTable: exact index out of sync");
    if (it->second == slot) {
      if (exact_next_[slot] == kNilSlot) {
        cache_exact_.erase(it);
      } else {
        it->second = exact_next_[slot];
      }
    } else {
      std::uint32_t prev = it->second;
      while (exact_next_[prev] != slot) {
        expects(exact_next_[prev] != kNilSlot, "FlowTable: exact chain out of sync");
        prev = exact_next_[prev];
      }
      exact_next_[prev] = exact_next_[slot];
    }
    exact_next_[slot] = kNilSlot;
  } else {
    const std::uint32_t pos = order_pos_[slot];
    const auto it = std::lower_bound(
        cache_wild_order_.begin(), cache_wild_order_.end(), pos,
        [this](std::uint32_t s, std::uint32_t p) { return order_pos_[s] < p; });
    expects(it != cache_wild_order_.end() && *it == slot,
            "FlowTable: wildcard index out of sync");
    cache_wild_order_.erase(it);
  }
}

void FlowTable::link_guards(std::uint32_t slot) {
  const FlowEntry& e = slab_[slot];
  for (const RuleId g : e.guards) dependents_[g].push_back(e.rule.id);
}

void FlowTable::unlink_guards(std::uint32_t slot) {
  const FlowEntry& e = slab_[slot];
  for (const RuleId g : e.guards) {
    const auto it = dependents_.find(g);
    if (it == dependents_.end()) continue;
    auto& deps = it->second;
    const auto pos = std::find(deps.begin(), deps.end(), e.rule.id);
    if (pos != deps.end()) deps.erase(pos);
    if (deps.empty()) dependents_.erase(it);
  }
}

void FlowTable::erase_entry(std::uint32_t slot, Band band) {
  BandState& bs = bands_[index(band)];
  if (band == Band::kCache) {
    // Aux lists search by order position, so unlink before the erase shifts
    // positions.
    unlink_cache_aux(slot);
    unlink_guards(slot);
  }
  order_erase(bs, slot);
  bs.by_id.erase(slab_[slot].rule.id);
  release_slot(slot);
}

bool FlowTable::install(const Rule& rule, Band band, double now, double idle_timeout,
                        double hard_timeout, std::vector<RuleId> guards) {
  ++gen_;
  BandState& bs = bands_[index(band)];
  // Group safety under heterogeneous idle timeouts (the elephant policy
  // installs the same protector rule from groups with different leashes): a
  // dependent must never be configured to outlive a guard, or the window
  // between the guard's lazy expiry and the next sweep exposes the dependent
  // as an unguarded — mis-forwarding — match. Cap the dependent's idle
  // budget at the tightest guard's remaining lifetime. With uniform
  // timeouts (every pre-elephant configuration) guards are refreshed in the
  // same group an instant earlier, the cap equals the requested timeout,
  // and behaviour is byte-identical to before.
  if (band == Band::kCache && !guards.empty() && idle_timeout != 0.0) {
    for (const RuleId g : guards) {
      const auto git = bs.by_id.find(g);
      if (git == bs.by_id.end()) continue;
      const FlowEntry& ge = slab_[git->second];
      if (ge.idle_timeout <= 0.0) continue;  // guard never idles out
      const double remaining = ge.last_hit + ge.idle_timeout - now;
      if (remaining < idle_timeout) {
        // A guard that is already past due still caps (a vanishingly short
        // timeout, not zero: zero would mean "never expires").
        idle_timeout = std::max(remaining, 1e-9);
      }
    }
  }
  // Same-id reinstall refreshes the entry in place (counters survive). The
  // entry keeps its band position even when the refresh changes the
  // priority — exactly what the old in-place vector refresh did — so only a
  // changed match needs the exact/wildcard indices rekeyed (the wildcard
  // list orders by position, which does not move).
  const auto existing = bs.by_id.find(rule.id);
  if (existing != bs.by_id.end()) {
    const std::uint32_t slot = existing->second;
    FlowEntry& e = slab_[slot];
    const bool match_changed = !(e.rule.match == rule.match);
    if (band == Band::kCache) {
      if (match_changed) unlink_cache_aux(slot);
      unlink_guards(slot);
    }
    e.rule = rule;
    e.install_time = now;
    // The dual of the guard cap above: an entry other live cache entries
    // depend on must not have its timeout shortened by a refresh from a
    // colder group — its dependents would outlive it. 0 means "never idles
    // out" and wins outright.
    if (band == Band::kCache && dependents_.find(rule.id) != dependents_.end() &&
        e.idle_timeout != idle_timeout) {
      if (e.idle_timeout <= 0.0 || idle_timeout <= 0.0) {
        idle_timeout = 0.0;
      } else {
        idle_timeout = std::max(e.idle_timeout, idle_timeout);
      }
    }
    e.idle_timeout = idle_timeout;
    e.hard_timeout = hard_timeout;
    e.last_hit = now;
    e.guards = std::move(guards);
    if (band == Band::kCache) {
      if (match_changed) link_cache_aux(slot);
      link_guards(slot);
    }
    note_expiry(e);
    ++stats_.installs;
    return true;
  }
  if (band == Band::kCache) {
    if (cache_capacity_ == 0) {
      ++stats_.install_rejected;
      return false;
    }
    while (bs.order.size() >= cache_capacity_) evict_lru_cache(now);
  } else {
    const std::size_t other = bands_[index(Band::kAuthority)].order.size() +
                              bands_[index(Band::kPartition)].order.size();
    if (other >= hw_capacity_) {
      ++stats_.install_rejected;
      return false;
    }
  }
  const std::uint32_t slot = alloc_slot();
  FlowEntry& e = slab_[slot];
  e.rule = rule;
  e.band = band;
  e.install_time = now;
  e.idle_timeout = idle_timeout;
  e.hard_timeout = hard_timeout;
  e.last_hit = now;
  e.packets = 0;
  e.bytes = 0;
  e.guards = std::move(guards);
  order_insert(bs, slot);
  bs.by_id.emplace(rule.id, slot);
  if (band == Band::kCache) {
    link_cache_aux(slot);
    link_guards(slot);
  }
  note_expiry(e);
  ++stats_.installs;
  return true;
}

std::size_t FlowTable::install_bulk(const std::vector<const Rule*>& rules,
                                    Band band, double now) {
  expects(band != Band::kCache,
          "install_bulk: cache-band installs need the eviction/guard logic of "
          "install()");
  ++gen_;
  BandState& bs = bands_[index(band)];
  const std::size_t before = bs.order.size();
  expects(std::is_sorted(bs.order.begin(), bs.order.end(),
                         [this](std::uint32_t a, std::uint32_t b) {
                           return rule_before(slab_[a].rule, slab_[b].rule);
                         }),
          "install_bulk: band order not rule_before-sorted (a refresh changed "
          "an entry's priority?)");
  std::size_t accepted = 0;
  for (const Rule* rule : rules) {
    // Same-id refresh keeps its position — identical to install(). Non-cache
    // bands have no aux indices or guard links to rekey.
    const auto existing = bs.by_id.find(rule->id);
    if (existing != bs.by_id.end()) {
      FlowEntry& e = slab_[existing->second];
      // A same-priority refresh keeps the band sorted; a priority change
      // would leave this entry stale-positioned and break the sortedness
      // precondition for the next bulk call (and the equivalence with
      // sequential install()). No non-cache caller changes priority on a
      // refresh — partition repoints swap the action, authority reinstalls
      // are identical rules — so reject it outright.
      expects(e.rule.priority == rule->priority,
              "install_bulk: refresh must not change priority (use install())");
      e.rule = *rule;
      e.install_time = now;
      e.idle_timeout = 0.0;
      e.hard_timeout = 0.0;
      e.last_hit = now;
      e.guards.clear();
      note_expiry(e);
      ++stats_.installs;
      ++accepted;
      continue;
    }
    const std::size_t other = bands_[index(Band::kAuthority)].order.size() +
                              bands_[index(Band::kPartition)].order.size();
    if (other >= hw_capacity_) {
      ++stats_.install_rejected;
      continue;
    }
    const std::uint32_t slot = alloc_slot();
    FlowEntry& e = slab_[slot];
    e.rule = *rule;
    e.band = band;
    e.install_time = now;
    e.idle_timeout = 0.0;
    e.hard_timeout = 0.0;
    e.last_hit = now;
    e.packets = 0;
    e.bytes = 0;
    e.guards.clear();
    bs.order.push_back(slot);
    bs.by_id.emplace(rule->id, slot);
    note_expiry(e);
    ++stats_.installs;
    ++accepted;
  }
  if (bs.order.size() != before) {
    // One sort of the appended tail plus one merge with the (sorted) prefix
    // lands every new entry at exactly the position sequential order_insert
    // calls would have chosen: rule_before is a strict total order, so the
    // merged result is the unique sorted arrangement either way.
    const auto mid = bs.order.begin() + static_cast<std::ptrdiff_t>(before);
    const auto by_rule = [this](std::uint32_t a, std::uint32_t b) {
      return rule_before(slab_[a].rule, slab_[b].rule);
    };
    std::sort(mid, bs.order.end(), by_rule);
    std::inplace_merge(bs.order.begin(), mid, bs.order.end(), by_rule);
    refresh_positions(bs, 0);
  }
  return accepted;
}

void FlowTable::retire(const FlowEntry& entry) {
  // Plumbing entries re-count at the authority switch; see retired() docs.
  if (entry.band == Band::kPartition) return;
  if (entry.rule.action.type == ActionType::kEncap) return;
  if (entry.packets == 0 && entry.bytes == 0) return;
  auto& row = retired_[entry.rule.origin_or_self()];
  row.packets += entry.packets;
  row.bytes += entry.bytes;
}

void FlowTable::cascade_remove_dependents(std::vector<RuleId> removed_ids) {
  ++gen_;
  BandState& cache = bands_[index(Band::kCache)];
  std::vector<RuleId> deps;
  while (!removed_ids.empty()) {
    const RuleId gone = removed_ids.back();
    removed_ids.pop_back();
    const auto dit = dependents_.find(gone);
    if (dit == dependents_.end()) continue;
    deps = std::move(dit->second);
    dependents_.erase(dit);
    for (const RuleId id : deps) {
      const auto bit = cache.by_id.find(id);
      if (bit == cache.by_id.end()) continue;
      const std::uint32_t slot = bit->second;
      retire(slab_[slot]);
      notify_removal(slab_[slot], CacheRemoval::kCascaded);
      erase_entry(slot, Band::kCache);
      ++stats_.cascade_evictions;
      removed_ids.push_back(id);
    }
  }
}

void FlowTable::evict_lru_cache(double now) {
  ++gen_;
  BandState& cache = bands_[index(Band::kCache)];
  expects(!cache.order.empty(), "evict_lru_cache: cache empty");
  (void)now;
  // First entry (in band priority order) with the minimal last_hit — the
  // same victim min_element picked over the band-sorted entry vector.
  std::uint32_t victim = cache.order[0];
  for (const std::uint32_t slot : cache.order) {
    if (slab_[slot].last_hit < slab_[victim].last_hit) victim = slot;
  }
  retire(slab_[victim]);
  notify_removal(slab_[victim], CacheRemoval::kEvicted);
  const RuleId gone = slab_[victim].rule.id;
  erase_entry(victim, Band::kCache);
  ++stats_.evictions;
  cascade_remove_dependents({gone});
}

bool FlowTable::remove(RuleId id, Band band) {
  ++gen_;
  BandState& bs = bands_[index(band)];
  const auto it = bs.by_id.find(id);
  if (it == bs.by_id.end()) return false;
  const std::uint32_t slot = it->second;
  retire(slab_[slot]);
  if (band == Band::kCache) notify_removal(slab_[slot], CacheRemoval::kRemoved);
  erase_entry(slot, band);
  if (band == Band::kCache) cascade_remove_dependents({id});
  return true;
}

void FlowTable::clear_band(Band band) {
  ++gen_;
  BandState& bs = bands_[index(band)];
  for (const std::uint32_t slot : bs.order) {
    retire(slab_[slot]);
    if (band == Band::kCache) notify_removal(slab_[slot], CacheRemoval::kCleared);
    release_slot(slot);
  }
  bs.order.clear();
  bs.by_id.clear();
  if (band == Band::kCache) {
    // Guard links and exact/wildcard indices only ever reference cache
    // entries, so wiping the band wipes them wholesale.
    cache_exact_.clear();
    cache_wild_order_.clear();
    dependents_.clear();
  }
  recompute_watermark();
}

std::size_t FlowTable::expire(double now) {
  ++gen_;
  std::size_t total = 0;
  std::vector<RuleId> expired_cache;
  for (std::size_t b = 0; b < kNumBands; ++b) {
    BandState& bs = bands_[b];
    const bool is_cache = b == index(Band::kCache);
    // Compact survivors in place; order_pos_ stays untouched until after the
    // pass so the aux-list unlinks (which search by position) stay valid.
    std::size_t kept = 0;
    std::size_t first_removed = bs.order.size();
    for (std::size_t i = 0; i < bs.order.size(); ++i) {
      const std::uint32_t slot = bs.order[i];
      FlowEntry& e = slab_[slot];
      if (!e.expired(now)) {
        bs.order[kept++] = slot;
        continue;
      }
      if (first_removed > i) first_removed = i;
      retire(e);
      if (is_cache) {
        notify_removal(e, CacheRemoval::kExpired);
        expired_cache.push_back(e.rule.id);
        unlink_cache_aux(slot);
        unlink_guards(slot);
      }
      bs.by_id.erase(e.rule.id);
      release_slot(slot);
      ++total;
    }
    if (kept < bs.order.size()) {
      bs.order.resize(kept);
      refresh_positions(bs, first_removed);
    }
  }
  stats_.expirations += total;
  if (!expired_cache.empty()) cascade_remove_dependents(std::move(expired_cache));
  recompute_watermark();
  return total;
}

std::uint32_t FlowTable::exact_head(const BitVec& packet) const {
  if (cache_exact_.empty()) return kNilSlot;
  const auto it = cache_exact_.find(packet);
  return it == cache_exact_.end() ? kNilSlot : it->second;
}

const FlowEntry* FlowTable::find_live_match(const BitVec& packet, double now) const {
  return resolve_live_match(packet, now, exact_head(packet));
}

const FlowEntry* FlowTable::resolve_live_match(const BitVec& packet, double now,
                                               std::uint32_t head) const {
  // Cache band: exact-match fast path plus the wildcard-only ordered scan.
  // The winner is the FIRST live match in band order, so candidates from the
  // exact chain and the wildcard list compare by position, not priority —
  // same-id refreshes can leave a band locally unsorted and the original
  // linear scan still picked the earliest entry.
  const FlowEntry* win = nullptr;
  std::uint32_t win_pos = 0;
  for (std::uint32_t s = head; s != kNilSlot; s = exact_next_[s]) {
    const FlowEntry& e = slab_[s];
    if (!live_match(e, packet, now)) continue;
    if (win == nullptr || order_pos_[s] < win_pos) {
      win = &e;
      win_pos = order_pos_[s];
    }
  }
  for (const std::uint32_t s : cache_wild_order_) {
    const FlowEntry& e = slab_[s];
    if (live_match(e, packet, now)) {
      if (win == nullptr || order_pos_[s] < win_pos) win = &e;
      break;
    }
  }
  if (win != nullptr) return win;
  for (const Band band : {Band::kAuthority, Band::kPartition}) {
    for (const std::uint32_t s : bands_[index(band)].order) {
      const FlowEntry& e = slab_[s];
      if (live_match(e, packet, now)) return &e;
    }
  }
  return nullptr;
}

const FlowEntry* FlowTable::lookup(const BitVec& packet, double now, std::uint64_t bytes) {
  // Amortized sweep: the watermark lower-bounds every entry's expiry, so
  // skipping the sweep while now < watermark removes exactly nothing — the
  // table, stats, and cascades evolve byte-identically to an eager sweep.
  if (now >= expiry_watermark_) expire(now);
  return finish_lookup(const_cast<FlowEntry*>(find_live_match(packet, now)),
                       now, bytes);
}

const FlowEntry* FlowTable::finish_lookup(FlowEntry* entry, double now,
                                          std::uint64_t bytes) {
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  entry->last_hit = now;
  ++entry->packets;
  entry->bytes += bytes;
  ++stats_.hits_per_band[index(entry->band)];
  // A hit keeps the whole protection group warm: guards that never win on
  // their own must not idle out (or become LRU victims) while the entries
  // they protect are hot — the safety cascade would then evict hot entries
  // along with them.
  if (entry->band == Band::kCache && !entry->guards.empty()) {
    const auto& by_id = bands_[index(Band::kCache)].by_id;
    for (const RuleId g : entry->guards) {
      const auto it = by_id.find(g);
      if (it != by_id.end()) slab_[it->second].last_hit = now;
    }
  }
  return entry;
}

void FlowTable::lookup_prefetch(const BitVec* const* keys, std::size_t n,
                                BatchState& batch, bool prefetch) const {
  expects(n <= kMaxBatch, "lookup_prefetch: burst larger than kMaxBatch");
  batch.gen = gen_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t head = exact_head(*keys[i]);
    batch.heads[i] = head;
    // Fetch the whole entry (rule pattern + timeouts + counters span ~3
    // lines); the resolve pass reads all of it within a few hundred ns.
    // Depth > 1 keeps walking the duplicate chain: the resolve pass visits
    // exactly these nodes when the head turns out expired or superseded.
    if (prefetch) {
      std::uint32_t slot = head;
      for (std::uint32_t d = 0; d < prefetch_depth_ && slot != kNilSlot; ++d) {
        util::prefetch_read_range(&slab_[slot], sizeof(FlowEntry));
        slot = exact_next_[slot];
      }
    }
  }
}

const FlowEntry* FlowTable::lookup_prepared(const BitVec& packet, std::size_t i,
                                            const BatchState& batch, double now,
                                            std::uint64_t bytes) {
  if (now >= expiry_watermark_) expire(now);
  // A sweep (ours, just now, or any mutation since pass 1) moves the
  // generation forward; the memoized head may then dangle, so recompute it.
  const std::uint32_t head =
      batch.gen == gen_ ? batch.heads[i] : exact_head(packet);
  return finish_lookup(
      const_cast<FlowEntry*>(resolve_live_match(packet, now, head)), now,
      bytes);
}

std::size_t FlowTable::lookup_batch(const BitVec* const* keys,
                                    const double* nows,
                                    const std::uint64_t* bytes, std::size_t n,
                                    const FlowEntry** out, bool prefetch) {
  std::size_t hits = 0;
  for (std::size_t base = 0; base < n; base += kMaxBatch) {
    const std::size_t chunk = std::min(kMaxBatch, n - base);
    BatchState batch;
    lookup_prefetch(keys + base, chunk, batch, prefetch);
    for (std::size_t i = 0; i < chunk; ++i) {
      const FlowEntry* e =
          lookup_prepared(*keys[base + i], i, batch, nows[base + i],
                          bytes != nullptr ? bytes[base + i] : 1);
      out[base + i] = e;
      if (e != nullptr) ++hits;
    }
  }
  return hits;
}

bool FlowTable::hit(RuleId id, Band band, double now, std::uint64_t bytes) {
  BandState& bs = bands_[index(band)];
  const auto it = bs.by_id.find(id);
  if (it == bs.by_id.end()) return false;
  FlowEntry& e = slab_[it->second];
  e.last_hit = now;
  ++e.packets;
  e.bytes += bytes;
  ++stats_.hits_per_band[index(band)];
  return true;
}

const FlowEntry* FlowTable::peek(const BitVec& packet, double now) const {
  return find_live_match(packet, now);
}

std::size_t FlowTable::total_size() const {
  std::size_t n = 0;
  for (const auto& bs : bands_) n += bs.order.size();
  return n;
}

const FlowEntry* FlowTable::find(RuleId id, Band band) const {
  const auto& bs = bands_[index(band)];
  const auto it = bs.by_id.find(id);
  return it == bs.by_id.end() ? nullptr : &slab_[it->second];
}

}  // namespace difane
