#include "switchsim/flow_table.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace difane {

const char* band_name(Band band) {
  switch (band) {
    case Band::kCache: return "cache";
    case Band::kAuthority: return "authority";
    case Band::kPartition: return "partition";
  }
  return "?";
}

FlowTable::FlowTable(std::size_t cache_capacity, std::size_t hw_capacity)
    : cache_capacity_(cache_capacity), hw_capacity_(hw_capacity) {}

bool FlowTable::install(const Rule& rule, Band band, double now, double idle_timeout,
                        double hard_timeout, std::vector<RuleId> guards) {
  auto& entries = bands_[index(band)];
  // Same-id reinstall refreshes the entry in place (counters survive).
  const auto existing = std::find_if(entries.begin(), entries.end(),
                                     [&](const FlowEntry& e) { return e.rule.id == rule.id; });
  if (existing != entries.end()) {
    existing->rule = rule;
    existing->install_time = now;
    existing->idle_timeout = idle_timeout;
    existing->hard_timeout = hard_timeout;
    existing->last_hit = now;
    existing->guards = std::move(guards);
    ++stats_.installs;
    return true;
  }
  if (band == Band::kCache) {
    if (cache_capacity_ == 0) {
      ++stats_.install_rejected;
      return false;
    }
    while (entries.size() >= cache_capacity_) evict_lru_cache(now);
  } else {
    const std::size_t other = bands_[index(Band::kAuthority)].size() +
                              bands_[index(Band::kPartition)].size();
    if (other >= hw_capacity_) {
      ++stats_.install_rejected;
      return false;
    }
  }
  FlowEntry entry;
  entry.rule = rule;
  entry.band = band;
  entry.install_time = now;
  entry.idle_timeout = idle_timeout;
  entry.hard_timeout = hard_timeout;
  entry.last_hit = now;
  entry.guards = std::move(guards);
  const auto pos = std::lower_bound(
      entries.begin(), entries.end(), entry,
      [](const FlowEntry& a, const FlowEntry& b) { return rule_before(a.rule, b.rule); });
  entries.insert(pos, std::move(entry));
  ++stats_.installs;
  return true;
}

void FlowTable::retire(const FlowEntry& entry) {
  // Plumbing entries re-count at the authority switch; see retired() docs.
  if (entry.band == Band::kPartition) return;
  if (entry.rule.action.type == ActionType::kEncap) return;
  if (entry.packets == 0 && entry.bytes == 0) return;
  auto& row = retired_[entry.rule.origin_or_self()];
  row.packets += entry.packets;
  row.bytes += entry.bytes;
}

void FlowTable::cascade_remove_dependents(std::vector<RuleId> removed_ids) {
  auto& cache = bands_[index(Band::kCache)];
  while (!removed_ids.empty()) {
    const RuleId gone = removed_ids.back();
    removed_ids.pop_back();
    for (auto it = cache.begin(); it != cache.end();) {
      const bool guarded_by_gone =
          std::find(it->guards.begin(), it->guards.end(), gone) != it->guards.end();
      if (guarded_by_gone) {
        retire(*it);
        removed_ids.push_back(it->rule.id);
        it = cache.erase(it);
        ++stats_.cascade_evictions;
      } else {
        ++it;
      }
    }
  }
}

void FlowTable::evict_lru_cache(double now) {
  auto& cache = bands_[index(Band::kCache)];
  expects(!cache.empty(), "evict_lru_cache: cache empty");
  (void)now;
  const auto victim = std::min_element(
      cache.begin(), cache.end(),
      [](const FlowEntry& a, const FlowEntry& b) { return a.last_hit < b.last_hit; });
  retire(*victim);
  const RuleId gone = victim->rule.id;
  cache.erase(victim);
  ++stats_.evictions;
  cascade_remove_dependents({gone});
}

bool FlowTable::remove(RuleId id, Band band) {
  auto& entries = bands_[index(band)];
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [id](const FlowEntry& e) { return e.rule.id == id; });
  if (it == entries.end()) return false;
  retire(*it);
  const RuleId gone = it->rule.id;
  entries.erase(it);
  if (band == Band::kCache) cascade_remove_dependents({gone});
  return true;
}

void FlowTable::clear_band(Band band) {
  for (const auto& entry : bands_[index(band)]) retire(entry);
  bands_[index(band)].clear();
}

std::size_t FlowTable::expire(double now) {
  std::size_t total = 0;
  std::vector<RuleId> expired_cache;
  for (auto& entries : bands_) {
    const bool is_cache = &entries == &bands_[index(Band::kCache)];
    const auto before = entries.size();
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const FlowEntry& e) {
                                   if (e.expired(now)) {
                                     retire(e);
                                     if (is_cache) expired_cache.push_back(e.rule.id);
                                     return true;
                                   }
                                   return false;
                                 }),
                  entries.end());
    total += before - entries.size();
  }
  stats_.expirations += total;
  if (!expired_cache.empty()) cascade_remove_dependents(std::move(expired_cache));
  return total;
}

const FlowEntry* FlowTable::lookup(const BitVec& packet, double now, std::uint64_t bytes) {
  expire(now);
  for (auto& entries : bands_) {
    for (auto& entry : entries) {
      if (entry.rule.match.matches(packet)) {
        entry.last_hit = now;
        ++entry.packets;
        entry.bytes += bytes;
        ++stats_.hits_per_band[index(entry.band)];
        // A hit keeps the whole protection group warm: guards that never
        // win on their own must not idle out (or become LRU victims) while
        // the entries they protect are hot — the safety cascade would then
        // evict hot entries along with them.
        if (entry.band == Band::kCache && !entry.guards.empty()) {
          auto& cache = bands_[index(Band::kCache)];
          for (auto& other : cache) {
            if (std::find(entry.guards.begin(), entry.guards.end(), other.rule.id) !=
                entry.guards.end()) {
              other.last_hit = now;
            }
          }
        }
        return &entry;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

bool FlowTable::hit(RuleId id, Band band, double now, std::uint64_t bytes) {
  auto& entries = bands_[index(band)];
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [id](const FlowEntry& e) { return e.rule.id == id; });
  if (it == entries.end()) return false;
  it->last_hit = now;
  ++it->packets;
  it->bytes += bytes;
  ++stats_.hits_per_band[index(band)];
  return true;
}

const FlowEntry* FlowTable::peek(const BitVec& packet, double now) const {
  for (const auto& entries : bands_) {
    for (const auto& entry : entries) {
      if (entry.expired(now)) continue;
      if (entry.rule.match.matches(packet)) return &entry;
    }
  }
  return nullptr;
}

std::size_t FlowTable::total_size() const {
  std::size_t n = 0;
  for (const auto& entries : bands_) n += entries.size();
  return n;
}

const FlowEntry* FlowTable::find(RuleId id, Band band) const {
  const auto& entries = bands_[index(band)];
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [id](const FlowEntry& e) { return e.rule.id == id; });
  return it == entries.end() ? nullptr : &*it;
}

}  // namespace difane
