// Switch flow table with DIFANE's three priority bands. Cache rules shadow
// authority rules shadow partition rules, regardless of the numeric
// priorities inside each band — exactly the layering the paper installs in
// every switch's TCAM. Cache entries carry idle/hard timeouts and LRU-evict
// when the cache band is full; authority and partition entries are proactive
// and never expire.
//
// Fast-path layout: entries live in a stable slab; each band keeps an
// ordered index of slab slots plus a RuleId hash map, and the cache band
// additionally keeps an exact-match hash (full-mask microflow entries, the
// dominant NOX / kExact case) with a wildcard-only ordered scan as the
// fallthrough. The band order mirrors the original vector semantics
// bit-for-bit: inserts land at their rule_before position, same-id refreshes
// stay where they are (even when the refresh changes the priority), and the
// winner is always the first live match in band order. Expiry is lazy: a
// min-expiry watermark skips the per-lookup sweep entirely until some entry
// can actually have timed out, at which point a full sweep runs — so
// observable behavior (stats, cascades, LRU order) is byte-identical to
// sweeping on every lookup.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flowspace/rule.hpp"

namespace difane {

enum class Band : std::uint8_t { kCache = 0, kAuthority = 1, kPartition = 2 };
inline constexpr std::size_t kNumBands = 3;

const char* band_name(Band band);

// Why a cache entry left the table. Reported through the removal listener so
// layers above (the telemetry flush path) can react per cause.
enum class CacheRemoval : std::uint8_t {
  kEvicted = 0,   // LRU victim on a full cache
  kExpired,       // idle/hard timeout sweep
  kRemoved,       // explicit remove() (controller delete, failover purge)
  kCascaded,      // guard left; safety cascade took the dependent with it
  kCleared,       // clear_band(kCache) — crash/reset wipes
};

const char* cache_removal_name(CacheRemoval cause);

struct FlowEntry {
  Rule rule;
  Band band = Band::kPartition;
  double install_time = 0.0;
  double idle_timeout = 0.0;  // seconds; 0 => none
  double hard_timeout = 0.0;  // seconds; 0 => none
  double last_hit = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  // Ids of the higher-priority entries this cache entry needs present to be
  // safe (its install group's protectors: dependent-set ancestors or
  // cover-set shadows). If any guard leaves the table, this entry must go
  // too. Empty for self-sufficient entries (microflow, shadows, proactive
  // bands).
  std::vector<RuleId> guards;

  bool expired(double now) const {
    if (hard_timeout > 0.0 && now >= install_time + hard_timeout) return true;
    if (idle_timeout > 0.0 && now >= last_hit + idle_timeout) return true;
    return false;
  }
};

struct FlowTableStats {
  std::uint64_t hits_per_band[kNumBands] = {0, 0, 0};
  std::uint64_t misses = 0;           // matched nothing in any band
  std::uint64_t installs = 0;
  std::uint64_t evictions = 0;        // cache LRU evictions
  std::uint64_t expirations = 0;      // timeout removals
  std::uint64_t cascade_evictions = 0;  // dependents removed for safety
  std::uint64_t install_rejected = 0; // non-cache band over capacity
};

class FlowTable {
 public:
  explicit FlowTable(std::size_t cache_capacity = 1000,
                     std::size_t hw_capacity = std::numeric_limits<std::size_t>::max());

  // Install an entry. Cache-band installs LRU-evict on overflow and replace
  // an existing entry with the same rule id (refreshing its timeouts and
  // guards). Authority/partition installs fail (returning false) if the
  // non-cache capacity is exhausted. `guards` lists the protector entry ids
  // this entry depends on (see FlowEntry::guards).
  bool install(const Rule& rule, Band band, double now, double idle_timeout = 0.0,
               double hard_timeout = 0.0, std::vector<RuleId> guards = {});

  // Bulk install into a non-cache band: semantically identical to calling
  // install(rule, band, now) for each pointed-to rule in sequence (same
  // final match order, same stats counters, same capacity/refresh
  // behaviour), but O((n + k) + k log k) instead of O(n * k) — new entries
  // are appended and merged into the band order once instead of paying a
  // vector memmove plus a full position refresh per rule. Used by the
  // controller's initial authority/partition population, where the
  // per-insert path is quadratic at millions of rules (the E11 stress tier).
  //
  // Precondition: the band order is rule_before-sorted on entry. That holds
  // for any band populated through install()/install_bulk, because
  // rule_before is a strict total order (priority desc, id asc), ids are
  // unique within a band, and same-id refreshes keep their position — it
  // could only break if a refresh changed an entry's priority, which no
  // non-cache caller does. Timeouts are fixed at "never" (0.0) and guards
  // empty, matching every existing non-cache install site. Returns the
  // number of rules accepted (installed or refreshed in place).
  std::size_t install_bulk(const std::vector<const Rule*>& rules, Band band,
                           double now);

  bool remove(RuleId id, Band band);
  void clear_band(Band band);

  // Find the winning entry: lowest band first, then rule priority order
  // within the band. A hit updates last_hit and counters. Expired entries
  // are swept (with identical semantics to an eager per-lookup sweep) before
  // matching; the sweep is skipped while the expiry watermark proves no
  // entry can have timed out.
  const FlowEntry* lookup(const BitVec& packet, double now, std::uint64_t bytes = 1);

  // ---- Burst-mode batch lookup --------------------------------------------
  // Two-phase shape (NDN-DPDK style): pass 1 hashes every key in the burst
  // and prefetches the slab entries it will touch; pass 2 resolves one key
  // at a time, interleaved with whatever per-packet work the caller does in
  // between. Pass 1 performs no observable mutation (no sweep, no counters),
  // so the sequence {prefetch; prepared(0); prepared(1); ...} is
  // byte-identical to scalar lookup() calls at the same (key, now) sequence —
  // including lazy-expiry sweeps triggered mid-burst, which bump a structure
  // generation and invalidate the memoized heads (recomputed per key).

  // Largest burst one BatchState covers; callers chunk longer bursts.
  static constexpr std::size_t kMaxBatch = 64;

  // Pass-1 result: the exact-match chain head per key plus the structure
  // generation it was computed at.
  struct BatchState {
    std::uint64_t gen = 0;
    std::uint32_t heads[kMaxBatch];
  };

  // Pass 1: memoize exact-match heads for keys[0..n) (n <= kMaxBatch) and,
  // when `prefetch` is set, issue software prefetches over the entry slab —
  // for each key, the first prefetch_depth() entries of its duplicate chain.
  void lookup_prefetch(const BitVec* const* keys, std::size_t n,
                       BatchState& batch, bool prefetch = true) const;

  // Duplicate-chain entries prefetched per key by pass 1 (util/prefetch.hpp
  // depth semantics). 1 — the default — fetches only the chain head, which
  // is the winner unless it expired or was superseded; deeper values keep
  // the resolve pass from stalling when hot keys carry refreshed duplicates.
  // A pure hardware hint: lookup results are identical at any depth.
  void set_prefetch_depth(std::uint32_t depth) {
    prefetch_depth_ = depth > 0 ? depth : 1;
  }
  std::uint32_t prefetch_depth() const { return prefetch_depth_; }

  // Pass 2: the scalar lookup() for keys[i], reusing the memoized head when
  // the structure generation still matches (recomputing it otherwise).
  const FlowEntry* lookup_prepared(const BitVec& packet, std::size_t i,
                                   const BatchState& batch, double now,
                                   std::uint64_t bytes = 1);

  // One-shot convenience over the two phases: resolve keys[0..n) in order
  // (chunked internally at kMaxBatch), writing each winner (or nullptr) to
  // out[i] and returning the hit count. Out-pointers stay valid only until
  // the next structural mutation — a timeout sweep triggered by a later key
  // in the same batch can invalidate earlier entries, so callers that hold
  // the entries across sweeps must consume per chunk (the scenario burst
  // path uses the two-phase API for exactly this reason).
  std::size_t lookup_batch(const BitVec* const* keys, const double* nows,
                           const std::uint64_t* bytes, std::size_t n,
                           const FlowEntry** out, bool prefetch = true);

  // Non-mutating probe (no counter/LRU update, no expiry). Uses the same
  // live-match selection as lookup, so the two can never disagree on the
  // winner at a given instant.
  const FlowEntry* peek(const BitVec& packet, double now) const;

  // Credit a hit to a specific entry by id (used when the control logic
  // resolved the match out-of-band, e.g. an authority switch handling a
  // redirected packet against its partition). Returns false if absent.
  bool hit(RuleId id, Band band, double now, std::uint64_t bytes = 1);

  std::size_t expire(double now);

  std::size_t size(Band band) const { return bands_[index(band)].order.size(); }
  std::size_t total_size() const;
  std::size_t cache_capacity() const { return cache_capacity_; }
  const FlowEntry* find(RuleId id, Band band) const;

  // One entry's liveness+match test, shared verbatim by lookup and peek (and
  // the property suite asserts their agreement): a rule wins iff it has not
  // timed out and its ternary pattern matches the packet.
  static bool live_match(const FlowEntry& entry, const BitVec& packet, double now) {
    return !entry.expired(now) && entry.rule.match.matches(packet);
  }

  // Read-only view of one band in match order. Iterates the band's slot
  // index over the entry slab; stable while the table is not mutated.
  class BandView {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = FlowEntry;
      using difference_type = std::ptrdiff_t;
      using pointer = const FlowEntry*;
      using reference = const FlowEntry&;
      iterator(const FlowEntry* slab, const std::uint32_t* pos)
          : slab_(slab), pos_(pos) {}
      const FlowEntry& operator*() const { return slab_[*pos_]; }
      const FlowEntry* operator->() const { return &slab_[*pos_]; }
      iterator& operator++() { ++pos_; return *this; }
      iterator operator++(int) { iterator old = *this; ++pos_; return old; }
      friend bool operator==(const iterator& a, const iterator& b) { return a.pos_ == b.pos_; }
      friend bool operator!=(const iterator& a, const iterator& b) { return a.pos_ != b.pos_; }
     private:
      const FlowEntry* slab_;
      const std::uint32_t* pos_;
    };

    iterator begin() const { return iterator(slab_, idx_); }
    iterator end() const { return iterator(slab_, idx_ + count_); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    const FlowEntry& front() const { return slab_[idx_[0]]; }
    const FlowEntry& operator[](std::size_t i) const { return slab_[idx_[i]]; }

   private:
    friend class FlowTable;
    BandView(const FlowEntry* slab, const std::uint32_t* idx, std::size_t count)
        : slab_(slab), idx_(idx), count_(count) {}
    const FlowEntry* slab_;
    const std::uint32_t* idx_;
    std::size_t count_;
  };

  BandView entries(Band band) const {
    const auto& bs = bands_[index(band)];
    return BandView(slab_.data(), bs.order.data(), bs.order.size());
  }

  const FlowTableStats& stats() const { return stats_; }

  // Observes every cache-band entry leaving the table. Fired once per entry,
  // with the entry still fully intact (rule, counters, guards) and the cause
  // of its removal, immediately before the slot is recycled. The listener
  // runs mid-removal and MUST NOT mutate this table; buffer and act later.
  // The telemetry layer hangs its eviction-flush semantics off this hook —
  // an evicted elephant's pending counts are exported instead of vanishing.
  using RemovalListener = std::function<void(const FlowEntry&, CacheRemoval)>;
  void set_removal_listener(RemovalListener listener) {
    removal_listener_ = std::move(listener);
  }

  // Counters of removed entries (timeout, eviction, explicit delete),
  // accumulated per origin rule. A real switch reports these in
  // flow-removed messages; keeping them lets per-policy-rule statistics
  // stay exact across cache churn (the transparency property). Redirect
  // plumbing (encap actions, partition band) is excluded — those hits are
  // re-counted at the authority switch and would double-book.
  struct RetiredCounters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  const std::unordered_map<RuleId, RetiredCounters>& retired() const {
    return retired_;
  }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct BandState {
    // Slab slots in band match order: rule_before order on insert, with
    // same-id refreshes keeping their original position (mirroring the
    // vector implementation this replaced).
    std::vector<std::uint32_t> order;
    std::unordered_map<RuleId, std::uint32_t> by_id;  // rule id -> slab slot
  };

  static std::size_t index(Band band) { return static_cast<std::size_t>(band); }
  static bool full_mask(const Ternary& match);

  // Earliest instant this entry can expire (+inf when it never does).
  static double next_expiry(const FlowEntry& e);
  void note_expiry(const FlowEntry& e);
  void recompute_watermark();

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);

  // Band-order helpers: insert at the rule_before position, erase by the
  // tracked position, and keep order_pos_ (slot -> index in its band's
  // order) in sync after every shift.
  void order_insert(BandState& bs, std::uint32_t slot);
  void order_erase(BandState& bs, std::uint32_t slot);
  void refresh_positions(const BandState& bs, std::size_t from);

  // Cache-band accelerators (exact-match chain / wildcard scan list).
  void link_cache_aux(std::uint32_t slot);
  void unlink_cache_aux(std::uint32_t slot);
  void link_guards(std::uint32_t slot);
  void unlink_guards(std::uint32_t slot);

  // Remove a (already retired) entry from every index of its band.
  void erase_entry(std::uint32_t slot, Band band);

  void notify_removal(const FlowEntry& entry, CacheRemoval cause) {
    if (removal_listener_) removal_listener_(entry, cause);
  }

  // Shared winner selection for lookup/peek: first live match in cache
  // (exact fast path + wildcard scan), then authority, then partition.
  const FlowEntry* find_live_match(const BitVec& packet, double now) const;
  // Head of the exact-match chain for this header, or kNilSlot. The batch
  // path memoizes this per key; resolve_live_match takes it as input so the
  // memoized and freshly-computed paths share one winner selection.
  std::uint32_t exact_head(const BitVec& packet) const;
  const FlowEntry* resolve_live_match(const BitVec& packet, double now,
                                      std::uint32_t head) const;
  // Mutation tail shared by lookup and lookup_prepared: miss/hit counters,
  // last_hit refresh, and guard warm-keep.
  const FlowEntry* finish_lookup(FlowEntry* entry, double now,
                                 std::uint64_t bytes);

  void evict_lru_cache(double now);
  void retire(const FlowEntry& entry);
  // Safety cascade: when a cache entry leaves (eviction, timeout, delete),
  // every cache entry that listed it as a guard is unsafe — without its
  // protector it would steal packets — and must leave too, recursively.
  // Re-caching on the next miss restores the full group. Without this,
  // cache churn silently breaks the semantics wildcard caching promises.
  // Keyed by rule id (not by resolved entry), so a dependent installed
  // before — or surviving beyond — its protector binds to whichever entry
  // currently carries that id, exactly as the id-based scan did.
  void cascade_remove_dependents(std::vector<RuleId> removed_ids);

  std::size_t cache_capacity_;
  std::size_t hw_capacity_;  // shared budget for authority+partition bands

  std::vector<FlowEntry> slab_;            // stable entry storage
  std::vector<std::uint32_t> exact_next_;  // intrusive per-slot chain for cache_exact_
  std::vector<std::uint32_t> order_pos_;   // slot -> index in its band's order
  std::vector<std::uint32_t> free_slots_;
  BandState bands_[kNumBands];

  // Cache-band fast path: full-mask entries hash by their exact header value
  // (same-value duplicates chain through exact_next_); everything else sits
  // in a wildcard-only scan list kept in band order (sorted by order_pos_).
  std::unordered_map<BitVec, std::uint32_t> cache_exact_;
  std::vector<std::uint32_t> cache_wild_order_;

  // Reverse guard index: guard rule id -> ids of cache entries listing it.
  std::unordered_map<RuleId, std::vector<RuleId>> dependents_;

  // Lower bound on the earliest instant any entry can expire; +inf when no
  // entry carries a timeout. lookup() sweeps only once `now` reaches it.
  double expiry_watermark_ = std::numeric_limits<double>::infinity();

  // See set_prefetch_depth(); >= 1 always.
  std::uint32_t prefetch_depth_ = 1;

  // Structure generation: bumped by every mutator that can move, remove, or
  // re-link entries (install, remove, clear_band, expire, LRU eviction,
  // guard cascades). BatchState heads memoized at an older generation are
  // stale and recomputed per key.
  std::uint64_t gen_ = 0;

  FlowTableStats stats_;
  std::unordered_map<RuleId, RetiredCounters> retired_;
  RemovalListener removal_listener_;
};

}  // namespace difane
