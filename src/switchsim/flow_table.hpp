// Switch flow table with DIFANE's three priority bands. Cache rules shadow
// authority rules shadow partition rules, regardless of the numeric
// priorities inside each band — exactly the layering the paper installs in
// every switch's TCAM. Cache entries carry idle/hard timeouts and LRU-evict
// when the cache band is full; authority and partition entries are proactive
// and never expire.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flowspace/rule.hpp"

namespace difane {

enum class Band : std::uint8_t { kCache = 0, kAuthority = 1, kPartition = 2 };
inline constexpr std::size_t kNumBands = 3;

const char* band_name(Band band);

struct FlowEntry {
  Rule rule;
  Band band = Band::kPartition;
  double install_time = 0.0;
  double idle_timeout = 0.0;  // seconds; 0 => none
  double hard_timeout = 0.0;  // seconds; 0 => none
  double last_hit = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  // Ids of the higher-priority entries this cache entry needs present to be
  // safe (its install group's protectors: dependent-set ancestors or
  // cover-set shadows). If any guard leaves the table, this entry must go
  // too. Empty for self-sufficient entries (microflow, shadows, proactive
  // bands).
  std::vector<RuleId> guards;

  bool expired(double now) const {
    if (hard_timeout > 0.0 && now >= install_time + hard_timeout) return true;
    if (idle_timeout > 0.0 && now >= last_hit + idle_timeout) return true;
    return false;
  }
};

struct FlowTableStats {
  std::uint64_t hits_per_band[kNumBands] = {0, 0, 0};
  std::uint64_t misses = 0;           // matched nothing in any band
  std::uint64_t installs = 0;
  std::uint64_t evictions = 0;        // cache LRU evictions
  std::uint64_t expirations = 0;      // timeout removals
  std::uint64_t cascade_evictions = 0;  // dependents removed for safety
  std::uint64_t install_rejected = 0; // non-cache band over capacity
};

class FlowTable {
 public:
  explicit FlowTable(std::size_t cache_capacity = 1000,
                     std::size_t hw_capacity = std::numeric_limits<std::size_t>::max());

  // Install an entry. Cache-band installs LRU-evict on overflow and replace
  // an existing entry with the same rule id (refreshing its timeouts and
  // guards). Authority/partition installs fail (returning false) if the
  // non-cache capacity is exhausted. `guards` lists the protector entry ids
  // this entry depends on (see FlowEntry::guards).
  bool install(const Rule& rule, Band band, double now, double idle_timeout = 0.0,
               double hard_timeout = 0.0, std::vector<RuleId> guards = {});

  bool remove(RuleId id, Band band);
  void clear_band(Band band);

  // Expire, then find the winning entry: lowest band first, then rule
  // priority order within the band. A hit updates last_hit and counters.
  const FlowEntry* lookup(const BitVec& packet, double now, std::uint64_t bytes = 1);

  // Non-mutating probe (no counter/LRU update, no expiry).
  const FlowEntry* peek(const BitVec& packet, double now) const;

  // Credit a hit to a specific entry by id (used when the control logic
  // resolved the match out-of-band, e.g. an authority switch handling a
  // redirected packet against its partition). Returns false if absent.
  bool hit(RuleId id, Band band, double now, std::uint64_t bytes = 1);

  std::size_t expire(double now);

  std::size_t size(Band band) const { return bands_[index(band)].size(); }
  std::size_t total_size() const;
  std::size_t cache_capacity() const { return cache_capacity_; }
  const std::vector<FlowEntry>& entries(Band band) const { return bands_[index(band)]; }
  const FlowEntry* find(RuleId id, Band band) const;

  const FlowTableStats& stats() const { return stats_; }

  // Counters of removed entries (timeout, eviction, explicit delete),
  // accumulated per origin rule. A real switch reports these in
  // flow-removed messages; keeping them lets per-policy-rule statistics
  // stay exact across cache churn (the transparency property). Redirect
  // plumbing (encap actions, partition band) is excluded — those hits are
  // re-counted at the authority switch and would double-book.
  struct RetiredCounters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  const std::unordered_map<RuleId, RetiredCounters>& retired() const {
    return retired_;
  }

 private:
  static std::size_t index(Band band) { return static_cast<std::size_t>(band); }
  void evict_lru_cache(double now);
  void retire(const FlowEntry& entry);
  // Safety cascade: when a cache entry leaves (eviction, timeout, delete),
  // every cache entry that listed it as a guard is unsafe — without its
  // protector it would steal packets — and must leave too, recursively.
  // Re-caching on the next miss restores the full group. Without this,
  // cache churn silently breaks the semantics wildcard caching promises.
  void cascade_remove_dependents(std::vector<RuleId> removed_ids);

  std::size_t cache_capacity_;
  std::size_t hw_capacity_;  // shared budget for authority+partition bands
  std::vector<FlowEntry> bands_[kNumBands];  // each sorted by rule_before
  FlowTableStats stats_;
  std::unordered_map<RuleId, RetiredCounters> retired_;
};

}  // namespace difane
