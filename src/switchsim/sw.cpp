#include "switchsim/sw.hpp"

#include <sstream>

namespace difane {

std::string Switch::describe() const {
  std::ostringstream os;
  os << "switch " << id_ << (failed_ ? " (FAILED)" : "") << ": cache "
     << table_.size(Band::kCache) << "/" << table_.cache_capacity() << ", authority "
     << table_.size(Band::kAuthority) << ", partition " << table_.size(Band::kPartition);
  return os.str();
}

}  // namespace difane
