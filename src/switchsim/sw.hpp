// Switch model: an identified node holding a banded flow table plus the
// port map the data plane forwards over. Behavior (what to do on a hit or a
// miss) lives in the control-plane layers (core/, controller/) — the switch
// itself is a faithful, passive data-plane element, like the Click/OpenFlow
// switch the paper's prototype modified.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "switchsim/flow_table.hpp"

namespace difane {

using SwitchId = std::uint32_t;
using PortId = std::uint32_t;

inline constexpr SwitchId kInvalidSwitch = 0xffffffffu;

class Switch {
 public:
  Switch(SwitchId id, std::size_t cache_capacity,
         std::size_t hw_capacity = std::numeric_limits<std::size_t>::max())
      : id_(id), table_(cache_capacity, hw_capacity) {}

  SwitchId id() const { return id_; }
  FlowTable& table() { return table_; }
  const FlowTable& table() const { return table_; }

  // Port wiring: port -> neighbor switch (or host) id. The topology layer
  // fills this in; kEgressPortBase+... ports lead out of the network.
  void connect(PortId port, SwitchId neighbor) { ports_[port] = neighbor; }
  std::optional<SwitchId> neighbor(PortId port) const {
    const auto it = ports_.find(port);
    if (it == ports_.end()) return std::nullopt;
    return it->second;
  }
  const std::unordered_map<PortId, SwitchId>& ports() const { return ports_; }

  bool failed() const { return failed_; }
  void set_failed(bool failed) { failed_ = failed; }

  std::string describe() const;

 private:
  SwitchId id_;
  FlowTable table_;
  std::unordered_map<PortId, SwitchId> ports_;
  bool failed_ = false;
};

}  // namespace difane
