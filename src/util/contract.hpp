// Lightweight precondition / postcondition helpers in the spirit of the
// Core Guidelines' Expects()/Ensures(). Violations throw std::logic_error so
// tests can assert on misuse without aborting the whole process.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace difane {

class contract_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Precondition: the caller must satisfy `cond` before invoking the operation.
inline void expects(bool cond, const char* what = "precondition violated",
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw contract_violation(std::string(what) + " at " + loc.file_name() + ":" +
                             std::to_string(loc.line()));
  }
}

// Postcondition: the implementation guarantees `cond` on exit.
inline void ensures(bool cond, const char* what = "postcondition violated",
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw contract_violation(std::string(what) + " at " + loc.file_name() + ":" +
                             std::to_string(loc.line()));
  }
}

}  // namespace difane
