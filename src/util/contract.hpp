// Lightweight precondition / postcondition helpers in the spirit of the
// Core Guidelines' Expects()/Ensures(). Violations throw std::logic_error so
// tests can assert on misuse without aborting the whole process.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace difane {

class contract_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Precondition: the caller must satisfy `cond` before invoking the operation.
inline void expects(bool cond, const char* what = "precondition violated",
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw contract_violation(std::string(what) + " at " + loc.file_name() + ":" +
                             std::to_string(loc.line()));
  }
}

// Postcondition: the implementation guarantees `cond` on exit.
inline void ensures(bool cond, const char* what = "postcondition violated",
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw contract_violation(std::string(what) + " at " + loc.file_name() + ":" +
                             std::to_string(loc.line()));
  }
}

// A rejected configuration: some parameter struct (ScenarioParams and
// friends) was mis-wired. Carries the offending field name so callers and
// tests can assert on *which* knob was wrong, not just that something was.
// Derives from contract_violation: a bad config is a precondition violation,
// and existing EXPECT_THROW(..., contract_violation) sites keep passing.
class ConfigError : public contract_violation {
 public:
  ConfigError(std::string field, const std::string& message)
      : contract_violation("ConfigError[" + field + "]: " + message),
        field_(std::move(field)) {}
  const std::string& field() const { return field_; }

 private:
  std::string field_;
};

}  // namespace difane
