// Small-buffer-optimized move-only callable with signature void(). Callables
// whose state fits the inline buffer (and is nothrow-move-constructible) are
// stored in place — construction, relocation, invocation, and destruction
// never touch the heap. Oversized callables fall back to a single heap
// allocation, so correctness never depends on the buffer size; performance
// callers static_assert `fits_inline` on their hottest captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/contract.hpp"

namespace difane {

template <std::size_t Capacity>
class InlineFn {
 public:
  static constexpr std::size_t kCapacity = Capacity;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= Capacity &&
      alignof(std::decay_t<F>) <= kAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() {
    expects(vt_ != nullptr, "InlineFn: invoking an empty handler");
    vt_->invoke(buf_);
  }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void* p);
    // Move-construct the callable at dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* p);
  };

  template <typename Fn>
  static constexpr VTable kInlineVTable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  void move_from(InlineFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(kAlign) unsigned char buf_[Capacity];
};

}  // namespace difane
