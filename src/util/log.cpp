#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace difane {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", tag(level), msg.c_str());
}

}  // namespace difane
