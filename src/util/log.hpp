// Minimal leveled logger. Deliberately tiny: the simulators in this repo are
// single-threaded per engine, but the logger itself is thread-safe so tools
// that run scenarios in parallel can share it.
#pragma once

#include <sstream>
#include <string>

namespace difane {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emit one line to stderr with a level tag. Not for per-packet hot paths.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) log_line(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) log_line(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError) log_line(LogLevel::kError, detail::concat(args...));
}
template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) log_line(LogLevel::kDebug, detail::concat(args...));
}

}  // namespace difane
