#pragma once

// Portable software-prefetch wrapper for the burst-mode data plane. The
// batch lookup path (FlowTable::lookup_prefetch) hashes a whole burst of
// keys first and issues prefetches over the entry slab before resolving any
// of them, so the slab lines are (ideally) resident by the time the resolve
// loop touches them. On compilers without __builtin_prefetch this compiles
// to nothing — prefetch is a pure hint and must never change semantics.

namespace difane::util {

#if defined(__GNUC__) || defined(__clang__)

// Hint that `p` will be read soon. `locality` 0..3 maps to the compiler's
// temporal-locality hint (3 = keep in all cache levels, the right default
// for table entries that the resolve pass reads within a few hundred ns).
inline void prefetch_read(const void* p) { __builtin_prefetch(p, 0, 3); }

inline void prefetch_write(const void* p) { __builtin_prefetch(p, 1, 3); }

#else

inline void prefetch_read(const void*) {}
inline void prefetch_write(const void*) {}

#endif

// Cache-line granularity assumed by the range helper. Every mainstream
// target this builds on (x86-64, aarch64) uses 64-byte lines; a wrong guess
// costs at most redundant or missing hints, never correctness.
inline constexpr unsigned kCacheLineBytes = 64;

// Prefetch an object that may span multiple cache lines: one hint per cache
// line over [p, p + bytes). FlowEntry is ~3 lines; fetching all of them keeps
// the resolve pass from stalling on the second line after the first hit.
inline void prefetch_read_range(const void* p, unsigned bytes) {
  const char* c = static_cast<const char*>(p);
  for (unsigned off = 0; off < bytes; off += kCacheLineBytes) {
    prefetch_read(c + off);
  }
}

// Depth semantics for chained prefetch (FlowTable's exact-match duplicate
// chains, ScenarioParams::prefetch_depth): depth N means "prefetch the first
// N nodes reachable from the head", each via prefetch_read_range. Walking a
// linked chain requires the *caller's* node layout, so the walk itself lives
// with the data structure; this header only fixes the unit (nodes, not
// lines) so every tunable that says "depth" means the same thing.

}  // namespace difane::util
