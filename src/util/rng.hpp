// Deterministic random-number utilities shared by the workload generators and
// the simulators. All experiments in this repo are seeded, so runs are
// reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/contract.hpp"

namespace difane {

// SplitMix64: tiny, fast, good-quality seeder / hash mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Seeded PRNG wrapper with the sampling helpers the workloads need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    expects(lo <= hi, "uniform: empty range");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  // Uniform double in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Exponential inter-arrival time with the given rate (events per unit time).
  double exponential(double rate) {
    expects(rate > 0.0, "exponential: rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Bounded Pareto sample in [min, max] with shape alpha; heavy-tailed flow sizes.
  double pareto(double min, double max, double alpha) {
    expects(min > 0.0 && max > min && alpha > 0.0, "pareto: bad parameters");
    const double u = uniform01();
    const double ha = std::pow(min / max, alpha);
    return min / std::pow(1.0 - u * (1.0 - ha), 1.0 / alpha);
  }

  // Pick an index with probability proportional to weights[i].
  std::size_t weighted_index(const std::vector<double>& weights) {
    expects(!weights.empty(), "weighted_index: empty weights");
    return std::discrete_distribution<std::size_t>(weights.begin(), weights.end())(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Zipf sampler over ranks 1..n with exponent s: P(k) proportional to k^-s.
// Precomputes the CDF once; sampling is a binary search. Internet flow
// popularity is approximately Zipfian, which is the property the DIFANE cache
// experiments depend on.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s) : cdf_(n) {
    expects(n > 0, "zipf: n must be positive");
    double sum = 0.0;
    for (std::size_t k = 1; k <= n; ++k) sum += 1.0 / std::pow(static_cast<double>(k), s);
    double acc = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      acc += (1.0 / std::pow(static_cast<double>(k), s)) / sum;
      cdf_[k - 1] = acc;
    }
    cdf_.back() = 1.0;  // guard against rounding
  }

  // Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform01();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

  std::size_t size() const { return cdf_.size(); }

  // Probability mass of rank k (0-based).
  double pmf(std::size_t k) const {
    expects(k < cdf_.size(), "zipf: rank out of range");
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace difane
