#pragma once

// Fixed-capacity single-producer/single-consumer ring (the NDN-DPDK /
// DPDK rte_ring shape, specialized to SPSC): power-of-two capacity with an
// index mask, monotonically increasing head/tail counters, and *cached*
// peer indices so the steady-state fast path touches only one shared
// atomic per operation instead of two.
//
// Memory ordering contract:
//   - try_push stores the slot, then publishes with tail_.store(release);
//     try_pop observes it with tail_.load(acquire) — the slot write
//     happens-before the consumer's read.
//   - try_pop retires the slot, then head_.store(release); try_push observes
//     reclaimed space with head_.load(acquire) — the consumer's move-out
//     happens-before the producer overwrites the slot.
//
// The sharded executor uses one ring per shard as its window outbox: the
// shard's worker is the only producer and the barrier coordinator the only
// consumer, and the barrier guarantees the two never run concurrently with
// a role swap. A full ring never blocks the producer — the executor spills
// to a plain vector (drained after the ring, preserving FIFO).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/contract.hpp"

namespace difane::util {

constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

template <typename T>
class SpscRing {
 public:
  // Capacity must be a power of two (>= 1) so wrapping is a mask, not a
  // modulo. All `capacity` slots are usable: fullness is tracked by counter
  // distance, not by sacrificing a slot.
  explicit SpscRing(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    expects(is_power_of_two(capacity),
            "SpscRing: capacity must be a power of two");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Producer side. Returns false (leaving `v` untouched) when full.
  bool try_push(T&& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == capacity()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Snapshot size — exact only when producer and consumer are quiescent
  // (e.g. at an executor barrier); a racy estimate otherwise.
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }

 private:
  // Shared counters on their own cache lines so producer stores never
  // false-share with consumer stores; the cached peer index lives next to
  // the counter its owner writes (same core, no sharing).
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer-owned
  std::uint64_t head_cache_ = 0;                    // producer's view of head_
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer-owned
  std::uint64_t tail_cache_ = 0;                    // consumer's view of tail_
  alignas(64) std::size_t mask_;
  std::vector<T> slots_;
};

}  // namespace difane::util
