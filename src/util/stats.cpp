#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/contract.hpp"

namespace difane {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge_from(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  sum_ += other.sum_;
  n_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  expects(!samples_.empty(), "percentile of empty sample set");
  expects(p >= 0.0 && p <= 1.0, "percentile p out of [0,1]");
  sort_if_needed();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_points(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  sort_if_needed();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(percentile(frac), frac);
  }
  return out;
}

LogHistogram::LogHistogram(double min_value, double base, std::size_t buckets)
    : min_value_(min_value), base_(base), log_base_(std::log(base)), counts_(buckets, 0) {
  expects(min_value > 0.0 && base > 1.0 && buckets > 0, "LogHistogram: bad parameters");
}

void LogHistogram::add(double x) {
  ++total_;
  if (x <= min_value_) {
    ++counts_[0];
    return;
  }
  const auto idx = static_cast<std::size_t>(std::log(x / min_value_) / log_base_) + 1;
  ++counts_[std::min(idx, counts_.size() - 1)];
}

double LogHistogram::bucket_lower_bound(std::size_t i) const {
  expects(i < counts_.size(), "LogHistogram: bucket index out of range");
  if (i == 0) return 0.0;
  return min_value_ * std::pow(base_, static_cast<double>(i - 1));
}

double LogHistogram::percentile(double p) const {
  expects(p >= 0.0 && p <= 1.0, "LogHistogram: p out of [0,1]");
  if (total_ == 0) return 0.0;
  const double target = p * static_cast<double>(total_);
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = acc + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double lo = bucket_lower_bound(i);
      const double hi = (i + 1 < counts_.size()) ? bucket_lower_bound(i + 1) : lo * base_;
      const double within = counts_[i] ? (target - acc) / static_cast<double>(counts_[i]) : 0.0;
      return lo + within * (hi - lo);
    }
    acc = next;
  }
  return bucket_lower_bound(counts_.size() - 1);
}

std::string LogHistogram::ascii_art(std::size_t width) const {
  std::ostringstream os;
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << bucket_lower_bound(i) << "\t" << counts_[i] << "\t"
       << std::string(std::max<std::size_t>(bar, 1), '#') << "\n";
  }
  return os.str();
}

void RateMeter::record(double time, std::uint64_t count) {
  if (!any_) {
    first_ = time;
    any_ = true;
  }
  last_ = std::max(last_, time);
  total_ += count;
}

void RateMeter::merge_from(const RateMeter& other) {
  if (!other.any_) return;
  if (!any_) {
    *this = other;
    return;
  }
  first_ = std::min(first_, other.first_);
  last_ = std::max(last_, other.last_);
  total_ += other.total_;
}

double RateMeter::rate() const {
  if (!any_ || last_ <= first_) return 0.0;
  return static_cast<double>(total_) / (last_ - first_);
}

}  // namespace difane
