// Measurement plumbing: online moments, sample-based CDFs/percentiles, and a
// log-scale latency histogram. These back every table and figure the bench
// harnesses print.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace difane {

// Online mean / variance / extrema (Welford). O(1) memory.
class OnlineStats {
 public:
  void add(double x);
  // Fold another accumulator in (Chan's parallel Welford combination).
  // Deterministic for a fixed merge order; the sharded engine merges
  // per-shard accumulators in shard-index order.
  void merge_from(const OnlineStats& other);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance; 0 for n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stores samples; computes exact percentiles and CDF points. Use for latency
// distributions where sample counts are bounded (≤ a few million).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  // Append another set's samples. Percentiles/CDFs sort first, so the result
  // is independent of merge order.
  void merge_from(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // p in [0, 1]; nearest-rank percentile.
  double percentile(double p) const;
  double median() const { return percentile(0.5); }
  double mean() const;

  // Evaluate the empirical CDF at x: fraction of samples <= x.
  double cdf_at(double x) const;

  // Emit `points` evenly spaced (value, cumulative-fraction) pairs, suitable
  // for plotting a CDF series the way the paper's delay figure does.
  std::vector<std::pair<double, double>> cdf_points(std::size_t points) const;

 private:
  void sort_if_needed() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Log-scale histogram for latencies spanning decades (100 ns .. 1 s).
class LogHistogram {
 public:
  // Buckets are powers of `base` starting at `min_value`.
  LogHistogram(double min_value = 1e-7, double base = 2.0, std::size_t buckets = 48);

  void add(double x);
  std::uint64_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lower_bound(std::size_t i) const;

  // Approximate percentile by linear interpolation within a bucket.
  double percentile(double p) const;

  std::string ascii_art(std::size_t width = 50) const;

 private:
  double min_value_;
  double base_;
  double log_base_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Counts events over a window; reports rate. Used for throughput series.
class RateMeter {
 public:
  void record(double time, std::uint64_t count = 1);
  // Fold another meter in: the union's first/last span and summed total.
  void merge_from(const RateMeter& other);
  // Events per unit time between first and last recorded event.
  double rate() const;
  std::uint64_t total() const { return total_; }

 private:
  double first_ = 0.0;
  double last_ = 0.0;
  bool any_ = false;
  std::uint64_t total_ = 0;
};

}  // namespace difane
