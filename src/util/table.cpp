#include "util/table.hpp"

#include <iomanip>
#include <sstream>

#include "util/contract.hpp"

namespace difane {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  expects(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::integer(long long v) { return std::to_string(v); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace difane
