// Fixed-width console table printer. The bench harnesses use it to emit the
// same row/series layout the paper's tables and figures report, so runs can
// be eyeballed and diffed.
#pragma once

#include <string>
#include <vector>

namespace difane {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  // Render with column alignment; includes a header separator line.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace difane
