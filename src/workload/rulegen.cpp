#include "workload/rulegen.hpp"

#include <algorithm>

#include "flowspace/header.hpp"
#include "util/contract.hpp"

namespace difane {

namespace {

constexpr std::uint8_t kTcp = 6;
constexpr std::uint8_t kUdp = 17;

// Empirical-flavored prefix length mix: backbone tables cluster at /8, /16,
// /24 with a tail of longer prefixes. With probability `p_long` draw from
// the specific end only (/24../32), giving mostly-disjoint rules.
std::size_t sample_prefix_len(Rng& rng, double p_long = 0.0) {
  if (p_long > 0.0 && rng.bernoulli(p_long)) {
    return 24 + 2 * rng.uniform(0, 4);  // 24, 26, 28, 30, 32
  }
  const double u = rng.uniform01();
  if (u < 0.10) return 8;
  if (u < 0.30) return 16;
  if (u < 0.45) return 20;
  if (u < 0.75) return 24;
  if (u < 0.90) return 28;
  return 32;
}

Action sample_action(const RuleGenParams& params, Rng& rng) {
  if (rng.bernoulli(params.drop_fraction)) return Action::drop();
  return Action::forward(static_cast<std::uint32_t>(
      rng.uniform(0, params.egress_count == 0 ? 0 : params.egress_count - 1)));
}

void assign_weights(std::vector<Rule>& rules, const RuleGenParams& params, Rng& rng) {
  switch (params.weight_mode) {
    case WeightMode::kFlowSpaceProportional: {
      // weight ∝ 2^(wildcard bits), normalized. Use only the bits inside the
      // used header so the default rule doesn't dwarf everything by 2^256.
      double max_log = 0.0;
      for (const auto& r : rules) {
        max_log = std::max(max_log, static_cast<double>(header_bits_used()) -
                                        r.match.care().popcount());
      }
      double sum = 0.0;
      for (auto& r : rules) {
        const double wild = static_cast<double>(header_bits_used()) -
                            static_cast<double>(r.match.care().popcount());
        r.weight = std::pow(2.0, wild - max_log);
        sum += r.weight;
      }
      for (auto& r : rules) r.weight /= sum;
      break;
    }
    case WeightMode::kZipfByIndex: {
      std::vector<std::size_t> perm(rules.size());
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      std::shuffle(perm.begin(), perm.end(), rng.engine());
      ZipfDistribution zipf(rules.size(), params.zipf_s);
      for (std::size_t rank = 0; rank < perm.size(); ++rank) {
        rules[perm[rank]].weight = zipf.pmf(rank);
      }
      break;
    }
    case WeightMode::kUniform: {
      for (auto& r : rules) r.weight = 1.0 / static_cast<double>(rules.size());
      break;
    }
  }
}

}  // namespace

RuleTable generate_policy(const RuleGenParams& params) {
  expects(params.num_rules >= 1, "generate_policy: need at least one rule");
  Rng rng(params.seed);
  std::vector<Rule> rules;
  rules.reserve(params.num_rules);
  RuleId next_id = 0;

  // 1. Nested-prefix chains (dependency structure). Each family fixes a
  //    random 32-bit address and emits successively longer dst prefixes; the
  //    longer (more specific) prefix gets the higher priority, like an ACL
  //    with specific exceptions above broad statements.
  const std::size_t budget = params.num_rules > 1 && params.add_default
                                 ? params.num_rules - 1
                                 : params.num_rules;
  for (std::size_t c = 0; c < params.chain_count && rules.size() < budget; ++c) {
    const auto addr = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
    const std::size_t depth = 1 + rng.uniform(0, params.chain_depth - 1);
    for (std::size_t d = 0; d < depth && rules.size() < budget; ++d) {
      const std::size_t plen = std::min<std::size_t>(32, 8 + 6 * d + rng.uniform(0, 3));
      Rule r;
      r.id = next_id++;
      r.priority = static_cast<Priority>(1000 + plen * 10 + d);
      match_prefix(r.match, Field::kIpDst, addr, plen);
      if (rng.bernoulli(params.p_src_prefix * 0.5)) {
        const auto src = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
        match_prefix(r.match, Field::kIpSrc, src, sample_prefix_len(rng, params.p_long_prefix));
      }
      r.action = sample_action(params, rng);
      rules.push_back(std::move(r));
    }
  }

  // 2. General 5-tuple ACL rules until the budget is filled. Port ranges
  //    expand into several TCAM entries (same priority, distinct ids),
  //    mirroring the range-expansion blowup real ACLs suffer.
  while (rules.size() < budget) {
    Ternary base;
    int specificity = 0;
    if (rng.bernoulli(params.p_src_prefix)) {
      const auto src = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
      const auto plen = sample_prefix_len(rng, params.p_long_prefix);
      match_prefix(base, Field::kIpSrc, src, plen);
      specificity += static_cast<int>(plen);
    }
    if (rng.bernoulli(params.p_dst_prefix)) {
      const auto dst = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
      const auto plen = sample_prefix_len(rng, params.p_long_prefix);
      match_prefix(base, Field::kIpDst, dst, plen);
      specificity += static_cast<int>(plen);
    }
    if (rng.bernoulli(params.p_proto)) {
      match_exact(base, Field::kIpProto, rng.bernoulli(0.7) ? kTcp : kUdp);
      specificity += 8;
    }
    const Action action = sample_action(params, rng);
    const auto priority = static_cast<Priority>(100 + specificity);

    std::vector<Ternary> expanded;
    if (rng.bernoulli(params.p_dst_port)) {
      if (rng.bernoulli(params.p_port_range)) {
        const auto lo = rng.uniform(1, 32768);
        const auto hi = lo + rng.uniform(1, 2048);
        expanded = match_range(base, Field::kTpDst, lo, std::min<std::uint64_t>(hi, 65535));
      } else {
        Ternary t = base;
        match_exact(t, Field::kTpDst, rng.uniform(1, 65535));
        expanded.push_back(t);
      }
    } else {
      expanded.push_back(base);
    }
    for (const auto& pattern : expanded) {
      if (rules.size() >= budget) break;
      Rule r;
      r.id = next_id++;
      r.priority = priority;
      r.match = pattern;
      r.action = action;
      rules.push_back(std::move(r));
    }
  }

  // 3. Default rule so every packet matches something.
  if (params.add_default) {
    Rule def;
    def.id = next_id++;
    def.priority = 0;
    def.match = Ternary::wildcard();
    def.action = Action::forward(0);
    rules.push_back(std::move(def));
  }

  assign_weights(rules, params, rng);
  return RuleTable(std::move(rules));
}

RuleTable classbench_like(std::size_t num_rules, std::uint64_t seed) {
  RuleGenParams params;
  params.num_rules = num_rules;
  params.seed = seed;
  params.chain_count = std::max<std::size_t>(8, num_rules / 50);
  params.chain_depth = 6;
  params.p_dst_port = 0.45;
  params.p_port_range = 0.35;
  return generate_policy(params);
}

RuleTable campus_like(std::size_t num_rules, std::uint64_t seed) {
  RuleGenParams params;
  params.num_rules = num_rules;
  params.seed = seed;
  params.chain_count = 0;     // no designed nesting
  params.p_src_prefix = 1.0;  // every rule pins BOTH endpoints: a src-only
  params.p_dst_prefix = 1.0;  // rule would overlap every dst-only rule and
                              // recreate deep cross-field dependency chains
  params.p_dst_port = 0.1;
  params.p_proto = 0.2;
  params.p_long_prefix = 1.0; // specific pairs only: rules barely overlap
  return generate_policy(params);
}

}  // namespace difane
