// Synthetic policy generator. The paper evaluates partitioning on
// enterprise ACLs (proprietary); this generator reproduces the structural
// properties that drive partitioning and caching cost — realistic prefix
// length mixes on src/dst IP, port ranges that TCAM-expand, protocol
// constraints, nested-prefix dependency chains, and a default rule — in the
// style of ClassBench. Fully seeded and deterministic.
#pragma once

#include <cstdint>

#include "flowspace/rule_table.hpp"
#include "util/rng.hpp"

namespace difane {

enum class WeightMode : std::uint8_t {
  kFlowSpaceProportional,  // weight ∝ 2^(wildcard bits), as in the literature
  kZipfByIndex,            // rank rules randomly, Zipf weights
  kUniform,
};

struct RuleGenParams {
  std::size_t num_rules = 1000;  // target count, including expansions + default
  std::uint64_t seed = 1;

  // Probability a rule constrains each dimension.
  double p_src_prefix = 0.9;
  double p_dst_prefix = 0.9;
  double p_proto = 0.5;
  double p_dst_port = 0.4;
  // Of the rules with a port constraint, fraction using a range (which
  // TCAM-expands into several entries) rather than an exact port.
  double p_port_range = 0.3;
  // Probability of drawing a long (/24../32) prefix instead of the backbone
  // mix. High values give specific, mostly-disjoint rules (router-config
  // style, shallow dependencies).
  double p_long_prefix = 0.0;

  // Nested-prefix chains: `chain_count` families of up to `chain_depth`
  // successively longer prefixes of one address, giving the long dependency
  // chains that make naive caching expensive.
  std::size_t chain_count = 32;
  std::size_t chain_depth = 4;

  double drop_fraction = 0.3;  // remaining rules forward
  std::uint32_t egress_count = 4;

  WeightMode weight_mode = WeightMode::kFlowSpaceProportional;
  double zipf_s = 1.0;

  bool add_default = true;  // lowest-priority match-all forward rule
};

// Generate a policy. Rule ids are 0..n-1 in generation order; priorities
// descend with specificity so nested prefixes behave like real ACLs.
RuleTable generate_policy(const RuleGenParams& params);

// Presets used by the experiments.
RuleTable classbench_like(std::size_t num_rules, std::uint64_t seed);
// Flat IP-pair policy with shallow dependencies (router-style config).
RuleTable campus_like(std::size_t num_rules, std::uint64_t seed);

}  // namespace difane
