#include "workload/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "flowspace/header.hpp"
#include "util/contract.hpp"

namespace difane {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("parse error at line " + std::to_string(line) + ": " + what);
}

std::string action_to_token(const Action& action) {
  switch (action.type) {
    case ActionType::kDrop: return "drop";
    case ActionType::kForward: return "fwd:" + std::to_string(action.arg);
    case ActionType::kEncap: return "encap:" + std::to_string(action.arg);
    case ActionType::kToController: return "ctrl";
  }
  return "drop";
}

Action action_from_token(const std::string& token, std::size_t line) {
  if (token == "drop") return Action::drop();
  if (token == "ctrl") return Action::to_controller();
  const auto colon = token.find(':');
  if (colon != std::string::npos) {
    const std::string kind = token.substr(0, colon);
    const auto arg = static_cast<std::uint32_t>(std::stoul(token.substr(colon + 1)));
    if (kind == "fwd") return Action::forward(arg);
    if (kind == "encap") return Action::encap(arg);
  }
  fail(line, "unknown action '" + token + "'");
}

const FieldSpec* find_field(const std::string& name) {
  for (const auto& spec : all_fields()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

// Pattern of one field as {0,1,x}*, MSB first; "x...x" fields are omitted on
// save, so anything we emit has at least one cared bit.
void apply_field_bits(Ternary& match, const FieldSpec& spec, const std::string& bits,
                      std::size_t line) {
  if (bits.size() != spec.width) {
    fail(line, std::string("field ") + spec.name + " expects " +
                   std::to_string(spec.width) + " bits, got " +
                   std::to_string(bits.size()));
  }
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    const std::size_t bit = spec.offset + spec.width - 1 - i;  // MSB first
    if (c == '0') {
      match.set_exact(bit, 1, 0);
    } else if (c == '1') {
      match.set_exact(bit, 1, 1);
    } else if (c != 'x') {
      fail(line, std::string("bad pattern character '") + c + "'");
    }
  }
}

std::string header_to_hex(const BitVec& v) {
  std::ostringstream os;
  os << std::hex;
  for (const auto word : v.w) {
    for (int nibble = 15; nibble >= 0; --nibble) {
      os << ((word >> (nibble * 4)) & 0xf);
    }
  }
  return os.str();
}

BitVec header_from_hex(const std::string& hex, std::size_t line) {
  if (hex.size() != kHeaderWords * 16) fail(line, "header hex must be 64 chars");
  BitVec v;
  for (std::size_t w = 0; w < kHeaderWords; ++w) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      const char c = hex[w * 16 + i];
      std::uint64_t nibble = 0;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        nibble = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        fail(line, "bad hex character");
      }
      word = (word << 4) | nibble;
    }
    v.w[w] = word;
  }
  return v;
}

}  // namespace

void save_policy(std::ostream& os, const RuleTable& table) {
  os.precision(17);  // doubles must round-trip exactly
  os << "policy v1\n";
  for (const auto& rule : table.rules()) {
    os << "rule " << rule.id << " " << rule.priority << " "
       << action_to_token(rule.action) << " " << rule.weight;
    for (const auto& spec : all_fields()) {
      const std::string bits = rule.match.bits_to_string(spec.offset, spec.width);
      if (bits.find_first_not_of('x') == std::string::npos) continue;
      os << " " << spec.name << "=" << bits;
    }
    os << "\n";
  }
}

RuleTable load_policy(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(is, line)) fail(1, "empty input");
  ++lineno;
  if (line != "policy v1") fail(lineno, "expected 'policy v1' header");
  std::vector<Rule> rules;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "rule") fail(lineno, "expected 'rule', got '" + tag + "'");
    Rule rule;
    std::string action_token;
    if (!(ls >> rule.id >> rule.priority >> action_token >> rule.weight)) {
      fail(lineno, "malformed rule line");
    }
    rule.action = action_from_token(action_token, lineno);
    std::string field_token;
    while (ls >> field_token) {
      const auto eq = field_token.find('=');
      if (eq == std::string::npos) fail(lineno, "expected field=bits");
      const FieldSpec* spec = find_field(field_token.substr(0, eq));
      if (spec == nullptr) {
        fail(lineno, "unknown field '" + field_token.substr(0, eq) + "'");
      }
      apply_field_bits(rule.match, *spec, field_token.substr(eq + 1), lineno);
    }
    rules.push_back(std::move(rule));
  }
  return RuleTable(std::move(rules));
}

void save_trace(std::ostream& os, const std::vector<FlowSpec>& flows) {
  os.precision(17);  // doubles must round-trip exactly
  os << "trace v1\n";
  for (const auto& flow : flows) {
    os << "flow " << flow.id << " " << flow.start << " " << flow.packets << " "
       << flow.packet_gap << " " << flow.ingress_index << " "
       << header_to_hex(flow.header) << "\n";
  }
}

std::vector<FlowSpec> load_trace(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(is, line)) fail(1, "empty input");
  ++lineno;
  if (line != "trace v1") fail(lineno, "expected 'trace v1' header");
  std::vector<FlowSpec> flows;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag, hex;
    FlowSpec flow;
    ls >> tag;
    if (tag != "flow") fail(lineno, "expected 'flow', got '" + tag + "'");
    if (!(ls >> flow.id >> flow.start >> flow.packets >> flow.packet_gap >>
          flow.ingress_index >> hex)) {
      fail(lineno, "malformed flow line");
    }
    flow.header = header_from_hex(hex, lineno);
    flows.push_back(std::move(flow));
  }
  return flows;
}

namespace {
std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  return os;
}
std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return is;
}
}  // namespace

void save_policy_file(const std::string& path, const RuleTable& table) {
  auto os = open_out(path);
  save_policy(os, table);
}

RuleTable load_policy_file(const std::string& path) {
  auto is = open_in(path);
  return load_policy(is);
}

void save_trace_file(const std::string& path, const std::vector<FlowSpec>& flows) {
  auto os = open_out(path);
  save_trace(os, flows);
}

std::vector<FlowSpec> load_trace_file(const std::string& path) {
  auto is = open_in(path);
  return load_trace(is);
}

}  // namespace difane
