// Plain-text serialization for policies and traffic traces, so experiments
// can be pinned to files and replayed across builds (and policies from
// external tools can be imported). Formats are line-oriented and versioned:
//
//   policy v1
//   rule <id> <priority> <action> <weight> [<field>=<bits>]...
//
//   trace v1
//   flow <id> <start> <packets> <gap> <ingress> <header-hex-64>
//
// where <action> is drop | fwd:<port> | encap:<switch> | ctrl, <bits> is the
// field's ternary pattern MSB-first over {0,1,x}, and <header-hex-64> is the
// 256-bit packet header in hex (low word first). Loaders validate eagerly
// and throw std::runtime_error with a line number on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flowspace/rule_table.hpp"
#include "workload/trafficgen.hpp"

namespace difane {

void save_policy(std::ostream& os, const RuleTable& table);
RuleTable load_policy(std::istream& is);

void save_policy_file(const std::string& path, const RuleTable& table);
RuleTable load_policy_file(const std::string& path);

void save_trace(std::ostream& os, const std::vector<FlowSpec>& flows);
std::vector<FlowSpec> load_trace(std::istream& is);

void save_trace_file(const std::string& path, const std::vector<FlowSpec>& flows);
std::vector<FlowSpec> load_trace_file(const std::string& path);

}  // namespace difane
