#include "workload/trafficgen.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace difane {

TrafficGenerator::TrafficGenerator(const RuleTable& policy, TrafficParams params)
    : policy_(policy), params_(params), rng_(params.seed) {
  expects(params_.flow_pool >= 1, "TrafficGenerator: empty flow pool");
  expects(params_.arrival_rate > 0.0 && params_.duration > 0.0,
          "TrafficGenerator: bad rate/duration");
  build_pool();
}

void TrafficGenerator::build_pool() {
  pool_.reserve(params_.flow_pool);
  for (std::size_t i = 0; i < params_.flow_pool; ++i) {
    if (!policy_.empty() && rng_.bernoulli(params_.p_rule_directed)) {
      // Uniform over rules, not over rule weights: flow-space-proportional
      // weights would concentrate nearly all picks on the default rule and
      // leave specific rules unexercised. Popularity skew across the pool is
      // applied separately (Zipf over pool ranks).
      const auto idx = rng_.uniform(0, policy_.size() - 1);
      pool_.push_back(policy_.at(idx).match.sample_point(rng_));
    } else {
      pool_.push_back(Ternary::wildcard().sample_point(rng_));
    }
  }
}

std::vector<FlowSpec> TrafficGenerator::generate() {
  std::vector<FlowSpec> flows;
  ZipfDistribution zipf(pool_.size(), params_.zipf_s);
  double t = 0.0;
  std::uint64_t id = 0;
  while (true) {
    t += rng_.exponential(params_.arrival_rate);
    if (t >= params_.duration) break;
    FlowSpec flow;
    flow.id = id++;
    flow.header = pool_[zipf.sample(rng_)];
    flow.start = t;
    if (params_.max_packets <= 1.0) {
      flow.packets = 1;  // degenerate case: pure flow-setup workloads
    } else {
      const double len = rng_.pareto(1.0, params_.max_packets, params_.pareto_alpha);
      // Scale bounded-Pareto output toward the requested mean.
      const double scale = params_.mean_packets / 3.0;  // rough E[pareto(1,..,1.5)]
      flow.packets = static_cast<std::size_t>(std::max(1.0, len * scale));
    }
    flow.packet_gap = params_.packet_gap;
    flow.ingress_index = static_cast<std::uint32_t>(
        rng_.uniform(0, params_.ingress_count == 0 ? 0 : params_.ingress_count - 1));
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace difane
