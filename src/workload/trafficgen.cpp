#include "workload/trafficgen.hpp"

#include <algorithm>
#include <mutex>

#include "util/contract.hpp"

namespace difane {

namespace {

// Pool memoization. Experiment sweeps (E1/E2/E9 and friends) construct a
// TrafficGenerator per sweep point with the same policy, seed, and pool
// parameters — only the arrival schedule differs. The pool draw sequence
// depends solely on (seed, flow_pool, p_rule_directed, policy matches), so
// the pool and the RNG state left behind by build_pool() are bit-identical
// across those constructions. Rebuilding the pool dominates sweep wall time
// (millions of Mersenne draws per point), so we cache the last few pools and
// the post-build RNG state; replaying from the cache is observationally
// identical to rebuilding, including every subsequent generate() draw.
struct PoolKey {
  std::uint64_t seed = 0;
  std::size_t flow_pool = 0;
  double p_rule_directed = 0.0;
  std::uint64_t policy_digest = 0;
  std::size_t policy_size = 0;

  bool operator==(const PoolKey& o) const {
    return seed == o.seed && flow_pool == o.flow_pool &&
           p_rule_directed == o.p_rule_directed &&
           policy_digest == o.policy_digest && policy_size == o.policy_size;
  }
};

// Digest over the fields of the policy that build_pool() can observe through
// its draws: the rule count and each rule's ternary match.
std::uint64_t policy_pool_digest(const RuleTable& policy) {
  std::uint64_t h = 0x5851f42d4c957f2dULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h = splitmix64(h);
  };
  mix(policy.size());
  for (const auto& rule : policy.rules()) {
    for (auto word : rule.match.value().w) mix(word);
    for (auto word : rule.match.care().w) mix(word);
  }
  return h;
}

struct PoolCacheEntry {
  PoolKey key;
  std::shared_ptr<const std::vector<BitVec>> pool;
  std::mt19937_64 rng_after;  // engine state right after build_pool()
  std::uint64_t last_used = 0;
};

// A pool can be tens of MB (E1 uses 2^21 headers), so keep the cache tiny:
// sweeps alternate at most a couple of distinct pools per process.
constexpr std::size_t kPoolCacheSlots = 2;

std::mutex g_pool_cache_mu;
std::vector<PoolCacheEntry> g_pool_cache;
std::uint64_t g_pool_cache_clock = 0;

const PoolCacheEntry* pool_cache_find(const PoolKey& key) {
  for (auto& entry : g_pool_cache) {
    if (entry.key == key) {
      entry.last_used = ++g_pool_cache_clock;
      return &entry;
    }
  }
  return nullptr;
}

void pool_cache_insert(PoolCacheEntry entry) {
  entry.last_used = ++g_pool_cache_clock;
  if (g_pool_cache.size() < kPoolCacheSlots) {
    g_pool_cache.push_back(std::move(entry));
    return;
  }
  auto victim = std::min_element(
      g_pool_cache.begin(), g_pool_cache.end(),
      [](const auto& a, const auto& b) { return a.last_used < b.last_used; });
  *victim = std::move(entry);
}

}  // namespace

TrafficGenerator::TrafficGenerator(const RuleTable& policy, TrafficParams params)
    : policy_(policy), params_(params), rng_(params.seed) {
  expects(params_.flow_pool >= 1, "TrafficGenerator: empty flow pool");
  expects(params_.arrival_rate > 0.0 && params_.duration > 0.0,
          "TrafficGenerator: bad rate/duration");
  const PoolKey key{params_.seed, params_.flow_pool, params_.p_rule_directed,
                    policy_pool_digest(policy_), policy_.size()};
  std::lock_guard<std::mutex> lock(g_pool_cache_mu);
  if (const PoolCacheEntry* hit = pool_cache_find(key)) {
    pool_ = hit->pool;
    rng_.engine() = hit->rng_after;
    return;
  }
  build_pool();
  pool_cache_insert(PoolCacheEntry{key, pool_, rng_.engine(), 0});
}

void TrafficGenerator::build_pool() {
  std::vector<BitVec> pool;
  pool.reserve(params_.flow_pool);
  for (std::size_t i = 0; i < params_.flow_pool; ++i) {
    if (!policy_.empty() && rng_.bernoulli(params_.p_rule_directed)) {
      // Uniform over rules, not over rule weights: flow-space-proportional
      // weights would concentrate nearly all picks on the default rule and
      // leave specific rules unexercised. Popularity skew across the pool is
      // applied separately (Zipf over pool ranks).
      const auto idx = rng_.uniform(0, policy_.size() - 1);
      pool.push_back(policy_.at(idx).match.sample_point(rng_));
    } else {
      pool.push_back(Ternary::wildcard().sample_point(rng_));
    }
  }
  pool_ = std::make_shared<const std::vector<BitVec>>(std::move(pool));
}

std::vector<FlowSpec> TrafficGenerator::generate() {
  std::vector<FlowSpec> flows;
  const std::vector<BitVec>& pool = *pool_;
  ZipfDistribution zipf(pool.size(), params_.zipf_s);
  double t = 0.0;
  std::uint64_t id = 0;
  while (true) {
    t += rng_.exponential(params_.arrival_rate);
    if (t >= params_.duration) break;
    FlowSpec flow;
    flow.id = id++;
    flow.header = pool[zipf.sample(rng_)];
    flow.start = t;
    if (params_.max_packets <= 1.0) {
      flow.packets = 1;  // degenerate case: pure flow-setup workloads
    } else {
      const double len = rng_.pareto(1.0, params_.max_packets, params_.pareto_alpha);
      // Scale bounded-Pareto output toward the requested mean.
      const double scale = params_.mean_packets / 3.0;  // rough E[pareto(1,..,1.5)]
      flow.packets = static_cast<std::size_t>(std::max(1.0, len * scale));
    }
    flow.packet_gap = params_.packet_gap;
    flow.ingress_index = static_cast<std::uint32_t>(
        rng_.uniform(0, params_.ingress_count == 0 ? 0 : params_.ingress_count - 1));
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace difane
