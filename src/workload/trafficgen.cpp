#include "workload/trafficgen.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "util/contract.hpp"

namespace difane {

const char* traffic_mode_name(TrafficMode mode) {
  switch (mode) {
    case TrafficMode::kPoissonZipf: return "poisson-zipf";
    case TrafficMode::kFlashCrowd: return "flash-crowd";
    case TrafficMode::kMiceStorm: return "mice-storm";
    case TrafficMode::kDiurnal: return "diurnal";
  }
  return "?";
}

namespace {

// Pool memoization. Experiment sweeps (E1/E2/E9 and friends) construct a
// TrafficGenerator per sweep point with the same policy, seed, and pool
// parameters — only the arrival schedule differs. The pool draw sequence
// depends solely on (seed, flow_pool, p_rule_directed, policy matches), so
// the pool and the RNG state left behind by build_pool() are bit-identical
// across those constructions. Rebuilding the pool dominates sweep wall time
// (millions of Mersenne draws per point), so we cache the last few pools and
// the post-build RNG state; replaying from the cache is observationally
// identical to rebuilding, including every subsequent generate() draw.
struct PoolKey {
  std::uint64_t seed = 0;
  std::size_t flow_pool = 0;
  double p_rule_directed = 0.0;
  std::uint64_t policy_digest = 0;
  std::size_t policy_size = 0;

  bool operator==(const PoolKey& o) const {
    return seed == o.seed && flow_pool == o.flow_pool &&
           p_rule_directed == o.p_rule_directed &&
           policy_digest == o.policy_digest && policy_size == o.policy_size;
  }
};

// Digest over the fields of the policy that build_pool() can observe through
// its draws: the rule count and each rule's ternary match.
std::uint64_t policy_pool_digest(const RuleTable& policy) {
  std::uint64_t h = 0x5851f42d4c957f2dULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h = splitmix64(h);
  };
  mix(policy.size());
  for (const auto& rule : policy.rules()) {
    for (auto word : rule.match.value().w) mix(word);
    for (auto word : rule.match.care().w) mix(word);
  }
  return h;
}

struct PoolCacheEntry {
  PoolKey key;
  std::shared_ptr<const std::vector<BitVec>> pool;
  std::mt19937_64 rng_after;  // engine state right after build_pool()
  std::uint64_t last_used = 0;
};

// A pool can be tens of MB (E1 uses 2^21 headers), so keep the cache tiny:
// sweeps alternate at most a couple of distinct pools per process.
constexpr std::size_t kPoolCacheSlots = 2;

std::mutex g_pool_cache_mu;
std::vector<PoolCacheEntry> g_pool_cache;
std::uint64_t g_pool_cache_clock = 0;

const PoolCacheEntry* pool_cache_find(const PoolKey& key) {
  for (auto& entry : g_pool_cache) {
    if (entry.key == key) {
      entry.last_used = ++g_pool_cache_clock;
      return &entry;
    }
  }
  return nullptr;
}

void pool_cache_insert(PoolCacheEntry entry) {
  entry.last_used = ++g_pool_cache_clock;
  if (g_pool_cache.size() < kPoolCacheSlots) {
    g_pool_cache.push_back(std::move(entry));
    return;
  }
  auto victim = std::min_element(
      g_pool_cache.begin(), g_pool_cache.end(),
      [](const auto& a, const auto& b) { return a.last_used < b.last_used; });
  *victim = std::move(entry);
}

}  // namespace

TrafficGenerator::TrafficGenerator(const RuleTable& policy, TrafficParams params)
    : policy_(policy), params_(params), rng_(params.seed) {
  expects(params_.flow_pool >= 1, "TrafficGenerator: empty flow pool");
  expects(params_.arrival_rate > 0.0 && params_.duration > 0.0,
          "TrafficGenerator: bad rate/duration");
  switch (params_.mode) {
    case TrafficMode::kPoissonZipf:
      break;
    case TrafficMode::kFlashCrowd:
      expects(params_.flash_duration >= 0.0 && params_.flash_at >= 0.0,
              "TrafficGenerator: flash window must be non-negative");
      expects(params_.flash_rate_mult >= 1.0,
              "TrafficGenerator: flash_rate_mult must be >= 1");
      expects(params_.flash_targets >= 1,
              "TrafficGenerator: flash crowd needs a target set");
      expects(params_.flash_target_prob >= 0.0 && params_.flash_target_prob <= 1.0,
              "TrafficGenerator: flash_target_prob must be a probability");
      break;
    case TrafficMode::kMiceStorm:
      expects(params_.storm_duration <= 0.0 || params_.storm_rate > 0.0,
              "TrafficGenerator: a mice storm window needs storm_rate > 0");
      break;
    case TrafficMode::kDiurnal:
      expects(params_.diurnal_period > 0.0,
              "TrafficGenerator: diurnal_period must be > 0");
      expects(params_.diurnal_amplitude >= 0.0 && params_.diurnal_amplitude < 1.0,
              "TrafficGenerator: diurnal_amplitude must be in [0, 1)");
      break;
  }
  const PoolKey key{params_.seed, params_.flow_pool, params_.p_rule_directed,
                    policy_pool_digest(policy_), policy_.size()};
  std::lock_guard<std::mutex> lock(g_pool_cache_mu);
  if (const PoolCacheEntry* hit = pool_cache_find(key)) {
    pool_ = hit->pool;
    rng_.engine() = hit->rng_after;
    return;
  }
  build_pool();
  pool_cache_insert(PoolCacheEntry{key, pool_, rng_.engine(), 0});
}

void TrafficGenerator::build_pool() {
  std::vector<BitVec> pool;
  pool.reserve(params_.flow_pool);
  for (std::size_t i = 0; i < params_.flow_pool; ++i) {
    if (!policy_.empty() && rng_.bernoulli(params_.p_rule_directed)) {
      // Uniform over rules, not over rule weights: flow-space-proportional
      // weights would concentrate nearly all picks on the default rule and
      // leave specific rules unexercised. Popularity skew across the pool is
      // applied separately (Zipf over pool ranks).
      const auto idx = rng_.uniform(0, policy_.size() - 1);
      pool.push_back(policy_.at(idx).match.sample_point(rng_));
    } else {
      pool.push_back(Ternary::wildcard().sample_point(rng_));
    }
  }
  pool_ = std::make_shared<const std::vector<BitVec>>(std::move(pool));
}

std::vector<FlowSpec> TrafficGenerator::generate() {
  switch (params_.mode) {
    case TrafficMode::kPoissonZipf: return generate_poisson_zipf();
    case TrafficMode::kFlashCrowd: return generate_flash_crowd();
    case TrafficMode::kMiceStorm: return generate_mice_storm();
    case TrafficMode::kDiurnal: return generate_diurnal();
  }
  return {};
}

// Flow length and ingress draws shared by every mode, in the legacy draw
// order (length, then ingress) — kPoissonZipf must stay draw-for-draw
// identical to previous releases (committed baselines pin its output).
void TrafficGenerator::finish_flow(FlowSpec& flow) {
  if (params_.max_packets <= 1.0) {
    flow.packets = 1;  // degenerate case: pure flow-setup workloads
  } else {
    const double len = rng_.pareto(1.0, params_.max_packets, params_.pareto_alpha);
    // Scale bounded-Pareto output toward the requested mean.
    const double scale = params_.mean_packets / 3.0;  // rough E[pareto(1,..,1.5)]
    flow.packets = static_cast<std::size_t>(std::max(1.0, len * scale));
  }
  flow.packet_gap = params_.packet_gap;
  flow.ingress_index = static_cast<std::uint32_t>(
      rng_.uniform(0, params_.ingress_count == 0 ? 0 : params_.ingress_count - 1));
}

std::vector<FlowSpec> TrafficGenerator::generate_poisson_zipf() {
  std::vector<FlowSpec> flows;
  const std::vector<BitVec>& pool = *pool_;
  ZipfDistribution zipf(pool.size(), params_.zipf_s);
  double t = 0.0;
  std::uint64_t id = 0;
  while (true) {
    t += rng_.exponential(params_.arrival_rate);
    if (t >= params_.duration) break;
    FlowSpec flow;
    flow.id = id++;
    flow.header = pool[zipf.sample(rng_)];
    flow.start = t;
    finish_flow(flow);
    flows.push_back(std::move(flow));
  }
  return flows;
}

std::vector<FlowSpec> TrafficGenerator::generate_flash_crowd() {
  std::vector<FlowSpec> flows;
  const std::vector<BitVec>& pool = *pool_;
  ZipfDistribution zipf(pool.size(), params_.zipf_s);
  const double flash_end = params_.flash_at + params_.flash_duration;
  const std::size_t targets = std::min(params_.flash_targets, pool.size());
  double t = 0.0;
  std::uint64_t id = 0;
  while (true) {
    // The inter-arrival draw uses the rate at the previous arrival, so the
    // speed-up engages one arrival after the window opens — a deterministic
    // simplification that dodges inverting a piecewise-constant rate.
    const bool accelerated = t >= params_.flash_at && t < flash_end;
    t += rng_.exponential(params_.arrival_rate *
                          (accelerated ? params_.flash_rate_mult : 1.0));
    if (t >= params_.duration) break;
    FlowSpec flow;
    flow.id = id++;
    const bool in_flash = t >= params_.flash_at && t < flash_end;
    if (in_flash && rng_.bernoulli(params_.flash_target_prob)) {
      flow.header = pool[targets <= 1 ? 0 : rng_.uniform(0, targets - 1)];
    } else {
      flow.header = pool[zipf.sample(rng_)];
    }
    flow.start = t;
    finish_flow(flow);
    flows.push_back(std::move(flow));
  }
  return flows;
}

std::vector<FlowSpec> TrafficGenerator::generate_mice_storm() {
  // Base traffic first (its draws must match a standalone kPoissonZipf run of
  // the same seed), then the scan overlay, then a stable merge by start time.
  std::vector<FlowSpec> flows = generate_poisson_zipf();
  const std::size_t base_count = flows.size();
  const double storm_end =
      std::min(params_.storm_at + params_.storm_duration, params_.duration);
  double t = params_.storm_at;
  while (params_.storm_rate > 0.0) {
    t += rng_.exponential(params_.storm_rate);
    if (t >= storm_end) break;
    FlowSpec flow;
    // Uniform over the whole header space: a scanner does not respect the
    // policy's popular rules, and (near-)distinct headers defeat any cache.
    flow.header = Ternary::wildcard().sample_point(rng_);
    flow.start = t;
    flow.packets = 1;
    flow.packet_gap = params_.packet_gap;
    flow.ingress_index = static_cast<std::uint32_t>(rng_.uniform(
        0, params_.ingress_count == 0 ? 0 : params_.ingress_count - 1));
    flows.push_back(std::move(flow));
  }
  // Both halves are sorted; merge keeps base flows ahead of coincident scan
  // flows, then ids are reassigned in arrival order.
  std::inplace_merge(
      flows.begin(), flows.begin() + static_cast<std::ptrdiff_t>(base_count),
      flows.end(),
      [](const FlowSpec& a, const FlowSpec& b) { return a.start < b.start; });
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].id = static_cast<std::uint64_t>(i);
  }
  return flows;
}

std::vector<FlowSpec> TrafficGenerator::generate_diurnal() {
  std::vector<FlowSpec> flows;
  const std::vector<BitVec>& pool = *pool_;
  ZipfDistribution zipf(pool.size(), params_.zipf_s);
  constexpr double kTwoPi = 6.283185307179586476925287;
  // Lewis-Shedler thinning: draw at the peak rate, keep each arrival with
  // probability rate(t)/peak. Exact for any bounded rate function and keeps
  // the draw sequence deterministic.
  const double peak = params_.arrival_rate * (1.0 + params_.diurnal_amplitude);
  double t = 0.0;
  std::uint64_t id = 0;
  while (true) {
    t += rng_.exponential(peak);
    if (t >= params_.duration) break;
    const double rate_now =
        params_.arrival_rate *
        (1.0 + params_.diurnal_amplitude *
                   std::sin(kTwoPi * t / params_.diurnal_period));
    if (!rng_.bernoulli(rate_now / peak)) continue;
    FlowSpec flow;
    flow.id = id++;
    // Rotate who is popular each period: rank r today is rank r+rotate
    // tomorrow, so long-lived cache entries go cold on the period boundary.
    const auto epoch = static_cast<std::size_t>(t / params_.diurnal_period);
    const std::size_t rank = zipf.sample(rng_);
    flow.header = pool[(rank + epoch * params_.diurnal_rotate) % pool.size()];
    flow.start = t;
    finish_flow(flow);
    flows.push_back(std::move(flow));
  }
  return flows;
}

std::vector<FlowTruth> flow_ground_truth(const std::vector<FlowSpec>& flows,
                                         std::uint64_t bytes_per_packet) {
  std::vector<FlowTruth> truth;
  std::unordered_map<BitVec, std::size_t> index;
  for (const auto& flow : flows) {
    auto [it, fresh] = index.try_emplace(flow.header, truth.size());
    if (fresh) {
      FlowTruth t;
      t.header = flow.header;
      truth.push_back(std::move(t));
    }
    FlowTruth& t = truth[it->second];
    t.packets += flow.packets;
    t.bytes += static_cast<std::uint64_t>(flow.packets) * bytes_per_packet;
  }
  return truth;
}

BurstPlan coalesce_bursts(const std::vector<FlowSpec>& flows,
                          std::uint32_t ingress_groups, std::size_t burst) {
  expects(ingress_groups > 0, "coalesce_bursts: need at least one ingress");
  expects(burst > 0, "coalesce_bursts: burst size must be positive");
  BurstPlan plan;
  plan.groups.resize(ingress_groups);
  // Flow-major expansion, matching the order Scenario::inject schedules
  // per-packet events in — a stable sort by arrival time then reproduces the
  // scalar engine's FIFO tie-break (equal-time packets keep inject order).
  for (const FlowSpec& flow : flows) {
    auto& group = plan.groups[flow.ingress_index % ingress_groups];
    for (std::size_t p = 0; p < flow.packets; ++p) {
      BurstPlan::Arrival a;
      a.flow = flow.id;
      a.header = flow.header;
      a.at = flow.start + static_cast<double>(p) * flow.packet_gap;
      a.first = p == 0;
      group.push_back(std::move(a));
    }
  }
  for (std::uint32_t g = 0; g < ingress_groups; ++g) {
    auto& group = plan.groups[g];
    std::stable_sort(group.begin(), group.end(),
                     [](const BurstPlan::Arrival& a, const BurstPlan::Arrival& b) {
                       return a.at < b.at;
                     });
    for (std::size_t begin = 0; begin < group.size(); begin += burst) {
      const std::size_t end = std::min(group.size(), begin + burst);
      plan.bursts.push_back(BurstPlan::Burst{
          g, static_cast<std::uint32_t>(begin), static_cast<std::uint32_t>(end)});
    }
  }
  return plan;
}

}  // namespace difane
