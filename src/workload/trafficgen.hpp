// Traffic generation. Flow popularity is Zipfian (the paper's premise for
// why caching works): a fixed pool of concrete flows is drawn from the
// policy's rules, and arrivals sample the pool by Zipf rank with Poisson
// timing and heavy-tailed flow lengths.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flowspace/rule_table.hpp"
#include "util/rng.hpp"

namespace difane {

struct FlowSpec {
  std::uint64_t id = 0;
  BitVec header;            // all packets of a flow share the header
  double start = 0.0;       // arrival time of the first packet
  std::size_t packets = 1;
  double packet_gap = 1e-3; // spacing between packets within the flow
  std::uint32_t ingress_index = 0;  // index into the scenario's ingress list
};

// Arrival-schedule families. All modes draw from the same memoized header
// pool and are fully deterministic in (seed, params): identical construction
// replays a byte-identical flow list.
//
//  * kPoissonZipf — the legacy schedule: Poisson arrivals, Zipf popularity.
//  * kFlashCrowd  — inside [flash_at, flash_at + flash_duration) arrivals
//    accelerate by flash_rate_mult and concentrate on the hottest
//    flash_targets pool ranks with probability flash_target_prob (a news
//    event: everyone fetches the same few things at once).
//  * kMiceStorm   — the kPoissonZipf schedule plus an overlay of
//    single-packet flows at storm_rate in [storm_at, storm_at +
//    storm_duration), headers uniform over the whole header space — the
//    port-scan / SYN-flood shape: near-zero reuse, pure TCAM churn.
//  * kDiurnal     — sinusoidal rate modulation (period diurnal_period,
//    relative amplitude diurnal_amplitude) via Lewis-Shedler thinning, with
//    the popular set rotating by diurnal_rotate pool ranks each period
//    (day/night shift of who is hot).
enum class TrafficMode : std::uint8_t {
  kPoissonZipf = 0,
  kFlashCrowd,
  kMiceStorm,
  kDiurnal,
};

const char* traffic_mode_name(TrafficMode mode);

struct TrafficParams {
  std::uint64_t seed = 1;
  std::size_t flow_pool = 10000;     // distinct flows (headers) in the pool
  double zipf_s = 1.0;               // popularity skew across pool entries
  double arrival_rate = 1000.0;      // flows per second (Poisson)
  double duration = 10.0;            // seconds of arrivals
  double mean_packets = 10.0;        // flow length (bounded Pareto)
  double pareto_alpha = 1.5;
  double max_packets = 1000.0;
  double packet_gap = 1e-3;
  std::uint32_t ingress_count = 1;   // spread flows over this many ingresses

  // Pool construction: with probability `p_rule_directed` a pool header is
  // sampled inside a policy rule chosen by rule weight (so popular rules see
  // traffic); otherwise uniformly at random.
  double p_rule_directed = 0.9;

  TrafficMode mode = TrafficMode::kPoissonZipf;

  // kFlashCrowd knobs.
  double flash_at = 0.0;
  double flash_duration = 0.0;
  double flash_rate_mult = 10.0;     // arrival-rate multiplier in the window
  std::size_t flash_targets = 8;     // hottest pool ranks the crowd piles on
  double flash_target_prob = 0.9;    // P(crowd arrival hits a target rank)

  // kMiceStorm knobs.
  double storm_at = 0.0;
  double storm_duration = 0.0;
  double storm_rate = 0.0;           // scan flows per second in the window

  // kDiurnal knobs.
  double diurnal_period = 1.0;
  double diurnal_amplitude = 0.8;    // relative, in [0, 1)
  std::size_t diurnal_rotate = 0;    // popular-set shift per period (ranks)
};

// Exact per-header volume of an arrival schedule: every packet of every
// flow, merged by header (pool headers are shared across FlowSpecs) in
// first-appearance order — the same key and order the telemetry
// FlowCollector reports, so bench_e12 can compare estimates positionally.
struct FlowTruth {
  BitVec header;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

std::vector<FlowTruth> flow_ground_truth(const std::vector<FlowSpec>& flows,
                                         std::uint64_t bytes_per_packet = 100);

class TrafficGenerator {
 public:
  TrafficGenerator(const RuleTable& policy, TrafficParams params);

  // All flow arrivals in [0, duration), sorted by start time.
  std::vector<FlowSpec> generate();

  // The distinct headers in the pool (for cache-size reasoning in benches).
  const std::vector<BitVec>& pool() const { return *pool_; }

 private:
  void build_pool();
  void finish_flow(FlowSpec& flow);
  std::vector<FlowSpec> generate_poisson_zipf();
  std::vector<FlowSpec> generate_flash_crowd();
  std::vector<FlowSpec> generate_mice_storm();
  std::vector<FlowSpec> generate_diurnal();

  const RuleTable& policy_;
  TrafficParams params_;
  Rng rng_;
  // Shared so identical pools (same policy + pool parameters + seed) are
  // built once per process and reused; see the memo cache in trafficgen.cpp.
  std::shared_ptr<const std::vector<BitVec>> pool_;
};

// ---- Burst coalescing for the burst-mode data plane -------------------------
// Expanded per-packet arrival schedule: every packet of every flow, grouped
// by ingress (flows whose ingress_index is congruent modulo `ingress_groups`
// land on the same switch), each group stably sorted by arrival time —
// expansion is flow-major, so ties keep the scalar inject order — then
// chunked into bursts of at most `burst` packets. The scenario turns each
// burst into ONE engine event instead of one event per packet.
struct BurstPlan {
  struct Arrival {
    std::uint64_t flow = 0;
    BitVec header;
    double at = 0.0;
    bool first = false;  // first packet of its flow
  };
  // [begin, end) into groups[group]; consecutive packets of one ingress.
  struct Burst {
    std::uint32_t group = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::vector<std::vector<Arrival>> groups;  // one arrival list per ingress
  std::vector<Burst> bursts;
};

BurstPlan coalesce_bursts(const std::vector<FlowSpec>& flows,
                          std::uint32_t ingress_groups, std::size_t burst);

}  // namespace difane
