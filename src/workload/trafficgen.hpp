// Traffic generation. Flow popularity is Zipfian (the paper's premise for
// why caching works): a fixed pool of concrete flows is drawn from the
// policy's rules, and arrivals sample the pool by Zipf rank with Poisson
// timing and heavy-tailed flow lengths.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flowspace/rule_table.hpp"
#include "util/rng.hpp"

namespace difane {

struct FlowSpec {
  std::uint64_t id = 0;
  BitVec header;            // all packets of a flow share the header
  double start = 0.0;       // arrival time of the first packet
  std::size_t packets = 1;
  double packet_gap = 1e-3; // spacing between packets within the flow
  std::uint32_t ingress_index = 0;  // index into the scenario's ingress list
};

struct TrafficParams {
  std::uint64_t seed = 1;
  std::size_t flow_pool = 10000;     // distinct flows (headers) in the pool
  double zipf_s = 1.0;               // popularity skew across pool entries
  double arrival_rate = 1000.0;      // flows per second (Poisson)
  double duration = 10.0;            // seconds of arrivals
  double mean_packets = 10.0;        // flow length (bounded Pareto)
  double pareto_alpha = 1.5;
  double max_packets = 1000.0;
  double packet_gap = 1e-3;
  std::uint32_t ingress_count = 1;   // spread flows over this many ingresses

  // Pool construction: with probability `p_rule_directed` a pool header is
  // sampled inside a policy rule chosen by rule weight (so popular rules see
  // traffic); otherwise uniformly at random.
  double p_rule_directed = 0.9;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const RuleTable& policy, TrafficParams params);

  // All flow arrivals in [0, duration), sorted by start time.
  std::vector<FlowSpec> generate();

  // The distinct headers in the pool (for cache-size reasoning in benches).
  const std::vector<BitVec>& pool() const { return *pool_; }

 private:
  void build_pool();

  const RuleTable& policy_;
  TrafficParams params_;
  Rng rng_;
  // Shared so identical pools (same policy + pool parameters + seed) are
  // built once per process and reused; see the memo cache in trafficgen.cpp.
  std::shared_ptr<const std::vector<BitVec>> pool_;
};

}  // namespace difane
