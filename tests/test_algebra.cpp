#include <gtest/gtest.h>

#include "flowspace/algebra.hpp"
#include "flowspace/header.hpp"

namespace difane {
namespace {

Rule rule_with(RuleId id, Priority priority, Ternary match, Action action) {
  Rule r;
  r.id = id;
  r.priority = priority;
  r.match = match;
  r.action = action;
  return r;
}

RuleTable small_policy() {
  // prio 30: proto=6,port=80 -> fwd(1)
  // prio 20: proto=6         -> drop
  // prio 10: *               -> fwd(0)
  RuleTable t;
  Ternary m1;
  match_exact(m1, Field::kIpProto, 6);
  match_exact(m1, Field::kTpDst, 80);
  t.add(rule_with(1, 30, m1, Action::forward(1)));
  Ternary m2;
  match_exact(m2, Field::kIpProto, 6);
  t.add(rule_with(2, 20, m2, Action::drop()));
  t.add(rule_with(3, 10, Ternary::wildcard(), Action::forward(0)));
  return t;
}

TEST(Algebra, WinnerRegionTopRuleIsItsOwnMatch) {
  const auto t = small_policy();
  const auto region = winner_region(t, 0);
  ASSERT_TRUE(region.has_value());
  ASSERT_EQ(region->size(), 1u);
  EXPECT_TRUE((*region)[0] == t.at(0).match);
}

TEST(Algebra, WinnerRegionExcludesHigherRules) {
  const auto t = small_policy();
  const auto region = winner_region(t, 1);  // proto=6 minus (proto=6,port=80)
  ASSERT_TRUE(region.has_value());
  Rng rng(3);
  for (const auto& piece : *region) {
    for (int i = 0; i < 50; ++i) {
      const BitVec p = piece.sample_point(rng);
      EXPECT_EQ(get_field(p, Field::kIpProto), 6u);
      EXPECT_NE(get_field(p, Field::kTpDst), 80u);
    }
  }
}

TEST(Algebra, ClipTableKeepsSemanticsInsideRegion) {
  const auto t = small_policy();
  Ternary region;
  match_exact(region, Field::kIpProto, 6);
  const auto clipped = clip_table(t, region);
  // The wildcard default intersects the region, so 3 rules survive.
  EXPECT_EQ(clipped.size(), 3u);
  Rng rng(5);
  EXPECT_FALSE(
      find_semantic_difference_in(t, clipped, region, rng, 500).has_value());
}

TEST(Algebra, ClipTableDropsDisjointRules) {
  const auto t = small_policy();
  Ternary region;
  match_exact(region, Field::kIpProto, 17);  // UDP: rules 1 and 2 vanish
  const auto clipped = clip_table(t, region);
  EXPECT_EQ(clipped.size(), 1u);
  EXPECT_EQ(clipped.at(0).id, 3u);
}

TEST(Algebra, FindSemanticDifferenceDetectsPlantedChange) {
  const auto a = small_policy();
  RuleTable b = small_policy();
  b.remove(2);
  // Removing the TCP drop changes TCP/non-80 packets from drop to fwd(0).
  Rng rng(7);
  const auto diff = find_semantic_difference(a, b, rng, 2000);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(get_field(*diff, Field::kIpProto), 6u);
  const Rule* wa = a.match(*diff);
  const Rule* wb = b.match(*diff);
  ASSERT_NE(wa, nullptr);
  ASSERT_NE(wb, nullptr);
  EXPECT_FALSE(wa->action == wb->action);
}

TEST(Algebra, FindSemanticDifferenceNullOnIdenticalTables) {
  const auto a = small_policy();
  const auto b = small_policy();
  Rng rng(9);
  EXPECT_FALSE(find_semantic_difference(a, b, rng, 1000).has_value());
}

TEST(Algebra, ActionChangeIsDetectedEvenWithSameShape) {
  const auto a = small_policy();
  RuleTable b;
  Ternary m1;
  match_exact(m1, Field::kIpProto, 6);
  match_exact(m1, Field::kTpDst, 80);
  b.add(rule_with(1, 30, m1, Action::forward(2)));  // different port
  Ternary m2;
  match_exact(m2, Field::kIpProto, 6);
  b.add(rule_with(2, 20, m2, Action::drop()));
  b.add(rule_with(3, 10, Ternary::wildcard(), Action::forward(0)));
  Rng rng(11);
  EXPECT_TRUE(find_semantic_difference(a, b, rng, 2000).has_value());
}

}  // namespace
}  // namespace difane
