#include <gtest/gtest.h>

#include <unordered_set>

#include "flowspace/bitvec.hpp"
#include "util/rng.hpp"

namespace difane {
namespace {

TEST(BitVec, SetGetRoundTrip) {
  BitVec v;
  for (const std::size_t bit : {0u, 1u, 63u, 64u, 127u, 128u, 255u}) {
    EXPECT_FALSE(v.get(bit));
    v.set(bit, true);
    EXPECT_TRUE(v.get(bit));
    v.set(bit, false);
    EXPECT_FALSE(v.get(bit));
  }
}

TEST(BitVec, SetBitsAcrossWordBoundary) {
  BitVec v;
  v.set_bits(60, 10, 0x3ffULL);  // straddles word 0/1
  EXPECT_EQ(v.get_bits(60, 10), 0x3ffULL);
  EXPECT_FALSE(v.get(59));
  EXPECT_FALSE(v.get(70));
  v.set_bits(60, 10, 0x155ULL);
  EXPECT_EQ(v.get_bits(60, 10), 0x155ULL);
}

TEST(BitVec, FieldWidth64) {
  BitVec v;
  v.set_bits(32, 64, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(v.get_bits(32, 64), 0xdeadbeefcafef00dULL);
}

TEST(BitVec, BoundsChecked) {
  BitVec v;
  EXPECT_THROW(v.get(256), contract_violation);
  EXPECT_THROW(v.set(256, true), contract_violation);
  EXPECT_THROW(v.set_bits(250, 10, 0), contract_violation);
  EXPECT_THROW(v.get_bits(0, 65), contract_violation);
}

TEST(BitVec, BitwiseOps) {
  BitVec a, b;
  a.set(5, true);
  a.set(100, true);
  b.set(100, true);
  b.set(200, true);
  const BitVec both = a & b;
  EXPECT_TRUE(both.get(100));
  EXPECT_FALSE(both.get(5));
  const BitVec any = a | b;
  EXPECT_TRUE(any.get(5));
  EXPECT_TRUE(any.get(200));
  const BitVec diff = a ^ b;
  EXPECT_TRUE(diff.get(5));
  EXPECT_FALSE(diff.get(100));
  EXPECT_TRUE((~a).get(6));
  EXPECT_FALSE((~a).get(5));
}

TEST(BitVec, ZeroOnesPopcount) {
  EXPECT_TRUE(BitVec::zero().is_zero());
  EXPECT_FALSE(BitVec::ones().is_zero());
  EXPECT_EQ(BitVec::zero().popcount(), 0);
  EXPECT_EQ(BitVec::ones().popcount(), 256);
  BitVec v;
  v.set(17, true);
  v.set(250, true);
  EXPECT_EQ(v.popcount(), 2);
}

// Per-bit reference implementations of the field accessors. The production
// versions are masked word operations; any disagreement with the bit loop —
// including on untouched bits — is a fast-path bug.
BitVec ref_set_bits(BitVec v, std::size_t offset, std::size_t width,
                    std::uint64_t value) {
  for (std::size_t i = 0; i < width; ++i) {
    v.set(offset + i, (value >> i) & 1ULL);
  }
  return v;
}

std::uint64_t ref_get_bits(const BitVec& v, std::size_t offset, std::size_t width) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < width; ++i) {
    out |= static_cast<std::uint64_t>(v.get(offset + i)) << i;
  }
  return out;
}

TEST(BitVec, FieldOpsMatchBitLoopReference) {
  Rng rng(77);
  for (int iter = 0; iter < 20000; ++iter) {
    BitVec v;
    for (auto& w : v.w) w = rng.next_u64();
    const std::size_t width = static_cast<std::size_t>(rng.uniform(1, 64));
    const std::size_t offset =
        static_cast<std::size_t>(rng.uniform(0, kHeaderBits - width));
    const std::uint64_t value = rng.next_u64();

    EXPECT_EQ(v.get_bits(offset, width), ref_get_bits(v, offset, width))
        << "offset=" << offset << " width=" << width;

    BitVec fast = v;
    fast.set_bits(offset, width, value);
    const BitVec ref = ref_set_bits(v, offset, width, value);
    EXPECT_TRUE(fast == ref) << "offset=" << offset << " width=" << width;
    EXPECT_EQ(fast.get_bits(offset, width),
              value & (width == 64 ? ~0ULL : (1ULL << width) - 1ULL));
  }
}

TEST(BitVec, HashDistinguishesValues) {
  Rng rng(5);
  std::unordered_set<std::uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    BitVec v;
    for (auto& w : v.w) w = rng.next_u64();
    hashes.insert(v.hash());
  }
  // Collisions over 1000 random 256-bit values would indicate a broken mixer.
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(BitVec, EqualityIsValueBased) {
  BitVec a, b;
  a.set(99, true);
  EXPECT_FALSE(a == b);
  b.set(99, true);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace difane
