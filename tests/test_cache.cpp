#include <gtest/gtest.h>

#include "core/authority.hpp"
#include "partition/partitioner.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

constexpr SwitchId kAuthority = 100;

Rule rule_with(RuleId id, Priority priority, Ternary match, Action action) {
  Rule r;
  r.id = id;
  r.priority = priority;
  r.match = match;
  r.action = action;
  return r;
}

// Nested dst-prefix chain with distinct actions per level + default.
RuleTable chain_policy() {
  RuleTable t;
  Ternary m32, m24, m16;
  match_prefix(m32, Field::kIpDst, make_ipv4(10, 1, 1, 1), 32);
  match_prefix(m24, Field::kIpDst, make_ipv4(10, 1, 1, 0), 24);
  match_prefix(m16, Field::kIpDst, make_ipv4(10, 1, 0, 0), 16);
  t.add(rule_with(0, 40, m32, Action::forward(3)));
  t.add(rule_with(1, 30, m24, Action::drop()));
  t.add(rule_with(2, 20, m16, Action::forward(2)));
  t.add(rule_with(3, 10, Ternary::wildcard(), Action::forward(0)));
  return t;
}

struct Harness {
  RuleTable policy;
  PartitionPlan plan;
  AuthorityNode node;

  Harness(RuleTable p, CacheStrategy strategy, std::size_t capacity = 1000,
          std::uint32_t k = 2)
      : policy(std::move(p)),
        plan([&] {
          PartitionerParams params;
          params.capacity = capacity;
          return Partitioner(params).build(policy, k);
        }()),
        node(kAuthority, strategy) {
    RuleId base = 1u << 20;
    for (const auto& partition : plan.partitions()) {
      node.bind(partition, base);
      base += 1u << 22;
    }
  }
};

// The central correctness property: with any strategy, the layered lookup
// (cache band, else redirect to authority) always yields the true policy
// winner's action, before and after any sequence of cache installs.
class CacheSemantics
    : public ::testing::TestWithParam<std::tuple<CacheStrategy, std::uint64_t>> {};

TEST_P(CacheSemantics, LayeredLookupMatchesPolicy) {
  const auto [strategy, seed] = GetParam();
  Harness h(classbench_like(400, seed), strategy, /*capacity=*/80, /*k=*/3);
  FlowTable cache(100000);
  Rng rng(seed ^ 0xc0ffee);
  double now = 0.0;

  auto true_action = [&](const BitVec& pkt) {
    const Rule* w = h.policy.match(pkt);
    ASSERT_NE(w, nullptr);  // policy has a default
  };
  (void)true_action;

  for (int round = 0; round < 1500; ++round) {
    now += 0.001;
    BitVec pkt;
    if (round % 2 == 0) {
      pkt = Ternary::wildcard().sample_point(rng);
    } else {
      pkt = h.policy.at(rng.uniform(0, h.policy.size() - 1)).match.sample_point(rng);
    }
    const Rule* winner = h.policy.match(pkt);
    ASSERT_NE(winner, nullptr);

    const FlowEntry* entry = cache.lookup(pkt, now);
    if (entry != nullptr && entry->rule.action.type != ActionType::kEncap) {
      // Terminal cache decision must be the policy's decision.
      ASSERT_TRUE(entry->rule.action == winner->action)
          << cache_strategy_name(strategy) << " round " << round << ": cache says "
          << entry->rule.action.to_string() << " policy says "
          << winner->action.to_string();
      continue;
    }
    // Miss or shadow redirect: the authority must agree with the policy and
    // its install must go through.
    const auto result = h.node.handle(pkt);
    ASSERT_TRUE(result.has_value());
    ASSERT_NE(result->winner, nullptr);
    EXPECT_TRUE(result->winner->action == winner->action);
    EXPECT_EQ(result->winner->origin_or_self(), winner->id);
    for (const auto& rule : result->install.rules) {
      cache.install(rule, Band::kCache, now, /*idle=*/30.0);
    }
    // Replay the same packet: it must now terminate in the cache with the
    // policy's action (every strategy caches at least the matched rule).
    const FlowEntry* warm = cache.lookup(pkt, now + 1e-4);
    ASSERT_NE(warm, nullptr);
    if (warm->rule.action.type != ActionType::kEncap) {
      EXPECT_TRUE(warm->rule.action == winner->action);
    }
  }
  // The cache saw real traffic; terminal hits must exist for every strategy.
  EXPECT_GT(cache.stats().hits_per_band[0], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSeeds, CacheSemantics,
    ::testing::Combine(::testing::Values(CacheStrategy::kMicroflow,
                                         CacheStrategy::kDependentSet,
                                         CacheStrategy::kCoverSet),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Cache, MicroflowInstallsExactlyOneExactRule) {
  Harness h(chain_policy(), CacheStrategy::kMicroflow, 1000, 1);
  const BitVec pkt = PacketBuilder().ip_dst(make_ipv4(10, 1, 1, 1)).build();
  const auto result = h.node.handle(pkt);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->install.rules.size(), 1u);
  const auto& rule = result->install.rules[0];
  EXPECT_EQ(rule.match.care_bits(), static_cast<int>(header_bits_used()));
  EXPECT_TRUE(rule.action == Action::forward(3));
  EXPECT_TRUE(rule.match.matches(pkt));
}

TEST(Cache, DependentSetDragsInWholeChain) {
  Harness h(chain_policy(), CacheStrategy::kDependentSet, 1000, 1);
  // Default-rule traffic: closure is default + /16 + /24 + /32 = 4 rules.
  Rng rng(5);
  BitVec pkt = PacketBuilder().ip_dst(make_ipv4(99, 0, 0, 1)).build();
  const auto result = h.node.handle(pkt);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->install.rules.size(), 4u);
  (void)rng;
}

TEST(Cache, CoverSetSplicesTheChain) {
  Harness h(chain_policy(), CacheStrategy::kCoverSet, 1000, 1);
  // Default-rule traffic: cover-set = default + one shadow for the /16 only.
  BitVec pkt = PacketBuilder().ip_dst(make_ipv4(99, 0, 0, 1)).build();
  const auto result = h.node.handle(pkt);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->install.rules.size(), 2u);
  const auto& shadow = result->install.rules[1];
  EXPECT_EQ(shadow.action.type, ActionType::kEncap);
  EXPECT_EQ(shadow.action.arg, kAuthority);
  // The shadow sits at the /16's priority, above the cached default.
  EXPECT_GT(shadow.priority, result->install.rules[0].priority);
}

TEST(Cache, CoverSetShadowRedirectsStolenTraffic) {
  Harness h(chain_policy(), CacheStrategy::kCoverSet, 1000, 1);
  FlowTable cache(1000);
  // Cache the default rule via a packet outside the chain.
  const BitVec outside = PacketBuilder().ip_dst(make_ipv4(99, 0, 0, 1)).build();
  const auto result = h.node.handle(outside);
  ASSERT_TRUE(result.has_value());
  for (const auto& rule : result->install.rules) {
    cache.install(rule, Band::kCache, 0.0);
  }
  // A packet the /24 drop rule owns must NOT be forwarded by the cached
  // default: it must hit the shadow redirect.
  const BitVec stolen = PacketBuilder().ip_dst(make_ipv4(10, 1, 1, 7)).build();
  const FlowEntry* entry = cache.lookup(stolen, 1.0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->rule.action.type, ActionType::kEncap);
}

TEST(Cache, CostsReflectStrategy) {
  Harness dep(chain_policy(), CacheStrategy::kDependentSet, 1000, 1);
  Harness cov(chain_policy(), CacheStrategy::kCoverSet, 1000, 1);
  Harness micro(chain_policy(), CacheStrategy::kMicroflow, 1000, 1);
  const auto pid = dep.plan.partitions()[0].id;
  const auto dep_costs = dep.node.splice_costs(pid);
  const auto cov_costs = cov.node.splice_costs(pid);
  const auto micro_costs = micro.node.splice_costs(pid);
  ASSERT_EQ(dep_costs.size(), 4u);
  // Table order: /32 (prio 40), /24, /16, default.
  EXPECT_EQ(dep_costs[0], 1u);
  EXPECT_EQ(dep_costs[1], 2u);
  EXPECT_EQ(dep_costs[2], 3u);
  EXPECT_EQ(dep_costs[3], 4u);
  EXPECT_EQ(cov_costs[3], 2u);  // default + one shadow
  for (const auto c : micro_costs) EXPECT_EQ(c, 1u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LE(cov_costs[i], dep_costs[i]);
}

TEST(Cache, HandleReturnsNulloptOutsideBoundPartitions) {
  // Nested chains cannot split (the broad rule rides every cut), so use a
  // generated ACL, which fans out into many partitions.
  const auto policy = classbench_like(120, 77);
  PartitionerParams params;
  params.capacity = 30;
  const auto plan = Partitioner(params).build(policy, 2);
  ASSERT_GT(plan.partitions().size(), 1u);
  AuthorityNode node(kAuthority, CacheStrategy::kDependentSet);
  node.bind(plan.partitions()[0], 1u << 20);  // bind only one partition
  // A packet in a different partition is not ours.
  Rng rng(9);
  bool saw_unbound = false;
  for (int i = 0; i < 200 && !saw_unbound; ++i) {
    const BitVec pkt = Ternary::wildcard().sample_point(rng);
    if (!plan.partitions()[0].region.matches(pkt)) {
      EXPECT_FALSE(node.handle(pkt).has_value());
      saw_unbound = true;
    }
  }
  EXPECT_TRUE(saw_unbound);
}

TEST(Cache, StrategyNames) {
  EXPECT_STREQ(cache_strategy_name(CacheStrategy::kMicroflow), "microflow");
  EXPECT_STREQ(cache_strategy_name(CacheStrategy::kDependentSet), "dependent-set");
  EXPECT_STREQ(cache_strategy_name(CacheStrategy::kCoverSet), "cover-set");
}

TEST(Cache, ElephantParamsDefaultsAreConservative) {
  // The defaults must be safe to embed in any ScenarioParams: disabled, and
  // with knobs that validate() accepts the moment someone flips `enabled`.
  const ElephantParams p;
  EXPECT_FALSE(p.enabled);
  EXPECT_GT(p.tracker_capacity, 0u);
  EXPECT_GT(p.threshold, 0u);
  EXPECT_GT(p.idle_timeout, 0.0);
  EXPECT_EQ(p.probation_idle_timeout, 0.0);  // inherit base timeout
  EXPECT_TRUE(p.proactive);
  EXPECT_FALSE(p.mice_bypass);
  EXPECT_GE(p.mice_min_packets, 2u);
}

TEST(Cache, ClassifyInstallDisabledAlwaysNormal) {
  ElephantParams p;  // enabled = false
  p.mice_bypass = true;
  for (const std::uint64_t g : {0ull, 1ull, 7ull, 8ull, 1000ull}) {
    EXPECT_EQ(classify_install(p, g), InstallClass::kNormal) << g;
  }
}

TEST(Cache, ClassifyInstallThresholdPromotesExactlyAtBoundary) {
  ElephantParams p;
  p.enabled = true;
  p.threshold = 8;
  EXPECT_EQ(classify_install(p, 7), InstallClass::kNormal);
  EXPECT_EQ(classify_install(p, 8), InstallClass::kElephant);
  EXPECT_EQ(classify_install(p, 9), InstallClass::kElephant);
}

TEST(Cache, ClassifyInstallMiceBypassOnlyBelowMinPackets) {
  ElephantParams p;
  p.enabled = true;
  p.threshold = 8;
  p.mice_bypass = true;
  p.mice_min_packets = 2;
  // First miss (guaranteed count 1, sampled after offering): bypass.
  EXPECT_EQ(classify_install(p, 1), InstallClass::kBypass);
  // Proven to return but not yet an elephant: probationary normal install.
  EXPECT_EQ(classify_install(p, 2), InstallClass::kNormal);
  EXPECT_EQ(classify_install(p, 7), InstallClass::kNormal);
  // Elephant beats bypass even under degenerate min_packets > threshold.
  p.mice_min_packets = 100;
  EXPECT_EQ(classify_install(p, 8), InstallClass::kElephant);
  EXPECT_EQ(classify_install(p, 3), InstallClass::kBypass);
}

TEST(Cache, InstallClassNames) {
  EXPECT_STREQ(install_class_name(InstallClass::kNormal), "normal");
  EXPECT_STREQ(install_class_name(InstallClass::kElephant), "elephant");
  EXPECT_STREQ(install_class_name(InstallClass::kBypass), "bypass");
}

}  // namespace
}  // namespace difane
