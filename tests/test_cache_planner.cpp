#include <gtest/gtest.h>

#include "core/cache_planner.hpp"
#include "flowspace/header.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

Rule rule_with(RuleId id, Priority priority, Ternary match, Action action,
               double weight) {
  Rule r;
  r.id = id;
  r.priority = priority;
  r.match = match;
  r.action = action;
  r.weight = weight;
  return r;
}

// /32 (light) above /24 (light) above /16 (light) above default (heavy).
RuleTable chain_policy() {
  RuleTable t;
  Ternary m32, m24, m16;
  match_prefix(m32, Field::kIpDst, make_ipv4(10, 1, 1, 1), 32);
  match_prefix(m24, Field::kIpDst, make_ipv4(10, 1, 1, 0), 24);
  match_prefix(m16, Field::kIpDst, make_ipv4(10, 1, 0, 0), 16);
  t.add(rule_with(0, 40, m32, Action::forward(3), 0.05));
  t.add(rule_with(1, 30, m24, Action::drop(), 0.05));
  t.add(rule_with(2, 20, m16, Action::forward(2), 0.10));
  t.add(rule_with(3, 10, Ternary::wildcard(), Action::forward(0), 0.80));
  return t;
}

TEST(CachePlanner, CoverSetCachesHeavyRuleCheaply) {
  const auto policy = chain_policy();
  const auto graph = build_dependency_graph(policy);
  // Budget 2: cover-set can take the heavy default (1 rule + 1 shadow for
  // the /16); dependent-set cannot (needs the whole chain, cost 4).
  const auto cover = plan_cache(policy, graph, CacheStrategy::kCoverSet, 2);
  const auto dep = plan_cache(policy, graph, CacheStrategy::kDependentSet, 2);
  EXPECT_NEAR(cover.covered_weight, 0.80, 1e-9);
  EXPECT_EQ(cover.entries_used, 2u);
  EXPECT_LT(dep.covered_weight, 0.80);
  EXPECT_GT(cover.expected_hit_rate(), dep.expected_hit_rate());
}

TEST(CachePlanner, DependentSetTakesWholeChainWhenBudgetAllows) {
  const auto policy = chain_policy();
  const auto graph = build_dependency_graph(policy);
  const auto plan = plan_cache(policy, graph, CacheStrategy::kDependentSet, 4);
  EXPECT_EQ(plan.entries_used, 4u);
  EXPECT_NEAR(plan.covered_weight, 1.0, 1e-9);
  EXPECT_NEAR(plan.expected_hit_rate(), 1.0, 1e-9);
}

TEST(CachePlanner, RespectsBudget) {
  const auto policy = classbench_like(300, 5);
  const auto graph = build_dependency_graph(policy);
  for (const std::size_t budget : {0u, 1u, 10u, 50u}) {
    for (const auto strategy :
         {CacheStrategy::kDependentSet, CacheStrategy::kCoverSet}) {
      const auto plan = plan_cache(policy, graph, strategy, budget);
      EXPECT_LE(plan.entries_used, budget);
      EXPECT_LE(plan.covered_weight, plan.total_weight + 1e-9);
    }
  }
}

TEST(CachePlanner, HitRateMonotoneInBudget) {
  const auto policy = classbench_like(400, 7);
  const auto graph = build_dependency_graph(policy);
  for (const auto strategy :
       {CacheStrategy::kDependentSet, CacheStrategy::kCoverSet}) {
    double prev = -1.0;
    for (const std::size_t budget : {5u, 20u, 80u, 320u}) {
      const auto plan = plan_cache(policy, graph, strategy, budget);
      EXPECT_GE(plan.expected_hit_rate(), prev - 1e-12);
      prev = plan.expected_hit_rate();
    }
  }
}

// Regression: a shadow -> terminal-copy upgrade whose parents are all
// covered costs zero entries (the copy replaces the shadow one-for-one) and
// must be taken even at full budget. With chain_policy and budget 4 the
// greedy order is: default (+shadow /16), /16 copy (+shadow /24), /32 copy —
// leaving the /24 shadowed with its only parent (/32) cached. Upgrading the
// /24 is free and completes coverage; the old planner skipped every
// zero-cost candidate and stopped at 0.95.
TEST(CachePlanner, ZeroCostShadowUpgradeIsTakenAtFullBudget) {
  const auto policy = chain_policy();
  const auto graph = build_dependency_graph(policy);
  const auto plan = plan_cache(policy, graph, CacheStrategy::kCoverSet, 4);
  EXPECT_LE(plan.entries_used, 4u);
  EXPECT_NEAR(plan.covered_weight, 1.0, 1e-9);
  EXPECT_NEAR(plan.expected_hit_rate(), 1.0, 1e-9);
  // The materialized table must agree with the plan's entry accounting: the
  // upgrade really does replace the shadow rather than adding a fifth rule.
  const auto rules = materialize_plan(policy, graph, plan,
                                      CacheStrategy::kCoverSet, 77, 1u << 24);
  EXPECT_EQ(rules.size(), plan.entries_used);
}

// The plan's entry accounting and the materialized table must agree for
// every strategy/budget combination — a divergence means the planner's
// shadow bookkeeping (the source of the old zero-cost bug) drifted from
// what actually gets installed.
TEST(CachePlanner, EntriesUsedMatchesMaterializedSize) {
  const auto policy = classbench_like(300, 23);
  const auto graph = build_dependency_graph(policy);
  for (const auto strategy :
       {CacheStrategy::kDependentSet, CacheStrategy::kCoverSet}) {
    for (const std::size_t budget : {10u, 60u, 120u, 200u}) {
      const auto plan = plan_cache(policy, graph, strategy, budget);
      const auto rules =
          materialize_plan(policy, graph, plan, strategy, 77, 1u << 24);
      EXPECT_EQ(rules.size(), plan.entries_used)
          << "strategy " << static_cast<int>(strategy) << " budget " << budget;
    }
  }
}

// Dense budget sweep across the 100-200 entry region where E6 historically
// showed a cover-set hit-rate dip: with free upgrades taken, planned
// coverage is monotone in the budget. (The residual run-time dip in E6 at
// small caps is idle-timeout/group-eviction churn, not a planner property —
// this pins the planner half of that explanation.)
TEST(CachePlanner, CoverSetCoverageMonotoneThroughDipRegion) {
  const auto policy = classbench_like(400, 7);
  const auto graph = build_dependency_graph(policy);
  double prev_weight = -1.0;
  for (std::size_t budget = 10; budget <= 240; budget += 10) {
    const auto plan = plan_cache(policy, graph, CacheStrategy::kCoverSet, budget);
    EXPECT_GE(plan.covered_weight, prev_weight - 1e-12) << "budget " << budget;
    EXPECT_LE(plan.entries_used, budget);
    prev_weight = plan.covered_weight;
  }
}

TEST(CachePlanner, MicroflowRejected) {
  const auto policy = chain_policy();
  const auto graph = build_dependency_graph(policy);
  EXPECT_THROW(plan_cache(policy, graph, CacheStrategy::kMicroflow, 4),
               contract_violation);
}

// Materialized plans must preserve semantics: a cache-table hit is either
// the true policy winner's action or a redirect.
class PlannerSemantics
    : public ::testing::TestWithParam<std::tuple<CacheStrategy, std::size_t>> {};

TEST_P(PlannerSemantics, MaterializedCacheNeverMisforwards) {
  const auto [strategy, budget] = GetParam();
  const auto policy = classbench_like(300, 11);
  const auto graph = build_dependency_graph(policy);
  const auto plan = plan_cache(policy, graph, strategy, budget);
  const auto rules = materialize_plan(policy, graph, plan, strategy,
                                      /*authority=*/77, /*synth base=*/1u << 24);
  EXPECT_LE(rules.size(), budget);
  RuleTable cache(rules);
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const BitVec pkt = (i % 2 == 0)
                           ? Ternary::wildcard().sample_point(rng)
                           : policy.at(rng.uniform(0, policy.size() - 1))
                                 .match.sample_point(rng);
    const Rule* hit = cache.match(pkt);
    if (hit == nullptr || hit->action.type == ActionType::kEncap) continue;
    const Rule* want = policy.match(pkt);
    ASSERT_NE(want, nullptr);
    EXPECT_TRUE(hit->action == want->action)
        << "budget " << budget << ": cache " << hit->to_string() << " policy "
        << want->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndBudgets, PlannerSemantics,
    ::testing::Combine(::testing::Values(CacheStrategy::kDependentSet,
                                         CacheStrategy::kCoverSet),
                       ::testing::Values(std::size_t{10}, std::size_t{60},
                                         std::size_t{200})));

TEST(CachePlanner, PlannedHitRateMatchesWeightedSample) {
  // Cross-check the analytic hit rate against sampling: draw packets by rule
  // weight and count terminal cache hits.
  const auto policy = classbench_like(250, 17);
  const auto graph = build_dependency_graph(policy);
  const auto plan = plan_cache(policy, graph, CacheStrategy::kDependentSet, 120);
  const auto rules = materialize_plan(policy, graph, plan,
                                      CacheStrategy::kDependentSet, 77, 1u << 24);
  RuleTable cache(rules);
  Rng rng(19);
  std::vector<double> weights;
  for (const auto& rule : policy.rules()) weights.push_back(std::max(rule.weight, 1e-12));
  std::size_t terminal = 0;
  const int n = 8000;
  int counted = 0;
  for (int i = 0; i < n; ++i) {
    const auto ridx = rng.weighted_index(weights);
    const BitVec pkt = policy.at(ridx).match.sample_point(rng);
    // Only count samples whose winner is the sampled rule (otherwise the
    // sample's weight attribution is off).
    const Rule* want = policy.match(pkt);
    if (want == nullptr || want->id != policy.at(ridx).id) continue;
    ++counted;
    const Rule* hit = cache.match(pkt);
    if (hit != nullptr && hit->action.type != ActionType::kEncap) ++terminal;
  }
  ASSERT_GT(counted, n / 2);
  const double sampled = static_cast<double>(terminal) / counted;
  EXPECT_NEAR(sampled, plan.expected_hit_rate(), 0.12);
}

// --- Measured-weight (elephant) planning -----------------------------------

TEST(CachePlanner, WeightedOverloadMatchesStaticWhenWeightsEqualAnnotations) {
  const auto policy = classbench_like(200, 13);
  const auto graph = build_dependency_graph(policy);
  std::vector<double> weights;
  for (const auto& rule : policy.rules()) weights.push_back(rule.weight);
  for (const auto strategy :
       {CacheStrategy::kDependentSet, CacheStrategy::kCoverSet}) {
    const auto static_plan = plan_cache(policy, graph, strategy, 40);
    const auto measured = plan_cache(policy, graph, strategy, 40, weights);
    EXPECT_EQ(measured.chosen, static_plan.chosen);
    EXPECT_EQ(measured.entries_used, static_plan.entries_used);
    EXPECT_NEAR(measured.covered_weight, static_plan.covered_weight, 1e-9);
  }
}

TEST(CachePlanner, WeightedOverloadFollowsMeasuredTrafficNotAnnotations) {
  // Statically the default rule carries 0.80 of the weight; the measured
  // stream says all traffic hit the /32. The plan must chase the /32.
  const auto policy = chain_policy();
  const auto graph = build_dependency_graph(policy);
  const std::vector<double> weights = {1000.0, 0.0, 0.0, 0.0};
  // The /32 tops the chain: cover-set caches it with zero shadows (cost 1).
  const auto plan = plan_cache(policy, graph, CacheStrategy::kCoverSet, 1, weights);
  ASSERT_EQ(plan.chosen.size(), 1u);
  EXPECT_EQ(plan.chosen[0], 0u);
  EXPECT_NEAR(plan.covered_weight, 1000.0, 1e-9);
  EXPECT_NEAR(plan.total_weight, 1000.0, 1e-9);
  EXPECT_NEAR(plan.expected_hit_rate(), 1.0, 1e-9);
}

TEST(CachePlanner, WeightedOverloadRejectsSizeMismatch) {
  const auto policy = chain_policy();
  const auto graph = build_dependency_graph(policy);
  const std::vector<double> short_weights = {1.0, 2.0};
  EXPECT_THROW(
      plan_cache(policy, graph, CacheStrategy::kCoverSet, 4, short_weights),
      contract_violation);
}

TEST(CachePlanner, ElephantRuleWeightsAttributeFlowsToPolicyWinners) {
  const auto policy = chain_policy();
  Rng rng(17);
  // A /32 hit also matches the /24, /16, and default — attribution must go
  // to the priority winner only.
  const BitVec hit32 = policy.at(0).match.sample_point(rng);
  BitVec hit24;
  do {
    hit24 = policy.at(1).match.sample_point(rng);
  } while (policy.at(0).match.matches(hit24));
  BitVec hit_default;
  do {
    hit_default = policy.at(3).match.sample_point(rng);
  } while (policy.at(2).match.matches(hit_default));
  const std::vector<std::pair<BitVec, std::uint64_t>> flows = {
      {hit32, 40}, {hit24, 7}, {hit32, 3}, {hit_default, 11}};
  const auto weights = elephant_rule_weights(policy, flows);
  ASSERT_EQ(weights.size(), policy.size());
  EXPECT_NEAR(weights[0], 43.0, 1e-9);  // both /32 entries fold together
  EXPECT_NEAR(weights[1], 7.0, 1e-9);
  EXPECT_NEAR(weights[2], 0.0, 1e-9);
  EXPECT_NEAR(weights[3], 11.0, 1e-9);
}

TEST(CachePlanner, ElephantRuleWeightsDropUnmatchedHeaders) {
  // A table with no default: headers outside the /16 match nothing and must
  // contribute no weight anywhere.
  RuleTable t;
  Ternary m16;
  match_prefix(m16, Field::kIpDst, make_ipv4(10, 1, 0, 0), 16);
  t.add(rule_with(0, 10, m16, Action::forward(1), 1.0));
  Rng rng(23);
  const BitVec inside = t.at(0).match.sample_point(rng);
  BitVec outside;
  do {
    outside = Ternary::wildcard().sample_point(rng);
  } while (t.at(0).match.matches(outside));
  const auto weights =
      elephant_rule_weights(t, {{inside, 5}, {outside, 1000}});
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_NEAR(weights[0], 5.0, 1e-9);
}

TEST(CachePlanner, MeasuredWeightsPlanEndToEndFromHeavyFlows) {
  // elephant_rule_weights -> weighted plan_cache, the way the system wires
  // an authority's heavy-hitter summary into cache pre-warming.
  const auto policy = classbench_like(150, 31);
  const auto graph = build_dependency_graph(policy);
  Rng rng(29);
  std::vector<std::pair<BitVec, std::uint64_t>> flows;
  for (int i = 0; i < 64; ++i) {
    const auto ridx = rng.uniform(0, policy.size() - 1);
    flows.emplace_back(policy.at(ridx).match.sample_point(rng),
                       1 + rng.uniform(0, 99));
  }
  const auto weights = elephant_rule_weights(policy, flows);
  double total = 0.0;
  for (const auto w : weights) total += w;
  std::uint64_t offered = 0;
  for (const auto& [header, count] : flows) {
    if (policy.match(header) != nullptr) offered += count;
  }
  EXPECT_NEAR(total, static_cast<double>(offered), 1e-9);
  const auto plan =
      plan_cache(policy, graph, CacheStrategy::kCoverSet, 20, weights);
  EXPECT_LE(plan.entries_used, 20u);
  EXPECT_NEAR(plan.total_weight, total, 1e-6);
  EXPECT_LE(plan.covered_weight, plan.total_weight + 1e-9);
  EXPECT_GT(plan.covered_weight, 0.0);
}

}  // namespace
}  // namespace difane
