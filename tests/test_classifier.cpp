#include <gtest/gtest.h>

#include "classifier/dtree.hpp"
#include "classifier/linear.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

TEST(Linear, CountsLookups) {
  RuleTable t;
  Rule def;
  def.id = 0;
  def.priority = 0;
  def.action = Action::forward(0);
  t.add(def);
  LinearClassifier c(t);
  EXPECT_NE(c.classify(BitVec{}), nullptr);
  EXPECT_EQ(c.lookups(), 1u);
}

TEST(DTree, EmptyTableClassifiesNull) {
  DTreeClassifier c{RuleTable{}};
  EXPECT_EQ(c.classify(BitVec{}), nullptr);
}

TEST(DTree, SingleRule) {
  RuleTable t;
  Rule r;
  r.id = 1;
  r.priority = 5;
  match_exact(r.match, Field::kIpProto, 6);
  r.action = Action::drop();
  t.add(r);
  DTreeClassifier c(t);
  const Rule* hit = c.classify(PacketBuilder().ip_proto(6).build());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 1u);
  EXPECT_EQ(c.classify(PacketBuilder().ip_proto(17).build()), nullptr);
}

TEST(DTree, StatsAreConsistent) {
  const auto policy = classbench_like(2000, 42);
  DTreeParams params;
  params.leaf_size = 64;
  DTreeClassifier c(policy, params);
  EXPECT_GT(c.node_count(), 1u);
  EXPECT_GT(c.leaf_count(), 1u);
  EXPECT_GE(c.duplication_factor(), 1.0);
  // Wildcard-heavy ACLs replicate in cut trees; coarse leaves keep it sane.
  EXPECT_LT(c.duplication_factor(), 30.0);
  EXPECT_GT(c.depth(), 0u);
  EXPECT_GT(c.avg_leaf_rules(), 0.0);
}

// Equivalence property: the decision tree must return exactly the same
// winner as the linear reference on every packet.
class DTreeEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(DTreeEquivalence, MatchesLinearReference) {
  const auto [seed, leaf_size] = GetParam();
  const auto policy = classbench_like(800, seed);
  LinearClassifier linear(policy);
  DTreeParams params;
  params.leaf_size = leaf_size;
  DTreeClassifier tree(policy, params);

  Rng rng(seed ^ 0xfeed);
  for (int i = 0; i < 2000; ++i) {
    // Half uniform, half biased inside random rules so narrow rules get hit.
    BitVec pkt;
    if (i % 2 == 0) {
      pkt = Ternary::wildcard().sample_point(rng);
    } else {
      pkt = policy.at(rng.uniform(0, policy.size() - 1)).match.sample_point(rng);
    }
    const Rule* a = linear.classify(pkt);
    const Rule* b = tree.classify(pkt);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      EXPECT_EQ(a->id, b->id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLeafSizes, DTreeEquivalence,
    ::testing::Combine(::testing::Values(1u, 7u, 99u),
                       ::testing::Values(std::size_t{1}, std::size_t{8},
                                         std::size_t{64})));

TEST(ChooseCutBit, PicksSeparatingBit) {
  RuleTable t;
  Rule a, b;
  a.id = 0;
  a.priority = 2;
  match_exact(a.match, Field::kIpProto, 6);
  b.id = 1;
  b.priority = 1;
  match_exact(b.match, Field::kIpProto, 17);
  t.add(a);
  t.add(b);
  std::vector<const Rule*> rules{&t.at(0), &t.at(1)};
  std::size_t n0 = 0, n1 = 0;
  const int bit = choose_cut_bit(rules, 1.0, &n0, &n1);
  ASSERT_GE(bit, 0);
  // 6 = 0b00110, 17 = 0b10001 differ in proto bits 0,1,2,4.
  EXPECT_EQ(n0 + n1, 2u);  // clean separation, no duplication
}

TEST(ChooseCutBit, NoSeparatingBitReturnsMinusOne) {
  RuleTable t;
  Rule a;
  a.id = 0;
  a.priority = 1;
  t.add(a);  // one full-wildcard rule: nothing separates it
  std::vector<const Rule*> rules{&t.at(0)};
  EXPECT_EQ(choose_cut_bit(rules, 1.0), -1);
}

}  // namespace
}  // namespace difane
