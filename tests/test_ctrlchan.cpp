#include <gtest/gtest.h>

#include "core/system.hpp"
#include "ctrlchan/channel.hpp"
#include "faults/heartbeat.hpp"
#include "faults/injector.hpp"
#include "flowspace/header.hpp"
#include "workload/rulegen.hpp"
#include "workload/trafficgen.hpp"

namespace difane {
namespace {

Rule rule_of(RuleId id, Priority priority, Action action = Action::drop(),
             RuleId origin = kInvalidRuleId) {
  Rule r;
  r.id = id;
  r.priority = priority;
  r.action = action;
  r.origin = origin;
  return r;
}

struct Fixture {
  Engine engine;
  Switch sw{0, /*cache=*/100};
  SwitchAgent agent{engine, sw};
};

TEST(SwitchAgent, FlowModAddAppliesAndReplies) {
  Fixture f;
  std::optional<FlowModReply> reply;
  FlowMod mod;
  mod.xid = 7;
  mod.rule = rule_of(1, 10);
  f.agent.deliver(mod, [&](const Reply& r) { reply = std::get<FlowModReply>(r); });
  f.engine.run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->xid, 7u);
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(f.sw.table().size(Band::kCache), 1u);
  EXPECT_EQ(f.agent.applied(), 1u);
}

TEST(SwitchAgent, FlowModDeleteRemovesEntry) {
  Fixture f;
  FlowMod add;
  add.rule = rule_of(1, 10);
  f.agent.deliver(add);
  FlowMod del;
  del.op = FlowModOp::kDelete;
  del.rule.id = 1;
  std::optional<FlowModReply> reply;
  f.agent.deliver(del, [&](const Reply& r) { reply = std::get<FlowModReply>(r); });
  f.engine.run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(f.sw.table().size(Band::kCache), 0u);
}

TEST(SwitchAgent, DeleteMissingEntryRepliesNotOk) {
  Fixture f;
  FlowMod del;
  del.op = FlowModOp::kDelete;
  del.rule.id = 42;
  std::optional<FlowModReply> reply;
  f.agent.deliver(del, [&](const Reply& r) { reply = std::get<FlowModReply>(r); });
  f.engine.run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->ok);
}

TEST(SwitchAgent, MessagesApplyInOrderAndBarrierWaits) {
  Fixture f;
  std::vector<int> order;
  FlowMod a;
  a.rule = rule_of(1, 10);
  FlowMod b;
  b.rule = rule_of(2, 20);
  f.agent.deliver(a, [&](const Reply&) { order.push_back(1); });
  f.agent.deliver(b, [&](const Reply&) { order.push_back(2); });
  BarrierRequest barrier{99};
  f.agent.deliver(barrier, [&](const Reply& r) {
    order.push_back(3);
    EXPECT_EQ(std::get<BarrierReply>(r).xid, 99u);
    // Both earlier flow-mods are already applied when the barrier fires.
    EXPECT_EQ(f.sw.table().size(Band::kCache), 2u);
  });
  f.engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SwitchAgent, FlowModsTakeTimeToApply) {
  Fixture f;
  FlowMod a;
  a.rule = rule_of(1, 10);
  double applied_at = -1.0;
  f.agent.deliver(a, [&](const Reply&) { applied_at = f.engine.now(); });
  f.engine.run();
  EXPECT_GT(applied_at, 0.0);  // flow_mod_cost elapsed
}

TEST(SwitchAgent, PacketOutInvokesHandler) {
  Fixture f;
  std::optional<PacketOut> seen;
  f.agent.set_packet_out_handler([&](const PacketOut& po) { seen = po; });
  PacketOut po;
  po.xid = 5;
  po.header = PacketBuilder().ip_proto(6).build();
  po.action = Action::forward(2);
  f.agent.deliver(po);
  f.engine.run();
  ASSERT_TRUE(seen.has_value());
  EXPECT_TRUE(seen->action == Action::forward(2));
}

TEST(SwitchAgent, StatsAggregatePerOrigin) {
  Fixture f;
  // Two clipped copies of policy rule 100 plus one unrelated rule.
  Ternary tcp;
  match_exact(tcp, Field::kIpProto, 6);
  Rule copy1 = rule_of(1000, 10, Action::forward(1), /*origin=*/100);
  copy1.match = tcp;
  Rule copy2 = rule_of(1001, 10, Action::forward(1), /*origin=*/100);
  Ternary udp;
  match_exact(udp, Field::kIpProto, 17);
  copy2.match = udp;
  Rule other = rule_of(2000, 5, Action::drop(), /*origin=*/200);
  Ternary icmp;
  match_exact(icmp, Field::kIpProto, 1);
  other.match = icmp;  // cache band outranks authority band; keep it narrow

  f.sw.table().install(copy1, Band::kAuthority, 0.0);
  f.sw.table().install(copy2, Band::kAuthority, 0.0);
  f.sw.table().install(other, Band::kCache, 0.0);

  f.sw.table().lookup(PacketBuilder().ip_proto(6).build(), 1.0, 50);
  f.sw.table().lookup(PacketBuilder().ip_proto(17).build(), 1.0, 70);
  f.sw.table().lookup(PacketBuilder().ip_proto(1).build(), 1.0, 10);  // other

  std::optional<FlowStatsReply> reply;
  f.agent.deliver(FlowStatsRequest{1, kInvalidRuleId},
                  [&](const Reply& r) { reply = std::get<FlowStatsReply>(r); });
  f.engine.run();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->entries.size(), 2u);
  const auto& origin100 = reply->entries[0].origin == 100 ? reply->entries[0]
                                                          : reply->entries[1];
  EXPECT_EQ(origin100.origin, 100u);
  EXPECT_EQ(origin100.packets, 2u);
  EXPECT_EQ(origin100.bytes, 120u);
  EXPECT_EQ(origin100.installed_copies, 2u);
}

TEST(SwitchAgent, StatsFilterByOrigin) {
  Fixture f;
  f.sw.table().install(rule_of(1, 10, Action::drop(), 100), Band::kCache, 0.0);
  f.sw.table().install(rule_of(2, 5, Action::drop(), 200), Band::kCache, 0.0);
  std::optional<FlowStatsReply> reply;
  f.agent.deliver(FlowStatsRequest{1, 200},
                  [&](const Reply& r) { reply = std::get<FlowStatsReply>(r); });
  f.engine.run();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->entries.size(), 1u);
  EXPECT_EQ(reply->entries[0].origin, 200u);
}

TEST(SwitchAgent, StatsExcludeRedirectPlumbing) {
  Fixture f;
  // A shadow (encap) rule and a partition rule must not appear.
  f.sw.table().install(rule_of(1, 10, Action::encap(7), 100), Band::kCache, 0.0);
  f.sw.table().install(rule_of(2, 0, Action::encap(7)), Band::kPartition, 0.0);
  f.sw.table().lookup(BitVec{}, 1.0, 10);
  const auto rows = collect_stats(f.sw);
  EXPECT_TRUE(rows.empty());
}

TEST(SwitchAgent, RetiredCountersSurviveEviction) {
  Engine engine;
  Switch sw(0, /*cache=*/1);  // single-entry cache: every install evicts
  Ternary tcp;
  match_exact(tcp, Field::kIpProto, 6);
  Rule hot = rule_of(1, 10, Action::forward(0), 100);
  hot.match = tcp;
  sw.table().install(hot, Band::kCache, 0.0);
  sw.table().lookup(PacketBuilder().ip_proto(6).build(), 0.5, 30);
  // Evict by installing a different rule.
  sw.table().install(rule_of(2, 5, Action::drop(), 200), Band::kCache, 1.0);
  const auto rows = collect_stats(sw);
  bool found = false;
  for (const auto& row : rows) {
    if (row.origin == 100) {
      found = true;
      EXPECT_EQ(row.packets, 1u);
      EXPECT_EQ(row.bytes, 30u);
      EXPECT_EQ(row.installed_copies, 0u);  // retired, no live copy
    }
  }
  EXPECT_TRUE(found);
}

TEST(MergeStats, FoldsAcrossSwitches) {
  std::vector<std::vector<FlowStatsEntry>> per_switch(2);
  per_switch[0].push_back({100, 5, 500, 1});
  per_switch[0].push_back({200, 1, 100, 1});
  per_switch[1].push_back({100, 7, 700, 2});
  const auto merged = merge_stats(per_switch);
  ASSERT_EQ(merged.size(), 2u);
  const auto& origin100 = merged[0].origin == 100 ? merged[0] : merged[1];
  EXPECT_EQ(origin100.packets, 12u);
  EXPECT_EQ(origin100.bytes, 1200u);
  EXPECT_EQ(origin100.installed_copies, 3u);
}

TEST(ControlChannel, RoundTripPaysLatencyBothWays) {
  Fixture f;
  ControlChannel channel(f.engine, f.agent, /*one_way=*/0.005);
  double replied_at = -1.0;
  FlowMod mod;
  mod.rule = rule_of(1, 10);
  channel.send(mod, [&](const Reply&) { replied_at = f.engine.now(); });
  f.engine.run();
  EXPECT_GE(replied_at, 0.010);  // two one-way trips plus apply cost
  EXPECT_EQ(channel.sent(), 1u);
  EXPECT_EQ(f.sw.table().size(Band::kCache), 1u);
}

TEST(ControlChannel, PreservesSendOrder) {
  Fixture f;
  ControlChannel channel(f.engine, f.agent, 0.001);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    FlowMod mod;
    mod.rule = rule_of(static_cast<RuleId>(i + 1), 10);
    channel.send(mod, [&order, i](const Reply&) { order.push_back(i); });
  }
  f.engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(f.sw.table().size(Band::kCache), 5u);
}

// --- Reliable-delivery state machine -------------------------------------
//
// ScriptedFaults drives the channel's ChannelFaults hook from a fixed script:
// one entry per transmission in draw order (initial sends, retransmissions,
// and acks all draw, in engine-event order). An empty entry loses that copy,
// extra latencies jitter it, and entries past the end deliver cleanly.

struct ScriptedFaults : ChannelFaults {
  std::vector<std::vector<double>> script;
  std::size_t cursor = 0;
  explicit ScriptedFaults(std::vector<std::vector<double>> s)
      : script(std::move(s)) {}
  void transmit(std::vector<double>& deliveries) override {
    if (cursor >= script.size()) return;  // clean from here on
    deliveries = script[cursor++];
  }
};

const std::vector<double> kLose{};
const std::vector<double> kClean{0.0};

ControlChannel::Reliability reliable(double rto_initial = 4e-3,
                                     double rto_max = 0.1) {
  ControlChannel::Reliability r;
  r.enabled = true;
  r.rto_initial = rto_initial;
  r.rto_backoff = 2.0;
  r.rto_max = rto_max;
  return r;
}

TEST(ControlChannel, ReliableCleanWireNoRetransmits) {
  Fixture f;
  ControlChannel channel(f.engine, f.agent, 0.001, reliable());
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    FlowMod mod;
    mod.rule = rule_of(static_cast<RuleId>(i + 1), 10);
    channel.send(mod, [&order, i](const Reply&) { order.push_back(i); });
  }
  f.engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(channel.sent(), 3u);
  EXPECT_EQ(channel.transmissions(), 3u);
  EXPECT_EQ(channel.retransmits(), 0u);
  EXPECT_EQ(channel.acks(), 3u);
  EXPECT_EQ(channel.dup_requests(), 0u);
  EXPECT_EQ(f.sw.table().size(Band::kCache), 3u);
}

TEST(ControlChannel, RequestLossIsRetransmitted) {
  Fixture f;
  ScriptedFaults faults({kLose});  // first copy vanishes; everything after is clean
  ControlChannel channel(f.engine, f.agent, 0.001, reliable(), &faults);
  int replies = 0;
  FlowMod mod;
  mod.rule = rule_of(1, 10);
  channel.send(mod, [&](const Reply&) { ++replies; });
  f.engine.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(channel.retransmits(), 1u);
  EXPECT_EQ(channel.transmissions(), 2u);
  EXPECT_EQ(channel.acks(), 1u);
  EXPECT_EQ(channel.dup_requests(), 0u);
  EXPECT_EQ(f.agent.applied(), 1u);
  EXPECT_EQ(f.sw.table().size(Band::kCache), 1u);
}

TEST(ControlChannel, AckLossReacksFromReplyCacheWithoutReapplying) {
  Fixture f;
  // Request goes through, its ack is lost; the retransmitted request is a
  // duplicate the receiver must suppress and re-ack from the reply cache.
  ScriptedFaults faults({kClean, kLose});
  ControlChannel channel(f.engine, f.agent, 0.001, reliable(), &faults);
  int replies = 0;
  FlowMod mod;
  mod.rule = rule_of(1, 10);
  channel.send(mod, [&](const Reply&) { ++replies; });
  f.engine.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(channel.retransmits(), 1u);
  EXPECT_EQ(channel.dup_requests(), 1u);
  EXPECT_EQ(channel.acks(), 1u);
  EXPECT_EQ(f.agent.applied(), 1u);  // applied once, not twice
}

TEST(ControlChannel, BackoffDelaySaturatesAtRtoMax) {
  Fixture f;
  // Lose the initial send and three retransmissions. With rto_initial = 1 ms,
  // backoff 2x, cap 2 ms and zero latency, retransmits fire at 1, 3, 5, 7 ms;
  // uncapped they would fire at 1, 3, 7, 15 ms.
  ScriptedFaults faults({kLose, kLose, kLose, kLose});
  ControlChannel channel(f.engine, f.agent, 0.0, reliable(1e-3, 2e-3), &faults);
  double replied_at = -1.0;
  FlowMod mod;
  mod.rule = rule_of(1, 10);
  channel.send(mod, [&](const Reply&) { replied_at = f.engine.now(); });
  f.engine.run();
  EXPECT_EQ(channel.retransmits(), 4u);
  EXPECT_GE(replied_at, 7e-3);
  EXPECT_LT(replied_at, 9e-3);  // well before the uncapped 15 ms schedule
  EXPECT_EQ(f.agent.applied(), 1u);
}

TEST(ControlChannel, ReorderedArrivalsApplyInSendOrder) {
  Fixture f;
  // Jitter inverts the wire order: seq 0 lands last, seq 2 lands first. The
  // receiver must buffer and apply 0, 1, 2 regardless.
  ScriptedFaults faults({{6e-3}, {3e-3}, {0.0}});
  ControlChannel channel(f.engine, f.agent, 0.001, reliable(0.05), &faults);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    FlowMod mod;
    mod.rule = rule_of(static_cast<RuleId>(i + 1), 10);
    channel.send(mod, [&order, i](const Reply&) { order.push_back(i); });
  }
  f.engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(channel.reordered(), 2u);
  EXPECT_EQ(channel.retransmits(), 0u);
  EXPECT_EQ(channel.dup_requests(), 0u);
  EXPECT_EQ(f.sw.table().size(Band::kCache), 3u);
}

TEST(ControlChannel, DeleteOvertakingAddStillDeletesLast) {
  Fixture f;
  // The delete is sent after the add but arrives first. Out-of-order apply
  // would fail the delete then land the add, leaving a ghost entry; in-order
  // apply ends with an empty table.
  ScriptedFaults faults({{5e-3}, {0.0}});
  ControlChannel channel(f.engine, f.agent, 0.001, reliable(0.05), &faults);
  FlowMod add;
  add.rule = rule_of(1, 10);
  channel.send(add);
  FlowMod del;
  del.op = FlowModOp::kDelete;
  del.rule.id = 1;
  channel.send(del);
  f.engine.run();
  EXPECT_EQ(channel.reordered(), 1u);
  EXPECT_EQ(f.sw.table().size(Band::kCache), 0u);
}

TEST(ControlChannel, DuplicatedRequestAppliesOnce) {
  Fixture f;
  ScriptedFaults faults({{0.0, 0.0}});  // the wire clones the first request
  ControlChannel channel(f.engine, f.agent, 0.001, reliable(), &faults);
  int replies = 0;
  FlowMod mod;
  mod.rule = rule_of(1, 10);
  channel.send(mod, [&](const Reply&) { ++replies; });
  f.engine.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(channel.dup_requests(), 1u);
  EXPECT_EQ(f.agent.applied(), 1u);
  EXPECT_EQ(channel.retransmits(), 0u);
}

TEST(ControlChannel, DuplicatedAckFiresReplyOnce) {
  Fixture f;
  ScriptedFaults faults({kClean, {0.0, 0.0}});  // the ack is the cloned copy
  ControlChannel channel(f.engine, f.agent, 0.001, reliable(), &faults);
  int replies = 0;
  FlowMod mod;
  mod.rule = rule_of(1, 10);
  channel.send(mod, [&](const Reply&) { ++replies; });
  f.engine.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(channel.acks(), 1u);
  EXPECT_EQ(channel.dup_acks(), 1u);
}

TEST(ControlChannel, PacketOutAcksInReliableMode) {
  Fixture f;
  // PacketOut has no natural reply; the agent must synthesize an ack or the
  // retransmission timer would spin forever (and run() would never drain).
  int outs = 0;
  f.agent.set_packet_out_handler([&](const PacketOut&) { ++outs; });
  ControlChannel channel(f.engine, f.agent, 0.001, reliable());
  PacketOut po;
  po.xid = 5;
  po.header = PacketBuilder().ip_proto(6).build();
  po.action = Action::forward(2);
  channel.send(po);
  f.engine.run();
  EXPECT_EQ(outs, 1);
  EXPECT_EQ(channel.acks(), 1u);
  EXPECT_EQ(channel.retransmits(), 0u);
}

TEST(ControlChannel, UnreliableWireDropsSilently) {
  Fixture f;
  // Faults without reliability: the loss is permanent, nothing retransmits.
  ScriptedFaults faults({kLose, kClean});
  ControlChannel channel(f.engine, f.agent, 0.001,
                         ControlChannel::Reliability{}, &faults);
  FlowMod a;
  a.rule = rule_of(1, 10);
  FlowMod b;
  b.rule = rule_of(2, 10);
  channel.send(a);
  channel.send(b);
  f.engine.run();
  EXPECT_EQ(channel.sent(), 2u);
  EXPECT_EQ(channel.retransmits(), 0u);
  EXPECT_EQ(f.sw.table().size(Band::kCache), 1u);
  EXPECT_EQ(f.sw.table().find(2, Band::kCache) != nullptr, true);
}

// ---------------------------------------------------------------------------
// HeartbeatMonitor: any-message liveness evidence and spurious-failover
// accounting.

struct HeartbeatFixture {
  Network net;
  SwitchId watched;
  HeartbeatFixture() { watched = net.add_switch(/*cache=*/10); }

  HeartbeatMonitor monitor(HeartbeatParams hp, FaultInjector* injector) {
    return HeartbeatMonitor(net, {watched}, hp, injector);
  }
};

// A plan that loses every heartbeat on the wire. Without other evidence the
// monitor must (wrongly) declare the live switch down — and count it as a
// spurious failover.
FaultPlan lose_all_beats() {
  FaultPlan plan;
  plan.seed = 9;
  plan.msg_loss = 1.0;
  return plan;
}

TEST(HeartbeatMonitor, TotalBeatLossDeclaresSpuriousFailover) {
  HeartbeatFixture f;
  FaultInjector injector(lose_all_beats());
  HeartbeatParams hp;
  hp.interval = 0.01;
  hp.miss_threshold = 3;
  hp.horizon = 0.1;
  auto monitor = f.monitor(hp, &injector);
  int failures = 0;
  monitor.on_failure([&](SwitchId, double) { ++failures; });
  monitor.start();
  f.net.engine().run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(monitor.failures_declared(), 1u);
  // The switch never actually failed: this was a detection false positive.
  EXPECT_EQ(monitor.spurious_failovers(), 1u);
}

TEST(HeartbeatMonitor, AnyMessageResetsTheMissCounter) {
  HeartbeatFixture f;
  FaultInjector injector(lose_all_beats());
  HeartbeatParams hp;
  hp.interval = 0.01;
  hp.miss_threshold = 3;
  hp.horizon = 0.1;
  auto monitor = f.monitor(hp, &injector);
  int failures = 0;
  monitor.on_failure([&](SwitchId, double) { ++failures; });
  monitor.start();
  // The switch keeps sending *other* control traffic (cache installs) even
  // though every dedicated beat is lost: note one message per tick interval.
  for (int i = 1; i <= 9; ++i) {
    f.net.engine().at(0.01 * i - 0.002, [&monitor, &f]() {
      monitor.note_message_from(f.watched);
    });
  }
  f.net.engine().run();
  // Liveness evidence arrived before every tick: no failover, no false
  // positive, despite zero beats heard.
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(monitor.failures_declared(), 0u);
  EXPECT_EQ(monitor.spurious_failovers(), 0u);
  EXPECT_EQ(monitor.beats_heard(), 0u);
}

TEST(HeartbeatMonitor, MessageEvidenceTriggersRecoveryOfDeclaredDownSwitch) {
  HeartbeatFixture f;
  FaultInjector injector(lose_all_beats());
  HeartbeatParams hp;
  hp.interval = 0.01;
  hp.miss_threshold = 2;
  hp.horizon = 0.1;
  hp.horizon = 0.07;  // ends after the recovery tick, before re-declaration
  auto monitor = f.monitor(hp, &injector);
  int failures = 0, recoveries = 0;
  monitor.on_failure([&](SwitchId, double) { ++failures; });
  monitor.on_recovery([&](SwitchId, double) { ++recoveries; });
  monitor.start();
  // Silence through t=0.02 declares the switch down (spuriously); a control
  // message heard at t=0.055 must recover it at the next tick, exactly as a
  // reviving beat would.
  f.net.engine().at(0.055, [&monitor, &f]() {
    monitor.note_message_from(f.watched);
  });
  f.net.engine().run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(recoveries, 1);
  EXPECT_EQ(monitor.recoveries_declared(), 1u);
  EXPECT_EQ(monitor.spurious_failovers(), 1u);
}

TEST(HeartbeatMonitor, GenuineFailureIsNotCountedSpurious) {
  HeartbeatFixture f;
  HeartbeatParams hp;
  hp.interval = 0.01;
  hp.miss_threshold = 2;
  hp.horizon = 0.06;
  auto monitor = f.monitor(hp, /*injector=*/nullptr);
  monitor.start();
  f.net.engine().at(0.015, [&f]() { f.net.set_failed(f.watched, true); });
  f.net.engine().run();
  EXPECT_EQ(monitor.failures_declared(), 1u);
  EXPECT_EQ(monitor.spurious_failovers(), 0u);
}

// End-to-end: a DIFANE run under heavy beat loss must not spuriously fail
// over authorities that are actively pushing installs (the install traffic
// is the liveness evidence), and the scenario surfaces the counter.
TEST(HeartbeatMonitor, ScenarioCountsSpuriousFailovers) {
  RuleGenParams rp;
  rp.num_rules = 150;
  rp.seed = 3;
  const auto policy = generate_policy(rp);
  TrafficParams tp;
  tp.seed = 31;
  tp.flow_pool = 200;
  tp.arrival_rate = 4000.0;
  tp.duration = 0.2;
  TrafficGenerator gen(policy, tp);
  const auto flows = gen.generate();

  ScenarioParams params;
  params.mode = Mode::kDifane;
  params.edge_switches = 4;
  params.core_switches = 2;
  params.authority_count = 1;
  params.edge_cache_capacity = 300;
  params.partitioner.capacity = 200;
  params.timings.heartbeat_interval = 0.01;
  params.timings.heartbeat_miss = 2;
  params.timings.heartbeat_horizon = 0.25;
  params.faults.seed = 11;
  params.faults.msg_loss = 0.9;  // most beats lost, installs mostly retried
  params.reliable_ctrl = true;

  Scenario scenario(policy, params);
  const auto& stats = scenario.run(flows);
  // The snapshot must expose the counter whatever its value; and with the
  // any-message rule plus steady install traffic, false positives must not
  // exceed the failovers actually declared.
  const auto report = stats.snapshot("hb");
  ASSERT_TRUE(report.metrics.count("spurious_failovers"));
  EXPECT_LE(stats.spurious_failovers, stats.failovers_detected);
  EXPECT_EQ(stats.tracer.in_flight(), 0);
}

}  // namespace
}  // namespace difane
