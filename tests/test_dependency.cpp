#include <gtest/gtest.h>

#include "flowspace/dependency.hpp"
#include "flowspace/header.hpp"
#include "util/rng.hpp"

namespace difane {
namespace {

Rule rule_with(RuleId id, Priority priority, Ternary match) {
  Rule r;
  r.id = id;
  r.priority = priority;
  r.match = match;
  r.action = Action::drop();
  return r;
}

// Nested dst-prefix chain: /32 above /24 above /16 above default.
RuleTable chain_policy() {
  RuleTable t;
  Ternary m32, m24, m16;
  match_prefix(m32, Field::kIpDst, make_ipv4(10, 1, 1, 1), 32);
  match_prefix(m24, Field::kIpDst, make_ipv4(10, 1, 1, 0), 24);
  match_prefix(m16, Field::kIpDst, make_ipv4(10, 1, 0, 0), 16);
  t.add(rule_with(0, 40, m32));
  t.add(rule_with(1, 30, m24));
  t.add(rule_with(2, 20, m16));
  t.add(rule_with(3, 10, Ternary::wildcard()));
  return t;
}

TEST(Dependency, ChainHasChainEdges) {
  const auto t = chain_policy();
  const auto g = build_dependency_graph(t);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_TRUE(g.parents[0].empty());
  EXPECT_EQ(g.parents[1], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(g.parents[2], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(g.parents[3], (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.max_chain_depth(), 3u);
  EXPECT_EQ(g.chain_depth(3), 3u);
}

TEST(Dependency, IndirectShadowingIsNotAnEdge) {
  // The /16 fully contains the /24 which fully contains the /32: the default
  // rule's direct parent is only the /16... but wait, the /16 does not cover
  // the whole default. The default depends only on the /16 because after
  // subtracting the /16, the /24 and /32 are gone from the remainder.
  const auto t = chain_policy();
  const auto g = build_dependency_graph(t);
  // Rule 3 (default) must not list rules 0 or 1 as parents: rule 2 already
  // claims their whole overlap with the default.
  EXPECT_EQ(g.parents[3], (std::vector<std::uint32_t>{2}));
}

TEST(Dependency, SiblingsBothParentsOfDefault) {
  RuleTable t;
  Ternary tcp, udp;
  match_exact(tcp, Field::kIpProto, 6);
  match_exact(udp, Field::kIpProto, 17);
  t.add(rule_with(0, 20, tcp));
  t.add(rule_with(1, 20, udp));
  t.add(rule_with(2, 10, Ternary::wildcard()));
  const auto g = build_dependency_graph(t);
  EXPECT_EQ(g.parents[2], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(g.parents[0].empty());
  EXPECT_TRUE(g.parents[1].empty());  // disjoint from tcp
  EXPECT_EQ(g.children[0], (std::vector<std::uint32_t>{2}));
}

TEST(Dependency, AncestorClosureIsTransitive) {
  const auto t = chain_policy();
  const auto g = build_dependency_graph(t);
  EXPECT_EQ(ancestor_closure(g, 3), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(ancestor_closure(g, 1), (std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(ancestor_closure(g, 0).empty());
}

TEST(Dependency, DisjointRulesHaveNoEdges) {
  RuleTable t;
  Ternary a, b;
  match_exact(a, Field::kTpDst, 80);
  match_exact(b, Field::kTpDst, 22);
  t.add(rule_with(0, 20, a));
  t.add(rule_with(1, 10, b));
  const auto g = build_dependency_graph(t);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Dependency, ConservativeFallbackOverapproximates) {
  // Force the explosion guard with a tiny piece budget; edges must become a
  // superset of the exact ones, flagged conservative.
  RuleTable t;
  for (RuleId i = 0; i < 12; ++i) {
    Ternary m;
    // Two care bits per rule on disjoint pairs: the residual of the default
    // rule doubles with every subtraction, tripping a small piece budget.
    m.set_exact(2 * static_cast<std::size_t>(i), 1, 1);
    m.set_exact(2 * static_cast<std::size_t>(i) + 1, 1, 1);
    t.add(rule_with(i, static_cast<Priority>(100 - i), m));
  }
  t.add(rule_with(99, 1, Ternary::wildcard()));
  const auto exact = build_dependency_graph(t, 1 << 14);
  const auto conservative = build_dependency_graph(t, 2);
  const auto idx = t.size() - 1;
  EXPECT_TRUE(conservative.conservative[idx]);
  // Superset check.
  for (const auto p : exact.parents[idx]) {
    EXPECT_NE(std::find(conservative.parents[idx].begin(),
                        conservative.parents[idx].end(), p),
              conservative.parents[idx].end());
  }
}

// Property: i depends on j  <=>  some packet matching both i and j is not
// matched by any rule between them. Verified by sampling on random policies
// confined to one byte so overlaps are frequent.
class DependencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DependencyProperty, EdgesMatchSampledSemantics) {
  Rng rng(GetParam());
  RuleTable t;
  for (RuleId i = 0; i < 10; ++i) {
    Ternary m;
    const auto bits = rng.uniform(0, 6);
    for (std::uint64_t b = 0; b < bits; ++b) {
      m.set_exact(rng.uniform(0, 7), 1, rng.uniform(0, 1));
    }
    t.add(rule_with(i, static_cast<Priority>(100 - i), m));
  }
  const auto g = build_dependency_graph(t, 1 << 16);
  for (std::uint32_t child = 0; child < t.size(); ++child) {
    for (std::uint32_t parent = 0; parent < child; ++parent) {
      const bool edge = std::find(g.parents[child].begin(), g.parents[child].end(),
                                  parent) != g.parents[child].end();
      // Sample points in child ∩ parent; the edge exists iff some such point
      // is unclaimed by every rule strictly between parent and child.
      const auto overlap = intersect(t.at(child).match, t.at(parent).match);
      if (!overlap.has_value()) {
        EXPECT_FALSE(edge);
        continue;
      }
      // All patterns live in bits 0..7, so enumerating that byte (with the
      // other bits zero) is an exhaustive semantic check.
      bool found_leak = false;
      for (std::uint64_t v = 0; v < 256 && !found_leak; ++v) {
        BitVec p;
        p.set_bits(0, 8, v);
        if (!t.at(child).match.matches(p) || !t.at(parent).match.matches(p)) continue;
        bool claimed = false;
        for (std::uint32_t mid = parent + 1; mid < child; ++mid) {
          if (t.at(mid).match.matches(p)) {
            claimed = true;
            break;
          }
        }
        if (!claimed) found_leak = true;
      }
      EXPECT_EQ(edge, found_leak) << "edge " << child << "<-" << parent;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DependencyProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace difane
