#include <gtest/gtest.h>

#include "switchsim/flow_table.hpp"
#include "flowspace/header.hpp"

namespace difane {
namespace {

Rule rule_of(RuleId id, Priority priority, Action action = Action::drop()) {
  Rule r;
  r.id = id;
  r.priority = priority;
  r.action = action;
  return r;
}

Rule proto_rule(RuleId id, Priority priority, std::uint8_t proto, Action action) {
  Rule r = rule_of(id, priority, action);
  match_exact(r.match, Field::kIpProto, proto);
  return r;
}

TEST(FlowTable, BandOrderBeatsNumericPriority) {
  FlowTable ft(10);
  // Low-priority cache rule must still beat a high-priority partition rule.
  ft.install(rule_of(1, 1, Action::forward(1)), Band::kCache, 0.0);
  ft.install(rule_of(2, 1000, Action::encap(9)), Band::kPartition, 0.0);
  ft.install(rule_of(3, 500, Action::forward(3)), Band::kAuthority, 0.0);
  const FlowEntry* e = ft.lookup(BitVec{}, 1.0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rule.id, 1u);
  EXPECT_EQ(e->band, Band::kCache);
  ft.remove(1, Band::kCache);
  e = ft.lookup(BitVec{}, 1.0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->band, Band::kAuthority);
}

TEST(FlowTable, PriorityWithinBand) {
  FlowTable ft(10);
  ft.install(proto_rule(1, 10, 6, Action::forward(1)), Band::kCache, 0.0);
  ft.install(rule_of(2, 5, Action::drop()), Band::kCache, 0.0);
  const FlowEntry* e = ft.lookup(PacketBuilder().ip_proto(6).build(), 0.5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rule.id, 1u);
  e = ft.lookup(PacketBuilder().ip_proto(17).build(), 0.5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rule.id, 2u);
}

TEST(FlowTable, IdleTimeoutExpiresWithoutTraffic) {
  FlowTable ft(10);
  ft.install(rule_of(1, 1), Band::kCache, 0.0, /*idle=*/2.0);
  EXPECT_NE(ft.lookup(BitVec{}, 1.0), nullptr);   // refreshes last_hit to 1.0
  EXPECT_NE(ft.lookup(BitVec{}, 2.9), nullptr);   // 1.9s idle, still alive
  EXPECT_EQ(ft.lookup(BitVec{}, 5.0), nullptr);   // 2.1s idle: gone
  EXPECT_EQ(ft.size(Band::kCache), 0u);
  EXPECT_EQ(ft.stats().expirations, 1u);
}

TEST(FlowTable, HardTimeoutExpiresDespiteTraffic) {
  FlowTable ft(10);
  ft.install(rule_of(1, 1), Band::kCache, 0.0, /*idle=*/0.0, /*hard=*/1.0);
  EXPECT_NE(ft.lookup(BitVec{}, 0.5), nullptr);
  EXPECT_NE(ft.lookup(BitVec{}, 0.99), nullptr);
  EXPECT_EQ(ft.lookup(BitVec{}, 1.0), nullptr);
}

TEST(FlowTable, ProactiveBandsNeverExpire) {
  FlowTable ft(10);
  ft.install(rule_of(1, 1), Band::kAuthority, 0.0);
  ft.install(rule_of(2, 1), Band::kPartition, 0.0);
  EXPECT_EQ(ft.expire(1e9), 0u);
  EXPECT_EQ(ft.total_size(), 2u);
}

TEST(FlowTable, LruEvictionPicksColdestEntry) {
  FlowTable ft(2);
  ft.install(proto_rule(1, 10, 6, Action::drop()), Band::kCache, 0.0);
  ft.install(proto_rule(2, 10, 17, Action::drop()), Band::kCache, 0.0);
  // Touch rule 1 so rule 2 is the LRU victim.
  ft.lookup(PacketBuilder().ip_proto(6).build(), 1.0);
  ft.install(proto_rule(3, 10, 1, Action::drop()), Band::kCache, 2.0);
  EXPECT_EQ(ft.size(Band::kCache), 2u);
  EXPECT_NE(ft.find(1, Band::kCache), nullptr);
  EXPECT_EQ(ft.find(2, Band::kCache), nullptr);
  EXPECT_NE(ft.find(3, Band::kCache), nullptr);
  EXPECT_EQ(ft.stats().evictions, 1u);
}

TEST(FlowTable, ZeroCacheCapacityRejectsInstall) {
  FlowTable ft(0);
  EXPECT_FALSE(ft.install(rule_of(1, 1), Band::kCache, 0.0));
  EXPECT_EQ(ft.stats().install_rejected, 1u);
}

TEST(FlowTable, HwCapacityBoundsProactiveBands) {
  FlowTable ft(10, /*hw_capacity=*/2);
  EXPECT_TRUE(ft.install(rule_of(1, 1), Band::kAuthority, 0.0));
  EXPECT_TRUE(ft.install(rule_of(2, 1), Band::kPartition, 0.0));
  EXPECT_FALSE(ft.install(rule_of(3, 1), Band::kAuthority, 0.0));
  // Cache band has its own budget.
  EXPECT_TRUE(ft.install(rule_of(4, 1), Band::kCache, 0.0));
}

TEST(FlowTable, ReinstallSameIdRefreshesInPlace) {
  FlowTable ft(2);
  ft.install(rule_of(1, 1), Band::kCache, 0.0, 1.0);
  ft.install(rule_of(2, 1), Band::kCache, 0.0, 1.0);
  // Reinstall id 1 at t=0.9: no eviction, timeouts restart.
  EXPECT_TRUE(ft.install(rule_of(1, 1), Band::kCache, 0.9, 1.0));
  EXPECT_EQ(ft.size(Band::kCache), 2u);
  EXPECT_EQ(ft.stats().evictions, 0u);
  EXPECT_NE(ft.lookup(BitVec{}, 1.5), nullptr);  // id 1 alive (idle since 0.9)
}

TEST(FlowTable, CountersMonotone) {
  FlowTable ft(4);
  ft.install(rule_of(1, 1), Band::kCache, 0.0);
  ft.lookup(BitVec{}, 0.1, 100);
  ft.lookup(BitVec{}, 0.2, 200);
  const FlowEntry* e = ft.find(1, Band::kCache);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packets, 2u);
  EXPECT_EQ(e->bytes, 300u);
  EXPECT_EQ(ft.stats().hits_per_band[0], 2u);
}

TEST(FlowTable, MissCountedWhenNothingMatches) {
  FlowTable ft(4);
  ft.install(proto_rule(1, 1, 6, Action::drop()), Band::kCache, 0.0);
  EXPECT_EQ(ft.lookup(PacketBuilder().ip_proto(17).build(), 0.1), nullptr);
  EXPECT_EQ(ft.stats().misses, 1u);
}

TEST(FlowTable, PeekDoesNotMutate) {
  FlowTable ft(4);
  ft.install(rule_of(1, 1), Band::kCache, 0.0, 1.0);
  EXPECT_NE(ft.peek(BitVec{}, 0.5), nullptr);
  EXPECT_EQ(ft.find(1, Band::kCache)->packets, 0u);
  // peek respects (but does not apply) expiry.
  EXPECT_EQ(ft.peek(BitVec{}, 5.0), nullptr);
  EXPECT_EQ(ft.size(Band::kCache), 1u);
}

TEST(FlowTable, EvictionCascadesToGuardedDependents) {
  // A protected pair: protector P and child C installed as one group (C
  // lists P as a guard). Evicting P must also remove C — otherwise C would
  // silently steal P's packets (the wildcard-caching safety rule).
  FlowTable ft(3);
  Rule protector = proto_rule(1, 100, 6, Action::drop());
  Rule child = rule_of(2, 10, Action::forward(0));
  ft.install(protector, Band::kCache, 0.0);
  ft.install(child, Band::kCache, 0.0, 0.0, 0.0, /*guards=*/{1});
  // Make the protector the LRU victim, then overflow the cache.
  ft.lookup(BitVec{}, 1.0);  // hits child (udp-side traffic)
  ft.install(proto_rule(3, 50, 17, Action::drop()), Band::kCache, 2.0);
  ft.install(proto_rule(4, 50, 1, Action::drop()), Band::kCache, 3.0);  // overflow
  // Victim was the protector (never hit); the guarded child must be gone too.
  EXPECT_EQ(ft.find(1, Band::kCache), nullptr);
  EXPECT_EQ(ft.find(2, Band::kCache), nullptr);
  EXPECT_GE(ft.stats().cascade_evictions, 1u);
}

TEST(FlowTable, GuardsStayWarmWhileDependentIsHot) {
  // Hits on a guarded entry refresh its guards: a protector that never wins
  // on its own must not idle out (and cascade the hot entry away) while the
  // entry it protects keeps seeing traffic.
  FlowTable ft(10);
  Rule protector = proto_rule(1, 100, 6, Action::drop());
  Rule child = rule_of(2, 10, Action::forward(0));
  ft.install(protector, Band::kCache, 0.0, /*idle=*/1.0);
  ft.install(child, Band::kCache, 0.0, /*idle=*/1.0, 0.0, /*guards=*/{1});
  // Only the child is hit, but the whole group stays warm.
  for (double t = 0.5; t < 3.0; t += 0.5) {
    ft.lookup(PacketBuilder().ip_proto(17).build(), t);  // udp: hits child only
  }
  EXPECT_NE(ft.find(1, Band::kCache), nullptr);
  EXPECT_NE(ft.find(2, Band::kCache), nullptr);
  // Once traffic stops, the group expires together; neither survives alone.
  ft.expire(10.0);
  EXPECT_EQ(ft.find(1, Band::kCache), nullptr);
  EXPECT_EQ(ft.find(2, Band::kCache), nullptr);
}

TEST(FlowTable, ExpiryCascadesToGuardedDependents) {
  // A guarded entry with a *longer* idle timeout than its protector: when
  // the protector finally expires, the still-alive dependent must go too.
  FlowTable ft(10);
  Rule protector = proto_rule(1, 100, 6, Action::drop());
  Rule child = rule_of(2, 10, Action::forward(0));
  ft.install(protector, Band::kCache, 0.0, /*idle=*/1.0);
  ft.install(child, Band::kCache, 0.0, /*idle=*/100.0, 0.0, /*guards=*/{1});
  ft.expire(5.0);  // protector idle 5s > 1s; child would live on its own
  EXPECT_EQ(ft.find(1, Band::kCache), nullptr);
  EXPECT_EQ(ft.find(2, Band::kCache), nullptr);  // cascaded away with it
}

TEST(FlowTable, CascadeIsTransitive) {
  FlowTable ft(10);
  ft.install(proto_rule(1, 100, 6, Action::drop()), Band::kCache, 0.0);
  ft.install(proto_rule(2, 50, 17, Action::drop()), Band::kCache, 0.0, 0.0, 0.0, {1});
  ft.install(rule_of(3, 10, Action::forward(0)), Band::kCache, 0.0, 0.0, 0.0, {2});
  ft.remove(1, Band::kCache);
  EXPECT_EQ(ft.find(2, Band::kCache), nullptr);
  EXPECT_EQ(ft.find(3, Band::kCache), nullptr);
  EXPECT_EQ(ft.stats().cascade_evictions, 2u);
}

TEST(FlowTable, CascadeSparesUnguardedEntries) {
  FlowTable ft(10);
  ft.install(proto_rule(1, 100, 6, Action::drop()), Band::kCache, 0.0);   // victim
  ft.install(proto_rule(2, 50, 17, Action::drop()), Band::kCache, 0.0);   // unrelated
  ft.install(rule_of(3, 10, Action::forward(1)), Band::kCache, 0.0, 0.0, 0.0, {2});
  ft.remove(1, Band::kCache);
  EXPECT_NE(ft.find(2, Band::kCache), nullptr);
  EXPECT_NE(ft.find(3, Band::kCache), nullptr);
  EXPECT_EQ(ft.stats().cascade_evictions, 0u);
}

// install_bulk promises bit-identical observable state to a sequence of
// install() calls: same band order, same stats counters, same refresh and
// capacity behaviour. Drive both paths with interleaved priorities (worst
// case for per-insert ordering), duplicate-id refreshes, a second batch on
// top of an existing band, and a capacity overflow.
TEST(FlowTable, BulkInstallMatchesSequential) {
  std::vector<Rule> batch1, batch2;
  for (RuleId id = 0; id < 200; ++id) {
    // Interleave priorities so sequential inserts land all over the band.
    batch1.push_back(proto_rule(id, (id * 37) % 50, static_cast<std::uint8_t>(id % 7),
                                Action::forward(static_cast<std::uint32_t>(id % 4))));
  }
  for (RuleId id = 150; id < 350; ++id) {  // ids 150..199 refresh in place
    // Refreshes keep their priority (like a partition repoint: only the
    // action changes) — a priority change would de-sort the band and is
    // rejected by install_bulk's contract.
    const Priority prio = id < 200 ? (id * 37) % 50 : (id * 13) % 50;
    batch2.push_back(proto_rule(id, prio, static_cast<std::uint8_t>(id % 5),
                                Action::drop()));
  }

  FlowTable seq(10, 300), bulk(10, 300);  // hw capacity forces rejections
  for (const Rule& r : batch1) seq.install(r, Band::kAuthority, 1.0);
  for (const Rule& r : batch2) seq.install(r, Band::kAuthority, 2.0);

  std::vector<const Rule*> ptrs;
  for (const Rule& r : batch1) ptrs.push_back(&r);
  EXPECT_EQ(bulk.install_bulk(ptrs, Band::kAuthority, 1.0), batch1.size());
  ptrs.clear();
  for (const Rule& r : batch2) ptrs.push_back(&r);
  // 50 refreshes + 100 new fit under the 300-entry cap; 100 are rejected.
  EXPECT_EQ(bulk.install_bulk(ptrs, Band::kAuthority, 2.0), 150u);

  EXPECT_EQ(seq.stats().installs, bulk.stats().installs);
  EXPECT_EQ(seq.stats().install_rejected, bulk.stats().install_rejected);
  ASSERT_EQ(seq.size(Band::kAuthority), bulk.size(Band::kAuthority));
  const auto sv = seq.entries(Band::kAuthority);
  const auto bv = bulk.entries(Band::kAuthority);
  for (std::size_t i = 0; i < sv.size(); ++i) {
    EXPECT_EQ(sv[i].rule.id, bv[i].rule.id) << "order diverges at " << i;
    EXPECT_EQ(sv[i].rule.priority, bv[i].rule.priority);
    EXPECT_EQ(sv[i].install_time, bv[i].install_time);
    EXPECT_TRUE(sv[i].rule.action == bv[i].rule.action) << "action at " << i;
  }
  for (std::uint8_t proto = 0; proto < 8; ++proto) {
    const BitVec pkt = PacketBuilder().ip_proto(proto).build();
    const FlowEntry* se = seq.lookup(pkt, 3.0);
    const FlowEntry* be = bulk.lookup(pkt, 3.0);
    ASSERT_EQ(se == nullptr, be == nullptr);
    if (se != nullptr) {
      EXPECT_EQ(se->rule.id, be->rule.id);
    }
  }
}

TEST(FlowTable, BulkInstallRejectsCacheBand) {
  FlowTable ft(10);
  const Rule r = rule_of(1, 1);
  const std::vector<const Rule*> ptrs{&r};
  EXPECT_THROW(ft.install_bulk(ptrs, Band::kCache, 0.0), contract_violation);
}

TEST(FlowTable, ClearBand) {
  FlowTable ft(4);
  ft.install(rule_of(1, 1), Band::kPartition, 0.0);
  ft.install(rule_of(2, 1), Band::kCache, 0.0);
  ft.clear_band(Band::kPartition);
  EXPECT_EQ(ft.size(Band::kPartition), 0u);
  EXPECT_EQ(ft.size(Band::kCache), 1u);
}

}  // namespace
}  // namespace difane
