#include <gtest/gtest.h>

#include "flowspace/header.hpp"
#include "util/rng.hpp"

namespace difane {
namespace {

TEST(Header, LayoutIsContiguousAndFits) {
  const auto& fields = all_fields();
  ASSERT_EQ(fields.size(), kNumFields);
  std::size_t expected_offset = 0;
  for (const auto& spec : fields) {
    EXPECT_EQ(spec.offset, expected_offset);
    expected_offset += spec.width;
  }
  EXPECT_EQ(header_bits_used(), expected_offset);
  EXPECT_LE(header_bits_used(), kHeaderBits);
  EXPECT_EQ(header_bits_used(), 253u);  // the OpenFlow 1.0 12-tuple
}

TEST(Header, PacketBuilderRoundTrip) {
  const BitVec pkt = PacketBuilder()
                         .ip_src(0x0a000001)
                         .ip_dst(0xc0a80102)
                         .ip_proto(6)
                         .tp_src(12345)
                         .tp_dst(80)
                         .in_port(3)
                         .build();
  EXPECT_EQ(get_field(pkt, Field::kIpSrc), 0x0a000001u);
  EXPECT_EQ(get_field(pkt, Field::kIpDst), 0xc0a80102u);
  EXPECT_EQ(get_field(pkt, Field::kIpProto), 6u);
  EXPECT_EQ(get_field(pkt, Field::kTpSrc), 12345u);
  EXPECT_EQ(get_field(pkt, Field::kTpDst), 80u);
  EXPECT_EQ(get_field(pkt, Field::kInPort), 3u);
  EXPECT_EQ(get_field(pkt, Field::kEthSrc), 0u);  // untouched fields are zero
}

TEST(Header, MatchExactOnField) {
  Ternary t;
  match_exact(t, Field::kIpProto, 17);
  EXPECT_TRUE(t.matches(PacketBuilder().ip_proto(17).build()));
  EXPECT_FALSE(t.matches(PacketBuilder().ip_proto(6).build()));
}

TEST(Header, MatchPrefixCidrSemantics) {
  Ternary t;
  match_prefix(t, Field::kIpDst, make_ipv4(10, 1, 2, 0), 24);
  EXPECT_TRUE(t.matches(PacketBuilder().ip_dst(make_ipv4(10, 1, 2, 200)).build()));
  EXPECT_FALSE(t.matches(PacketBuilder().ip_dst(make_ipv4(10, 1, 3, 200)).build()));
  EXPECT_EQ(t.care_bits(), 24);
}

TEST(Header, ZeroLengthPrefixMatchesAll) {
  Ternary t;
  match_prefix(t, Field::kIpDst, make_ipv4(10, 1, 2, 0), 0);
  EXPECT_TRUE(t.is_full_wildcard());
}

TEST(Header, RangeToPrefixesSingleValue) {
  const auto out = range_to_prefixes(80, 80, 16);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 80u);
  EXPECT_EQ(out[0].second, 16u);
}

TEST(Header, RangeToPrefixesFullRange) {
  const auto out = range_to_prefixes(0, 65535, 16);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 0u);
}

TEST(Header, RangeToPrefixesClassicWorstCase) {
  // [1, 2^16-2] is the classic worst case: 2*(16-1) = 30 prefixes.
  const auto out = range_to_prefixes(1, 65534, 16);
  EXPECT_EQ(out.size(), 30u);
}

class RangeExpansion : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeExpansion, CoversExactlyTheRange) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const std::size_t width = 8;
    const std::uint64_t lo = rng.uniform(0, 255);
    const std::uint64_t hi = rng.uniform(lo, 255);
    const auto prefixes = range_to_prefixes(lo, hi, width);
    // Exhaustive check over the 8-bit domain: v is covered iff lo<=v<=hi,
    // and by exactly one prefix (the cover is disjoint).
    for (std::uint64_t v = 0; v < 256; ++v) {
      std::size_t covering = 0;
      for (const auto& [value, plen] : prefixes) {
        const std::uint64_t mask = plen == 0 ? 0 : (~0ULL << (width - plen)) & 0xff;
        if ((v & mask) == (value & mask)) ++covering;
      }
      EXPECT_EQ(covering, (v >= lo && v <= hi) ? 1u : 0u)
          << "v=" << v << " lo=" << lo << " hi=" << hi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeExpansion, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Header, MatchRangeExpandsToPatterns) {
  Ternary base;
  match_exact(base, Field::kIpProto, 6);
  const auto patterns = match_range(base, Field::kTpDst, 1000, 2000);
  EXPECT_GT(patterns.size(), 1u);
  // All patterns retain the base constraint and cover the range endpoints.
  auto covered = [&](std::uint16_t port) {
    const BitVec p = PacketBuilder().ip_proto(6).tp_dst(port).build();
    for (const auto& t : patterns) {
      if (t.matches(p)) return true;
    }
    return false;
  };
  EXPECT_TRUE(covered(1000));
  EXPECT_TRUE(covered(1500));
  EXPECT_TRUE(covered(2000));
  EXPECT_FALSE(covered(999));
  EXPECT_FALSE(covered(2001));
  const BitVec wrong_proto = PacketBuilder().ip_proto(17).tp_dst(1500).build();
  for (const auto& t : patterns) EXPECT_FALSE(t.matches(wrong_proto));
}

TEST(Header, PatternToStringNamesConstrainedFields) {
  Ternary t;
  match_exact(t, Field::kIpProto, 6);
  const auto s = pattern_to_string(t);
  EXPECT_NE(s.find("ip_proto=00000110"), std::string::npos);
  EXPECT_EQ(pattern_to_string(Ternary::wildcard()), "*");
}

TEST(Header, Ipv4Helpers) {
  EXPECT_EQ(ipv4_to_string(make_ipv4(192, 168, 1, 2)), "192.168.1.2");
  EXPECT_EQ(make_ipv4(10, 0, 0, 1), 0x0a000001u);
}

}  // namespace
}  // namespace difane
