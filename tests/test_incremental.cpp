#include <gtest/gtest.h>

#include <map>

#include "partition/incremental.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

PartitionerParams small_params(std::size_t capacity = 60) {
  PartitionerParams p;
  p.capacity = capacity;
  return p;
}

TEST(Incremental, InitialBuildMatchesPolicySemantics) {
  const auto policy = classbench_like(500, 3);
  IncrementalPartitioner inc(policy, small_params(), 3);
  EXPECT_GT(inc.partition_count(), 1u);
  const auto plan = inc.snapshot();
  Rng rng(5);
  const auto violation = plan.validate(policy, rng, 2000);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(Incremental, InsertTouchesOnlyIntersectingPartitions) {
  const auto policy = classbench_like(800, 7);
  IncrementalPartitioner inc(policy, small_params(), 2);
  const auto partitions_before = inc.partition_count();

  Rule narrow;
  narrow.id = 900001;
  narrow.priority = 5000;
  match_exact(narrow.match, Field::kIpProto, 6);
  match_exact(narrow.match, Field::kTpDst, 4443);
  match_prefix(narrow.match, Field::kIpDst, make_ipv4(10, 9, 8, 0), 24);
  narrow.action = Action::drop();

  const auto touched = inc.insert(narrow);
  EXPECT_FALSE(touched.empty());
  // A narrow rule must touch far fewer partitions than a full repartition.
  EXPECT_LT(touched.size(), std::max<std::size_t>(2, partitions_before / 2));
  EXPECT_TRUE(inc.policy().contains(900001));
}

TEST(Incremental, InsertPreservesSemantics) {
  const auto policy = classbench_like(400, 11);
  IncrementalPartitioner inc(policy, small_params(), 2);
  Rng rng(13);
  RuleTable expect = policy;
  for (RuleId i = 0; i < 20; ++i) {
    Rule r;
    r.id = 800000 + i;
    r.priority = static_cast<Priority>(3000 + i);
    const auto addr = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
    match_prefix(r.match, Field::kIpDst, addr, 8 + rng.uniform(0, 24));
    r.action = rng.bernoulli(0.5) ? Action::drop() : Action::forward(1);
    inc.insert(r);
    expect.add(r);
  }
  const auto plan = inc.snapshot();
  const auto violation = plan.validate(expect, rng, 3000);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(Incremental, WildcardInsertTouchesAllPartitions) {
  const auto policy = classbench_like(500, 17);
  IncrementalPartitioner inc(policy, small_params(), 2);
  Rule wild;
  wild.id = 700000;
  wild.priority = 1;  // below everything that matters
  wild.action = Action::drop();
  const auto touched = inc.insert(wild);
  EXPECT_GE(touched.size(), inc.partition_count() > 0 ? 1u : 0u);
  // A full-wildcard rule lands in every leaf.
  EXPECT_GE(inc.total_rules(), inc.policy().size());
}

TEST(Incremental, RemoveUndoesInsertSemantics) {
  const auto policy = classbench_like(300, 19);
  IncrementalPartitioner inc(policy, small_params(), 2);
  Rule r;
  r.id = 600000;
  r.priority = 9999;
  match_prefix(r.match, Field::kIpSrc, make_ipv4(172, 16, 0, 0), 12);
  r.action = Action::drop();
  inc.insert(r);
  const auto touched = inc.remove(600000);
  EXPECT_FALSE(touched.empty());
  EXPECT_FALSE(inc.policy().contains(600000));
  const auto plan = inc.snapshot();
  Rng rng(23);
  const auto violation = plan.validate(policy, rng, 2000);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(Incremental, RemoveUnknownIdTouchesNothing) {
  const auto policy = classbench_like(100, 29);
  IncrementalPartitioner inc(policy, small_params(), 1);
  EXPECT_TRUE(inc.remove(123456789).empty());
}

TEST(Incremental, OverflowSplitsLeaf) {
  // Start with a policy below capacity, then insert until a split happens.
  const auto policy = campus_like(40, 31);
  IncrementalPartitioner inc(policy, small_params(50), 1);
  EXPECT_EQ(inc.partition_count(), 1u);
  Rng rng(37);
  for (RuleId i = 0; i < 40; ++i) {
    Rule r;
    r.id = 500000 + i;
    r.priority = static_cast<Priority>(2000 + i);
    const auto addr = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
    match_prefix(r.match, Field::kIpDst, addr, 24);
    r.action = Action::drop();
    inc.insert(r);
  }
  EXPECT_GT(inc.partition_count(), 1u);
  const auto plan = inc.snapshot();
  for (const auto& p : plan.partitions()) EXPECT_LE(p.rules.size(), 50u);
}

TEST(Incremental, MassRemovalMergesLeaves) {
  const auto policy = classbench_like(600, 41);
  IncrementalPartitioner inc(policy, small_params(80), 2);
  const auto before = inc.partition_count();
  ASSERT_GT(before, 1u);
  // Remove most of the policy; leaves should merge back.
  std::vector<RuleId> ids;
  for (const auto& r : policy.rules()) ids.push_back(r.id);
  for (std::size_t i = 0; i + 20 < ids.size(); ++i) inc.remove(ids[i]);
  EXPECT_LT(inc.partition_count(), before);
  const auto plan = inc.snapshot();
  Rng rng(43);
  const auto violation = plan.validate(inc.policy(), rng, 1500);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(Incremental, ChurnStressKeepsSemantics) {
  const auto policy = classbench_like(250, 47);
  IncrementalPartitioner inc(policy, small_params(40), 3);
  Rng rng(53);
  std::vector<RuleId> live;
  for (const auto& r : policy.rules()) live.push_back(r.id);
  RuleId next_id = 100000;
  for (int op = 0; op < 120; ++op) {
    if (rng.bernoulli(0.5) || live.size() < 50) {
      Rule r;
      r.id = next_id++;
      r.priority = static_cast<Priority>(rng.uniform(1, 5000));
      const auto addr = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
      match_prefix(r.match, Field::kIpDst, addr, 4 + rng.uniform(0, 28));
      if (rng.bernoulli(0.4)) {
        match_exact(r.match, Field::kIpProto, rng.bernoulli(0.5) ? 6 : 17);
      }
      r.action = rng.bernoulli(0.5) ? Action::drop() : Action::forward(2);
      inc.insert(r);
      live.push_back(r.id);
    } else {
      const auto pick = rng.uniform(0, live.size() - 1);
      inc.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  const auto plan = inc.snapshot();
  Rng rng2(59);
  const auto violation = plan.validate(inc.policy(), rng2, 3000);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

// Live migration reads successive snapshots of the incremental partitioner;
// a snapshot that re-shuffled assignments on every call would masquerade as
// load drift and trigger spurious moves. snapshot() must be sticky: calling
// it twice with no churn in between yields the identical assignment.
TEST(Incremental, SnapshotAssignmentIsSticky) {
  const auto policy = classbench_like(600, 61);
  IncrementalPartitioner inc(policy, small_params(80), 3);
  const auto first = inc.snapshot();
  const auto second = inc.snapshot();
  ASSERT_EQ(first.partitions().size(), second.partitions().size());
  for (std::size_t i = 0; i < first.partitions().size(); ++i) {
    EXPECT_EQ(first.partitions()[i].id, second.partitions()[i].id);
    EXPECT_EQ(first.partitions()[i].primary, second.partitions()[i].primary)
        << "partition " << first.partitions()[i].id << " re-homed by a "
        << "no-op snapshot";
    EXPECT_EQ(first.partitions()[i].backup, second.partitions()[i].backup);
  }
}

// Churn in one corner of flow space must not re-home unrelated leaves: a
// leaf that survives an insert/remove burst untouched (same id, same rule
// count) keeps the authority it had before the burst.
TEST(Incremental, ChurnPreservesUntouchedHomes) {
  const auto policy = classbench_like(600, 67);
  IncrementalPartitioner inc(policy, small_params(80), 3);
  const auto before = inc.snapshot();
  std::map<PartitionId, AuthorityIndex> homes;
  for (const auto& p : before.partitions()) homes[p.id] = p.primary;

  // A burst of narrow inserts and removals confined to one /16.
  Rng rng(71);
  for (RuleId i = 0; i < 30; ++i) {
    Rule r;
    r.id = 400000 + i;
    r.priority = static_cast<Priority>(4000 + i);
    match_prefix(r.match, Field::kIpDst,
                 make_ipv4(10, 20, static_cast<std::uint8_t>(i), 0), 24);
    r.action = Action::drop();
    inc.insert(r);
    if (i % 3 == 0) inc.remove(400000 + i);
  }

  const auto after = inc.snapshot();
  std::size_t surviving = 0;
  for (const auto& p : after.partitions()) {
    const auto it = homes.find(p.id);
    if (it == homes.end()) continue;  // split/merged leaves may re-home
    ++surviving;
    EXPECT_EQ(p.primary, it->second)
        << "untouched partition " << p.id << " was re-homed by churn";
  }
  EXPECT_GT(surviving, 0u);  // the burst was narrow: most leaves survive
}

// Two partitioners fed the identical op sequence produce identical
// snapshots — assignment must be a deterministic function of the history,
// never of iteration order or addresses (migration replay-by-seed and the
// threads=1-vs-N differential both lean on this).
TEST(Incremental, IdenticalHistoryYieldsIdenticalAssignment) {
  const auto policy = classbench_like(400, 73);
  const auto churn = [&](IncrementalPartitioner& inc) {
    Rng rng(79);
    RuleId next_id = 300000;
    for (int op = 0; op < 60; ++op) {
      if (rng.bernoulli(0.6)) {
        Rule r;
        r.id = next_id++;
        r.priority = static_cast<Priority>(rng.uniform(1, 5000));
        const auto addr = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffffULL));
        match_prefix(r.match, Field::kIpDst, addr, 8 + rng.uniform(0, 20));
        r.action = rng.bernoulli(0.5) ? Action::drop() : Action::forward(1);
        inc.insert(r);
      } else if (next_id > 300000) {
        inc.remove(300000 + rng.uniform(0, next_id - 300001));
      }
      if (op % 10 == 0) (void)inc.snapshot();  // interleaved reads are part of the history
    }
  };
  IncrementalPartitioner a(policy, small_params(60), 3);
  IncrementalPartitioner b(policy, small_params(60), 3);
  churn(a);
  churn(b);
  const auto pa = a.snapshot();
  const auto pb = b.snapshot();
  ASSERT_EQ(pa.partitions().size(), pb.partitions().size());
  for (std::size_t i = 0; i < pa.partitions().size(); ++i) {
    EXPECT_EQ(pa.partitions()[i].id, pb.partitions()[i].id);
    EXPECT_EQ(pa.partitions()[i].primary, pb.partitions()[i].primary);
    EXPECT_EQ(pa.partitions()[i].backup, pb.partitions()[i].backup);
    EXPECT_EQ(pa.partitions()[i].rules.size(), pb.partitions()[i].rules.size());
  }
}

}  // namespace
}  // namespace difane
