// Cross-control-plane integration: the comparative claims the paper's
// evaluation rests on, checked end-to-end through the simulator.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

std::vector<FlowSpec> setup_storm(const RuleTable& policy, double rate,
                                  double duration, std::uint64_t seed) {
  // Single-packet flows from a huge pool: every flow is a cache miss, so the
  // offered load is pure flow-setup work.
  TrafficParams tp;
  tp.seed = seed;
  tp.flow_pool = 1u << 20;
  tp.zipf_s = 0.0;  // uniform popularity: (almost) every flow is distinct
  tp.arrival_rate = rate;
  tp.duration = duration;
  tp.mean_packets = 1.0;
  tp.max_packets = 1.0;
  tp.ingress_count = 4;
  TrafficGenerator gen(policy, tp);
  return gen.generate();
}

ScenarioParams base_params(Mode mode, std::uint32_t authorities = 1) {
  ScenarioParams params;
  params.mode = mode;
  params.edge_switches = 4;
  params.core_switches = std::max<std::size_t>(2, authorities);
  params.authority_count = authorities;
  params.edge_cache_capacity = 1u << 20;
  params.partitioner.capacity = 500;
  // Setup-storm tests need every distinct flow to miss: microflow caching
  // keeps wildcard caching from absorbing the storm at the ingress.
  params.cache_strategy = CacheStrategy::kMicroflow;
  return params;
}

TEST(Integration, NoxCompletesSetupsUnderLightLoad) {
  const auto policy = classbench_like(200, 3);
  Scenario nox(policy, base_params(Mode::kNox));
  const auto flows = setup_storm(policy, 1000.0, 0.5, 3);
  const auto& stats = nox.run(flows);
  EXPECT_EQ(stats.setup_completions.total(), flows.size());
  EXPECT_EQ(stats.queue_rejects, 0u);
  EXPECT_EQ(stats.tracer.in_flight(), 0);
}

TEST(Integration, NoxFirstPacketDelayDominatedByControllerRtt) {
  const auto policy = classbench_like(200, 5);
  Scenario nox(policy, base_params(Mode::kNox));
  const auto flows = setup_storm(policy, 1000.0, 0.5, 5);
  const auto& stats = nox.run(flows);
  ASSERT_GT(stats.tracer.first_packet_delay().count(), 0u);
  // ~10ms RTT + service: the paper's NOX delay regime.
  EXPECT_GT(stats.tracer.first_packet_delay().percentile(0.5), 8e-3);
  EXPECT_LT(stats.tracer.first_packet_delay().percentile(0.5), 30e-3);
}

TEST(Integration, DifaneFirstPacketDelayFarBelowNox) {
  const auto policy = classbench_like(200, 7);
  Scenario difane(policy, base_params(Mode::kDifane));
  Scenario nox(policy, base_params(Mode::kNox));
  const auto flows = setup_storm(policy, 1000.0, 0.5, 7);
  const double d = difane.run(flows).tracer.first_packet_delay().percentile(0.5);
  const double n = nox.run(flows).tracer.first_packet_delay().percentile(0.5);
  EXPECT_LT(d * 5, n) << "DIFANE median " << d << " vs NOX median " << n;
}

TEST(Integration, DifaneSurvivesSetupRatesThatSaturateNox) {
  const auto policy = classbench_like(200, 9);
  // 100K flows/s: 2x the NOX controller's capacity, well under one
  // authority switch's.
  const auto flows = setup_storm(policy, 100000.0, 0.2, 9);
  Scenario difane(policy, base_params(Mode::kDifane));
  Scenario nox(policy, base_params(Mode::kNox));
  const auto& ds = difane.run(flows);
  const auto& ns = nox.run(flows);
  const double difane_rate =
      static_cast<double>(ds.setup_completions.total()) / 0.2;
  const double nox_rate = static_cast<double>(ns.setup_completions.total()) / 0.2;
  EXPECT_GT(difane_rate, 90000.0);
  EXPECT_LT(nox_rate, 70000.0);  // pinned near the 50K/s controller capacity
  EXPECT_GT(ns.queue_rejects, 0u);
  EXPECT_EQ(ds.queue_rejects, 0u);
}

TEST(Integration, NoxMicroflowCacheServesRepeatedFlows) {
  const auto policy = classbench_like(150, 11);
  Scenario nox(policy, base_params(Mode::kNox));
  TrafficParams tp;
  tp.seed = 11;
  tp.flow_pool = 1u << 16;
  tp.zipf_s = 0.0;  // distinct flows: first packets all punt
  tp.arrival_rate = 500.0;
  tp.duration = 1.0;
  tp.mean_packets = 4.0;
  tp.packet_gap = 0.05;  // later packets arrive after the install lands
  tp.ingress_count = 4;
  TrafficGenerator gen(policy, tp);
  const auto& stats = nox.run(gen.generate());
  EXPECT_GT(stats.ingress_cache_hits, 0u);
  // Later packets of cached flows avoid the controller entirely: their
  // delays sit far below the punted first-packet delays.
  ASSERT_GT(stats.tracer.later_packet_delay().count(), 0u);
  EXPECT_LT(stats.tracer.later_packet_delay().percentile(0.5),
            stats.tracer.first_packet_delay().percentile(0.5) / 5);
}

TEST(Integration, MoreAuthoritySwitchesRaiseDifaneCeiling) {
  const auto policy = classbench_like(300, 13);
  // 1.2M flows/s saturates one authority switch (800K/s) but not two.
  const auto flows = setup_storm(policy, 1200000.0, 0.05, 13);
  Scenario one(policy, base_params(Mode::kDifane, 1));
  Scenario two(policy, base_params(Mode::kDifane, 2));
  const auto completed_one = one.run(flows).setup_completions.total();
  const auto completed_two = two.run(flows).setup_completions.total();
  EXPECT_GT(completed_two, completed_one + completed_one / 10);
}

TEST(Integration, DifaneAndNoxAgreeOnPolicySemantics) {
  const auto policy = classbench_like(250, 17);
  TrafficParams tp;
  tp.seed = 17;
  tp.flow_pool = 120;
  tp.arrival_rate = 800.0;
  tp.duration = 0.5;
  tp.mean_packets = 2.0;
  tp.ingress_count = 4;
  Scenario difane(policy, base_params(Mode::kDifane, 2));
  Scenario nox(policy, base_params(Mode::kNox));
  TrafficGenerator g1(policy, tp), g2(policy, tp);
  const auto& ds = difane.run(g1.generate());
  const auto& ns = nox.run(g2.generate());
  // Identical traffic: identical per-policy dispositions.
  EXPECT_EQ(ds.tracer.dropped(DropReason::kPolicyDrop),
            ns.tracer.dropped(DropReason::kPolicyDrop));
  EXPECT_EQ(ds.tracer.delivered(), ns.tracer.delivered());
}

}  // namespace
}  // namespace difane
