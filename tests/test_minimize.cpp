#include <gtest/gtest.h>

#include "flowspace/algebra.hpp"
#include "flowspace/minimize.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

Rule rule_with(RuleId id, Priority priority, Ternary match, Action action) {
  Rule r;
  r.id = id;
  r.priority = priority;
  r.match = match;
  r.action = action;
  return r;
}

TEST(Minimize, RemovesShadowedRule) {
  RuleTable t;
  Ternary broad, narrow;
  match_exact(broad, Field::kIpProto, 6);
  narrow = broad;
  match_exact(narrow, Field::kTpDst, 80);
  t.add(rule_with(1, 20, broad, Action::drop()));
  t.add(rule_with(2, 10, narrow, Action::forward(0)));  // fully shadowed
  t.add(rule_with(3, 0, Ternary::wildcard(), Action::forward(1)));
  MinimizeStats stats;
  const auto out = eliminate_shadowed(t, &stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(out.contains(2));
  EXPECT_EQ(stats.shadowed_removed, 1u);
}

TEST(Minimize, MergesAdjacentPorts) {
  // tp_dst=80 and tp_dst=81 (differ in bit 0), same action/priority -> one
  // rule matching tp_dst=80/31 (low bit wildcarded).
  RuleTable t;
  Ternary p80, p81;
  match_exact(p80, Field::kTpDst, 80);
  match_exact(p81, Field::kTpDst, 81);
  t.add(rule_with(1, 10, p80, Action::drop()));
  t.add(rule_with(2, 10, p81, Action::drop()));
  MinimizeStats stats;
  const auto out = merge_siblings(t, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(out.at(0).id, 1u);
  EXPECT_TRUE(out.at(0).match.matches(PacketBuilder().tp_dst(80).build()));
  EXPECT_TRUE(out.at(0).match.matches(PacketBuilder().tp_dst(81).build()));
  EXPECT_FALSE(out.at(0).match.matches(PacketBuilder().tp_dst(82).build()));
}

TEST(Minimize, MergeCollapsesWholeRangeExpansion) {
  // A power-of-two aligned range expands to several prefixes that merge all
  // the way back down to one rule.
  RuleTable t;
  RuleId id = 0;
  for (const auto& pattern : match_range(Ternary(), Field::kTpDst, 64, 127)) {
    t.add(rule_with(id++, 10, pattern, Action::drop()));
  }
  const auto out = merge_siblings(t, nullptr);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Minimize, DoesNotMergeDifferentActions) {
  RuleTable t;
  Ternary p80, p81;
  match_exact(p80, Field::kTpDst, 80);
  match_exact(p81, Field::kTpDst, 81);
  t.add(rule_with(1, 10, p80, Action::drop()));
  t.add(rule_with(2, 10, p81, Action::forward(0)));
  EXPECT_EQ(merge_siblings(t, nullptr).size(), 2u);
}

TEST(Minimize, DoesNotMergeAcrossPriorities) {
  RuleTable t;
  Ternary p80, p81;
  match_exact(p80, Field::kTpDst, 80);
  match_exact(p81, Field::kTpDst, 81);
  t.add(rule_with(1, 10, p80, Action::drop()));
  t.add(rule_with(2, 11, p81, Action::drop()));
  EXPECT_EQ(merge_siblings(t, nullptr).size(), 2u);
}

TEST(Minimize, RefusesTieBreakHazardMerge) {
  // a (id 1) and b (id 3) are mergeable, but c (id 2, same priority,
  // different action) overlaps b's region: merging would steal c's win.
  RuleTable t;
  Ternary p80, p81, c_match;
  match_exact(p80, Field::kTpDst, 80);
  match_exact(p81, Field::kTpDst, 81);
  match_exact(c_match, Field::kTpDst, 81);
  match_exact(c_match, Field::kIpProto, 6);
  t.add(rule_with(1, 10, p80, Action::drop()));
  t.add(rule_with(2, 10, c_match, Action::forward(0)));
  t.add(rule_with(3, 10, p81, Action::drop()));
  const auto out = merge_siblings(t, nullptr);
  EXPECT_EQ(out.size(), 3u);
  // Winner for (proto 6, port 81) must remain rule 2.
  const Rule* w = out.match(PacketBuilder().ip_proto(6).tp_dst(81).build());
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->id, 2u);
}

class MinimizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizeProperty, PreservesSemanticsAndShrinks) {
  const auto policy = classbench_like(600, GetParam());
  MinimizeStats stats;
  const auto minimized = minimize(policy, &stats);
  EXPECT_LE(minimized.size(), policy.size());
  EXPECT_EQ(stats.before, policy.size());
  EXPECT_EQ(stats.after, minimized.size());
  Rng rng(GetParam() ^ 0xbead);
  const auto diff = find_semantic_difference(policy, minimized, rng, 4000);
  EXPECT_FALSE(diff.has_value()) << "semantic change at "
                                 << pattern_to_string(Ternary(*diff, BitVec::ones()));
}

TEST_P(MinimizeProperty, Idempotent) {
  const auto policy = campus_like(300, GetParam());
  const auto once = minimize(policy);
  MinimizeStats again;
  const auto twice = minimize(once, &again);
  EXPECT_EQ(once.size(), twice.size());
  EXPECT_EQ(again.merges, 0u);
  EXPECT_EQ(again.shadowed_removed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeProperty, ::testing::Values(2u, 5u, 8u));

}  // namespace
}  // namespace difane
