#include <gtest/gtest.h>

#include "netsim/link.hpp"
#include "netsim/topology.hpp"
#include "netsim/tracer.hpp"

namespace difane {
namespace {

TEST(Engine, ExecutesInTimestampOrder) {
  Engine e;
  std::vector<int> order;
  e.at(3.0, [&] { order.push_back(3); });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.executed(), 3u);
}

TEST(Engine, TiesBreakFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, SchedulingInPastThrows) {
  Engine e;
  e.at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.at(1.0, [] {}), contract_violation);
}

TEST(Engine, ReentrantSchedulingWorks) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] {
    ++fired;
    e.after(1.0, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] { ++fired; });
  e.at(10.0, [&] { ++fired; });
  e.run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, MaxEventsBoundsRunawayLoops) {
  Engine e;
  std::function<void()> self = [&] { e.after(0.001, self); };
  e.at(0.0, self);
  const auto executed = e.run(1e18, 100);
  EXPECT_EQ(executed, 100u);
  e.clear();
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ZeroDelaySelfReschedulingMakesProgress) {
  // Events that reschedule themselves with zero delay must not starve other
  // events at the same timestamp (FIFO tie-break) and must keep now() fixed.
  Engine e;
  int self_fires = 0;
  int other_fires = 0;
  std::function<void()> self = [&] {
    if (++self_fires < 10) e.after(0.0, self);
  };
  e.at(1.0, self);
  e.at(1.0, [&] { ++other_fires; });
  e.run();
  EXPECT_EQ(self_fires, 10);
  EXPECT_EQ(other_fires, 1);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

TEST(Engine, FifoTieBreakIsStableAcrossInterleavedScheduling) {
  // Two identical runs where same-timestamp events are scheduled from
  // different call sites (including reentrantly) must execute identically.
  const auto trace = [] {
    Engine e;
    std::vector<int> order;
    e.at(1.0, [&] {
      order.push_back(0);
      e.at(1.0, [&] { order.push_back(3); });  // reentrant, same timestamp
    });
    e.at(1.0, [&] { order.push_back(1); });
    e.at(1.0, [&] { order.push_back(2); });
    e.run();
    return order;
  };
  const auto first = trace();
  EXPECT_EQ(first, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(trace(), first);
}

TEST(Engine, ClearMidRunDropsPendingButKeepsClock) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] {
    ++fired;
    e.clear();  // cancels everything below, from inside a handler
  });
  e.at(2.0, [&] { ++fired; });
  e.at(3.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
  // The engine stays usable: scheduling resumes from the current clock.
  e.at(5.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Link, PropagationPlusSerialization) {
  Link link(1e-3, 1e9);  // 1ms, 1Gbps
  const double t1 = link.send(0.0, 1250);  // 10us serialization
  EXPECT_NEAR(t1, 1e-3 + 1e-5, 1e-12);
  // Second packet queues behind the first.
  const double t2 = link.send(0.0, 1250);
  EXPECT_NEAR(t2, 1e-3 + 2e-5, 1e-12);
  EXPECT_EQ(link.packets(), 2u);
  EXPECT_EQ(link.bytes(), 2500u);
  EXPECT_GT(link.backlog(0.0), 0.0);
  EXPECT_DOUBLE_EQ(link.backlog(1.0), 0.0);
}

TEST(Link, FifoDeliveryOrder) {
  Link link(1e-4, 1e8);
  double prev = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double t = link.send(0.0, 100 + i);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Topology, TwoTierWiring) {
  Network net;
  const auto topo = build_two_tier(net, 4, 2, 100, 100);
  EXPECT_EQ(net.switch_count(), 6u);
  for (const auto edge : topo.edge) {
    for (const auto core : topo.core) {
      EXPECT_TRUE(net.adjacent(edge, core));
      EXPECT_NE(net.link(edge, core), nullptr);
    }
  }
  // Edge switches are not directly connected.
  EXPECT_FALSE(net.adjacent(topo.edge[0], topo.edge[1]));
  EXPECT_EQ(net.distance(topo.edge[0], topo.edge[1]), 2u);
  EXPECT_EQ(net.distance(topo.edge[0], topo.core[0]), 1u);
  EXPECT_EQ(net.distance(topo.edge[0], topo.edge[0]), 0u);
}

TEST(Topology, NextHopWalksShortestPath) {
  Network net;
  const auto line = build_line(net, 5, 10);
  EXPECT_EQ(net.next_hop(line[0], line[4]), line[1]);
  EXPECT_EQ(net.next_hop(line[3], line[4]), line[4]);
  EXPECT_EQ(net.distance(line[0], line[4]), 4u);
}

TEST(Topology, FailedSwitchIsRoutedAround) {
  Network net;
  const auto topo = build_two_tier(net, 2, 2, 10, 10);
  // Fail one core; edge-to-edge routes must use the other.
  net.set_failed(topo.core[0], true);
  const auto nh = net.next_hop(topo.edge[0], topo.edge[1]);
  EXPECT_EQ(nh, topo.core[1]);
  // Unreachable destination: fail both cores.
  net.set_failed(topo.core[1], true);
  EXPECT_EQ(net.next_hop(topo.edge[0], topo.edge[1]), kInvalidSwitch);
  // Recovery restores routing.
  net.set_failed(topo.core[0], false);
  EXPECT_EQ(net.next_hop(topo.edge[0], topo.edge[1]), topo.core[0]);
}

TEST(Tracer, ConservationAccounting) {
  Tracer tracer;
  Packet a, b, c;
  a.is_first_of_flow = true;
  a.created = 0.0;
  tracer.on_injected(a);
  tracer.on_injected(b);
  tracer.on_injected(c);
  EXPECT_EQ(tracer.in_flight(), 3);
  tracer.on_delivered(a, 0.5);
  tracer.on_dropped(b, DropReason::kPolicyDrop);
  EXPECT_EQ(tracer.in_flight(), 1);
  tracer.on_dropped(c, DropReason::kTtlExceeded);
  EXPECT_EQ(tracer.in_flight(), 0);
  EXPECT_EQ(tracer.dropped(DropReason::kPolicyDrop), 1u);
  EXPECT_EQ(tracer.dropped(DropReason::kTtlExceeded), 1u);
  EXPECT_EQ(tracer.first_packet_delay().count(), 1u);
  EXPECT_DOUBLE_EQ(tracer.first_packet_delay().percentile(0.5), 0.5);
  EXPECT_NE(tracer.summary().find("injected=3"), std::string::npos);
}

TEST(Tracer, SeparatesFirstAndLaterPacketDelays) {
  Tracer tracer;
  Packet first, later;
  first.is_first_of_flow = true;
  first.created = 0.0;
  later.is_first_of_flow = false;
  later.created = 0.0;
  tracer.on_injected(first);
  tracer.on_injected(later);
  tracer.on_delivered(first, 0.010);
  tracer.on_delivered(later, 0.001);
  EXPECT_DOUBLE_EQ(tracer.first_packet_delay().percentile(0.5), 0.010);
  EXPECT_DOUBLE_EQ(tracer.later_packet_delay().percentile(0.5), 0.001);
}

TEST(Tracer, RedirectedPacketsCounted) {
  Tracer tracer;
  Packet p;
  p.was_redirected = true;
  tracer.on_injected(p);
  tracer.on_delivered(p, 1.0);
  EXPECT_EQ(tracer.redirected(), 1u);
}

}  // namespace
}  // namespace difane
