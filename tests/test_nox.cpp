#include <gtest/gtest.h>

#include "controller/nox.hpp"
#include "flowspace/header.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

TEST(Nox, DecisionMatchesPolicyAndInstallsMicroflow) {
  const auto policy = classbench_like(200, 3);
  NoxControlPlane nox(policy, {});
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const BitVec pkt = Ternary::wildcard().sample_point(rng);
    const auto decision = nox.handle_punt(static_cast<double>(i), pkt);
    ASSERT_TRUE(decision.has_value());
    const Rule* winner = policy.match(pkt);
    ASSERT_NE(winner, nullptr);
    EXPECT_EQ(decision->winner, winner);
    ASSERT_TRUE(decision->cache_rule.has_value());
    EXPECT_TRUE(decision->cache_rule->action == winner->action);
    EXPECT_TRUE(decision->cache_rule->match.matches(pkt));
    EXPECT_EQ(decision->cache_rule->match.care_bits(),
              static_cast<int>(header_bits_used()));
    EXPECT_EQ(decision->cache_rule->origin, winner->id);
  }
  EXPECT_EQ(nox.punts(), 50u);
}

TEST(Nox, ServiceTimeSerializesDecisions) {
  const auto policy = classbench_like(50, 3);
  NoxParams params;
  params.service_time = 0.01;
  params.max_backlog = 10.0;
  NoxControlPlane nox(policy, params);
  Rng rng(7);
  const BitVec pkt = Ternary::wildcard().sample_point(rng);
  const auto a = nox.handle_punt(0.0, pkt);
  const auto b = nox.handle_punt(0.0, pkt);
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->ready_time, 0.01);
  EXPECT_DOUBLE_EQ(b->ready_time, 0.02);
}

TEST(Nox, OverloadRejectsPunts) {
  const auto policy = classbench_like(50, 3);
  NoxParams params;
  params.service_time = 0.01;     // 100/s capacity
  params.max_backlog = 0.05;      // at most ~5 queued
  NoxControlPlane nox(policy, params);
  Rng rng(9);
  const BitVec pkt = Ternary::wildcard().sample_point(rng);
  std::size_t rejected = 0;
  for (int i = 0; i < 100; ++i) {
    if (!nox.handle_punt(0.0, pkt).has_value()) ++rejected;
  }
  EXPECT_GT(rejected, 80u);
  EXPECT_EQ(nox.queue().rejected(), rejected);
}

TEST(Nox, DistinctMicroflowIds) {
  const auto policy = classbench_like(50, 3);
  NoxControlPlane nox(policy, {});
  Rng rng(11);
  std::set<RuleId> ids;
  for (int i = 0; i < 30; ++i) {
    const auto decision =
        nox.handle_punt(static_cast<double>(i), Ternary::wildcard().sample_point(rng));
    ASSERT_TRUE(decision.has_value() && decision->cache_rule.has_value());
    EXPECT_TRUE(ids.insert(decision->cache_rule->id).second);
  }
}

TEST(Nox, NoWinnerMeansNoInstall) {
  RuleTable empty;  // no default: nothing matches
  NoxControlPlane nox(empty, {});
  const auto decision = nox.handle_punt(0.0, BitVec{});
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->winner, nullptr);
  EXPECT_FALSE(decision->cache_rule.has_value());
}

}  // namespace
}  // namespace difane
