// Observability layer: JSON value round-trips, the versioned report schema,
// rep merging, and MetricsRegistry behavior under concurrency. The exporter
// guarantees under test: sorted keys + shortest-round-trip numbers make the
// serialized form byte-deterministic, and the schema validator rejects any
// structurally wrong document with a message naming the problem.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace difane::obs {
namespace {

// --------------------------------------------------------------------------
// Json

TEST(Json, RoundTripsScalarsAndContainers) {
  Json::Object obj;
  obj["flag"] = Json(true);
  obj["count"] = Json(42);
  obj["ratio"] = Json(0.125);
  obj["name"] = Json("difane");
  obj["nothing"] = Json();
  obj["list"] = Json(std::vector<Json>{Json(1), Json("two"), Json(false)});
  const Json doc(obj);

  const Json parsed = Json::parse(doc.dump(2));
  EXPECT_EQ(parsed, doc);
  EXPECT_EQ(parsed.get("count").as_number(), 42.0);
  EXPECT_EQ(parsed.get("name").as_string(), "difane");
  EXPECT_TRUE(parsed.get("nothing").is_null());
  EXPECT_EQ(parsed.get("list").as_array().size(), 3u);
}

TEST(Json, DumpIsByteStableAcrossInsertionOrder) {
  Json a, b;
  a["zeta"] = Json(1);
  a["alpha"] = Json(2);
  b["alpha"] = Json(2);
  b["zeta"] = Json(1);
  // std::map ordering makes the dump independent of insertion order.
  EXPECT_EQ(a.dump(2), b.dump(2));
  EXPECT_EQ(a.dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(Json, EscapesAndParsesSpecialStrings) {
  const std::string text = "line\n\"quote\"\t\\back\\ \x01";
  const Json doc(text);
  EXPECT_EQ(Json::parse(doc.dump()).as_string(), text);
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, IntegralNumbersPrintWithoutFraction) {
  EXPECT_EQ(format_number(1209.0), "1209");
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(-17.0), "-17");
  // Non-integral values keep the shortest round-trip form.
  const double v = 0.1;
  EXPECT_EQ(Json::parse(format_number(v)).as_number(), v);
}

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1 2]"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
}

TEST(Json, AccessorsThrowOnKindMismatch) {
  const Json num(3.5);
  EXPECT_THROW(num.as_string(), std::runtime_error);
  EXPECT_THROW(num.get("missing"), std::runtime_error);
  Json obj;
  obj["present"] = Json(1);
  EXPECT_THROW(obj.get("absent"), std::runtime_error);
  EXPECT_TRUE(obj.contains("present"));
}

// --------------------------------------------------------------------------
// Report schema

MetricsReport sample_report() {
  MetricsReport report("E1");
  report.params["policy_rules"] = Json(1000);
  report.params["quick"] = Json(false);
  report.set("difane_peak_flows_per_s", 812345.5);
  report.set("nox_peak_flows_per_s", 50000.0);
  report.set("build_wall_ms", 12.5);
  report.wall_seconds = 1.75;
  return report;
}

TEST(Report, JsonRoundTripPreservesEverything) {
  const MetricsReport report = sample_report();
  const MetricsReport back =
      MetricsReport::from_json(Json::parse(report.to_json_string()));
  EXPECT_EQ(back.experiment, report.experiment);
  EXPECT_EQ(back.git_rev, report.git_rev);
  EXPECT_EQ(back.metrics, report.metrics);
  EXPECT_EQ(back.wall_seconds, report.wall_seconds);
  EXPECT_EQ(Json(back.params), Json(report.params));
}

TEST(Report, SchemaShapeIsStable) {
  const Json doc = Json::parse(sample_report().to_json_string());
  // The versioned contract consumers (bench_compare, external tooling) rely
  // on: these exact top-level fields, nothing fewer.
  EXPECT_EQ(doc.get("schema").as_string(), "difane-bench-report-v1");
  EXPECT_EQ(doc.get("experiment").as_string(), "E1");
  EXPECT_TRUE(doc.get("git_rev").is_string());
  EXPECT_TRUE(doc.get("params").is_object());
  EXPECT_TRUE(doc.get("metrics").is_object());
  EXPECT_TRUE(doc.get("wall_seconds").is_number());
}

TEST(Report, FromJsonValidatesSchema) {
  const auto mutate = [](const char* field, Json value) {
    Json doc = Json::parse(sample_report().to_json_string());
    doc[field] = std::move(value);
    return doc;
  };
  EXPECT_THROW(MetricsReport::from_json(mutate("schema", Json("bogus-v9"))),
               std::runtime_error);
  EXPECT_THROW(MetricsReport::from_json(mutate("metrics", Json(3))),
               std::runtime_error);
  EXPECT_THROW(MetricsReport::from_json(mutate("experiment", Json())),
               std::runtime_error);
  Json no_metrics = Json::parse(sample_report().to_json_string());
  no_metrics.as_object().erase("metrics");
  EXPECT_THROW(MetricsReport::from_json(no_metrics), std::runtime_error);
  // Non-numeric metric values are rejected, not coerced.
  Json bad_metric = Json::parse(sample_report().to_json_string());
  bad_metric["metrics"]["oops"] = Json("NaN-ish");
  EXPECT_THROW(MetricsReport::from_json(bad_metric), std::runtime_error);
}

TEST(Report, WallMetricNamingConvention) {
  EXPECT_TRUE(is_wall_metric("wall_seconds"));
  EXPECT_TRUE(is_wall_metric("incremental_wall_us_per_op_n_1000"));
  EXPECT_TRUE(is_wall_metric("dtree_build_wall_ms_n_100"));
  EXPECT_FALSE(is_wall_metric("difane_peak_flows_per_s"));
  EXPECT_FALSE(is_wall_metric("wallaby"));
}

TEST(Report, MergeRepsAveragesMetrics) {
  MetricsReport a("E2"), b("E2");
  a.set("rate", 100.0);
  b.set("rate", 200.0);
  a.set("only_in_a", 1.0);
  a.wall_seconds = 1.0;
  b.wall_seconds = 3.0;
  a.params["reps_param"] = Json(7);
  const MetricsReport merged = merge_reps({a, b});
  EXPECT_EQ(merged.metrics.at("rate"), 150.0);
  // Metrics missing from some rep (conditional table rows) keep the first
  // rep's value instead of a partial average that would silently skew.
  EXPECT_EQ(merged.metrics.at("only_in_a"), 1.0);
  EXPECT_EQ(merged.wall_seconds, 2.0);
  EXPECT_EQ(merged.params.at("reps_param").as_number(), 7.0);
}

TEST(Report, TrajectoryRoundTrip) {
  Trajectory traj;
  traj.base_seed = 77;
  traj.experiments.emplace("E1", sample_report());
  MetricsReport e4("E4");
  e4.set("duplication_k_2", 1.209);
  traj.experiments.emplace("E4", e4);

  const Trajectory back = Trajectory::from_json(traj.to_json());
  EXPECT_EQ(back.base_seed, 77u);
  ASSERT_EQ(back.experiments.size(), 2u);
  EXPECT_EQ(back.experiments.at("E4").metrics.at("duplication_k_2"), 1.209);
  EXPECT_EQ(back.experiments.at("E1").metrics,
            traj.experiments.at("E1").metrics);
  EXPECT_THROW(Trajectory::from_json(Json::parse("{\"schema\":\"wrong\"}")),
               std::runtime_error);
}

TEST(Report, CsvExportListsEveryMetric) {
  const std::string csv = sample_report().to_csv();
  EXPECT_NE(csv.find("experiment,metric,value"), std::string::npos);
  EXPECT_NE(csv.find("E1,difane_peak_flows_per_s,"), std::string::npos);
  EXPECT_NE(csv.find("E1,nox_peak_flows_per_s,"), std::string::npos);
}

TEST(Report, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "obs_report_roundtrip.json";
  const MetricsReport report = sample_report();
  report.write_json_file(path);
  const MetricsReport back = MetricsReport::from_json(load_json_file(path));
  EXPECT_EQ(back.metrics, report.metrics);
  std::remove(path.c_str());
  EXPECT_THROW(load_json_file(path), std::runtime_error);
}

// --------------------------------------------------------------------------
// Metrics instruments

TEST(Metrics, CounterGaugeTimerBasics) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  auto* counter = registry.counter("ops");
  counter->inc();
  counter->inc(4);
  EXPECT_EQ(counter->value(), 5u);

  auto* gauge = registry.gauge("depth");
  gauge->set(3.0);
  gauge->add(1.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 4.5);

  auto* timer = registry.timer("build");
  timer->record(0.25);
  timer->record(0.75);
  EXPECT_EQ(timer->count(), 2u);
  EXPECT_DOUBLE_EQ(timer->total_seconds(), 1.0);

  // Same name => same instrument (the registry is the identity map).
  EXPECT_EQ(registry.counter("ops"), counter);
}

TEST(Metrics, HistogramBucketsAndPercentiles) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  auto* histogram = registry.histogram("delay", {1.0, 10.0, 100.0});
  for (int i = 0; i < 50; ++i) histogram->observe(0.5);    // bucket <=1
  for (int i = 0; i < 30; ++i) histogram->observe(5.0);    // bucket <=10
  for (int i = 0; i < 15; ++i) histogram->observe(50.0);   // bucket <=100
  for (int i = 0; i < 5; ++i) histogram->observe(1000.0);  // overflow
  EXPECT_EQ(histogram->count(), 100u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 50 * 0.5 + 30 * 5.0 + 15 * 50.0 + 5 * 1000.0);
  EXPECT_LE(histogram->percentile(0.5), 1.0);
  EXPECT_LE(histogram->percentile(0.79), 10.0);
  // Ranks landing in the overflow bucket report the last finite bound.
  EXPECT_EQ(histogram->percentile(0.99), 100.0);
}

TEST(Metrics, SnapshotFlattensInstruments) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  registry.counter("hits")->inc(7);
  registry.gauge("load")->set(0.5);
  registry.timer("build")->record(2.0);
  registry.histogram("lat", {1.0})->observe(0.5);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.at("hits"), 7.0);
  EXPECT_EQ(snap.at("load"), 0.5);
  EXPECT_EQ(snap.at("build_wall_seconds"), 2.0);
  EXPECT_EQ(snap.at("build_count"), 1.0);
  EXPECT_EQ(snap.at("lat_count"), 1.0);
  EXPECT_TRUE(snap.count("lat_p50"));
}

TEST(Metrics, ResetZeroesButKeepsPointersValid) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  auto* counter = registry.counter("c");
  auto* histogram = registry.histogram("h", {1.0});
  counter->inc(3);
  histogram->observe(0.5);
  registry.reset();
  EXPECT_EQ(counter->value(), 0u);  // same pointer, zeroed in place
  EXPECT_EQ(histogram->count(), 0u);
  counter->inc();
  EXPECT_EQ(registry.counter("c")->value(), 1u);
}

// ctest -L unit concurrency check: hammer one registry from several threads;
// every increment must land (atomics, no torn counts), and instrument lookup
// must be safe concurrently with updates.
TEST(Metrics, RegistryIsThreadSafe) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      // Mix of shared and per-thread instruments, resolved inside the loop so
      // name lookup races with updates.
      for (int i = 0; i < kIters; ++i) {
        registry.counter("shared")->inc();
        registry.counter("t" + std::to_string(t))->inc();
        registry.gauge("g_shared")->add(1.0);
        registry.histogram("h_shared", {10.0, 1000.0})
            ->observe(static_cast<double>(i % 2000));
        registry.timer("w_shared")->record(1e-6);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(registry.counter("shared")->value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("t" + std::to_string(t))->value(),
              static_cast<std::uint64_t>(kIters));
  }
  EXPECT_DOUBLE_EQ(registry.gauge("g_shared")->value(),
                   static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(registry.histogram("h_shared", {10.0, 1000.0})->count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.timer("w_shared")->count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Metrics, GlobalRegistryIsASingleton) {
  auto* a = MetricsRegistry::global().counter("test_obs_global_probe");
  auto* b = MetricsRegistry::global().counter("test_obs_global_probe");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace difane::obs
