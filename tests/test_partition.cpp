#include <gtest/gtest.h>

#include "partition/partitioner.hpp"
#include "workload/rulegen.hpp"

namespace difane {
namespace {

PartitionPlan build_plan(std::size_t rules, std::uint32_t k, std::size_t capacity,
                         std::uint64_t seed = 1,
                         CutStrategy strategy = CutStrategy::kBestBit) {
  const auto policy = classbench_like(rules, seed);
  PartitionerParams params;
  params.capacity = capacity;
  params.strategy = strategy;
  return Partitioner(params).build(policy, k);
}

TEST(Partitioner, SinglePartitionWhenUnderCapacity) {
  const auto policy = classbench_like(100, 3);
  PartitionerParams params;
  params.capacity = 1000;
  const auto plan = Partitioner(params).build(policy, 1);
  ASSERT_EQ(plan.partitions().size(), 1u);
  EXPECT_TRUE(plan.partitions()[0].region.is_full_wildcard());
  EXPECT_EQ(plan.total_rules(), policy.size());
  EXPECT_DOUBLE_EQ(plan.duplication_factor(), 1.0);
}

TEST(Partitioner, LeavesRespectCapacity) {
  const auto plan = build_plan(2000, 4, 200);
  EXPECT_GT(plan.partitions().size(), 1u);
  for (const auto& p : plan.partitions()) {
    EXPECT_LE(p.rules.size(), 200u) << "partition " << p.id;
  }
}

TEST(Partitioner, SemanticsPreserved) {
  const auto policy = classbench_like(1500, 17);
  PartitionerParams params;
  params.capacity = 150;
  const auto plan = Partitioner(params).build(policy, 4);
  Rng rng(99);
  const auto violation = plan.validate(policy, rng, 4000);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(Partitioner, SemanticsPreservedAllStrategies) {
  const auto policy = classbench_like(600, 23);
  for (const auto strategy :
       {CutStrategy::kBestBit, CutStrategy::kIpBitsOnly, CutStrategy::kRandomBit}) {
    PartitionerParams params;
    params.capacity = 100;
    params.strategy = strategy;
    params.seed = 5;
    const auto plan = Partitioner(params).build(policy, 3);
    Rng rng(7);
    const auto violation = plan.validate(policy, rng, 2000);
    EXPECT_FALSE(violation.has_value())
        << static_cast<int>(strategy) << ": " << *violation;
  }
}

TEST(Partitioner, RegionsAreDisjointAndComplete) {
  const auto plan = build_plan(1000, 4, 100, 5);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const BitVec p = Ternary::wildcard().sample_point(rng);
    std::size_t owners = 0;
    for (const auto& part : plan.partitions()) {
      if (part.region.matches(p)) ++owners;
    }
    EXPECT_EQ(owners, 1u);
    EXPECT_NO_THROW(plan.find(p));
  }
}

TEST(Partitioner, ClippedCopiesKeepOriginAndGetFreshIds) {
  const auto policy = classbench_like(500, 31);
  const auto plan = build_plan(500, 2, 80, 31);
  std::set<RuleId> seen;
  for (const auto& part : plan.partitions()) {
    for (const auto& rule : part.rules.rules()) {
      EXPECT_TRUE(seen.insert(rule.id).second) << "duplicate installed id";
      ASSERT_NE(rule.origin, kInvalidRuleId);
      const Rule* orig = policy.find(rule.origin);
      ASSERT_NE(orig, nullptr);
      EXPECT_TRUE(orig->action == rule.action);
      EXPECT_EQ(orig->priority, rule.priority);
      EXPECT_TRUE(covers(orig->match, rule.match));
      EXPECT_TRUE(covers(part.region, rule.match));
    }
  }
}

TEST(Partitioner, LptBalancesAuthorities) {
  const auto plan = build_plan(4000, 8, 100, 11);
  const auto loads = plan.rules_per_authority();
  ASSERT_EQ(loads.size(), 8u);
  const auto max = *std::max_element(loads.begin(), loads.end());
  const auto min = *std::min_element(loads.begin(), loads.end());
  EXPECT_GT(min, 0u);
  // LPT with many small leaves balances well; allow generous slack.
  EXPECT_LT(static_cast<double>(max), 1.6 * static_cast<double>(min) + 200.0);
}

TEST(Partitioner, DuplicationGrowsWithPartitionCountButStaysBounded) {
  const auto policy = classbench_like(2000, 13);
  PartitionerParams params;
  double prev = 0.0;
  for (const std::size_t capacity : {2000u, 500u, 125u}) {
    params.capacity = capacity;
    const auto plan = Partitioner(params).build(policy, 4);
    const double dup = plan.duplication_factor();
    EXPECT_GE(dup, prev * 0.99);  // finer cuts duplicate at least as much
    EXPECT_LT(dup, 4.0);          // but the cost function keeps it bounded
    prev = dup;
  }
}

TEST(Partitioner, BestBitBeatsRandomOnDuplication) {
  const auto policy = classbench_like(1500, 41);
  PartitionerParams best;
  best.capacity = 100;
  PartitionerParams random = best;
  random.strategy = CutStrategy::kRandomBit;
  random.seed = 3;
  const double dup_best = Partitioner(best).build(policy, 4).duplication_factor();
  const double dup_rand = Partitioner(random).build(policy, 4).duplication_factor();
  EXPECT_LE(dup_best, dup_rand * 1.05);
}

TEST(PartitionPlan, MakePartitionRulesEncapToPrimary) {
  const auto plan = build_plan(800, 3, 100, 19);
  const auto rules = plan.make_partition_rules(0, 1000);
  ASSERT_EQ(rules.size(), plan.partitions().size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, 1000u + i);
    EXPECT_EQ(rules[i].action.type, ActionType::kEncap);
    EXPECT_EQ(rules[i].action.arg, plan.partitions()[i].primary);
    EXPECT_TRUE(rules[i].match == plan.partitions()[i].region);
  }
  const auto backup_rules = plan.make_partition_rules(0, 2000, /*use_backup=*/true);
  for (std::size_t i = 0; i < backup_rules.size(); ++i) {
    EXPECT_EQ(backup_rules[i].action.arg, plan.partitions()[i].backup);
  }
}

TEST(PartitionPlan, FailOverSwapsPrimaryWithBackup) {
  auto plan = build_plan(800, 4, 100, 29);
  std::vector<std::pair<AuthorityIndex, AuthorityIndex>> before;
  for (const auto& p : plan.partitions()) before.emplace_back(p.primary, p.backup);
  plan.fail_over(0);
  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto& p = plan.partitions()[i];
    if (before[i].first == 0) {
      EXPECT_EQ(p.primary, before[i].second);
      EXPECT_EQ(p.backup, 0u);
      EXPECT_NE(p.primary, 0u);  // backup is always a different switch (k>1)
    } else {
      EXPECT_EQ(p.primary, before[i].first);
    }
  }
}

TEST(PartitionPlan, BackupDiffersFromPrimaryWhenPossible) {
  const auto plan = build_plan(500, 4, 100, 37);
  for (const auto& p : plan.partitions()) EXPECT_NE(p.primary, p.backup);
}

TEST(Partitioner, ManyAuthoritiesReducePerSwitchLoad) {
  const auto policy = classbench_like(3000, 47);
  PartitionerParams params;
  params.capacity = 50;
  std::size_t prev_max = std::numeric_limits<std::size_t>::max();
  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    const auto plan = Partitioner(params).build(policy, k);
    const auto max_load = plan.max_rules_per_authority();
    EXPECT_LE(max_load, prev_max);
    prev_max = max_load;
  }
}

}  // namespace
}  // namespace difane
