// Burst-mode equivalence: the coalesced burst data plane (batched lookups
// with prefetch, one engine event per (ingress, window) burst) is a pure
// execution-order optimization — for any (policy, traffic, params, seed) it
// must be byte-identical to the scalar path on every deterministic surface:
// the flat stats snapshot, the telemetry export stream, and the post-run
// installed-state verifier. Random policies, traffic shapes, cache
// strategies, measurement on/off, control-plane faults, and burst sizes
// (including non-power-of-two ones; only the ring capacity must be a power
// of two). A second property checks the sharded executor's SPSC rings:
// threads>1 runs are seed-stable and invariant to the ring capacity (the
// overflow spill path must preserve the merge order exactly).
#include <gtest/gtest.h>

#include <string>

#include "core/system.hpp"
#include "proptest/property.hpp"
#include "workload/rulegen.hpp"
#include "workload/trafficgen.hpp"

namespace difane {
namespace {

struct CaseSetup {
  RuleTable policy;
  std::vector<FlowSpec> flows;
  ScenarioParams params;
};

CaseSetup gen_case(proptest::PropertyContext& ctx) {
  RuleGenParams rg;
  rg.num_rules = static_cast<std::size_t>(ctx.rng.uniform(60, 250));
  rg.seed = ctx.rng.next_u64();
  CaseSetup c{generate_policy(rg), {}, {}};

  TrafficParams tp;
  tp.seed = ctx.rng.next_u64();
  tp.flow_pool = static_cast<std::size_t>(ctx.rng.uniform(80, 400));
  tp.zipf_s = ctx.rng.uniform01() * 1.2;
  tp.arrival_rate = 1000.0 + ctx.rng.uniform01() * 5000.0;
  tp.duration = 0.1 + ctx.rng.uniform01() * 0.15;
  tp.mean_packets = 1.0 + ctx.rng.uniform01() * 3.0;
  tp.packet_gap = 0.001 + ctx.rng.uniform01() * 0.03;
  tp.ingress_count = static_cast<std::uint32_t>(ctx.rng.uniform(1, 6));
  TrafficGenerator gen(c.policy, tp);
  c.flows = gen.generate();

  ScenarioParams& p = c.params;
  p.mode = Mode::kDifane;
  p.edge_switches = static_cast<std::size_t>(ctx.rng.uniform(2, 5));
  p.core_switches = 2;
  p.authority_count = static_cast<std::size_t>(ctx.rng.uniform(1, 2));
  p.edge_cache_capacity = static_cast<std::size_t>(ctx.rng.uniform(32, 400));
  p.partitioner.capacity = 200;
  static constexpr CacheStrategy kStrategies[] = {CacheStrategy::kMicroflow,
                                                  CacheStrategy::kDependentSet,
                                                  CacheStrategy::kCoverSet};
  p.cache_strategy = kStrategies[ctx.rng.uniform(0, 2)];
  // Short timeouts make the lazy-expiry sweep fire mid-burst; long ones keep
  // the cache warm so batched hits dominate.
  p.timings.cache_idle_timeout = ctx.rng.bernoulli(0.5) ? 0.02 : 10.0;
  // Prefetch depth is a pure memory hint: any depth must leave every
  // fingerprint identical, so let cases draw it freely.
  static constexpr std::size_t kDepths[] = {1, 2, 4, 8};
  p.prefetch_depth = kDepths[ctx.rng.uniform(0, 3)];
  if (ctx.rng.bernoulli(0.4)) {
    p.measurement.enabled = true;
    p.measurement.sample_prob = 0.25 + ctx.rng.uniform01() * 0.5;
    p.measurement.export_interval = 0.05;
    p.measurement.export_horizon = 1.0;
  }
  if (ctx.rng.bernoulli(0.3)) {
    // Message-level faults draw from the scenario RNG on the same schedule
    // either way; any reordering of those draws would show up here.
    p.faults.msg_loss = ctx.rng.uniform01() * 0.2;
    p.faults.msg_dup = ctx.rng.uniform01() * 0.2;
    p.faults.msg_jitter_prob = ctx.rng.uniform01() * 0.4;
    p.faults.msg_jitter_max = ctx.rng.uniform01() * 2e-3;
  }
  return c;
}

// Everything the determinism contract covers, folded into one string:
// normalized snapshot JSON, the telemetry export stream, and the verifier's
// sampled verdict over the actually-installed tables.
std::string fingerprint(const CaseSetup& c, std::size_t burst,
                        std::size_t ring_capacity = 1024,
                        std::size_t threads = 1) {
  ScenarioParams params = c.params;
  params.burst = burst;
  params.shard_ring_capacity = ring_capacity;
  params.threads = threads;
  Scenario scenario(c.policy, params);
  scenario.run(c.flows);

  auto report = scenario.stats().snapshot("prop_burst");
  report.git_rev = "fixed";
  report.wall_seconds = 0.0;
  std::string fp = report.to_json_string();
  fp += '\n';
  fp += scenario.collector().stream_dump();
  const VerifyReport verify = scenario.verify_installed(/*samples=*/60,
                                                        /*seed=*/1);
  fp += "\nverify samples=" + std::to_string(verify.samples) +
        " ok=" + std::to_string(verify.ok) +
        " violations=" + std::to_string(verify.violations.size());
  return fp;
}

DIFANE_PROPERTY(BurstPathMatchesScalarByteForByte, 110) {
  const CaseSetup c = gen_case(ctx);
  static constexpr std::size_t kBursts[] = {1, 2, 7, 32, 48, 64};
  const std::size_t burst = kBursts[ctx.rng.uniform(0, 5)];

  const std::string scalar = fingerprint(c, /*burst=*/0);
  const std::string bursty = fingerprint(c, burst);
  EXPECT_EQ(scalar, bursty)
      << "burst=" << burst << " diverged from scalar; replay seed 0x"
      << std::hex << ctx.case_seed;
}

// The sharded executor with SPSC outbox rings: same seed twice must be
// byte-identical (seed stability), and shrinking the ring until the
// overflow spill engages must change nothing — the spill keeps per-shard
// FIFO order, so the (when, src shard, seq) merge is capacity-invariant.
DIFANE_PROPERTY(ShardedBurstSeedStableAndRingCapacityInvariant, 25) {
  const CaseSetup c = gen_case(ctx);
  const std::size_t burst = ctx.rng.bernoulli(0.5) ? 0 : 32;

  const std::string small_ring =
      fingerprint(c, burst, /*ring_capacity=*/32, /*threads=*/2);
  const std::string small_ring_again =
      fingerprint(c, burst, /*ring_capacity=*/32, /*threads=*/2);
  EXPECT_EQ(small_ring, small_ring_again)
      << "threads=2 burst=" << burst
      << " not seed-stable; replay seed 0x" << std::hex << ctx.case_seed;

  const std::string big_ring =
      fingerprint(c, burst, /*ring_capacity=*/1024, /*threads=*/2);
  EXPECT_EQ(small_ring, big_ring)
      << "ring capacity changed the run (overflow spill broke merge order); "
         "burst=" << burst << " replay seed 0x" << std::hex << ctx.case_seed;
}

}  // namespace
}  // namespace difane
